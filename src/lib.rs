//! # hpm — Performance Modeling of Heterogeneous Systems
//!
//! Facade crate re-exporting the workspace public API. See the README for a
//! tour and `DESIGN.md` for the crate inventory.
//!
//! The workspace reproduces the modeling framework of Meyer's thesis
//! *Performance Modeling of Heterogeneous Systems* (NTNU, 2012): a
//! bottom-up, matrix-composed performance model for bulk-synchronous
//! programs on SMP clusters, validated by a BSPlib runtime and two case
//! studies (adaptive barrier construction and a 5-point Laplacian stencil).

pub use hpm_analyze as analyze;
pub use hpm_barriers as barriers;
pub use hpm_bsplib as bsplib;
pub use hpm_collectives as collectives;
pub use hpm_core as model;
pub use hpm_kernels as kernels;
pub use hpm_par as par;
pub use hpm_simnet as simnet;
pub use hpm_stats as stats;
pub use hpm_stencil as stencil;
pub use hpm_topology as topology;
