//! Automatic barrier adaptation (the Chapter 7 workflow).
//!
//! Benchmarks a 60-process placement on the 8×2×4 cluster, clusters the
//! latency matrix into subsets (SSS), greedily constructs a customized
//! hierarchical barrier, and compares it against the library defaults —
//! both by prediction and by simulated execution.
//!
//! Run with: `cargo run --release --example barrier_tuning`

use hpm::barriers::greedy::greedy_adaptive_barrier;
use hpm::barriers::patterns::{binary_tree, dissemination, linear};
use hpm::model::pattern::CommPattern;
use hpm::model::predictor::{predict_barrier, PayloadSchedule};
use hpm::simnet::barrier::BarrierSim;
use hpm::simnet::microbench::{bench_platform, MicrobenchConfig};
use hpm::simnet::params::xeon_cluster_params;
use hpm::topology::{cluster_8x2x4, Placement, PlacementPolicy};

fn main() {
    let p = 60;
    let params = xeon_cluster_params();
    let placement = Placement::new(cluster_8x2x4(), PlacementPolicy::RoundRobin, p);
    let profile = bench_platform(&params, &placement, &MicrobenchConfig::default(), 11);

    // Subset clustering recovered from latency measurements alone.
    let report = greedy_adaptive_barrier(&profile.costs);
    println!("SSS clustering (Table 7.1 analogue):");
    print!("{}", report.clustering.render());
    for (k, (shape, cost)) in report.intra_choices.iter().enumerate() {
        println!(
            "  subset {k}: gather {:<7} predicted {:.2} us",
            shape.label(),
            cost * 1e6
        );
    }
    println!(
        "top level: {} — emitted '{}' predicted {:.2} us",
        report.inter_choice.0,
        report.pattern.name(),
        report.predicted_total * 1e6
    );

    // Head-to-head against the defaults.
    let sim = BarrierSim::new(&params, &placement);
    let payload = PayloadSchedule::none();
    println!("\n{:<22} {:>12} {:>12}", "barrier", "predicted", "measured");
    let mut rows = vec![("adapted".to_string(), report.pattern.clone())];
    rows.push(("dissemination".into(), dissemination(p)));
    rows.push(("binary tree".into(), binary_tree(p)));
    rows.push(("linear".into(), linear(p, 0)));
    for (name, pat) in rows {
        let predicted = predict_barrier(&pat, &profile.costs, &payload).total;
        let measured = sim.measure(&pat, &payload, 64, 23).mean();
        println!(
            "{:<22} {:>10.2} us {:>10.2} us",
            name,
            predicted * 1e6,
            measured * 1e6
        );
    }
}
