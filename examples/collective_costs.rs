//! Predicted vs simulated collective costs on a heterogeneous 2-cluster
//! topology.
//!
//! 16 processes placed round-robin over two gigabit-linked 2×4-core nodes
//! form the thesis' canonical heterogeneous setting: same-socket,
//! same-node and remote links differ by more than an order of magnitude,
//! which is what the matrix-composed model exists to capture. This
//! example runs the §5.6.3 microbenchmarks, predicts every collective in
//! the catalog from its stage matrices and payload schedule, executes the
//! same patterns on the simulated platform, and finally pushes a real
//! allreduce through the BSPlib runtime to show the numeric result is
//! right too.
//!
//! Run with: `cargo run --release --example collective_costs`

use hpm::bsplib::runtime::BspConfig;
use hpm::collectives::exec::{run_allreduce, seed_vector};
use hpm::collectives::pattern::catalog;
use hpm::collectives::predict::{predict_collective, simulate_collective};
use hpm::kernels::rate::xeon_core;
use hpm::model::pattern::CommPattern;
use hpm::simnet::microbench::{bench_platform, MicrobenchConfig};
use hpm::simnet::params::xeon_cluster_params;
use hpm::topology::{cluster_8x2x4, Placement, PlacementPolicy};

fn main() {
    let p = 16;
    let bytes = 8 * 1024u64;
    let params = xeon_cluster_params();
    let placement = Placement::new(cluster_8x2x4(), PlacementPolicy::RoundRobin, p);
    println!(
        "heterogeneous 2-cluster: {p} processes round-robin on two {}-core nodes of the {} machine\n",
        placement.shape().cores_per_node(),
        placement.shape()
    );

    println!("benchmarking the platform (O/L/beta matrices, par. 5.6.3) ...");
    let profile = bench_platform(&params, &placement, &MicrobenchConfig::quick(), 42);

    println!(
        "\n{:<22} {:>12} {:>12} {:>8}",
        "collective", "predicted", "simulated", "rel"
    );
    for pat in catalog(p, 0, bytes) {
        let pred = predict_collective(&pat, &profile.costs).total;
        let meas = simulate_collective(&pat, &params, &placement, 16, 7).mean();
        println!(
            "{:<22} {:>10.3e} s {:>10.3e} s {:>+8.2}",
            pat.name(),
            pred,
            meas,
            (pred - meas) / meas
        );
    }

    // The same allreduce as a real program: payload moves through process
    // memories, synchronization is the count-map-carrying dissemination
    // barrier, and every rank must end holding the exact elementwise sum.
    let n = bytes as usize / 8;
    let cfg = BspConfig::new(params, placement, xeon_core(), 42);
    let run = run_allreduce(&cfg, n);
    let expect: Vec<f64> = (0..n)
        .map(|k| (0..p).map(|r| seed_vector(r, n)[k]).sum())
        .collect();
    let all_correct = run.values.iter().all(|v| v == &expect);
    println!(
        "\nallreduce through the BSPlib runtime: {:.3e} s over {} supersteps, results {}",
        run.total_time,
        run.supersteps,
        if all_correct {
            "exact on every rank"
        } else {
            "WRONG"
        }
    );
    assert!(all_correct, "allreduce produced wrong sums");
}
