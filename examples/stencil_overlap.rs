//! The Laplacian stencil case study (the Chapter 8 workflow).
//!
//! Compares the BSP (overlapping), MPI (blocking) and MPI+R (restructured)
//! implementations in strong scaling, checks the framework's prediction of
//! the BSP iteration time, and runs the model-driven ghost-width
//! adaptation.
//!
//! Run with: `cargo run --release --example stencil_overlap`

use hpm::bsplib::runtime::BspConfig;
use hpm::kernels::rate::xeon_core;
use hpm::simnet::microbench::{bench_platform, MicrobenchConfig};
use hpm::simnet::params::xeon_cluster_params;
use hpm::stencil::bsp::{run_bsp_stencil, CommitDiscipline};
use hpm::stencil::mpi::{run_mpi_stencil, MpiVariant};
use hpm::stencil::overlap_opt::optimize_ghost_width;
use hpm::stencil::predictor::predict_bsp_iteration;
use hpm::topology::{cluster_8x2x4, Placement, PlacementPolicy};

fn main() {
    let n = 2048;
    let params = xeon_cluster_params();
    let model = xeon_core();

    println!("strong scaling, N = {n} (seconds per iteration):");
    println!("{:>4} {:>12} {:>12} {:>12}", "P", "BSP", "MPI", "MPI+R");
    for p in [4usize, 16, 64] {
        let placement = Placement::new(cluster_8x2x4(), PlacementPolicy::RoundRobin, p);
        let cfg = BspConfig::new(params.clone(), placement.clone(), model.clone(), 5);
        let bsp = run_bsp_stencil(&cfg, n, 4, CommitDiscipline::EarlyUnbuffered, false);
        let mpi = run_mpi_stencil(
            &params,
            &placement,
            &model,
            n,
            4,
            MpiVariant::Blocking2Stage,
            1.0,
            5,
        );
        let mpir = run_mpi_stencil(
            &params,
            &placement,
            &model,
            n,
            4,
            MpiVariant::EarlyRequests,
            1.0,
            5,
        );
        println!(
            "{:>4} {:>12.3e} {:>12.3e} {:>12.3e}",
            p,
            bsp.mean_iter(),
            mpi.mean_iter(),
            mpir.mean_iter()
        );
    }

    // Prediction vs measurement at full machine.
    let placement = Placement::new(cluster_8x2x4(), PlacementPolicy::RoundRobin, 64);
    let profile = bench_platform(&params, &placement, &MicrobenchConfig::default(), 5);
    let prediction = predict_bsp_iteration(&profile, &model, &placement, n);
    let cfg = BspConfig::new(params.clone(), placement.clone(), model.clone(), 5);
    let measured = run_bsp_stencil(&cfg, n, 4, CommitDiscipline::EarlyUnbuffered, false);
    println!(
        "\nP=64 prediction {:.3e} s/iter vs measured {:.3e} s/iter (overlap saves {:.3e} s)",
        prediction.total,
        measured.mean_iter(),
        prediction.model.overlap_saving()
    );

    // Model-driven ghost-width adaptation (§8.6).
    let sweep = optimize_ghost_width(
        &params,
        &profile,
        &model,
        &placement,
        n,
        &[1, 2, 3, 4, 6, 8],
        5,
    );
    println!("\nghost-width adaptation (s/iter):");
    println!("{:>3} {:>12} {:>12}", "w", "predicted", "measured");
    for (k, &w) in sweep.widths.iter().enumerate() {
        println!(
            "{:>3} {:>12.3e} {:>12.3e}",
            w, sweep.predicted[k], sweep.measured[k]
        );
    }
    println!(
        "model selects w = {}, measurement prefers w = {}",
        sweep.best_predicted(),
        sweep.best_measured()
    );
}
