//! Quickstart: model a heterogeneous platform and predict barrier cost.
//!
//! Builds the cost matrices of a small two-node machine by benchmarking a
//! simulated cluster, verifies three barrier algorithms algebraically,
//! predicts their cost with the critical-path model (Eq. 5.4), and checks
//! the predictions against simulated execution.
//!
//! Run with: `cargo run --release --example quickstart`

use hpm::barriers::patterns::{binary_tree, dissemination, linear};
use hpm::model::knowledge::verify_synchronizes;
use hpm::model::pattern::CommPattern;
use hpm::model::predictor::{predict_barrier, PayloadSchedule};
use hpm::simnet::barrier::BarrierSim;
use hpm::simnet::microbench::{bench_platform, MicrobenchConfig};
use hpm::simnet::params::xeon_cluster_params;
use hpm::topology::{cluster_8x2x4, Placement, PlacementPolicy};

fn main() {
    let p = 16;
    let params = xeon_cluster_params();
    let placement = Placement::new(cluster_8x2x4(), PlacementPolicy::RoundRobin, p);
    println!("platform: {} with {p} processes (round-robin)", params.name);

    // 1. Benchmark the platform: O/L/beta matrices (§5.6.3).
    let profile = bench_platform(&params, &placement, &MicrobenchConfig::default(), 42);
    println!(
        "benchmarked latency spread: local {:.2} us, remote {:.2} us",
        profile.costs.l.get(0, 2) * 1e6,
        profile.costs.l.get(0, 1) * 1e6
    );

    // 2. Verify and predict three barrier algorithms.
    let sim = BarrierSim::new(&params, &placement);
    println!(
        "{:<15} {:>12} {:>12} {:>8}",
        "barrier", "predicted", "measured", "error"
    );
    for pattern in [dissemination(p), binary_tree(p), linear(p, 0)] {
        assert!(
            verify_synchronizes(&pattern).synchronizes(),
            "{} must synchronize",
            pattern.name()
        );
        let predicted = predict_barrier(&pattern, &profile.costs, &PayloadSchedule::none()).total;
        let measured = sim
            .measure(&pattern, &PayloadSchedule::none(), 64, 7)
            .mean();
        println!(
            "{:<15} {:>10.2} us {:>10.2} us {:>+7.1}%",
            pattern.name(),
            predicted * 1e6,
            measured * 1e6,
            (predicted - measured) / measured * 100.0
        );
    }
}
