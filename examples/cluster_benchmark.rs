//! Reproducing the §3.1 baseline: bspbench parameters and the classic
//! model's failure on the inner product.
//!
//! Extracts Table-3.1-style `(r, g, l)` rows through the BSPlib runtime,
//! then compares the classic BSP prediction of `bspinprod` against the
//! measured time — the motivating five-orders-of-magnitude gap of
//! Fig. 3.2.
//!
//! Run with: `cargo run --release --example cluster_benchmark`

use hpm::bsplib::bench::bspbench;
use hpm::bsplib::inprod::bspinprod;
use hpm::bsplib::runtime::BspConfig;
use hpm::kernels::rate::xeon_core;
use hpm::model::classic::ClassicBsp;
use hpm::simnet::params::xeon_cluster_params;
use hpm::topology::{cluster_8x2x4, Placement, PlacementPolicy};

fn cfg(p: usize) -> BspConfig {
    BspConfig::new(
        xeon_cluster_params(),
        Placement::new(cluster_8x2x4(), PlacementPolicy::RoundRobin, p),
        xeon_core(),
        2012,
    )
}

fn main() {
    println!("Table 3.1 analogue — BSPBench parameters, 8-way 2x4-core cluster:");
    println!("{:>4} {:>12} {:>10} {:>14}", "P", "r [Mflop/s]", "g", "l");
    let n = 100_000_000u64;
    let mut rows = Vec::new();
    for p in (8..=64).step_by(8) {
        let b = bspbench(&cfg(p));
        println!("{:>4} {:>12.3} {:>10.1} {:>14.1}", p, b.r / 1e6, b.g, b.l);
        rows.push(b);
    }

    println!("\nFig. 3.2 analogue — inner product, N = 1e8:");
    println!(
        "{:>4} {:>14} {:>14} {:>8}",
        "P", "measured [s]", "classic [s]", "ratio"
    );
    for b in rows {
        let classic = ClassicBsp::new(b.p, b.r, b.g, b.l).inner_product_seconds(n);
        let measured = bspinprod(&cfg(b.p), n, 3).seconds;
        println!(
            "{:>4} {:>14.4e} {:>14.4e} {:>8.1}",
            b.p,
            measured,
            classic,
            measured / classic
        );
    }
    println!("\nThe classic model misses badly once sync costs grow — the");
    println!("motivation for the matrix-composed heterogeneous framework.");
}
