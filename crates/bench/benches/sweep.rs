//! The PR 3 acceptance benchmark: serial vs parallel throughput of the
//! measurement layers ported onto `hpm_par`.
//!
//! Two workloads, each timed at 1 worker and at one worker per hardware
//! thread: the Fig. 5.6 barrier sweep (the heaviest figure experiment)
//! and the §5.6.3 platform microbenchmark at p = 64 (the O(p²) pair
//! sweep). The outputs are bit-identical across thread counts — the
//! determinism tests enforce that — so the ratio between the paired
//! numbers below is pure wall-clock speedup.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hpm_bench::experiments::{run_experiment, Effort};
use hpm_simnet::microbench::{bench_platform, MicrobenchConfig};
use hpm_simnet::params::xeon_cluster_params;
use hpm_topology::{cluster_8x2x4, Placement, PlacementPolicy};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("sweep");
    g.sample_size(10);
    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    let dir = std::env::temp_dir().join(format!("hpm-sweep-bench-{}", std::process::id()));
    let params = xeon_cluster_params();
    let p64 = Placement::new(cluster_8x2x4(), PlacementPolicy::RoundRobin, 64);

    for (label, threads) in [("1thread", 1), ("allthreads", hw)] {
        g.bench_function(format!("fig5_6_quick_{label}"), |b| {
            hpm_par::set_threads(Some(threads));
            b.iter(|| black_box(run_experiment("fig5_6", &dir, &Effort::quick())))
        });
    }
    for (label, threads) in [("1thread", 1), ("allthreads", hw)] {
        g.bench_function(format!("microbench_p64_{label}"), |b| {
            hpm_par::set_threads(Some(threads));
            b.iter(|| black_box(bench_platform(&params, &p64, &MicrobenchConfig::quick(), 5)))
        });
    }
    hpm_par::set_threads(None);
    g.finish();
    std::fs::remove_dir_all(&dir).ok();
}

criterion_group!(benches, bench);
criterion_main!(benches);
