//! Benchmarks for the Ch. 6 synchronization: payload-carrying barrier
//! simulation and prediction (Figs. 6.3/6.4 hot paths).

use criterion::{criterion_group, criterion_main, Criterion};
use hpm_barriers::patterns::dissemination;
use hpm_core::predictor::{predict_barrier, CommCosts, PayloadSchedule};
use hpm_simnet::barrier::BarrierSim;
use hpm_simnet::params::xeon_cluster_params;
use hpm_topology::{cluster_8x2x4, Placement, PlacementPolicy};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("bsp_sync");
    g.sample_size(10);
    let params = xeon_cluster_params();
    let placement = Placement::new(cluster_8x2x4(), PlacementPolicy::RoundRobin, 64);
    let sim = BarrierSim::new(&params, &placement);
    let pat = dissemination(64);
    let payload = PayloadSchedule::dissemination_count_map(64);
    g.bench_function("sync_with_count_map_64_x16", |b| {
        b.iter(|| sim.measure(&pat, &payload, 16, 9))
    });
    let costs = CommCosts::uniform(64, 3e-7, 5e-7, 9e-6);
    g.bench_function("predict_sync_with_payload_64", |b| {
        b.iter(|| predict_barrier(&pat, &costs, &payload))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
