//! Benchmarks for the Ch. 4 kernel substrate: raw kernel applications and
//! the profiling harness (Figs. 4.2–4.6 hot paths).

use criterion::{criterion_group, criterion_main, Criterion};
use hpm_kernels::blas1::{Axpy, Dot};
use hpm_kernels::harness::{profile_kernel, BenchConfig};
use hpm_kernels::kernel::Kernel;
use hpm_kernels::stencil::Stencil5;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernel_rates");
    g.sample_size(20);
    let mut ax = Axpy.alloc(1024);
    g.bench_function("axpy_1024", |b| b.iter(|| Axpy.apply(&mut ax)));
    let mut dt = Dot.alloc(1024);
    g.bench_function("dot_1024", |b| b.iter(|| Dot.apply(&mut dt)));
    let mut st = Stencil5.alloc(1024);
    g.bench_function("stencil5_32x32", |b| b.iter(|| Stencil5.apply(&mut st)));
    g.sample_size(10);
    g.bench_function("profile_axpy_quick", |b| {
        b.iter(|| profile_kernel(&Axpy, &BenchConfig::quick(256)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
