//! Benchmarks for the simulated barrier executor (Figs. 5.6/5.10
//! measurement side).

use criterion::{criterion_group, criterion_main, Criterion};
use hpm_barriers::patterns::{dissemination, linear};
use hpm_core::predictor::PayloadSchedule;
use hpm_simnet::barrier::BarrierSim;
use hpm_simnet::microbench::{bench_platform, MicrobenchConfig};
use hpm_simnet::params::xeon_cluster_params;
use hpm_topology::{cluster_8x2x4, Placement, PlacementPolicy};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("barrier_sim");
    g.sample_size(10);
    let params = xeon_cluster_params();
    let placement = Placement::new(cluster_8x2x4(), PlacementPolicy::RoundRobin, 64);
    let sim = BarrierSim::new(&params, &placement);
    let d = dissemination(64);
    let l = linear(64, 0);
    g.bench_function("measure_dissemination_64_x16", |b| {
        b.iter(|| sim.measure(&d, &PayloadSchedule::none(), 16, 3))
    });
    g.bench_function("measure_linear_64_x16", |b| {
        b.iter(|| sim.measure(&l, &PayloadSchedule::none(), 16, 3))
    });
    g.bench_function("microbench_platform_p16", |b| {
        let small = Placement::new(cluster_8x2x4(), PlacementPolicy::RoundRobin, 16);
        b.iter(|| bench_platform(&params, &small, &MicrobenchConfig::quick(), 5))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
