//! Benchmarks for the collectives subsystem hot paths: pattern
//! construction, rooted-knowledge verification, critical-path prediction,
//! staged simulation, and the executable allreduce through the runtime.

use criterion::{criterion_group, criterion_main, Criterion};
use hpm_bsplib::runtime::BspConfig;
use hpm_collectives::exec::run_allreduce;
use hpm_collectives::pattern::{allreduce, catalog, total_exchange};
use hpm_collectives::predict::{predict_collective, simulate_collective};
use hpm_core::knowledge::verify_synchronizes;
use hpm_core::predictor::CommCosts;
use hpm_kernels::rate::xeon_core;
use hpm_simnet::params::xeon_cluster_params;
use hpm_topology::{cluster_8x2x4, Placement, PlacementPolicy};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("collectives");
    g.sample_size(10);

    let costs = CommCosts::uniform(144, 3e-7, 5e-7, 9e-6);
    g.bench_function("catalog_144", |b| b.iter(|| catalog(144, 0, 1024)));
    for pat in [allreduce(144, 1024), total_exchange(144, 1024)] {
        g.bench_function(format!("predict_{}_144", pat.name_for_id()), |b| {
            b.iter(|| predict_collective(&pat, &costs))
        });
        g.bench_function(format!("verify_{}_144", pat.name_for_id()), |b| {
            b.iter(|| verify_synchronizes(&pat))
        });
    }

    let params = xeon_cluster_params();
    let placement = Placement::new(cluster_8x2x4(), PlacementPolicy::RoundRobin, 64);
    let pat = allreduce(64, 1024);
    g.bench_function("simulate_allreduce_64_x8", |b| {
        b.iter(|| simulate_collective(&pat, &params, &placement, 8, 7))
    });

    let cfg = BspConfig::new(
        params.clone(),
        Placement::new(cluster_8x2x4(), PlacementPolicy::RoundRobin, 16),
        xeon_core(),
        7,
    );
    g.bench_function("runtime_allreduce_p16_n4096", |b| {
        b.iter(|| run_allreduce(&cfg, 4096))
    });
    g.finish();
}

trait NameForId {
    fn name_for_id(&self) -> String;
}

impl NameForId for hpm_collectives::pattern::CollectivePattern {
    fn name_for_id(&self) -> String {
        use hpm_core::pattern::CommPattern;
        self.name().replace('-', "_")
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
