//! Benchmarks for the §3.1 experiments: bspbench parameter extraction and
//! the bspinprod computation (Table 3.1, Fig. 3.2 hot paths).

use criterion::{criterion_group, criterion_main, Criterion};
use hpm_bsplib::bench::bspbench;
use hpm_bsplib::inprod::bspinprod;
use hpm_bsplib::runtime::BspConfig;
use hpm_kernels::rate::xeon_core;
use hpm_simnet::params::xeon_cluster_params;
use hpm_topology::{cluster_8x2x4, Placement, PlacementPolicy};

fn cfg(p: usize) -> BspConfig {
    BspConfig::new(
        xeon_cluster_params(),
        Placement::new(cluster_8x2x4(), PlacementPolicy::RoundRobin, p),
        xeon_core(),
        7,
    )
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("bsp_params");
    g.sample_size(10);
    g.bench_function("bspbench_p16", |b| b.iter(|| bspbench(&cfg(16))));
    g.bench_function("bspinprod_p16_n1e6", |b| {
        b.iter(|| bspinprod(&cfg(16), 1_000_000, 1))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
