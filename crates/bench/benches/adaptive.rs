//! Benchmarks for Ch. 7: SSS clustering and greedy barrier construction
//! (Tables 7.1/7.2, Figs. 7.4–7.7 hot paths).

use criterion::{criterion_group, criterion_main, Criterion};
use hpm_barriers::greedy::greedy_adaptive_barrier;
use hpm_barriers::sss::sss_clusters;
use hpm_core::matrix::DMat;
use hpm_core::predictor::CommCosts;

fn two_scale_costs(p: usize, nodes: usize) -> CommCosts {
    let l = DMat::from_fn(p, p, |i, j| {
        if i == j {
            0.0
        } else if i % nodes == j % nodes {
            1e-6
        } else {
            1e-5
        }
    });
    let o = DMat::from_fn(p, p, |i, j| if i == j { 3e-7 } else { 5e-7 });
    CommCosts::new(o, l, DMat::zeros(p, p))
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("adaptive");
    g.sample_size(20);
    let costs60 = two_scale_costs(60, 8);
    g.bench_function("sss_clusters_60", |b| b.iter(|| sss_clusters(&costs60.l)));
    g.bench_function("greedy_adaptive_60", |b| {
        b.iter(|| greedy_adaptive_barrier(&costs60))
    });
    let costs115 = two_scale_costs(115, 10);
    g.bench_function("greedy_adaptive_115", |b| {
        b.iter(|| greedy_adaptive_barrier(&costs115))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
