//! Benchmarks for the Ch. 5 predictor: pattern construction, knowledge
//! verification and critical-path prediction (Figs. 5.2–5.13 hot paths).

use criterion::{criterion_group, criterion_main, Criterion};
use hpm_barriers::patterns::{binary_tree, dissemination, linear};
use hpm_core::knowledge::verify_synchronizes;
use hpm_core::predictor::{predict_barrier, CommCosts, PayloadSchedule};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("barrier_predict");
    g.sample_size(20);
    let costs = CommCosts::uniform(144, 3e-7, 5e-7, 9e-6);
    for (name, pat) in [
        ("dissemination_144", dissemination(144)),
        ("tree_144", binary_tree(144)),
        ("linear_144", linear(144, 0)),
    ] {
        g.bench_function(format!("predict_{name}"), |b| {
            b.iter(|| predict_barrier(&pat, &costs, &PayloadSchedule::none()))
        });
        g.bench_function(format!("verify_{name}"), |b| {
            b.iter(|| verify_synchronizes(&pat))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
