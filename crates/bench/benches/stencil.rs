//! Benchmarks for the Ch. 8 stencil implementations (A-series and
//! Table 8.2 hot paths).

use criterion::{criterion_group, criterion_main, Criterion};
use hpm_bsplib::runtime::BspConfig;
use hpm_kernels::rate::xeon_core;
use hpm_simnet::params::xeon_cluster_params;
use hpm_stencil::bsp::{run_bsp_stencil, CommitDiscipline};
use hpm_stencil::mpi::{run_mpi_stencil, MpiVariant};
use hpm_topology::{cluster_8x2x4, Placement, PlacementPolicy};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("stencil");
    g.sample_size(10);
    let params = xeon_cluster_params();
    let model = xeon_core();
    let placement = Placement::new(cluster_8x2x4(), PlacementPolicy::RoundRobin, 16);
    g.bench_function("bsp_stencil_p16_n2048_x2", |b| {
        let cfg = BspConfig::new(params.clone(), placement.clone(), model.clone(), 3);
        b.iter(|| run_bsp_stencil(&cfg, 2048, 2, CommitDiscipline::EarlyUnbuffered, false))
    });
    g.bench_function("mpi_stencil_p16_n2048_x2", |b| {
        b.iter(|| {
            run_mpi_stencil(
                &params,
                &placement,
                &model,
                2048,
                2,
                MpiVariant::Blocking2Stage,
                1.0,
                3,
            )
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
