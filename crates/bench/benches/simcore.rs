//! `simcore` — throughput of the flat simulation core, as a machine-
//! readable perf-trajectory artifact.
//!
//! Unlike the criterion-style benches, this target measures the three
//! operations every experiment in this workspace funnels through —
//! `BarrierSim::measure`, `predict_barrier`/`predict_compiled` and the
//! knowledge verifier — at p ∈ {16, 64}, and writes the ops/sec table to
//! a JSON file CI archives as `BENCH_sim.json` next to `BENCH_repro.json`.
//!
//! ```text
//! cargo bench -p hpm-bench --bench simcore                      # full
//! cargo bench -p hpm-bench --bench simcore -- --quick --json BENCH_sim.json
//! ```
//!
//! Two `measure` rows exist per process count:
//!
//! * `measure_pP` — the default platform, jitter on. Each of the ~2000
//!   per-repetition jitter draws evaluates `exp(σ·Z)` with a Box-Muller
//!   normal, and those values are pinned bit-for-bit by the determinism
//!   tests, so this row has an irreducible transcendental floor (~75% of
//!   its pre-refactor cost at p = 64).
//! * `measure_engine_pP` — the same measurement with jitter disabled:
//!   every draw short-circuits to 1.0, isolating the data path the flat
//!   core rewrote (CSR adjacency, scratch reuse, LinkMap). This is the
//!   row that tracks the simulation core itself.
//!
//! All rows run single-threaded (`hpm_par` pinned to 1 worker) so the
//! numbers are per-core throughput, comparable across machines with
//! different core counts.

use hpm_barriers::patterns::dissemination;
use hpm_core::pattern::CommPattern;
use hpm_core::predictor::{predict_compiled, CommCosts, PayloadSchedule};
use hpm_simnet::barrier::BarrierSim;
use hpm_simnet::params::xeon_cluster_params;
use hpm_topology::{cluster_8x2x4, Placement, PlacementPolicy};
use std::io::Write;
use std::path::PathBuf;
use std::time::Instant;

/// Times `op` for at least `window` seconds and returns ops/sec.
fn throughput(window: f64, mut op: impl FnMut()) -> f64 {
    // One untimed call warms caches and scratch.
    op();
    let t0 = Instant::now();
    let mut iters = 0u64;
    while t0.elapsed().as_secs_f64() < window {
        op();
        iters += 1;
    }
    iters as f64 / t0.elapsed().as_secs_f64()
}

struct Entry {
    id: String,
    ops_per_sec: f64,
    /// What one "op" is, for the reader of the JSON.
    unit: &'static str,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let json_path: Option<PathBuf> = args
        .iter()
        .position(|a| a == "--json")
        .map(|k| PathBuf::from(args.get(k + 1).expect("--json needs a file path")));
    // Quick mode shrinks the timing windows, never the workload shape:
    // an "op" means the same thing in both modes.
    let window = if quick { 0.2 } else { 2.0 };
    const REPS: usize = 256;

    hpm_par::set_threads(Some(1));
    let jittered = xeon_cluster_params();
    let noiseless = jittered.noiseless();
    let mut entries: Vec<Entry> = Vec::new();

    for p in [16usize, 64] {
        let placement = Placement::new(cluster_8x2x4(), PlacementPolicy::RoundRobin, p);
        let pattern = dissemination(p);
        let payload = PayloadSchedule::none();

        let sim = BarrierSim::new(&jittered, &placement);
        let ops = throughput(window, || {
            std::hint::black_box(sim.measure(&pattern, &payload, REPS, 42));
        });
        entries.push(Entry {
            id: format!("measure_p{p}"),
            ops_per_sec: ops * REPS as f64,
            unit: "barrier repetitions/sec, default jitter",
        });

        let engine = BarrierSim::new(&noiseless, &placement);
        let ops = throughput(window, || {
            std::hint::black_box(engine.measure(&pattern, &payload, REPS, 42));
        });
        entries.push(Entry {
            id: format!("measure_engine_p{p}"),
            ops_per_sec: ops * REPS as f64,
            unit: "barrier repetitions/sec, jitter off (data path only)",
        });

        let costs = CommCosts::uniform(p, 1e-7, 5e-7, 1e-6);
        let plan = pattern.plan();
        let ops = throughput(window, || {
            std::hint::black_box(predict_compiled(&plan, &costs, &payload));
        });
        entries.push(Entry {
            id: format!("predict_p{p}"),
            ops_per_sec: ops,
            unit: "full-pattern predictions/sec (compiled once)",
        });

        let ops = throughput(window, || {
            std::hint::black_box(hpm_core::knowledge::verify_compiled(&plan));
        });
        entries.push(Entry {
            id: format!("verify_p{p}"),
            ops_per_sec: ops,
            unit: "knowledge verifications/sec (compiled once)",
        });
    }

    for e in &entries {
        println!("{:<22} {:>14.0} ops/s  ({})", e.id, e.ops_per_sec, e.unit);
    }

    if let Some(path) = json_path {
        let mut s = String::from("{\n");
        s.push_str(&format!("  \"quick\": {quick},\n"));
        s.push_str("  \"threads\": 1,\n");
        s.push_str(&format!("  \"reps_per_measure\": {REPS},\n"));
        s.push_str("  \"entries\": [\n");
        for (k, e) in entries.iter().enumerate() {
            let comma = if k + 1 < entries.len() { "," } else { "" };
            s.push_str(&format!(
                "    {{\"id\": \"{}\", \"ops_per_sec\": {:.1}, \"unit\": \"{}\"}}{comma}\n",
                e.id, e.ops_per_sec, e.unit
            ));
        }
        s.push_str("  ],\n");
        // Reference point for the flat-core refactor (PR 4): the same
        // operations measured at the pre-refactor commit 61b80a6 (dense
        // IMat::dsts path, per-call buffers, no LTO) on the machine that
        // developed the PR. Fixed provenance, not re-measured — compare
        // entries against these only on comparable hardware; the perf
        // trajectory across commits is what CI's archive of this file
        // tracks.
        s.push_str("  \"baseline_pre_pr\": {\n");
        s.push_str("    \"commit\": \"61b80a6\",\n");
        s.push_str("    \"entries\": [\n");
        s.push_str("      {\"id\": \"measure_p16\", \"ops_per_sec\": 55314},\n");
        s.push_str("      {\"id\": \"measure_engine_p16\", \"ops_per_sec\": 249268},\n");
        s.push_str("      {\"id\": \"predict_p16\", \"ops_per_sec\": 157928},\n");
        s.push_str("      {\"id\": \"verify_p16\", \"ops_per_sec\": 293858},\n");
        s.push_str("      {\"id\": \"measure_p64\", \"ops_per_sec\": 7783},\n");
        s.push_str("      {\"id\": \"measure_engine_p64\", \"ops_per_sec\": 20623},\n");
        s.push_str("      {\"id\": \"predict_p64\", \"ops_per_sec\": 11816},\n");
        s.push_str("      {\"id\": \"verify_p64\", \"ops_per_sec\": 17998}\n");
        s.push_str("    ]\n");
        s.push_str("  }\n");
        s.push_str("}\n");
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            std::fs::create_dir_all(dir).expect("create json output dir");
        }
        let mut f = std::fs::File::create(&path).expect("create json report");
        f.write_all(s.as_bytes()).expect("write json report");
        println!("wrote {}", path.display());
    }
}
