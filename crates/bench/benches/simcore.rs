//! `simcore` — throughput of the flat simulation core, as a machine-
//! readable perf-trajectory artifact.
//!
//! Unlike the criterion-style benches, this target measures the
//! operations every experiment in this workspace funnels through —
//! `BarrierSim::measure` (jittered and noiseless), the raw lane-parallel
//! batch executor, `predict_barrier`/`predict_compiled` and the
//! knowledge verifier — at p ∈ {16, 64}, and writes the ops/sec table to
//! a JSON file CI archives as `BENCH_sim.json` next to `BENCH_repro.json`.
//!
//! ```text
//! cargo bench -p hpm-bench --bench simcore                      # full
//! cargo bench -p hpm-bench --bench simcore -- --quick --json BENCH_sim.json
//! cargo bench -p hpm-bench --bench simcore -- --quick --check   # CI gate
//! ```
//!
//! Three `measure` rows exist per process count:
//!
//! * `measure_pP` — the default platform, jitter on (σ = 0.05), through
//!   the public `measure` entry point. Since PR 5 this runs on the
//!   batched jitter engine: per-repetition counter streams through the
//!   tabulated log-normal quantile function, executed in SoA lanes —
//!   the row the stochastic path's perf trajectory tracks.
//! * `measure_batch_pP` — the same work through `run_batch_compiled`
//!   directly (one `LaneScratch`, no fan-out machinery): the raw lane
//!   executor's ceiling.
//! * `measure_engine_pP` — jitter disabled: every multiplier reads as
//!   exactly 1.0, isolating the data path (CSR adjacency, SoA lanes,
//!   scratch reuse). This row tracks the simulation core itself.
//!
//! All rows run single-threaded (`hpm_par` pinned to 1 worker) so the
//! numbers are per-core throughput, comparable across machines with
//! different core counts.
//!
//! `--check` is the bench-smoke regression gate: it fails (exit 1) when
//! the jittered `measure` rows regress more than 30 % against the
//! committed `baseline` block, after normalizing by the noiseless
//! `measure_engine` row measured in the same run — the ratio
//! jittered/noiseless cancels machine speed, so the gate is portable
//! across runners while still catching regressions of the stochastic
//! path specifically (the threshold is generous precisely because even
//! the ratio wobbles on noisy shared runners).

use hpm_barriers::patterns::{dissemination, dissemination_plan};
use hpm_core::pattern::CommPattern;
use hpm_core::predictor::{predict_compiled, predict_compiled_with, CommCosts, PayloadSchedule};
use hpm_simnet::barrier::BarrierSim;
use hpm_simnet::batch::LaneScratch;
use hpm_simnet::microbench::{bench_platform_classes, ClassCosts, MicrobenchConfig};
use hpm_simnet::params::xeon_cluster_params;
use hpm_topology::{
    cluster_128x2x4, cluster_32x2x4, cluster_512x2x4, cluster_8x2x4, ClusterShape, Placement,
    PlacementPolicy,
};
use std::alloc::{GlobalAlloc, Layout, System};
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

/// Counting allocator: tracks live and peak heap bytes so the scale rows
/// can report the placement's actual footprint — the artifact-level
/// enforcement that no O(p²) structure is hiding behind the type
/// signatures.
struct CountingAlloc;

static LIVE_BYTES: AtomicUsize = AtomicUsize::new(0);
static PEAK_BYTES: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            let now = LIVE_BYTES.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            PEAK_BYTES.fetch_max(now, Ordering::Relaxed);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE_BYTES.fetch_sub(layout.size(), Ordering::Relaxed);
        unsafe { System.dealloc(ptr, layout) };
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Peak heap growth while constructing (and briefly holding) the
/// placement for `p` ranks — measured on the main thread with the
/// worker pool idle.
fn placement_peak_bytes(shape: ClusterShape, p: usize) -> usize {
    let before = LIVE_BYTES.load(Ordering::Relaxed);
    PEAK_BYTES.store(before, Ordering::Relaxed);
    let placement = Placement::new(shape, PlacementPolicy::RoundRobin, p);
    std::hint::black_box(&placement);
    PEAK_BYTES.load(Ordering::Relaxed).saturating_sub(before)
}

/// Times `op` for at least `window` seconds and returns ops/sec.
fn throughput(window: f64, mut op: impl FnMut()) -> f64 {
    // One untimed call warms caches and scratch.
    op();
    let t0 = Instant::now();
    let mut iters = 0u64;
    while t0.elapsed().as_secs_f64() < window {
        op();
        iters += 1;
    }
    iters as f64 / t0.elapsed().as_secs_f64()
}

struct Entry {
    id: String,
    ops_per_sec: f64,
    /// What one "op" is, for the reader of the JSON.
    unit: &'static str,
}

/// The committed reference block `--check` gates against: this PR's
/// numbers on the machine that developed it (fixed provenance, not
/// re-measured). The absolute values only compare on similar hardware;
/// the check therefore uses the jittered/noiseless *ratios*, which
/// transfer.
const BASELINE_COMMIT: &str = "PR 5";
const BASELINE: &[(&str, f64)] = &[
    ("measure_p16", 293625.0),
    ("measure_batch_p16", 309785.0),
    ("measure_engine_p16", 1721322.0),
    ("predict_p16", 1010264.0),
    ("verify_p16", 891406.0),
    ("measure_p64", 54072.0),
    ("measure_batch_p64", 54192.0),
    ("measure_engine_p64", 269485.0),
    ("predict_p64", 235166.0),
    ("verify_p64", 35002.0),
];

/// The jittered rows as PR 4 left them, measured on the same machine as
/// [`BASELINE`] at commit 2896f65 (scalar `StdRng` Box-Muller per draw):
/// the reference point of this PR's ≥ 4x stochastic-path acceptance
/// criterion.
const BASELINE_PR4_JITTERED: &[(&str, f64)] = &[
    ("measure_p16", 73915.0),
    ("measure_engine_p16", 1251048.0),
    ("measure_p64", 12567.0),
    ("measure_engine_p64", 196694.0),
];

/// The scale rows' committed reference (this PR's numbers on its
/// development machine — same provenance rule as [`BASELINE`]). The
/// `--check` gate holds the p = 1024 jittered/noiseless ratio within
/// 30 % of this block's ratio, and caps the p = 4096 placement
/// footprint so a dense pairwise structure (16.7 MB at that scale)
/// cannot silently return.
const BASELINE_SCALE_COMMIT: &str = "PR 7";
const BASELINE_SCALE: &[(&str, f64)] = &[
    ("scale_measure_p1024", 2056.0),
    ("scale_engine_p1024", 11474.0),
];

/// Upper bound on the p = 4096 placement's peak construction footprint:
/// a generous linear allowance (cores, link map, node buckets, transient
/// doubling), two orders of magnitude under the dense table.
const PLACEMENT_PEAK_CAP_P4096: f64 = 2_000_000.0;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let check = args.iter().any(|a| a == "--check");
    let json_path: Option<PathBuf> = args
        .iter()
        .position(|a| a == "--json")
        .map(|k| PathBuf::from(args.get(k + 1).expect("--json needs a file path")));
    // Quick mode shrinks the timing windows, never the workload shape:
    // an "op" means the same thing in both modes.
    let window = if quick { 0.2 } else { 2.0 };
    const REPS: usize = 256;
    const LANES: usize = 8;

    hpm_par::set_threads(Some(1));
    let jittered = xeon_cluster_params();
    let noiseless = jittered.noiseless();
    let mut entries: Vec<Entry> = Vec::new();

    for p in [16usize, 64] {
        let placement = Placement::new(cluster_8x2x4(), PlacementPolicy::RoundRobin, p);
        let pattern = dissemination(p);
        let payload = PayloadSchedule::none();

        let sim = BarrierSim::new(&jittered, &placement);
        let ops = throughput(window, || {
            std::hint::black_box(sim.measure(&pattern, &payload, REPS, 42));
        });
        entries.push(Entry {
            id: format!("measure_p{p}"),
            ops_per_sec: ops * REPS as f64,
            unit: "barrier repetitions/sec, default jitter (batched engine)",
        });

        let plan = pattern.plan();
        let mut lanes = LaneScratch::new();
        let ops = throughput(window, || {
            let mut rep = 0u64;
            while rep < REPS as u64 {
                std::hint::black_box(
                    sim.run_batch_compiled(&plan, &payload, 42, rep, LANES, &mut lanes),
                );
                rep += LANES as u64;
            }
        });
        entries.push(Entry {
            id: format!("measure_batch_p{p}"),
            ops_per_sec: ops * REPS as f64,
            unit: "barrier repetitions/sec, default jitter, raw lane executor",
        });

        let engine = BarrierSim::new(&noiseless, &placement);
        let ops = throughput(window, || {
            std::hint::black_box(engine.measure(&pattern, &payload, REPS, 42));
        });
        entries.push(Entry {
            id: format!("measure_engine_p{p}"),
            ops_per_sec: ops * REPS as f64,
            unit: "barrier repetitions/sec, jitter off (data path only)",
        });

        let costs = CommCosts::uniform(p, 1e-7, 5e-7, 1e-6);
        let ops = throughput(window, || {
            std::hint::black_box(predict_compiled(&plan, &costs, &payload));
        });
        entries.push(Entry {
            id: format!("predict_p{p}"),
            ops_per_sec: ops,
            unit: "full-pattern predictions/sec (compiled once)",
        });

        let ops = throughput(window, || {
            std::hint::black_box(hpm_core::knowledge::verify_compiled(&plan));
        });
        entries.push(Entry {
            id: format!("verify_p{p}"),
            ops_per_sec: ops,
            unit: "knowledge verifications/sec (compiled once)",
        });
    }

    // Scale rows: the past-p² pipeline — sparse-authored dissemination
    // plan, sampled stratified microbenchmark, per-class cost model —
    // at p ∈ {256, 1024, 4096}. Fewer reps per op than the small rows:
    // one p = 4096 repetition simulates ~49k signal round trips.
    const SCALE_REPS: usize = 8;
    for (shape, p) in [
        (cluster_32x2x4(), 256usize),
        (cluster_128x2x4(), 1024),
        (cluster_512x2x4(), 4096),
    ] {
        let placement = Placement::new(shape, PlacementPolicy::RoundRobin, p);
        let plan = dissemination_plan(p);
        let payload = PayloadSchedule::none();

        let sim = BarrierSim::new(&jittered, &placement);
        let ops = throughput(window, || {
            std::hint::black_box(sim.measure_compiled(&plan, &payload, SCALE_REPS, 42));
        });
        entries.push(Entry {
            id: format!("scale_measure_p{p}"),
            ops_per_sec: ops * SCALE_REPS as f64,
            unit: "barrier repetitions/sec, default jitter, sparse-authored plan",
        });

        if p == 1024 {
            // The --check gate normalizes the p = 1024 scale row by its
            // own noiseless run, like the small rows.
            let engine = BarrierSim::new(&noiseless, &placement);
            let ops = throughput(window, || {
                std::hint::black_box(engine.measure_compiled(&plan, &payload, SCALE_REPS, 42));
            });
            entries.push(Entry {
                id: format!("scale_engine_p{p}"),
                ops_per_sec: ops * SCALE_REPS as f64,
                unit: "barrier repetitions/sec, jitter off, sparse-authored plan",
            });
        }

        let micro = MicrobenchConfig::quick().with_pair_sample(16);
        let profile = bench_platform_classes(&jittered, &placement, &micro, 42);
        let costs = ClassCosts::new(&placement, profile);
        let meas = sim.measure_compiled(&plan, &payload, SCALE_REPS, 42).mean();
        let pred = predict_compiled_with(&plan, &costs, &payload).total;
        entries.push(Entry {
            id: format!("scale_rel_err_p{p}"),
            ops_per_sec: (pred - meas) / meas,
            unit: "predict-vs-sim relative error (dimensionless, not a rate)",
        });

        entries.push(Entry {
            id: format!("placement_peak_bytes_p{p}"),
            ops_per_sec: placement_peak_bytes(shape, p) as f64,
            unit: "peak heap bytes while constructing the placement (dimensionless)",
        });
    }

    for e in &entries {
        println!("{:<22} {:>14.0} ops/s  ({})", e.id, e.ops_per_sec, e.unit);
    }

    if let Some(path) = json_path {
        write_json(&path, quick, REPS, &entries);
        println!("wrote {}", path.display());
    }

    if check && !regression_check(&entries) {
        std::process::exit(1);
    }
}

/// The `--check` gate: jittered `measure` throughput, normalized by the
/// same run's noiseless row, must stay within 30 % of the committed
/// baseline's ratio. Returns false (and prints the verdict) on failure.
fn regression_check(entries: &[Entry]) -> bool {
    let fresh = |id: &str| -> f64 {
        entries
            .iter()
            .find(|e| e.id == id)
            .unwrap_or_else(|| panic!("missing entry {id}"))
            .ops_per_sec
    };
    let base = |id: &str| -> f64 {
        BASELINE
            .iter()
            .find(|(k, _)| *k == id)
            .unwrap_or_else(|| panic!("missing baseline {id}"))
            .1
    };
    let scale_base = |id: &str| -> f64 {
        BASELINE_SCALE
            .iter()
            .find(|(k, _)| *k == id)
            .unwrap_or_else(|| panic!("missing scale baseline {id}"))
            .1
    };
    let mut ok = true;
    for p in [16usize, 64] {
        let measure = format!("measure_p{p}");
        let engine = format!("measure_engine_p{p}");
        let fresh_ratio = fresh(&measure) / fresh(&engine);
        let base_ratio = base(&measure) / base(&engine);
        let rel = fresh_ratio / base_ratio;
        let verdict = if rel >= 0.70 { "ok" } else { "REGRESSED" };
        println!(
            "check {measure}: jittered/noiseless ratio {fresh_ratio:.4} vs baseline \
             {base_ratio:.4} ({}% of baseline) — {verdict}",
            (rel * 100.0).round()
        );
        ok &= rel >= 0.70;
    }
    // The p = 1024 scale row, same machine-normalized ratio gate.
    let fresh_ratio = fresh("scale_measure_p1024") / fresh("scale_engine_p1024");
    let base_ratio = scale_base("scale_measure_p1024") / scale_base("scale_engine_p1024");
    let rel = fresh_ratio / base_ratio;
    let verdict = if rel >= 0.70 { "ok" } else { "REGRESSED" };
    println!(
        "check scale_measure_p1024: jittered/noiseless ratio {fresh_ratio:.4} vs baseline \
         {base_ratio:.4} ({}% of baseline) — {verdict}",
        (rel * 100.0).round()
    );
    ok &= rel >= 0.70;
    // The placement footprint cap: absolute bytes, portable across
    // machines (allocation sizes do not depend on CPU speed).
    let peak = fresh("placement_peak_bytes_p4096");
    let verdict = if peak <= PLACEMENT_PEAK_CAP_P4096 {
        "ok"
    } else {
        "REGRESSED"
    };
    println!(
        "check placement_peak_bytes_p4096: {peak:.0} B vs cap \
         {PLACEMENT_PEAK_CAP_P4096:.0} B — {verdict}"
    );
    ok &= peak <= PLACEMENT_PEAK_CAP_P4096;
    if !ok {
        println!(
            "jittered measure regressed >30% vs the committed {BASELINE_COMMIT}/\
             {BASELINE_SCALE_COMMIT} baselines (machine-normalized), or the placement \
             footprint blew its cap; see benches/simcore.rs"
        );
    }
    ok
}

fn write_json(path: &PathBuf, quick: bool, reps: usize, entries: &[Entry]) {
    let block = |out: &mut String, pairs: &[(&str, f64)], indent: &str| {
        for (k, (id, ops)) in pairs.iter().enumerate() {
            let comma = if k + 1 < pairs.len() { "," } else { "" };
            out.push_str(&format!(
                "{indent}{{\"id\": \"{id}\", \"ops_per_sec\": {ops:.0}}}{comma}\n"
            ));
        }
    };
    let mut s = String::from("{\n");
    s.push_str(&format!("  \"quick\": {quick},\n"));
    s.push_str("  \"threads\": 1,\n");
    s.push_str(&format!("  \"reps_per_measure\": {reps},\n"));
    s.push_str("  \"entries\": [\n");
    for (k, e) in entries.iter().enumerate() {
        let comma = if k + 1 < entries.len() { "," } else { "" };
        s.push_str(&format!(
            "    {{\"id\": \"{}\", \"ops_per_sec\": {:.4}, \"unit\": \"{}\"}}{comma}\n",
            e.id, e.ops_per_sec, e.unit
        ));
    }
    s.push_str("  ],\n");
    // The committed reference blocks, echoed into the artifact so the
    // perf trajectory is self-describing. Fixed provenance, never
    // re-measured here:
    //  * `baseline` — this PR's numbers on its development machine; the
    //    `--check` gate compares jittered/noiseless ratios against it.
    //  * `baseline_pr4_jittered` — the jittered rows at commit 2896f65
    //    (scalar per-draw RNG), same machine: the ≥ 4x reference of the
    //    batched-jitter-engine PR.
    //  * `baseline_pre_pr` — the flat-core refactor's reference at
    //    commit 61b80a6 (dense IMat::dsts path, per-call buffers).
    s.push_str("  \"baseline\": {\n");
    s.push_str(&format!("    \"commit\": \"{BASELINE_COMMIT}\",\n"));
    s.push_str("    \"entries\": [\n");
    block(&mut s, BASELINE, "      ");
    s.push_str("    ]\n");
    s.push_str("  },\n");
    s.push_str("  \"baseline_scale\": {\n");
    s.push_str(&format!("    \"commit\": \"{BASELINE_SCALE_COMMIT}\",\n"));
    s.push_str("    \"entries\": [\n");
    block(&mut s, BASELINE_SCALE, "      ");
    s.push_str("    ]\n");
    s.push_str("  },\n");
    s.push_str("  \"baseline_pr4_jittered\": {\n");
    s.push_str("    \"commit\": \"2896f65\",\n");
    s.push_str("    \"entries\": [\n");
    block(&mut s, BASELINE_PR4_JITTERED, "      ");
    s.push_str("    ]\n");
    s.push_str("  },\n");
    s.push_str("  \"baseline_pre_pr\": {\n");
    s.push_str("    \"commit\": \"61b80a6\",\n");
    s.push_str("    \"entries\": [\n");
    block(
        &mut s,
        &[
            ("measure_p16", 55314.0),
            ("measure_engine_p16", 249268.0),
            ("predict_p16", 157928.0),
            ("verify_p16", 293858.0),
            ("measure_p64", 7783.0),
            ("measure_engine_p64", 20623.0),
            ("predict_p64", 11816.0),
            ("verify_p64", 17998.0),
        ],
        "      ",
    );
    s.push_str("    ]\n");
    s.push_str("  }\n");
    s.push_str("}\n");
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        std::fs::create_dir_all(dir).expect("create json output dir");
    }
    let mut f = std::fs::File::create(path).expect("create json report");
    f.write_all(s.as_bytes()).expect("write json report");
}
