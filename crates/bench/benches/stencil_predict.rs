//! Benchmarks for the Ch. 8 model assembly: the B-series predictor and
//! the C1 ghost-width optimizer.

use criterion::{criterion_group, criterion_main, Criterion};
use hpm_kernels::rate::xeon_core;
use hpm_simnet::microbench::{bench_platform, MicrobenchConfig};
use hpm_simnet::params::xeon_cluster_params;
use hpm_stencil::overlap_opt::predict_ghost_width;
use hpm_stencil::predictor::predict_bsp_iteration;
use hpm_topology::{cluster_8x2x4, Placement, PlacementPolicy};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("stencil_predict");
    g.sample_size(10);
    let params = xeon_cluster_params();
    let placement = Placement::new(cluster_8x2x4(), PlacementPolicy::RoundRobin, 64);
    let profile = bench_platform(&params, &placement, &MicrobenchConfig::quick(), 3);
    let model = xeon_core();
    g.bench_function("predict_bsp_iteration_p64", |b| {
        b.iter(|| predict_bsp_iteration(&profile, &model, &placement, 2048))
    });
    g.bench_function("predict_ghost_width_p64_w4", |b| {
        b.iter(|| predict_ghost_width(&profile, &model, &placement, 2048, 4))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
