//! The acceptance gate as a test: every pattern reachable from the
//! `repro` registry analyzes clean, structurally and against its
//! knowledge goal — the same sweep `repro analyze` (and the CI
//! `analyze` job) runs.

use hpm_analyze::Severity;
use hpm_bench::analyze::{analyze_registry, pattern_registry};

#[test]
fn every_registry_pattern_analyzes_clean() {
    for (id, diags) in analyze_registry() {
        assert!(diags.is_empty(), "{id} has diagnostics: {diags:?}");
    }
}

#[test]
fn registry_warnings_also_gate() {
    // The gate is zero diagnostics, not zero errors: dead-rank warnings
    // count. Confirm the distinction is observable by breaking a plan.
    use hpm_core::plan::CompiledPattern;
    let lonely = CompiledPattern::from_stage_edges("lonely", 3, &[vec![(0, 1), (1, 0)]]);
    let diags = hpm_analyze::analyze(&lonely);
    assert!(diags.iter().all(|d| d.severity == Severity::Warning));
    assert!(!diags.is_empty());
}

#[test]
fn registry_reaches_the_scale_path() {
    // dissemination_plan at p = 4096 is the largest plan any experiment
    // executes; the analyzer must handle it (and its 16.7M-pair
    // knowledge tables) without blowing up.
    let reg = pattern_registry();
    let largest = reg
        .iter()
        .map(|r| r.plan.p())
        .max()
        .expect("registry is non-empty");
    assert_eq!(largest, 4096);
}
