//! `repro` — regenerate the thesis' tables and figures.
//!
//! ```text
//! repro list                 # show all experiment ids
//! repro analyze              # static-verify every registry pattern, run nothing
//! repro <id> [<id> ...]      # run selected experiments
//! repro all                  # run everything (what EXPERIMENTS.md records)
//! repro all --quick          # smoke-test resolution
//! repro all --effort quick   # same, spelled out
//! repro all --threads 8      # fan each sweep out over 8 workers
//! repro all --json BENCH_repro.json   # machine-readable timing report
//! repro faults recovery --check       # cross-check shared CSV corners
//! ```
//!
//! Output CSV/text files land in `results/` (override with `--out DIR`).
//! The sweeps fan out over `hpm_par` worker threads — one per hardware
//! thread unless `--threads` says otherwise — and the output bytes are
//! identical at every thread count (the per-point RNG streams are derived
//! from the seed and the point's coordinates, never shared).

use hpm_bench::experiments::{max_procs, registry, run_experiment, stochastic_path, Effort};
use std::io::Write;
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
        std::process::exit(2);
    }
    let mut out_dir = PathBuf::from("results");
    let mut effort = Effort::standard();
    let mut effort_name = "standard";
    let mut json_path: Option<PathBuf> = None;
    let mut check = false;
    let mut ids: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => {
                out_dir = PathBuf::from(it.next().expect("--out needs a directory"));
            }
            "--quick" => {
                effort = Effort::quick();
                effort_name = "quick";
            }
            "--effort" => match it.next().as_deref() {
                Some("quick") => {
                    effort = Effort::quick();
                    effort_name = "quick";
                }
                Some("standard") => {
                    effort = Effort::standard();
                    effort_name = "standard";
                }
                other => {
                    eprintln!("--effort needs `quick` or `standard`, got {other:?}");
                    std::process::exit(2);
                }
            },
            "--threads" => {
                let n: usize = it
                    .next()
                    .expect("--threads needs a count")
                    .parse()
                    .expect("--threads needs a positive integer");
                hpm_par::set_threads(Some(n));
            }
            "--json" => {
                json_path = Some(PathBuf::from(it.next().expect("--json needs a file path")));
            }
            "--check" => {
                check = true;
            }
            "list" => {
                for (id, desc, stochastic, p, _) in registry() {
                    println!("{id:<10} [{stochastic:>10}] [p<={p:<4}] {desc}");
                }
                return;
            }
            "analyze" => {
                run_analyze();
                return;
            }
            other => ids.push(other.to_string()),
        }
    }
    if ids.iter().any(|s| s == "all") {
        ids = registry()
            .iter()
            .map(|(id, _, _, _, _)| id.to_string())
            .collect();
    }
    let t0 = std::time::Instant::now();
    let mut timings: Vec<Timing> = Vec::new();
    for id in &ids {
        let start = std::time::Instant::now();
        match run_experiment(id, &out_dir, &effort) {
            Some(paths) => {
                let secs = start.elapsed().as_secs_f64();
                for p in &paths {
                    println!("[{id}] wrote {} ({secs:.1}s)", p.display());
                }
                timings.push(Timing {
                    id: id.clone(),
                    secs,
                    files: paths.len(),
                    items: count_items(&paths),
                    stochastic: stochastic_path(id).expect("id resolved above"),
                    p: max_procs(id).expect("id resolved above"),
                });
            }
            None => {
                eprintln!("unknown experiment id: {id} (try `repro list`)");
                std::process::exit(2);
            }
        }
    }
    let total = t0.elapsed().as_secs_f64();
    if let Some(path) = json_path {
        write_json(&path, effort_name, total, &timings);
        println!("wrote {}", path.display());
    }
    if check {
        run_check(&out_dir);
    }
    println!("done: {} experiments in {total:.1}s", ids.len());
}

/// `--check`: the determinism cross-check between the faults and
/// recovery artifacts. The recovery grid's `failfast` rows are computed
/// by the same code path as `faults.csv`, so at the shared corner —
/// every `failfast` row whose `(P, drop, straggler_prob,
/// straggler_scale, crashes)` coordinates appear in `faults.csv` — the
/// twelve shared cells must be *byte-identical*. A mismatch means one
/// of the executors' streams moved; exit 1 so CI catches it.
fn run_check(out_dir: &std::path::Path) {
    let read = |name: &str| -> Vec<Vec<String>> {
        let path = out_dir.join(name);
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("--check: cannot read {} ({e})", path.display());
            std::process::exit(1);
        });
        text.lines()
            .skip(1)
            .map(|l| l.split(',').map(str::to_string).collect())
            .collect()
    };
    let faults = read("faults.csv");
    let recovery = read("recovery.csv");
    let mut checked = 0usize;
    for row in recovery.iter().filter(|r| r[5] == "failfast") {
        // Project out the policy + recovery columns: coordinates
        // (fields 0..5) then the shared measurement cells (6..13).
        let projected: Vec<&String> = row[..5].iter().chain(&row[6..13]).collect();
        let Some(base) = faults.iter().find(|f| f[..5] == row[..5]) else {
            continue;
        };
        let base_ref: Vec<&String> = base.iter().collect();
        if projected != base_ref {
            eprintln!(
                "--check: recovery.csv failfast row diverges from faults.csv at \
                 (P, drop, straggler_prob, straggler_scale, crashes) = ({}, {}, {}, {}, {}):\n\
                 faults:   {}\n  recovery: {}",
                row[0],
                row[1],
                row[2],
                row[3],
                row[4],
                base.join(","),
                projected
                    .iter()
                    .map(|s| s.as_str())
                    .collect::<Vec<_>>()
                    .join(","),
            );
            std::process::exit(1);
        }
        checked += 1;
    }
    if checked == 0 {
        eprintln!("--check: no shared faults/recovery corner found (run both experiments first)");
        std::process::exit(1);
    }
    println!("check: {checked} shared faults/recovery rows byte-identical");
}

/// `repro analyze`: the static half of the CI gate. Runs the
/// `hpm-analyze` plan analyzer over every pattern shape the experiments
/// execute, each at its registered `max_procs`, and exits nonzero on
/// any diagnostic — warnings included. No simulation runs.
fn run_analyze() {
    let results = hpm_bench::analyze::analyze_registry();
    let mut bad = 0usize;
    for (id, diags) in &results {
        if diags.is_empty() {
            println!("{id:<28} ok");
        } else {
            bad += 1;
            for d in diags {
                println!("{id:<28} {d}");
            }
        }
    }
    if bad > 0 {
        eprintln!(
            "{bad} of {} registry patterns failed static analysis",
            results.len()
        );
        std::process::exit(1);
    }
    println!("all {} registry patterns analyze clean", results.len());
    // k-crash coverage: verdicts, not failures. Almost every staged
    // pattern relays knowledge through unique chains and so loses *some*
    // crash scenario; the sweep reports which goals outlive which crash
    // sets rather than gating on them.
    for k in [1usize, 2] {
        let summaries = hpm_bench::analyze::crash_coverage_registry(k);
        for s in &summaries {
            println!(
                "{:<28} k-crash-coverage k={k}: survives {}/{} scenarios",
                s.id, s.survived, s.scenarios
            );
            if let Some(d) = &s.example {
                println!("{:<28}   e.g. {d}", "");
            }
        }
    }
}

/// One experiment's timing record for the JSON report.
struct Timing {
    id: String,
    secs: f64,
    files: usize,
    items: usize,
    /// Which stochastic engine produced the numbers ("batched" /
    /// "host-clock" / "none") — makes perf-trajectory artifacts
    /// attributable to the path that ran them.
    stochastic: &'static str,
    /// Largest process count the experiment touches — throughput numbers
    /// only compare at equal problem scale.
    p: usize,
}

/// Result items an experiment produced: data rows across its CSV
/// artifacts (header excluded). `items / seconds` is the experiment's
/// sweep throughput, the derivable ops/sec the perf trajectory tracks.
fn count_items(paths: &[std::path::PathBuf]) -> usize {
    paths
        .iter()
        .filter(|p| p.extension().is_some_and(|e| e == "csv"))
        .map(|p| {
            std::fs::read_to_string(p)
                .map(|s| s.lines().count().saturating_sub(1))
                .unwrap_or(0)
        })
        .sum()
}

/// Emits the machine-readable timing report CI archives as
/// `BENCH_repro.json`: wall-clock and result-item count per experiment
/// plus the fan-out width, so the perf trajectory can track sweep
/// throughput (items/sec) across commits.
fn write_json(path: &PathBuf, effort: &str, total: f64, timings: &[Timing]) {
    let mut s = String::from("{\n");
    s.push_str(&format!("  \"threads\": {},\n", hpm_par::threads()));
    s.push_str(&format!("  \"effort\": \"{effort}\",\n"));
    s.push_str(&format!("  \"total_seconds\": {total:.3},\n"));
    s.push_str("  \"experiments\": [\n");
    for (k, t) in timings.iter().enumerate() {
        let comma = if k + 1 < timings.len() { "," } else { "" };
        s.push_str(&format!(
            "    {{\"id\": \"{}\", \"seconds\": {:.3}, \"files\": {}, \"items\": {}, \
             \"stochastic_path\": \"{}\", \"p\": {}}}{comma}\n",
            t.id, t.secs, t.files, t.items, t.stochastic, t.p
        ));
    }
    s.push_str("  ]\n}\n");
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        std::fs::create_dir_all(dir).expect("create json output dir");
    }
    let mut f = std::fs::File::create(path).expect("create json report");
    f.write_all(s.as_bytes()).expect("write json report");
}

fn usage() {
    eprintln!(
        "usage: repro [--out DIR] [--quick | --effort quick|standard] \
         [--threads N] [--json FILE] [--check] (list | analyze | all | <id> ...)"
    );
}
