//! `repro` — regenerate the thesis' tables and figures.
//!
//! ```text
//! repro list                 # show all experiment ids
//! repro <id> [<id> ...]      # run selected experiments
//! repro all                  # run everything (what EXPERIMENTS.md records)
//! repro all --quick          # smoke-test resolution
//! ```
//!
//! Output CSV/text files land in `results/` (override with `--out DIR`).

use hpm_bench::experiments::{registry, run_experiment, Effort};
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
        std::process::exit(2);
    }
    let mut out_dir = PathBuf::from("results");
    let mut effort = Effort::standard();
    let mut ids: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => {
                out_dir = PathBuf::from(it.next().expect("--out needs a directory"));
            }
            "--quick" => effort = Effort::quick(),
            "list" => {
                for (id, desc, _) in registry() {
                    println!("{id:<10} {desc}");
                }
                return;
            }
            other => ids.push(other.to_string()),
        }
    }
    if ids.iter().any(|s| s == "all") {
        ids = registry().iter().map(|(id, _, _)| id.to_string()).collect();
    }
    let t0 = std::time::Instant::now();
    for id in &ids {
        let start = std::time::Instant::now();
        match run_experiment(id, &out_dir, &effort) {
            Some(paths) => {
                let secs = start.elapsed().as_secs_f64();
                for p in paths {
                    println!("[{id}] wrote {} ({secs:.1}s)", p.display());
                }
            }
            None => {
                eprintln!("unknown experiment id: {id} (try `repro list`)");
                std::process::exit(2);
            }
        }
    }
    println!(
        "done: {} experiments in {:.1}s",
        ids.len(),
        t0.elapsed().as_secs_f64()
    );
}

fn usage() {
    eprintln!("usage: repro [--out DIR] [--quick] (list | all | <id> ...)");
}
