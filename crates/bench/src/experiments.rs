//! Every thesis table and figure as a runnable experiment.
//!
//! Ids follow the thesis numbering (`table3_1`, `fig5_6`, …). Each
//! experiment writes one or more CSV/text artifacts into the output
//! directory and returns their paths. DESIGN.md carries the experiment →
//! module map; EXPERIMENTS.md records the shape comparison against the
//! thesis originals.

use crate::output::{fmt, write_csv, write_file, write_text, CsvTable};
use std::path::{Path, PathBuf};

use hpm_barriers::greedy::greedy_adaptive_barrier;
use hpm_barriers::hybrid::flat_dissemination_hybrid;
use hpm_barriers::patterns::{binary_tree, dissemination, dissemination_plan, linear};
use hpm_barriers::sss::sss_clusters;
use hpm_bsplib::bench::bspbench;
use hpm_bsplib::inprod::bspinprod;
use hpm_bsplib::runtime::BspConfig;
use hpm_collectives::exec::run_allreduce;
use hpm_collectives::pattern::catalog;
use hpm_collectives::predict::{predict_collective, simulate_collective};
use hpm_core::classic::ClassicBsp;
use hpm_core::pattern::{BarrierPattern, CommPattern};
use hpm_core::predictor::{predict_barrier, predict_compiled_with, PayloadSchedule};
use hpm_core::superstep::SuperstepModel;
use hpm_kernels::blas1::Axpy;
use hpm_kernels::harness::{profile_kernel, BenchConfig, WallClock};
use hpm_kernels::kernel::Kernel;
use hpm_kernels::rate::{opteron_core, xeon_core, ProcessorModel};
use hpm_kernels::stencil::Stencil5;
use hpm_kernels::{blas1_suite, harness::BatchTimer};
use hpm_simnet::barrier::BarrierSim;
use hpm_simnet::microbench::{
    bench_platform, bench_platform_classes, ClassCosts, MicrobenchConfig, PlatformProfile,
};
use hpm_simnet::params::{opteron_cluster_params, xeon_cluster_params, PlatformParams};
use hpm_stats::quantile::median;
use hpm_stencil::bsp::{run_bsp_stencil, CommitDiscipline};
use hpm_stencil::configs::{render_table_8_1, LARGE_N, SMALL_N};
use hpm_stencil::hybrid::run_hybrid_stencil;
use hpm_stencil::mpi::{run_mpi_stencil, MpiVariant};
use hpm_stencil::overlap_opt::optimize_ghost_width;
use hpm_stencil::predictor::predict_bsp_iteration;
use hpm_topology::{
    cluster_10x2x6, cluster_128x2x4, cluster_12x2x6, cluster_32x2x4, cluster_512x2x4,
    cluster_8x2x4, Placement, PlacementPolicy,
};

const SEED: u64 = 20121116; // thesis submission month

/// Runs one closure per sweep point on the [`hpm_par`] fan-out,
/// collecting results in point order.
///
/// Every simulated sweep point below is independent and derives its RNG
/// streams from `SEED` plus its own coordinates (process count, pair
/// index, repetition), so the parallel schedule cannot change a single
/// bit of the CSV output — an equality the workspace enforces with
/// byte-comparison tests. Host-clock experiments (the Ch. 4 figures) stay
/// serial: concurrent timing on shared cores would perturb what they
/// measure.
fn par_points<T: Sync, R: Send>(points: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    hpm_par::par_map_slice(points, |_, t| f(t))
}

/// How hard to work: full figure resolution or a smoke-test subset.
#[derive(Debug, Clone, Copy)]
pub struct Effort {
    /// Process-count stride on the 8×2×4 cluster sweeps.
    pub stride_small: usize,
    /// Process-count stride on the 12×2×6 cluster sweeps.
    pub stride_large: usize,
    /// Barrier repetitions per measured point (thesis: 256).
    pub barrier_reps: usize,
    /// Repetitions for bspinprod medians.
    pub inprod_reps: usize,
    /// Jacobi iterations per stencil timing.
    pub stencil_iters: usize,
    /// Microbenchmark dimensions.
    pub micro: MicrobenchConfig,
    /// Host-clock repetitions for the Ch. 4 experiments.
    pub host_reps: usize,
}

impl Effort {
    /// Figure-resolution settings (what `repro all` uses).
    pub fn standard() -> Effort {
        Effort {
            stride_small: 1,
            stride_large: 3,
            barrier_reps: 64,
            inprod_reps: 5,
            stencil_iters: 4,
            micro: MicrobenchConfig {
                reps: 7,
                max_requests: 4,
                size_exponents: (0, 14),
                pair_sample: None,
            },
            host_reps: 8,
        }
    }

    /// Smoke-test settings (used by integration tests).
    pub fn quick() -> Effort {
        Effort {
            stride_small: 16,
            stride_large: 48,
            barrier_reps: 4,
            inprod_reps: 1,
            stencil_iters: 2,
            micro: MicrobenchConfig {
                reps: 3,
                max_requests: 2,
                size_exponents: (0, 8),
                pair_sample: None,
            },
            host_reps: 2,
        }
    }
}

fn xeon_cfg(p: usize, seed: u64) -> BspConfig {
    BspConfig::new(
        xeon_cluster_params(),
        Placement::new(cluster_8x2x4(), PlacementPolicy::RoundRobin, p),
        xeon_core(),
        seed,
    )
}

fn profile_of(params: &PlatformParams, placement: &Placement, effort: &Effort) -> PlatformProfile {
    bench_platform(params, placement, &effort.micro, SEED)
}

fn std_patterns(p: usize) -> Vec<(&'static str, BarrierPattern)> {
    vec![
        ("D", dissemination(p)),
        ("T", binary_tree(p)),
        ("L", linear(p, 0)),
    ]
}

// ---------------------------------------------------------------- Ch. 3

/// Table 3.1: BSPBench parameter values on the 8-way 2×4-core cluster.
pub fn table3_1(dir: &Path, effort: &Effort) -> Vec<PathBuf> {
    let mut t = CsvTable::new(&["P", "r_mflops", "g_flops", "l_flops"]);
    let ps: Vec<usize> = (8..=64).step_by(8.max(effort.stride_small * 8)).collect();
    for row in par_points(&ps, |&p| {
        let r = bspbench(&xeon_cfg(p, SEED));
        vec![
            p.to_string(),
            format!("{:.3}", r.r / 1e6),
            format!("{:.1}", r.g),
            format!("{:.1}", r.l),
        ]
    }) {
        t.push(row);
    }
    vec![write_csv(dir, "table3_1", &t)]
}

/// Fig. 3.2: inner product timings vs classic BSP estimates.
pub fn fig3_2(dir: &Path, effort: &Effort) -> Vec<PathBuf> {
    let n = 100_000_000u64;
    let mut t = CsvTable::new(&["P", "measured_s", "bsp_estimate_s"]);
    let ps: Vec<usize> = (8..=64).step_by(8.max(effort.stride_small * 8)).collect();
    for row in par_points(&ps, |&p| {
        let bench = bspbench(&xeon_cfg(p, SEED));
        let classic = ClassicBsp::new(p, bench.r, bench.g, bench.l);
        let measured = bspinprod(&xeon_cfg(p, SEED + 1), n, effort.inprod_reps);
        vec![
            p.to_string(),
            fmt(measured.seconds),
            fmt(classic.inner_product_seconds(n)),
        ]
    }) {
        t.push(row);
    }
    vec![write_csv(dir, "fig3_2", &t)]
}

// ---------------------------------------------------------------- Ch. 4
// These run against the host wall clock: they are the genuinely measured
// part of the reproduction.

/// Fig. 4.2: bspbench-style computation rates vs vector size (host).
pub fn fig4_2(dir: &Path, effort: &Effort) -> Vec<PathBuf> {
    let mut t = CsvTable::new(&["vector_size", "mflops"]);
    let mut timer = WallClock::default();
    for e in 0..=10u32 {
        let n = 1usize << e;
        let mut state = Axpy.alloc(n);
        let reps = (1 << 22) / n.max(1) as u64 + 1;
        let samples: Vec<f64> = (0..effort.host_reps)
            .map(|_| timer.time_batch(&Axpy, &mut state, reps))
            .collect();
        let secs = median(&samples) / reps as f64;
        t.push(vec![
            n.to_string(),
            format!("{:.2}", Axpy.flops(n) / secs / 1e6),
        ]);
    }
    vec![write_csv(dir, "fig4_2", &t)]
}

/// Figs. 4.3/4.4: per-kernel predictions vs actual host time, and the
/// relative misprediction, for DAXPY and the 5-point stencil at 1024
/// elements.
pub fn fig4_3_4_4(dir: &Path, effort: &Effort) -> Vec<PathBuf> {
    let cfg = BenchConfig {
        n: 1024,
        samples: effort.host_reps.max(4),
        confidence: 0.95,
        max_passes: 4,
        iter_exponents: (2, 10),
    };
    let kernels: Vec<(&str, Box<dyn Kernel>)> =
        vec![("D", Box::new(Axpy)), ("5P", Box::new(Stencil5))];
    let mut pred = CsvTable::new(&["iterations", "D_pred", "D_act", "5P_pred", "5P_act"]);
    let mut rel = CsvTable::new(&["iterations", "D_rel", "5P_rel"]);
    let profiles: Vec<_> = kernels
        .iter()
        .map(|(_, k)| profile_kernel(k.as_ref(), &cfg))
        .collect();
    let mut timer = WallClock::default();
    let exps: Vec<u32> = (2..=18).step_by(2).collect();
    for &e in &exps {
        let iters = 1u64 << e;
        let mut row = vec![iters.to_string()];
        let mut rrow = vec![iters.to_string()];
        for ((_, k), prof) in kernels.iter().zip(profiles.iter()) {
            let mut state = k.alloc(1024);
            let actual = timer.time_batch(k.as_ref(), &mut state, iters);
            let predicted = prof.predict(iters);
            row.push(fmt(predicted));
            row.push(fmt(actual));
            rrow.push(format!("{:.4}", (predicted - actual).abs() / actual));
        }
        pred.push(row);
        rel.push(rrow);
    }
    vec![
        write_csv(dir, "fig4_3", &pred),
        write_csv(dir, "fig4_4", &rel),
    ]
}

fn blas_sweep(dir: &Path, name: &str, sizes: &[usize], reps: usize) -> PathBuf {
    let suite = blas1_suite();
    let mut header: Vec<String> = vec!["bytes".into()];
    header.extend(suite.iter().map(|k| k.name().to_string()));
    let mut t = CsvTable {
        header,
        rows: Vec::new(),
    };
    let mut timer = WallClock::default();
    for &n in sizes {
        // Report the footprint of the two-vector kernels for the x axis;
        // per-kernel footprints differ (scal touches one vector), which is
        // exactly the comparability the byte metric provides (§4.2).
        let mut row = vec![(2 * n * 8).to_string()];
        for k in &suite {
            let mut state = k.alloc(n);
            let inner = (1usize << 22) / n.max(1) + 1;
            let samples: Vec<f64> = (0..reps)
                .map(|_| timer.time_batch(k.as_ref(), &mut state, inner as u64) / inner as f64)
                .collect();
            row.push(fmt(median(&samples)));
        }
        t.push(row);
    }
    write_csv(dir, name, &t)
}

/// Fig. 4.5: L1 BLAS timings for in-cache problem sizes (host).
pub fn fig4_5(dir: &Path, effort: &Effort) -> Vec<PathBuf> {
    let sizes: Vec<usize> = (1..=8).map(|k| k * 512).collect(); // ≤ 64 KiB
    vec![blas_sweep(dir, "fig4_5", &sizes, effort.host_reps)]
}

/// Fig. 4.6: L1 BLAS timings through and past the cache knee (host).
pub fn fig4_6(dir: &Path, effort: &Effort) -> Vec<PathBuf> {
    let sizes: Vec<usize> = (1..=10).map(|k| k * 3200).collect(); // to 512 KB
    vec![blas_sweep(dir, "fig4_6", &sizes, effort.host_reps)]
}

// ---------------------------------------------------------------- Ch. 5

/// Figs. 5.2–5.4: the 4-process barrier patterns in matrix form.
pub fn fig5_2_3_4(dir: &Path, _effort: &Effort) -> Vec<PathBuf> {
    let mut text = String::new();
    for (label, pat) in [
        ("Fig 5.2: linear", linear(4, 0)),
        ("Fig 5.3: dissemination", dissemination(4)),
        ("Fig 5.4: binary tree", binary_tree(4)),
    ] {
        text.push_str(&format!("{label}\n{}\n", pat.render()));
    }
    vec![write_text(dir, "fig5_2_3_4", &text)]
}

/// Shared sweep for Figs. 5.6–5.9 / 5.10–5.13: measured and predicted
/// barrier timings with absolute and relative error columns.
fn barrier_sweep(
    dir: &Path,
    prefix: &str,
    params: &PlatformParams,
    shape: hpm_topology::ClusterShape,
    stride: usize,
    effort: &Effort,
) -> Vec<PathBuf> {
    let max = shape.total_cores();
    let mut measured = CsvTable::new(&["P", "D", "T", "L"]);
    let mut predicted = CsvTable::new(&["P", "D", "T", "L"]);
    let mut abs_err = CsvTable::new(&["P", "D", "T", "L"]);
    let mut rel_err = CsvTable::new(&["P", "D", "T", "L"]);
    let ps: Vec<usize> = (2..=max).step_by(stride).collect();
    for (m_row, p_row, a_row, r_row) in par_points(&ps, |&p| {
        let placement = Placement::new(shape, PlacementPolicy::RoundRobin, p);
        let profile = profile_of(params, &placement, effort);
        let sim = BarrierSim::new(params, &placement);
        let mut m_row = vec![p.to_string()];
        let mut p_row = vec![p.to_string()];
        let mut a_row = vec![p.to_string()];
        let mut r_row = vec![p.to_string()];
        for (_, pat) in std_patterns(p) {
            let meas = sim
                .measure(&pat, &PayloadSchedule::none(), effort.barrier_reps, SEED)
                .mean();
            let pred = predict_barrier(&pat, &profile.costs, &PayloadSchedule::none()).total;
            m_row.push(fmt(meas));
            p_row.push(fmt(pred));
            a_row.push(fmt(pred - meas));
            r_row.push(format!("{:.4}", (pred - meas) / meas));
        }
        (m_row, p_row, a_row, r_row)
    }) {
        measured.push(m_row);
        predicted.push(p_row);
        abs_err.push(a_row);
        rel_err.push(r_row);
    }
    vec![
        write_csv(dir, &format!("{prefix}_measured"), &measured),
        write_csv(dir, &format!("{prefix}_predicted"), &predicted),
        write_csv(dir, &format!("{prefix}_abs_error"), &abs_err),
        write_csv(dir, &format!("{prefix}_rel_error"), &rel_err),
    ]
}

/// Figs. 5.6–5.9 on the 8×2×4 cluster.
pub fn fig5_6_to_5_9(dir: &Path, effort: &Effort) -> Vec<PathBuf> {
    barrier_sweep(
        dir,
        "fig5_6to9_8x2x4",
        &xeon_cluster_params(),
        cluster_8x2x4(),
        effort.stride_small,
        effort,
    )
}

/// Figs. 5.10–5.13 on the 12×2×6 cluster.
pub fn fig5_10_to_5_13(dir: &Path, effort: &Effort) -> Vec<PathBuf> {
    barrier_sweep(
        dir,
        "fig5_10to13_12x2x6",
        &opteron_cluster_params(),
        cluster_12x2x6(),
        effort.stride_large,
        effort,
    )
}

// ---------------------------------------------------------------- Ch. 6

fn bsp_sync_sweep(
    dir: &Path,
    name: &str,
    params: &PlatformParams,
    shape: hpm_topology::ClusterShape,
    stride: usize,
    effort: &Effort,
) -> Vec<PathBuf> {
    let mut t = CsvTable::new(&["P", "measured_s", "estimate_s"]);
    let ps: Vec<usize> = (2..=shape.total_cores()).step_by(stride).collect();
    for row in par_points(&ps, |&p| {
        let placement = Placement::new(shape, PlacementPolicy::RoundRobin, p);
        let profile = profile_of(params, &placement, effort);
        let sim = BarrierSim::new(params, &placement);
        let pat = dissemination(p);
        let payload = PayloadSchedule::dissemination_count_map(p);
        let meas = sim
            .measure(&pat, &payload, effort.barrier_reps, SEED)
            .mean();
        let est = predict_barrier(&pat, &profile.costs, &payload).total;
        vec![p.to_string(), fmt(meas), fmt(est)]
    }) {
        t.push(row);
    }
    vec![write_csv(dir, name, &t)]
}

/// Fig. 6.3: BSP sync (barrier + count-map payload) on the 8×2×4 cluster.
pub fn fig6_3(dir: &Path, effort: &Effort) -> Vec<PathBuf> {
    bsp_sync_sweep(
        dir,
        "fig6_3",
        &xeon_cluster_params(),
        cluster_8x2x4(),
        effort.stride_small,
        effort,
    )
}

/// Fig. 6.4: the same on the 12×2×6 cluster.
pub fn fig6_4(dir: &Path, effort: &Effort) -> Vec<PathBuf> {
    bsp_sync_sweep(
        dir,
        "fig6_4",
        &opteron_cluster_params(),
        cluster_12x2x6(),
        effort.stride_large,
        effort,
    )
}

// ---------------------------------------------------------------- Ch. 7

fn sss_table(
    dir: &Path,
    name: &str,
    params: &PlatformParams,
    shape: hpm_topology::ClusterShape,
    p: usize,
    effort: &Effort,
) -> Vec<PathBuf> {
    let placement = Placement::new(shape, PlacementPolicy::RoundRobin, p);
    let profile = profile_of(params, &placement, effort);
    let clustering = sss_clusters(&profile.costs.l);
    let mut t = CsvTable::new(&["subset", "size", "representative"]);
    for (k, g) in clustering.groups.iter().enumerate() {
        t.push(vec![k.to_string(), g.len().to_string(), g[0].to_string()]);
    }
    vec![
        write_csv(dir, name, &t),
        write_text(dir, &format!("{name}_detail"), &clustering.render()),
    ]
}

/// Table 7.1: SSS clustering of 60 processes on the 8×2×4 machine.
pub fn table7_1(dir: &Path, effort: &Effort) -> Vec<PathBuf> {
    sss_table(
        dir,
        "table7_1",
        &xeon_cluster_params(),
        cluster_8x2x4(),
        60,
        effort,
    )
}

/// Table 7.2: SSS clustering of 115 processes on the 10×2×6 machine.
pub fn table7_2(dir: &Path, effort: &Effort) -> Vec<PathBuf> {
    sss_table(
        dir,
        "table7_2",
        &opteron_cluster_params(),
        cluster_10x2x6(),
        115,
        effort,
    )
}

fn hybrid_sweep(
    dir: &Path,
    name: &str,
    params: &PlatformParams,
    shape: hpm_topology::ClusterShape,
    stride: usize,
    effort: &Effort,
) -> Vec<PathBuf> {
    let mut t = CsvTable::new(&["P", "D", "T", "L", "hybrid"]);
    let ps: Vec<usize> = (4..=shape.total_cores()).step_by(stride).collect();
    for row in par_points(&ps, |&p| {
        let placement = Placement::new(shape, PlacementPolicy::RoundRobin, p);
        let profile = profile_of(params, &placement, effort);
        let sim = BarrierSim::new(params, &placement);
        let mut row = vec![p.to_string()];
        for (_, pat) in std_patterns(p) {
            row.push(fmt(sim
                .measure(&pat, &PayloadSchedule::none(), effort.barrier_reps, SEED)
                .mean()));
        }
        let clustering = sss_clusters(&profile.costs.l);
        let hybrid = if clustering.len() > 1 && clustering.len() < p {
            flat_dissemination_hybrid(p, &clustering.groups)
        } else {
            dissemination(p)
        };
        row.push(fmt(sim
            .measure(&hybrid, &PayloadSchedule::none(), effort.barrier_reps, SEED)
            .mean()));
        row
    }) {
        t.push(row);
    }
    vec![write_csv(dir, name, &t)]
}

/// Fig. 7.4: hybrid barrier vs defaults on the 8×2×4 cluster.
pub fn fig7_4(dir: &Path, effort: &Effort) -> Vec<PathBuf> {
    hybrid_sweep(
        dir,
        "fig7_4",
        &xeon_cluster_params(),
        cluster_8x2x4(),
        effort.stride_small.max(2),
        effort,
    )
}

/// Fig. 7.5: hybrid barrier vs defaults on the 12×2×6 cluster.
pub fn fig7_5(dir: &Path, effort: &Effort) -> Vec<PathBuf> {
    hybrid_sweep(
        dir,
        "fig7_5",
        &opteron_cluster_params(),
        cluster_12x2x6(),
        effort.stride_large,
        effort,
    )
}

fn adapted_sweep(
    dir: &Path,
    name: &str,
    params: &PlatformParams,
    shape: hpm_topology::ClusterShape,
    stride: usize,
    effort: &Effort,
) -> Vec<PathBuf> {
    let mut t = CsvTable::new(&["P", "adapted_meas", "best_default_meas", "adapted_pred"]);
    let ps: Vec<usize> = (4..=shape.total_cores()).step_by(stride).collect();
    for row in par_points(&ps, |&p| {
        let placement = Placement::new(shape, PlacementPolicy::RoundRobin, p);
        let profile = profile_of(params, &placement, effort);
        let sim = BarrierSim::new(params, &placement);
        let report = greedy_adaptive_barrier(&profile.costs);
        let adapted = sim
            .measure(
                &report.pattern,
                &PayloadSchedule::none(),
                effort.barrier_reps,
                SEED,
            )
            .mean();
        let best_default = std_patterns(p)
            .into_iter()
            .map(|(_, pat)| {
                sim.measure(&pat, &PayloadSchedule::none(), effort.barrier_reps, SEED)
                    .mean()
            })
            .fold(f64::INFINITY, f64::min);
        vec![
            p.to_string(),
            fmt(adapted),
            fmt(best_default),
            fmt(report.predicted_total),
        ]
    }) {
        t.push(row);
    }
    vec![write_csv(dir, name, &t)]
}

/// Fig. 7.6: greedy adapted barrier vs the best default, 8×2×4.
pub fn fig7_6(dir: &Path, effort: &Effort) -> Vec<PathBuf> {
    adapted_sweep(
        dir,
        "fig7_6",
        &xeon_cluster_params(),
        cluster_8x2x4(),
        effort.stride_small.max(4),
        effort,
    )
}

/// Fig. 7.7: greedy adapted barrier vs the best default, 12×2×6.
pub fn fig7_7(dir: &Path, effort: &Effort) -> Vec<PathBuf> {
    adapted_sweep(
        dir,
        "fig7_7",
        &opteron_cluster_params(),
        cluster_12x2x6(),
        effort.stride_large.max(12),
        effort,
    )
}

// ---------------------------------------------------------------- Ch. 8

/// Table 8.1: the experimental configurations.
pub fn table8_1(dir: &Path, _effort: &Effort) -> Vec<PathBuf> {
    vec![write_text(dir, "table8_1", &render_table_8_1())]
}

fn stencil_p_set() -> Vec<usize> {
    vec![4, 8, 16, 32, 64]
}

/// Table 8.2: MPI and MPI+R wall times, large problem, 8×2×4 cluster.
pub fn table8_2(dir: &Path, effort: &Effort) -> Vec<PathBuf> {
    let params = xeon_cluster_params();
    let model = xeon_core();
    let mut t = CsvTable::new(&["P", "MPI_s_per_iter", "MPI+R_s_per_iter"]);
    for row in par_points(&stencil_p_set(), |&p| {
        let placement = Placement::new(cluster_8x2x4(), PlacementPolicy::RoundRobin, p);
        let mpi = run_mpi_stencil(
            &params,
            &placement,
            &model,
            LARGE_N,
            effort.stencil_iters,
            MpiVariant::Blocking2Stage,
            1.0,
            SEED,
        );
        let mpir = run_mpi_stencil(
            &params,
            &placement,
            &model,
            LARGE_N,
            effort.stencil_iters,
            MpiVariant::EarlyRequests,
            1.0,
            SEED,
        );
        vec![p.to_string(), fmt(mpi.mean_iter()), fmt(mpir.mean_iter())]
    }) {
        t.push(row);
    }
    vec![write_csv(dir, "table8_2", &t)]
}

fn scaling_table(dir: &Path, name: &str, n: usize, impls: &[&str], effort: &Effort) -> PathBuf {
    let params = xeon_cluster_params();
    let model = xeon_core();
    let mut header = vec!["P".to_string()];
    header.extend(impls.iter().map(|s| s.to_string()));
    let mut t = CsvTable {
        header,
        rows: Vec::new(),
    };
    for row in par_points(&stencil_p_set(), |&p| {
        let placement = Placement::new(cluster_8x2x4(), PlacementPolicy::RoundRobin, p);
        let mut row = vec![p.to_string()];
        for &im in impls {
            let time = match im {
                "BSP-hp" => run_bsp_stencil(
                    &xeon_cfg(p, SEED),
                    n,
                    effort.stencil_iters,
                    CommitDiscipline::EarlyUnbuffered,
                    false,
                )
                .mean_iter(),
                "BSP-buf" => run_bsp_stencil(
                    &xeon_cfg(p, SEED),
                    n,
                    effort.stencil_iters,
                    CommitDiscipline::EarlyBuffered,
                    false,
                )
                .mean_iter(),
                "BSP-late" => run_bsp_stencil(
                    &xeon_cfg(p, SEED),
                    n,
                    effort.stencil_iters,
                    CommitDiscipline::Late,
                    false,
                )
                .mean_iter(),
                "MPI" => run_mpi_stencil(
                    &params,
                    &placement,
                    &model,
                    n,
                    effort.stencil_iters,
                    MpiVariant::Blocking2Stage,
                    1.0,
                    SEED,
                )
                .mean_iter(),
                "MPI+R" => run_mpi_stencil(
                    &params,
                    &placement,
                    &model,
                    n,
                    effort.stencil_iters,
                    MpiVariant::EarlyRequests,
                    1.0,
                    SEED,
                )
                .mean_iter(),
                "Hybrid" => {
                    if p % cluster_8x2x4().cores_per_node() == 0 {
                        run_hybrid_stencil(
                            &params,
                            cluster_8x2x4(),
                            &model,
                            n,
                            effort.stencil_iters,
                            p,
                            SEED,
                        )
                        .mean_iter()
                    } else {
                        f64::NAN // hybrid uses whole nodes only
                    }
                }
                other => panic!("unknown implementation {other}"),
            };
            row.push(if time.is_nan() {
                String::new()
            } else {
                fmt(time)
            });
        }
        row
    }) {
        t.push(row);
    }
    write_csv(dir, name, &t)
}

/// Fig. 8.4 (A1): all implementations, large problem.
pub fn fig8_4(dir: &Path, effort: &Effort) -> Vec<PathBuf> {
    vec![scaling_table(
        dir,
        "fig8_4_A1",
        LARGE_N,
        &["BSP-hp", "BSP-buf", "BSP-late", "MPI", "MPI+R", "Hybrid"],
        effort,
    )]
}

/// Fig. 8.5 (A2): BSP implementations only, large problem.
pub fn fig8_5(dir: &Path, effort: &Effort) -> Vec<PathBuf> {
    vec![scaling_table(
        dir,
        "fig8_5_A2",
        LARGE_N,
        &["BSP-hp", "BSP-buf", "BSP-late"],
        effort,
    )]
}

/// Fig. 8.6 (A3): selected implementations, small problem.
pub fn fig8_6(dir: &Path, effort: &Effort) -> Vec<PathBuf> {
    vec![scaling_table(
        dir,
        "fig8_6_A3",
        SMALL_N,
        &["BSP-hp", "MPI", "MPI+R"],
        effort,
    )]
}

/// Fig. 8.7 (A4): selected implementations including hybrid, small
/// problem.
pub fn fig8_7(dir: &Path, effort: &Effort) -> Vec<PathBuf> {
    vec![scaling_table(
        dir,
        "fig8_7_A4",
        SMALL_N,
        &["BSP-hp", "MPI+R", "Hybrid"],
        effort,
    )]
}

/// The B-series: prediction vs measurement for the BSP stencil.
#[allow(clippy::too_many_arguments)]
fn prediction_sweep(
    dir: &Path,
    name: &str,
    params: &PlatformParams,
    shape: hpm_topology::ClusterShape,
    model: &ProcessorModel,
    n: usize,
    discipline: CommitDiscipline,
    effort: &Effort,
) -> PathBuf {
    let mut t = CsvTable::new(&["P", "predicted_s", "measured_s"]);
    let ps: Vec<usize> = stencil_p_set()
        .into_iter()
        .filter(|&p| p <= shape.total_cores())
        .collect();
    for row in par_points(&ps, |&p| {
        let placement = Placement::new(shape, PlacementPolicy::RoundRobin, p);
        let profile = profile_of(params, &placement, effort);
        let base = predict_bsp_iteration(&profile, model, &placement, n);
        let predicted = match discipline {
            CommitDiscipline::Late => {
                // No overlap exposed: the sequential composition of the
                // same terms.
                SuperstepModel::without_overlap(
                    base.model.comp.clone(),
                    base.model.comm.clone(),
                    base.sync,
                )
                .total()
            }
            _ => base.total,
        };
        let cfg = BspConfig::new(params.clone(), placement, model.clone(), SEED);
        let measured =
            run_bsp_stencil(&cfg, n, effort.stencil_iters, discipline, false).mean_iter();
        vec![p.to_string(), fmt(predicted), fmt(measured)]
    }) {
        t.push(row);
    }
    write_csv(dir, name, &t)
}

/// Figs. 8.10–8.15 (B1–B6).
pub fn fig8_10_to_8_15(dir: &Path, effort: &Effort) -> Vec<PathBuf> {
    let xeon = xeon_cluster_params();
    let opteron = opteron_cluster_params();
    vec![
        prediction_sweep(
            dir,
            "fig8_10_B1",
            &xeon,
            cluster_8x2x4(),
            &xeon_core(),
            LARGE_N,
            CommitDiscipline::EarlyUnbuffered,
            effort,
        ),
        prediction_sweep(
            dir,
            "fig8_11_B2",
            &xeon,
            cluster_8x2x4(),
            &xeon_core(),
            SMALL_N,
            CommitDiscipline::EarlyUnbuffered,
            effort,
        ),
        prediction_sweep(
            dir,
            "fig8_12_B3",
            &opteron,
            cluster_12x2x6(),
            &opteron_core(),
            LARGE_N,
            CommitDiscipline::EarlyUnbuffered,
            effort,
        ),
        prediction_sweep(
            dir,
            "fig8_13_B4",
            &opteron,
            cluster_12x2x6(),
            &opteron_core(),
            SMALL_N,
            CommitDiscipline::EarlyUnbuffered,
            effort,
        ),
        prediction_sweep(
            dir,
            "fig8_14_B5",
            &xeon,
            cluster_8x2x4(),
            &xeon_core(),
            LARGE_N,
            CommitDiscipline::Late,
            effort,
        ),
        prediction_sweep(
            dir,
            "fig8_15_B6",
            &xeon,
            cluster_8x2x4(),
            &xeon_core(),
            SMALL_N,
            CommitDiscipline::Late,
            effort,
        ),
    ]
}

/// Fig. 8.18 (C1): predicted vs measured per-iteration time across ghost
/// widths, with the model-selected optimum.
pub fn fig8_18(dir: &Path, effort: &Effort) -> Vec<PathBuf> {
    let params = xeon_cluster_params();
    let placement = Placement::new(cluster_8x2x4(), PlacementPolicy::RoundRobin, 64);
    let profile = profile_of(&params, &placement, effort);
    let sweep = optimize_ghost_width(
        &params,
        &profile,
        &xeon_core(),
        &placement,
        SMALL_N,
        &[1, 2, 3, 4, 6, 8],
        SEED,
    );
    let mut t = CsvTable::new(&["ghost_width", "predicted_s_per_iter", "measured_s_per_iter"]);
    for (k, &w) in sweep.widths.iter().enumerate() {
        t.push(vec![
            w.to_string(),
            fmt(sweep.predicted[k]),
            fmt(sweep.measured[k]),
        ]);
    }
    let note = format!(
        "model-selected width: {}\nmeasured optimum:     {}\n",
        sweep.best_predicted(),
        sweep.best_measured()
    );
    vec![
        write_csv(dir, "fig8_18_C1", &t),
        write_text(dir, "fig8_18_C1_optimum", &note),
    ]
}

// ---------------------------------------------------- collectives (ext.)

/// Predicted vs simulated collective-operation costs across topologies —
/// the collectives extension of the Ch. 5/6 validation: the same
/// microbenchmark → predict → simulate → compare pipeline as the barrier
/// sweeps, applied to the full collective catalog on a homogeneous
/// single-socket placement, a heterogeneous two-node placement and the
/// full multi-node cluster, on both test machines.
pub fn collectives_predict_vs_sim(dir: &Path, effort: &Effort) -> Vec<PathBuf> {
    let bytes = 1024u64;
    let mut t = CsvTable::new(&[
        "machine",
        "topology",
        "P",
        "collective",
        "predicted_s",
        "simulated_s",
        "rel_err",
    ]);
    let machines: [(&str, PlatformParams, hpm_topology::ClusterShape); 2] = [
        ("xeon-8x2x4", xeon_cluster_params(), cluster_8x2x4()),
        ("opteron-12x2x6", opteron_cluster_params(), cluster_12x2x6()),
    ];
    // One fan-out unit per (machine, topology) case; each case expands to
    // one row per collective in catalog order, flattened back in case
    // order so the CSV is byte-identical to the serial nesting.
    let cases: Vec<(
        &str,
        &PlatformParams,
        hpm_topology::ClusterShape,
        &str,
        usize,
    )> = machines
        .iter()
        .flat_map(|(machine, params, shape)| {
            let cpn = shape.cores_per_node();
            [
                ("homogeneous-1socket", shape.cores_per_socket()),
                ("heterogeneous-2node", 2 * cpn),
                ("multi-cluster", shape.total_cores()),
            ]
            .map(move |(topology, p)| (*machine, params, *shape, topology, p))
        })
        .collect();
    for rows in par_points(&cases, |&(machine, params, shape, topology, p)| {
        let placement = Placement::new(shape, PlacementPolicy::RoundRobin, p);
        let profile = profile_of(params, &placement, effort);
        catalog(p, 0, bytes)
            .into_iter()
            .map(|pat| {
                let pred = predict_collective(&pat, &profile.costs).total;
                let sim =
                    simulate_collective(&pat, params, &placement, effort.barrier_reps, SEED).mean();
                vec![
                    machine.to_string(),
                    topology.to_string(),
                    p.to_string(),
                    pat.name().to_string(),
                    fmt(pred),
                    fmt(sim),
                    format!("{:.4}", (pred - sim) / sim),
                ]
            })
            .collect::<Vec<_>>()
    }) {
        for row in rows {
            t.push(row);
        }
    }
    vec![write_csv(dir, "collectives_predict_vs_sim", &t)]
}

/// Allreduce through the full BSPlib runtime (real payload, count-map
/// sync, background transfers) vs the pattern-level prediction — the
/// end-to-end counterpart of `collectives_predict_vs_sim`.
pub fn collectives_runtime(dir: &Path, effort: &Effort) -> Vec<PathBuf> {
    let params = xeon_cluster_params();
    let n = 4096; // 32 KiB vector
    let mut t = CsvTable::new(&["P", "runtime_s", "pattern_pred_s", "supersteps"]);
    let max = cluster_8x2x4().total_cores();
    let mut ps: Vec<usize> = (2..=max).step_by(effort.stride_small.max(6)).collect();
    if ps.last() != Some(&max) {
        ps.push(max); // always include the full machine
    }
    for row in par_points(&ps, |&p| {
        let placement = Placement::new(cluster_8x2x4(), PlacementPolicy::RoundRobin, p);
        let profile = profile_of(&params, &placement, effort);
        let cfg = BspConfig::new(params.clone(), placement, xeon_core(), SEED);
        let run = run_allreduce(&cfg, n);
        let pred = predict_collective(
            &hpm_collectives::pattern::allreduce(p, 8 * n as u64),
            &profile.costs,
        )
        .total;
        vec![
            p.to_string(),
            fmt(run.total_time),
            fmt(pred),
            run.supersteps.to_string(),
        ]
    }) {
        t.push(row);
    }
    vec![write_csv(dir, "collectives_runtime", &t)]
}

// ---------------------------------------------------- scale runs (ext.)

/// Ordered pairs measured per link class on the scale path.
const SCALE_PAIR_SAMPLE: usize = 16;

/// The past-p² cases: process count and the cluster hosting it.
fn scale_cases() -> Vec<(hpm_topology::ClusterShape, usize)> {
    vec![
        (cluster_32x2x4(), 256),
        (cluster_128x2x4(), 1024),
        (cluster_512x2x4(), 4096),
    ]
}

/// Scale extension: the microbenchmark → predict → simulate pipeline at
/// p ∈ {256, 1024, 4096} with no O(p²) structure anywhere — sampled
/// stratified microbenchmarks ([`bench_platform_classes`]), the
/// per-class cost model ([`ClassCosts`]), the sparse-authored
/// dissemination plan and the flat simulator. The thesis stops at 144
/// processes because its clusters do; this run shows the model pipeline
/// itself no longer does.
pub fn scale_p(dir: &Path, effort: &Effort) -> Vec<PathBuf> {
    let params = xeon_cluster_params();
    let mut t = CsvTable::new(&[
        "P",
        "sampled_pairs",
        "simulated_s",
        "predicted_s",
        "rel_err",
    ]);
    for row in par_points(&scale_cases(), |&(shape, p)| {
        let placement = Placement::new(shape, PlacementPolicy::RoundRobin, p);
        let micro = effort.micro.with_pair_sample(SCALE_PAIR_SAMPLE);
        let profile = bench_platform_classes(&params, &placement, &micro, SEED);
        let costs = ClassCosts::new(&placement, profile);
        let plan = dissemination_plan(p);
        let sim = BarrierSim::new(&params, &placement);
        let meas = sim
            .measure_compiled(&plan, &PayloadSchedule::none(), effort.barrier_reps, SEED)
            .mean();
        let pred = predict_compiled_with(&plan, &costs, &PayloadSchedule::none()).total;
        vec![
            p.to_string(),
            profile.sampled_pairs.iter().sum::<usize>().to_string(),
            fmt(meas),
            fmt(pred),
            format!("{:.4}", (pred - meas) / meas),
        ]
    }) {
        t.push(row);
    }
    vec![write_csv(dir, "scale_p", &t)]
}

/// Fault-injection robustness sweep (`repro faults`): drop rate ×
/// straggler severity × crash count over the dissemination barrier at
/// p ∈ {64, 256}. Every repetition realizes its faults from streams
/// keyed by `(SEED, rep)` disjoint from the jitter streams, so the CSV
/// is deterministic at any thread count — and the all-zero corner of
/// the grid doubles as a bitwise neutrality witness (inflation exactly
/// 1). Reports per-case completion rate, mean retransmissions,
/// lost/suppressed signal totals and completion-time inflation against
/// the fault-free executor on the same seed.
pub fn faults(dir: &Path, effort: &Effort) -> Vec<PathBuf> {
    use hpm_stats::fault::{DropProb, FaultModel};
    let params = xeon_cluster_params();
    let drops = [0.0, 0.01, 0.05];
    let stragglers = [(0.0, 0.0), (0.1, 1e-4)];
    let crashes = [0usize, 1, 4];
    let mut cases: Vec<(usize, f64, f64, f64, usize)> = Vec::new();
    for &p in &[64usize, 256] {
        for &d in &drops {
            for &(sp, ss) in &stragglers {
                for &c in &crashes {
                    cases.push((p, d, sp, ss, c));
                }
            }
        }
    }
    let reps = effort.barrier_reps;
    let rows = par_points(&cases, |&(p, d, sp, ss, c)| {
        let shape = if p <= 64 {
            cluster_8x2x4()
        } else {
            cluster_32x2x4()
        };
        let placement = Placement::new(shape, PlacementPolicy::RoundRobin, p);
        let plan = dissemination_plan(p);
        let sim = BarrierSim::new(&params, &placement);
        let baseline = sim
            .measure_compiled(&plan, &PayloadSchedule::none(), reps, SEED)
            .mean();
        let fault = FaultModel {
            crash_count: c,
            crash_window: 1e-4,
            drop: DropProb::uniform(d),
            straggler_prob: sp,
            straggler_scale: ss,
            straggler_alpha: 1.5,
            timeout: 2e-4,
            ..FaultModel::NONE
        };
        fault.validate();
        let reports = sim.measure_faulty(&plan, &PayloadSchedule::none(), &fault, reps, SEED);
        let n = reports.len() as f64;
        let completion = reports
            .iter()
            .map(|r| r.completed_count() as f64 / p as f64)
            .sum::<f64>()
            / n;
        let retries = reports.iter().map(|r| r.retries as f64).sum::<f64>() / n;
        let lost: u64 = reports.iter().map(|r| r.lost_signals).sum();
        let suppressed: u64 = reports.iter().map(|r| r.suppressed_signals).sum();
        let mean_total = reports.iter().map(|r| r.total()).sum::<f64>() / n;
        vec![
            p.to_string(),
            d.to_string(),
            sp.to_string(),
            ss.to_string(),
            c.to_string(),
            format!("{completion:.4}"),
            format!("{retries:.2}"),
            lost.to_string(),
            suppressed.to_string(),
            fmt(baseline),
            fmt(mean_total),
            format!("{:.4}", mean_total / baseline),
        ]
    });
    let mut t = CsvTable::new(&[
        "P",
        "drop",
        "straggler_prob",
        "straggler_scale",
        "crashes",
        "completion_rate",
        "mean_retries",
        "lost_signals",
        "suppressed_signals",
        "fault_free_s",
        "faulty_s",
        "inflation",
    ]);
    let mut json = String::from("{\n  \"experiment\": \"faults\",\n  \"cases\": [\n");
    for (k, row) in rows.iter().enumerate() {
        let comma = if k + 1 < rows.len() { "," } else { "" };
        json.push_str(&format!(
            "    {{\"p\": {}, \"drop\": {}, \"straggler_prob\": {}, \"straggler_scale\": {}, \
             \"crashes\": {}, \"completion_rate\": {}, \"mean_retries\": {}, \
             \"inflation\": {}}}{comma}\n",
            row[0], row[1], row[2], row[3], row[4], row[5], row[6], row[11]
        ));
        t.push(row.clone());
    }
    json.push_str("  ]\n}\n");
    vec![
        write_csv(dir, "faults", &t),
        write_file(dir, "BENCH_faults.json", &json),
    ]
}

/// Recovery: the fault grid re-run through the survivor re-planning
/// layer, plus the deterministic registry crash-set sweep.
///
/// Section A (`recovery.csv`) repeats the [`faults`] grid under both
/// recovery policies. `failfast` rows are computed *exactly* like
/// [`faults`] — same model, reps, seed and cell formats — so the
/// zero-crash corner is byte-identical to `faults.csv` (the `repro
/// --check` invariant); `recover` rows run the same repetitions through
/// [`BarrierSim::measure_recovering`] and report post-recovery
/// completion, detection/consensus costs and the recovered-run
/// inflation. Section B (`recovery_registry.csv`) forces every
/// deterministic size-k crash set from [`crate::analyze::crash_sets`]
/// (k ∈ {1, 2}) onto the sparse dissemination plan, records the static
/// [`hpm_analyze::Analyzer::k_crash_coverage`] verdict next to what the
/// recovery layer actually achieved, and prices each repair against the
/// fault-free baseline.
pub fn recovery(dir: &Path, effort: &Effort) -> Vec<PathBuf> {
    use hpm_analyze::Analyzer;
    use hpm_core::knowledge::KnowledgeGoal;
    use hpm_simnet::barrier::BARRIER_JITTER_LABEL;
    use hpm_simnet::recovery::{RecoveryReport, RecoveryScratch};
    use hpm_simnet::{NetState, RankOutcome, SimScratch};
    use hpm_stats::fault::{DropProb, FaultModel, FaultPlan};

    let params = xeon_cluster_params();
    let reps = effort.barrier_reps;

    // ---- Section A: the faults() grid under both policies.
    let drops = [0.0, 0.01, 0.05];
    let stragglers = [(0.0, 0.0), (0.1, 1e-4)];
    let crashes = [0usize, 1, 4];
    let policies = ["failfast", "recover"];
    let mut cases: Vec<(usize, f64, f64, f64, usize, &str)> = Vec::new();
    for &p in &[64usize, 256] {
        for &d in &drops {
            for &(sp, ss) in &stragglers {
                for &c in &crashes {
                    for &pol in &policies {
                        cases.push((p, d, sp, ss, c, pol));
                    }
                }
            }
        }
    }
    let grid_rows = par_points(&cases, |&(p, d, sp, ss, c, pol)| {
        let shape = if p <= 64 {
            cluster_8x2x4()
        } else {
            cluster_32x2x4()
        };
        let placement = Placement::new(shape, PlacementPolicy::RoundRobin, p);
        let plan = dissemination_plan(p);
        let sim = BarrierSim::new(&params, &placement);
        let baseline = sim
            .measure_compiled(&plan, &PayloadSchedule::none(), reps, SEED)
            .mean();
        let fault = FaultModel {
            crash_count: c,
            crash_window: 1e-4,
            drop: DropProb::uniform(d),
            straggler_prob: sp,
            straggler_scale: ss,
            straggler_alpha: 1.5,
            timeout: 2e-4,
            ..FaultModel::NONE
        };
        fault.validate();
        let mut row = vec![
            p.to_string(),
            d.to_string(),
            sp.to_string(),
            ss.to_string(),
            c.to_string(),
            pol.to_string(),
        ];
        if pol == "failfast" {
            // Bitwise the faults() computation: shared corner stays
            // byte-identical to faults.csv.
            let reports = sim.measure_faulty(&plan, &PayloadSchedule::none(), &fault, reps, SEED);
            let n = reports.len() as f64;
            let completion = reports
                .iter()
                .map(|r| r.completed_count() as f64 / p as f64)
                .sum::<f64>()
                / n;
            let retries = reports.iter().map(|r| r.retries as f64).sum::<f64>() / n;
            let lost: u64 = reports.iter().map(|r| r.lost_signals).sum();
            let suppressed: u64 = reports.iter().map(|r| r.suppressed_signals).sum();
            let mean_total = reports.iter().map(|r| r.total()).sum::<f64>() / n;
            row.extend([
                format!("{completion:.4}"),
                format!("{retries:.2}"),
                lost.to_string(),
                suppressed.to_string(),
                fmt(baseline),
                fmt(mean_total),
                format!("{:.4}", mean_total / baseline),
                String::new(),
                String::new(),
                String::new(),
                String::new(),
            ]);
        } else {
            let reports = sim.measure_recovering(
                &plan,
                &PayloadSchedule::none(),
                KnowledgeGoal::AllToAll,
                &fault,
                reps,
                SEED,
            );
            let n = reports.len() as f64;
            let completion = reports
                .iter()
                .map(|r| {
                    r.outcomes
                        .iter()
                        .filter(|o| matches!(o, RankOutcome::Completed(_)))
                        .count() as f64
                        / p as f64
                })
                .sum::<f64>()
                / n;
            let retries = reports
                .iter()
                .map(|r| r.attempt.retries as f64)
                .sum::<f64>()
                / n;
            let lost: u64 = reports.iter().map(|r| r.attempt.lost_signals).sum();
            let suppressed: u64 = reports.iter().map(|r| r.attempt.suppressed_signals).sum();
            let mean_attempt = reports.iter().map(|r| r.attempt.total()).sum::<f64>() / n;
            let mean_total = reports.iter().map(|r| r.total()).sum::<f64>() / n;
            let recovered = reports.iter().filter(|r| r.recovered).count() as f64 / n;
            let detection = reports.iter().map(|r| r.detection_time).sum::<f64>() / n;
            let consensus = reports.iter().map(|r| r.consensus_cost).sum::<f64>() / n;
            row.extend([
                format!("{completion:.4}"),
                format!("{retries:.2}"),
                lost.to_string(),
                suppressed.to_string(),
                fmt(baseline),
                fmt(mean_attempt),
                format!("{:.4}", mean_attempt / baseline),
                format!("{recovered:.4}"),
                fmt(detection),
                fmt(consensus),
                format!("{:.4}", mean_total / baseline),
            ]);
        }
        row
    });
    let mut grid = CsvTable::new(&[
        "P",
        "drop",
        "straggler_prob",
        "straggler_scale",
        "crashes",
        "policy",
        "completion_rate",
        "mean_retries",
        "lost_signals",
        "suppressed_signals",
        "fault_free_s",
        "faulty_s",
        "inflation",
        "recovered_rate",
        "detection_s",
        "consensus_s",
        "recovered_inflation",
    ]);
    for row in &grid_rows {
        grid.push(row.clone());
    }

    // ---- Section B: forced registry crash sets through the recovery
    // layer, one deterministic run each (rep 0).
    let set_stride = effort.stride_small.max(1);
    let mut sweep: Vec<(usize, usize, usize, Vec<usize>)> = Vec::new();
    for &p in &[64usize, 256] {
        for k in [1usize, 2] {
            for (i, set) in crate::analyze::crash_sets(p, k)
                .into_iter()
                .enumerate()
                .filter(|(i, _)| i % set_stride == 0)
            {
                sweep.push((p, k, i, set));
            }
        }
    }
    let sweep_rows = par_points(&sweep, |(p, k, i, set)| {
        let p = *p;
        let shape = if p <= 64 {
            cluster_8x2x4()
        } else {
            cluster_32x2x4()
        };
        let placement = Placement::new(shape, PlacementPolicy::RoundRobin, p);
        let plan = dissemination_plan(p);
        let sim = BarrierSim::new(&params, &placement);
        let baseline = sim
            .measure_compiled(&plan, &PayloadSchedule::none(), 1, SEED)
            .mean();
        let statically_survives = Analyzer::new()
            .k_crash_coverage(&plan, KnowledgeGoal::AllToAll, set)
            .survives();
        let fault = FaultModel {
            timeout: 2e-4,
            ..FaultModel::NONE
        };
        let fplan = FaultPlan::with_crashes(p, placement.shape().nodes(), set);
        let zeros = vec![0.0; p];
        let mut scratch = SimScratch::new(&placement);
        let mut net = NetState::new(&placement);
        let mut rs = RecoveryScratch::new();
        let mut report = RecoveryReport::new(p);
        sim.run_once_recovering_with(
            &plan,
            &PayloadSchedule::none(),
            KnowledgeGoal::AllToAll,
            &fault,
            &fplan,
            &zeros,
            &mut net,
            SEED,
            BARRIER_JITTER_LABEL,
            0,
            &mut scratch,
            &mut rs,
            &mut report,
        );
        let crashed: Vec<String> = set.iter().map(|r| r.to_string()).collect();
        vec![
            format!("dissemination-sparse-p{p}"),
            p.to_string(),
            k.to_string(),
            i.to_string(),
            crashed.join("+"),
            u8::from(statically_survives).to_string(),
            u8::from(report.replanned).to_string(),
            u8::from(report.recovered).to_string(),
            fmt(report.attempt.total()),
            fmt(report.detection_time),
            fmt(report.consensus_cost),
            fmt(report.total()),
            fmt(baseline),
            format!("{:.4}", report.total() / baseline),
        ]
    });
    let mut sweep_t = CsvTable::new(&[
        "pattern",
        "P",
        "k",
        "set",
        "crashed",
        "static_survives",
        "replanned",
        "recovered",
        "attempt_s",
        "detection_s",
        "consensus_s",
        "recovered_s",
        "fault_free_s",
        "inflation",
    ]);
    for row in &sweep_rows {
        sweep_t.push(row.clone());
    }

    let mut json = String::from("{\n  \"experiment\": \"recovery\",\n  \"grid\": [\n");
    for (k, row) in grid_rows.iter().enumerate() {
        let comma = if k + 1 < grid_rows.len() { "," } else { "" };
        let quote = |s: &str| {
            if s.is_empty() {
                "null".to_string()
            } else {
                s.to_string()
            }
        };
        json.push_str(&format!(
            "    {{\"p\": {}, \"drop\": {}, \"straggler_prob\": {}, \"straggler_scale\": {}, \
             \"crashes\": {}, \"policy\": \"{}\", \"completion_rate\": {}, \"inflation\": {}, \
             \"recovered_rate\": {}, \"recovered_inflation\": {}}}{comma}\n",
            row[0],
            row[1],
            row[2],
            row[3],
            row[4],
            row[5],
            row[6],
            row[12],
            quote(&row[13]),
            quote(&row[16]),
        ));
    }
    json.push_str("  ],\n  \"registry\": [\n");
    for (k, row) in sweep_rows.iter().enumerate() {
        let comma = if k + 1 < sweep_rows.len() { "," } else { "" };
        json.push_str(&format!(
            "    {{\"pattern\": \"{}\", \"p\": {}, \"k\": {}, \"crashed\": \"{}\", \
             \"static_survives\": {}, \"replanned\": {}, \"recovered\": {}, \
             \"inflation\": {}}}{comma}\n",
            row[0], row[1], row[2], row[4], row[5], row[6], row[7], row[13],
        ));
    }
    json.push_str("  ]\n}\n");
    vec![
        write_csv(dir, "recovery", &grid),
        write_csv(dir, "recovery_registry", &sweep_t),
        write_file(dir, "BENCH_recovery.json", &json),
    ]
}

// ---------------------------------------------------------------- driver

type ExperimentFn = fn(&Path, &Effort) -> Vec<PathBuf>;

/// Which stochastic engine an experiment's hot loop runs on — reported
/// by `repro --json` so perf-trajectory artifacts are attributable to
/// the path that produced them.
///
/// `"batched"`: simulated experiments whose network stochastics
/// (barrier executor, microbenchmark, background transfers) draw from
/// batch-filled jitter tables; any compute-time jitter rides the scalar
/// cached-pair path. `"host-clock"`: genuinely measured against the
/// host wall clock, no simulated stochastics. `"none"`: deterministic
/// rendering, no stochastics at all.
pub type StochasticPath = &'static str;

/// The full experiment registry: `(id, description, stochastic path,
/// max process count, function)`. The process count is the largest `P`
/// the experiment touches at standard effort (1 for host-clock and
/// rendering experiments with no simulated processes) — reported by
/// `repro --json` so throughput artifacts carry their problem scale.
pub fn registry() -> Vec<(
    &'static str,
    &'static str,
    StochasticPath,
    usize,
    ExperimentFn,
)> {
    vec![
        (
            "table3_1",
            "BSPBench parameter values, 8x2x4 cluster",
            "batched",
            64,
            table3_1,
        ),
        (
            "fig3_2",
            "inner product: timings vs classic BSP estimates",
            "batched",
            64,
            fig3_2,
        ),
        (
            "fig4_2",
            "bspbench computation rates vs vector size (host)",
            "host-clock",
            1,
            fig4_2,
        ),
        (
            "fig4_3",
            "kernel rates and predictions, 2 kernels (host)",
            "host-clock",
            1,
            fig4_3_4_4,
        ),
        (
            "fig4_5",
            "L1 BLAS, in-cache problem sizes (host)",
            "host-clock",
            1,
            fig4_5,
        ),
        (
            "fig4_6",
            "L1 BLAS, out-of-cache problem sizes (host)",
            "host-clock",
            1,
            fig4_6,
        ),
        (
            "fig5_2",
            "4-process barrier patterns in matrix form",
            "none",
            4,
            fig5_2_3_4,
        ),
        (
            "fig5_6",
            "barrier timings/predictions/errors, 8x2x4",
            "batched",
            64,
            fig5_6_to_5_9,
        ),
        (
            "fig5_10",
            "barrier timings/predictions/errors, 12x2x6",
            "batched",
            144,
            fig5_10_to_5_13,
        ),
        (
            "fig6_3",
            "BSP sync measured vs estimate, 8x2x4",
            "batched",
            64,
            fig6_3,
        ),
        (
            "fig6_4",
            "BSP sync measured vs estimate, 12x2x6",
            "batched",
            144,
            fig6_4,
        ),
        (
            "table7_1",
            "SSS clustering, 60 processes on 8x2x4",
            "batched",
            60,
            table7_1,
        ),
        (
            "table7_2",
            "SSS clustering, 115 processes on 10x2x6",
            "batched",
            115,
            table7_2,
        ),
        (
            "fig7_4",
            "hybrid barrier performance, 8x2x4",
            "batched",
            64,
            fig7_4,
        ),
        (
            "fig7_5",
            "hybrid barrier performance, 12x2x6",
            "batched",
            144,
            fig7_5,
        ),
        (
            "fig7_6",
            "greedy adapted barrier, 8x2x4",
            "batched",
            64,
            fig7_6,
        ),
        (
            "fig7_7",
            "greedy adapted barrier, 12x2x6",
            "batched",
            144,
            fig7_7,
        ),
        (
            "table8_1",
            "stencil experimental configurations",
            "none",
            1,
            table8_1,
        ),
        (
            "table8_2",
            "MPI and MPI+R wall times",
            "batched",
            64,
            table8_2,
        ),
        (
            "fig8_4",
            "A1: strong scaling, all implementations",
            "batched",
            64,
            fig8_4,
        ),
        (
            "fig8_5",
            "A2: strong scaling, BSP implementations",
            "batched",
            64,
            fig8_5,
        ),
        (
            "fig8_6",
            "A3: strong scaling, selected, small problem",
            "batched",
            64,
            fig8_6,
        ),
        (
            "fig8_7",
            "A4: strong scaling, incl. hybrid, small problem",
            "batched",
            64,
            fig8_7,
        ),
        (
            "fig8_10",
            "B1-B6: stencil prediction vs measurement",
            "batched",
            144,
            fig8_10_to_8_15,
        ),
        (
            "fig8_18",
            "C1: ghost-width adaptation",
            "batched",
            64,
            fig8_18,
        ),
        (
            "collectives",
            "predicted vs simulated collective costs",
            "batched",
            144,
            collectives_predict_vs_sim,
        ),
        (
            "coll_rt",
            "allreduce through the BSPlib runtime vs prediction",
            "batched",
            64,
            collectives_runtime,
        ),
        (
            "scale",
            "sampled microbench + class model vs sim, p to 4096",
            "batched",
            4096,
            scale_p,
        ),
        (
            "faults",
            "fault injection: drops/stragglers/crashes vs completion",
            "batched",
            256,
            faults,
        ),
        (
            "recovery",
            "survivor re-planning: recovery policies and repair costs",
            "batched",
            256,
            recovery,
        ),
    ]
}

/// Runs one experiment by id; returns the files written.
pub fn run_experiment(id: &str, dir: &Path, effort: &Effort) -> Option<Vec<PathBuf>> {
    registry()
        .into_iter()
        .find(|(name, _, _, _, _)| *name == id)
        .map(|(_, _, _, _, f)| f(dir, effort))
}

/// The stochastic path an experiment runs on, by id.
pub fn stochastic_path(id: &str) -> Option<StochasticPath> {
    registry()
        .into_iter()
        .find(|(name, _, _, _, _)| *name == id)
        .map(|(_, _, path, _, _)| path)
}

/// The largest process count an experiment touches, by id.
pub fn max_procs(id: &str) -> Option<usize> {
    registry()
        .into_iter()
        .find(|(name, _, _, _, _)| *name == id)
        .map(|(_, _, _, p, _)| p)
}
