//! CSV/text output helpers for experiment results.

use std::io::Write;
use std::path::Path;

/// A simple in-memory table destined for one CSV file.
#[derive(Debug, Clone, Default)]
pub struct CsvTable {
    pub header: Vec<String>,
    pub rows: Vec<Vec<String>>,
}

impl CsvTable {
    /// Creates a table with the given column names.
    pub fn new(header: &[&str]) -> CsvTable {
        CsvTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; its arity must match the header.
    pub fn push(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.header.len(), "row arity mismatch");
        self.rows.push(row);
    }

    /// Renders as CSV text.
    pub fn render(&self) -> String {
        let mut out = self.header.join(",");
        out.push('\n');
        for r in &self.rows {
            out.push_str(&r.join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a float compactly for CSV cells.
pub fn fmt(v: f64) -> String {
    format!("{v:.6e}")
}

/// Writes a table to `<dir>/<name>.csv`, creating the directory.
pub fn write_csv(dir: &Path, name: &str, table: &CsvTable) -> std::path::PathBuf {
    std::fs::create_dir_all(dir).expect("create output dir");
    let path = dir.join(format!("{name}.csv"));
    let mut f = std::fs::File::create(&path).expect("create csv");
    f.write_all(table.render().as_bytes()).expect("write csv");
    path
}

/// Writes free text to `<dir>/<name>.txt`.
pub fn write_text(dir: &Path, name: &str, text: &str) -> std::path::PathBuf {
    std::fs::create_dir_all(dir).expect("create output dir");
    let path = dir.join(format!("{name}.txt"));
    std::fs::write(&path, text).expect("write text");
    path
}

/// Writes text to `<dir>/<filename>` verbatim — for artifacts whose
/// extension is part of the contract (e.g. `BENCH_faults.json`).
pub fn write_file(dir: &Path, filename: &str, text: &str) -> std::path::PathBuf {
    std::fs::create_dir_all(dir).expect("create output dir");
    let path = dir.join(filename);
    std::fs::write(&path, text).expect("write file");
    path
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_round_trip() {
        let mut t = CsvTable::new(&["a", "b"]);
        t.push(vec!["1".into(), "2".into()]);
        assert_eq!(t.render(), "a,b\n1,2\n");
    }

    #[test]
    #[should_panic]
    fn arity_mismatch_rejected() {
        CsvTable::new(&["a"]).push(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn writes_files() {
        let dir = std::env::temp_dir().join("hpm-bench-test");
        let mut t = CsvTable::new(&["x"]);
        t.push(vec![fmt(1.5)]);
        let p = write_csv(&dir, "t", &t);
        assert!(p.exists());
        let q = write_text(&dir, "note", "hello");
        assert!(q.exists());
        std::fs::remove_dir_all(&dir).ok();
    }
}
