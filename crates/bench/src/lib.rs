//! # hpm-bench — experiment harness
//!
//! One function per thesis table/figure, each regenerating the artifact's
//! rows/series as CSV (or text) under an output directory. The `repro`
//! binary dispatches on experiment ids; `all` runs everything and is what
//! EXPERIMENTS.md records.
//!
//! Experiment runtimes are kept in check by sampling process counts with
//! small strides and using reduced-but-sound microbenchmark dimensions;
//! both are parameters of [`Effort`].

pub mod analyze;
pub mod experiments;
pub mod output;

pub use experiments::{registry, run_experiment, Effort};
pub use output::{write_csv, write_text, CsvTable};
