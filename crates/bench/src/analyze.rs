//! The static-analysis gate over the experiment registry.
//!
//! `repro analyze` (and the CI `analyze` job behind it) runs the
//! `hpm-analyze` plan analyzer over every communication pattern the
//! experiments execute, each at its registered process count: the
//! barrier family and the eight collectives at the two validation
//! machines' scales (p = 64 Xeon, p = 144 Opteron, the registry's
//! `max_procs` values), the hybrid two-level barrier on its node
//! partition, and the sparse-authored `dissemination_plan` at the scale
//! run's p ∈ {256, 1024, 4096}. Every plan must analyze clean — zero
//! diagnostics, warnings included — before an experiment is allowed to
//! spend simulation time on it.
//!
//! The registry is explicit rather than derived from
//! [`crate::experiments::registry`] because experiments construct
//! patterns internally at many sweep points; this module pins the full
//! set of pattern *shapes* at their *largest* registered scale, which
//! dominates every smaller sweep point of the same constructor.

use hpm_analyze::{Analyzer, Diagnostic};
use hpm_barriers::hybrid::flat_dissemination_hybrid;
use hpm_barriers::{
    all_to_all, binary_tree, dissemination, dissemination_plan, kary_tree, linear, ring,
};
use hpm_collectives::pattern::catalog;
use hpm_core::knowledge::KnowledgeGoal;
use hpm_core::pattern::CommPattern;
use hpm_core::plan::CompiledPattern;

/// One entry of the static-analysis registry: a compiled plan and the
/// knowledge goal it must attain.
pub struct RegisteredPlan {
    pub id: String,
    pub plan: CompiledPattern,
    pub goal: KnowledgeGoal,
}

/// Process counts the experiment registry runs the barrier and
/// collective families at: the full Xeon machine (8×2×4) and the full
/// Opteron machine (12×2×6).
const MACHINE_PROCS: [usize; 2] = [64, 144];

/// Process counts of the sparse-authored scale run (`scale_cases`).
const SCALE_PROCS: [usize; 3] = [256, 1024, 4096];

/// Payload size the collectives are checked at; the knowledge structure
/// is payload-independent, so one size suffices.
const COLLECTIVE_BYTES: u64 = 1024;

/// Every pattern shape reachable from the experiment registry, compiled
/// at its largest registered process count.
#[must_use]
pub fn pattern_registry() -> Vec<RegisteredPlan> {
    let mut out = Vec::new();
    for p in MACHINE_PROCS {
        let barriers = [
            linear(p, 0),
            dissemination(p),
            binary_tree(p),
            kary_tree(p, 4),
            ring(p),
            all_to_all(p),
        ];
        for b in barriers {
            out.push(RegisteredPlan {
                id: format!("{}-p{p}", b.name()),
                plan: b.plan(),
                goal: KnowledgeGoal::AllToAll,
            });
        }
        for c in catalog(p, 0, COLLECTIVE_BYTES) {
            out.push(RegisteredPlan {
                id: format!("{}-p{p}", c.name()),
                goal: c.goal(),
                plan: c.plan(),
            });
        }
    }
    // The hybrid barrier as fig7_4 partitions it: round-robin residency
    // on the 8-node Xeon cluster.
    let nodes = 8;
    let p = 64;
    let mut groups = vec![Vec::new(); nodes];
    for r in 0..p {
        groups[r % nodes].push(r);
    }
    let hybrid = flat_dissemination_hybrid(p, &groups);
    out.push(RegisteredPlan {
        id: format!("{}-p{p}", hybrid.name()),
        plan: hybrid.plan(),
        goal: KnowledgeGoal::AllToAll,
    });
    // The scale run authors its patterns sparsely, never through a dense
    // stage matrix — analyze exactly what it executes.
    for p in SCALE_PROCS {
        out.push(RegisteredPlan {
            id: format!("dissemination-sparse-p{p}"),
            plan: dissemination_plan(p),
            goal: KnowledgeGoal::AllToAll,
        });
    }
    out
}

/// Analyzes the full registry through one scratch-pooled [`Analyzer`].
/// Returns each plan's id with its diagnostics (empty = clean).
#[must_use]
pub fn analyze_registry() -> Vec<(String, Vec<Diagnostic>)> {
    let mut analyzer = Analyzer::new();
    pattern_registry()
        .into_iter()
        .map(|r| {
            let diags = analyzer.analyze_with_goal(&r.plan, r.goal);
            (r.id, diags)
        })
        .collect()
}

/// One pattern's k-crash coverage over its deterministic scenario
/// sample: how many crash sets the knowledge goal (restricted to the
/// survivors) outlived. A verdict, not a failure — `repro analyze`
/// prints these and only errors on unexpected structural diagnostics.
pub struct CrashCoverageSummary {
    pub id: String,
    /// Crash-set size of the sweep.
    pub k: usize,
    /// Scenarios sampled.
    pub scenarios: usize,
    /// Scenarios the goal survived.
    pub survived: usize,
    /// First lost scenario's diagnostic, when any goal was lost.
    pub example: Option<Diagnostic>,
}

/// Deterministically sampled size-`k` crash sets at `p` ranks: every
/// single rank anchors a set at small scales, evenly strided anchors at
/// large ones (64 at p ≤ 256, 8 beyond), each set taking `k` consecutive
/// ranks from its anchor. Pure function of `(p, k)` — the sweep is
/// reproducible by construction.
#[must_use]
pub fn crash_sets(p: usize, k: usize) -> Vec<Vec<usize>> {
    let anchors = if p <= 256 { p.min(64) } else { 8 };
    let stride = (p / anchors).max(1);
    (0..anchors)
        .map(|a| {
            let base = a * stride;
            (0..k.min(p)).map(|d| (base + d) % p).collect()
        })
        .collect()
}

/// Sweeps [`Analyzer::k_crash_coverage`] over the full registry with
/// size-`k` crash sets from [`crash_sets`], one summary per plan.
#[must_use]
pub fn crash_coverage_registry(k: usize) -> Vec<CrashCoverageSummary> {
    let mut analyzer = Analyzer::new();
    pattern_registry()
        .into_iter()
        .map(|r| {
            let sets = crash_sets(r.plan.p(), k);
            let mut survived = 0;
            let mut example = None;
            for set in &sets {
                let v = analyzer.k_crash_coverage(&r.plan, r.goal, set);
                if v.survives() {
                    survived += 1;
                } else if example.is_none() {
                    example = v.diagnostic();
                }
            }
            CrashCoverageSummary {
                id: r.id,
                k,
                scenarios: sets.len(),
                survived,
                example,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_all_families_and_scales() {
        let reg = pattern_registry();
        // 6 barriers + 8 collectives per machine scale, the hybrid, and
        // the three sparse scale plans.
        assert_eq!(reg.len(), 2 * (6 + 8) + 1 + 3);
        for p in SCALE_PROCS {
            assert!(
                reg.iter()
                    .any(|r| r.id == format!("dissemination-sparse-p{p}")),
                "missing scale entry at p = {p}"
            );
        }
        let goals: Vec<KnowledgeGoal> = reg.iter().map(|r| r.goal).collect();
        assert!(goals.contains(&KnowledgeGoal::RootGathers(0)));
        assert!(goals.contains(&KnowledgeGoal::RootReaches(0)));
        assert!(goals.contains(&KnowledgeGoal::Prefix));
    }

    #[test]
    fn crash_sets_are_deterministic_and_scale_aware() {
        assert_eq!(crash_sets(64, 1).len(), 64);
        assert_eq!(crash_sets(144, 2).len(), 64);
        assert_eq!(crash_sets(4096, 1).len(), 8);
        assert_eq!(crash_sets(64, 1), crash_sets(64, 1));
        for set in crash_sets(144, 2) {
            assert_eq!(set.len(), 2);
            assert!(set.iter().all(|&r| r < 144));
        }
    }

    #[test]
    fn crash_coverage_sweep_summarizes_every_plan() {
        let summaries = crash_coverage_registry(1);
        assert_eq!(summaries.len(), pattern_registry().len());
        for s in &summaries {
            assert!(s.survived <= s.scenarios, "{}", s.id);
            assert_eq!(
                s.example.is_none(),
                s.survived == s.scenarios,
                "{}: example iff something was lost",
                s.id
            );
        }
        // The dense single-stage all-to-all barrier is the one shape
        // that shrugs off any single crash; dissemination relays through
        // unique chains and must lose scenarios.
        let a2a = summaries
            .iter()
            .find(|s| s.id == "all-to-all-p64")
            .expect("registry entry");
        assert_eq!(a2a.survived, a2a.scenarios, "all-to-all survives k = 1");
        let dis = summaries
            .iter()
            .find(|s| s.id == "dissemination-p64")
            .expect("registry entry");
        assert!(
            dis.survived < dis.scenarios,
            "dissemination must lose single-crash scenarios"
        );
    }
}
