//! The static-analysis gate over the experiment registry.
//!
//! `repro analyze` (and the CI `analyze` job behind it) runs the
//! `hpm-analyze` plan analyzer over every communication pattern the
//! experiments execute, each at its registered process count: the
//! barrier family and the eight collectives at the two validation
//! machines' scales (p = 64 Xeon, p = 144 Opteron, the registry's
//! `max_procs` values), the hybrid two-level barrier on its node
//! partition, and the sparse-authored `dissemination_plan` at the scale
//! run's p ∈ {256, 1024, 4096}. Every plan must analyze clean — zero
//! diagnostics, warnings included — before an experiment is allowed to
//! spend simulation time on it.
//!
//! The registry is explicit rather than derived from
//! [`crate::experiments::registry`] because experiments construct
//! patterns internally at many sweep points; this module pins the full
//! set of pattern *shapes* at their *largest* registered scale, which
//! dominates every smaller sweep point of the same constructor.

use hpm_analyze::{Analyzer, Diagnostic};
use hpm_barriers::hybrid::flat_dissemination_hybrid;
use hpm_barriers::{
    all_to_all, binary_tree, dissemination, dissemination_plan, kary_tree, linear, ring,
};
use hpm_collectives::pattern::catalog;
use hpm_core::knowledge::KnowledgeGoal;
use hpm_core::pattern::CommPattern;
use hpm_core::plan::CompiledPattern;

/// One entry of the static-analysis registry: a compiled plan and the
/// knowledge goal it must attain.
pub struct RegisteredPlan {
    pub id: String,
    pub plan: CompiledPattern,
    pub goal: KnowledgeGoal,
}

/// Process counts the experiment registry runs the barrier and
/// collective families at: the full Xeon machine (8×2×4) and the full
/// Opteron machine (12×2×6).
const MACHINE_PROCS: [usize; 2] = [64, 144];

/// Process counts of the sparse-authored scale run (`scale_cases`).
const SCALE_PROCS: [usize; 3] = [256, 1024, 4096];

/// Payload size the collectives are checked at; the knowledge structure
/// is payload-independent, so one size suffices.
const COLLECTIVE_BYTES: u64 = 1024;

/// Every pattern shape reachable from the experiment registry, compiled
/// at its largest registered process count.
#[must_use]
pub fn pattern_registry() -> Vec<RegisteredPlan> {
    let mut out = Vec::new();
    for p in MACHINE_PROCS {
        let barriers = [
            linear(p, 0),
            dissemination(p),
            binary_tree(p),
            kary_tree(p, 4),
            ring(p),
            all_to_all(p),
        ];
        for b in barriers {
            out.push(RegisteredPlan {
                id: format!("{}-p{p}", b.name()),
                plan: b.plan(),
                goal: KnowledgeGoal::AllToAll,
            });
        }
        for c in catalog(p, 0, COLLECTIVE_BYTES) {
            out.push(RegisteredPlan {
                id: format!("{}-p{p}", c.name()),
                goal: c.goal(),
                plan: c.plan(),
            });
        }
    }
    // The hybrid barrier as fig7_4 partitions it: round-robin residency
    // on the 8-node Xeon cluster.
    let nodes = 8;
    let p = 64;
    let mut groups = vec![Vec::new(); nodes];
    for r in 0..p {
        groups[r % nodes].push(r);
    }
    let hybrid = flat_dissemination_hybrid(p, &groups);
    out.push(RegisteredPlan {
        id: format!("{}-p{p}", hybrid.name()),
        plan: hybrid.plan(),
        goal: KnowledgeGoal::AllToAll,
    });
    // The scale run authors its patterns sparsely, never through a dense
    // stage matrix — analyze exactly what it executes.
    for p in SCALE_PROCS {
        out.push(RegisteredPlan {
            id: format!("dissemination-sparse-p{p}"),
            plan: dissemination_plan(p),
            goal: KnowledgeGoal::AllToAll,
        });
    }
    out
}

/// Analyzes the full registry through one scratch-pooled [`Analyzer`].
/// Returns each plan's id with its diagnostics (empty = clean).
#[must_use]
pub fn analyze_registry() -> Vec<(String, Vec<Diagnostic>)> {
    let mut analyzer = Analyzer::new();
    pattern_registry()
        .into_iter()
        .map(|r| {
            let diags = analyzer.analyze_with_goal(&r.plan, r.goal);
            (r.id, diags)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_all_families_and_scales() {
        let reg = pattern_registry();
        // 6 barriers + 8 collectives per machine scale, the hybrid, and
        // the three sparse scale plans.
        assert_eq!(reg.len(), 2 * (6 + 8) + 1 + 3);
        for p in SCALE_PROCS {
            assert!(
                reg.iter()
                    .any(|r| r.id == format!("dissemination-sparse-p{p}")),
                "missing scale entry at p = {p}"
            );
        }
        let goals: Vec<KnowledgeGoal> = reg.iter().map(|r| r.goal).collect();
        assert!(goals.contains(&KnowledgeGoal::RootGathers(0)));
        assert!(goals.contains(&KnowledgeGoal::RootReaches(0)));
        assert!(goals.contains(&KnowledgeGoal::Prefix));
    }
}
