//! Student-t distribution by numerical integration.
//!
//! §4.1 of the thesis: *"The outlier filter of the benchmarking program
//! approximates normal distribution of the mean estimate using the Student-t
//! distribution. Critical values of the interval are found by integrating
//! its probability density using tgamma from the standard C library, using
//! the trapezoid method to the nearest interval of 1e-4, and approximating
//! the critical point by linear interpolation below this resolution."*
//!
//! We follow the same construction: a Lanczos log-gamma, the t density, a
//! trapezoid CDF and an interpolated inverse.

/// Lanczos approximation of `ln Γ(x)` for `x > 0`.
///
/// Accurate to ~1e-13 over the range used here (half-integer degrees of
/// freedom well below 10⁴).
pub fn ln_gamma(x: f64) -> f64 {
    // g = 7, n = 9 Lanczos coefficients, kept at published precision.
    #[allow(clippy::excessive_precision)]
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_571_6e-6,
        1.505_632_735_149_311_6e-7,
    ];
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + 7.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Student-t distribution with `nu` degrees of freedom.
#[derive(Debug, Clone, Copy)]
pub struct StudentT {
    nu: f64,
    log_norm: f64,
}

impl StudentT {
    /// Creates the distribution; `nu` must be positive.
    pub fn new(nu: f64) -> StudentT {
        assert!(nu > 0.0, "degrees of freedom must be positive, got {nu}");
        let log_norm = ln_gamma((nu + 1.0) / 2.0)
            - ln_gamma(nu / 2.0)
            - 0.5 * (nu * std::f64::consts::PI).ln();
        StudentT { nu, log_norm }
    }

    /// Degrees of freedom.
    pub fn dof(&self) -> f64 {
        self.nu
    }

    /// Probability density at `t`.
    pub fn pdf(&self, t: f64) -> f64 {
        (self.log_norm - (self.nu + 1.0) / 2.0 * (1.0 + t * t / self.nu).ln()).exp()
    }

    /// Cumulative distribution `P(T ≤ t)` by trapezoid integration from 0,
    /// exploiting symmetry. Step size 1e-4·max(1,|t|) keeps the error below
    /// ~1e-9 for the moderate `t` used in confidence intervals.
    pub fn cdf(&self, t: f64) -> f64 {
        if t < 0.0 {
            return 1.0 - self.cdf(-t);
        }
        let steps = ((t / 1e-4).ceil() as usize).clamp(1, 2_000_000);
        let h = t / steps as f64;
        let mut area = 0.0;
        let mut prev = self.pdf(0.0);
        for i in 1..=steps {
            let x = i as f64 * h;
            let cur = self.pdf(x);
            area += 0.5 * (prev + cur) * h;
            prev = cur;
        }
        0.5 + area
    }

    /// Two-sided critical value `t*` such that `P(|T| ≤ t*) = confidence`.
    ///
    /// Found by bracketing + bisection on the CDF with final linear
    /// interpolation, mirroring the thesis' procedure.
    pub fn critical_two_sided(&self, confidence: f64) -> f64 {
        assert!(
            (0.0..1.0).contains(&confidence),
            "confidence must be in [0,1), got {confidence}"
        );
        let target = 0.5 + confidence / 2.0;
        // Bracket.
        let mut hi = 1.0;
        while self.cdf(hi) < target {
            hi *= 2.0;
            if hi > 1e6 {
                return hi;
            }
        }
        let mut lo = 0.0;
        // Bisection to 1e-4, then interpolate.
        while hi - lo > 1e-4 {
            let mid = 0.5 * (lo + hi);
            if self.cdf(mid) < target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let flo = self.cdf(lo);
        let fhi = self.cdf(hi);
        if fhi > flo {
            lo + (target - flo) / (fhi - flo) * (hi - lo)
        } else {
            0.5 * (lo + hi)
        }
    }
}

/// Two-sided Student-t critical value for `n` samples (`n − 1` degrees of
/// freedom) at the given confidence level, e.g. 0.95.
pub fn student_t_critical(n: usize, confidence: f64) -> f64 {
    assert!(n >= 2, "need at least two samples, got {n}");
    StudentT::new((n - 1) as f64).critical_two_sided(confidence)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n−1)!
        let facts: [f64; 7] = [1.0, 1.0, 2.0, 6.0, 24.0, 120.0, 720.0];
        for (i, &f) in facts.iter().enumerate() {
            let x = (i + 1) as f64;
            assert!((ln_gamma(x) - f.ln()).abs() < 1e-10, "ln_gamma({x})");
        }
    }

    #[test]
    fn ln_gamma_half() {
        // Γ(1/2) = sqrt(pi)
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn pdf_is_symmetric_and_normalized_enough() {
        let t = StudentT::new(5.0);
        assert!((t.pdf(1.3) - t.pdf(-1.3)).abs() < 1e-15);
        // CDF at a large value approaches 1.
        assert!(t.cdf(50.0) > 0.9999);
        assert!((t.cdf(0.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cdf_monotone() {
        let t = StudentT::new(9.0);
        let mut prev = 0.0;
        for i in 0..40 {
            let x = -4.0 + i as f64 * 0.2;
            let c = t.cdf(x);
            assert!(c >= prev - 1e-12, "CDF must be nondecreasing");
            prev = c;
        }
    }

    #[test]
    fn critical_values_match_tables() {
        // Standard two-sided 95 % t critical values.
        let cases = [(2.0, 4.303), (5.0, 2.571), (10.0, 2.228), (29.0, 2.045)];
        for (nu, expect) in cases {
            let got = StudentT::new(nu).critical_two_sided(0.95);
            assert!(
                (got - expect).abs() < 5e-3,
                "nu={nu}: got {got}, expect {expect}"
            );
        }
    }

    #[test]
    fn critical_for_thirty_samples() {
        // The thesis samples 30 batches: dof 29, 95 % → 2.045.
        let t = student_t_critical(30, 0.95);
        assert!((t - 2.045).abs() < 5e-3, "got {t}");
    }

    #[test]
    fn critical_99_exceeds_95() {
        let d = StudentT::new(7.0);
        assert!(d.critical_two_sided(0.99) > d.critical_two_sided(0.95));
    }

    #[test]
    #[should_panic]
    fn zero_dof_rejected() {
        StudentT::new(0.0);
    }
}
