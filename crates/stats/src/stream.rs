//! The batched jitter engine's number factory: a counter-based uniform
//! stream and a normal/log-normal batch filler.
//!
//! The scalar jitter path ([`crate::rng::JitterModel::draw`]) costs one
//! `StdRng` step plus transcendental calls per draw — fine for occasional
//! draws, a hard floor for the simulator's hot loop, where a single
//! barrier repetition at p = 64 consumes ~2000 multipliers. This module
//! provides the batch alternative:
//!
//! * [`SplitMix64`] — a counter-based generator (`state += γ; mix(state)`)
//!   seedable per `(seed, label, rep)`. Being counter-based, it has no
//!   sequential carry chain: consecutive outputs are independent mixes of
//!   consecutive counters, which is exactly what a batch fill wants.
//! * [`norminv`] — the standard normal quantile function by Acklam's
//!   rational approximation (relative error < 1.2e-9). The central branch
//!   covers 95.15 % of the unit interval with ~20 branch-free flops; only
//!   deep tails fall back to `ln`/`sqrt`.
//! * [`fast_exp`] — `exp` as exponent-bit assembly plus a degree-7
//!   polynomial (relative error < 1e-8), pure arithmetic, no libm.
//! * [`NormalSource`] — batch-fills `f64` buffers with standard normals
//!   or log-normal multipliers `exp(σ·Z)`, the *exact* composition. The
//!   hot-path `JitterBuf` fill instead serves draws through
//!   [`LognormalQuantileTable`]; this source is the reference the
//!   equivalence tests compare that table against.
//!
//! One uniform becomes one normal (inverse-CDF), so there is no discarded
//! Box-Muller branch to regret; the classic both-outputs Box-Muller trick
//! remains in the scalar `JitterModel::draw` fallback, where calls arrive
//! one at a time and the second output is cached for the next call. The
//! approximation error of `norminv`/`fast_exp` is orders of magnitude
//! below sampling noise; the statistical-equivalence tests (here and in
//! `hpm-simnet`) pin the old and new streams to the same distribution.

/// The SplitMix64 finalizer: a bijective avalanche mix of one word.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Weyl increment of the SplitMix64 counter (2⁶⁴/φ, odd).
const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// Counter-based uniform stream: `next` advances a Weyl counter and
/// returns its mix. The same `(seed, label, rep)` always yields the same
/// stream; distinct parts yield uncorrelated streams.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Stream keyed by a bare seed.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 {
            state: mix64(seed ^ GOLDEN),
        }
    }

    /// Stream keyed by `(seed, label, rep)` — the addressing scheme of
    /// the batched jitter engine: `label` names the consumer (barrier
    /// executor, exchange resolver, microbenchmark unit, …) and `rep`
    /// its repetition/superstep index, so every work item owns an
    /// independent stream derived from its coordinates alone.
    pub fn from_parts(seed: u64, label: u64, rep: u64) -> SplitMix64 {
        let mut s = seed;
        s = mix64(s.wrapping_add(GOLDEN).wrapping_add(label));
        s = mix64(s.wrapping_add(GOLDEN).wrapping_add(rep));
        SplitMix64 { state: s }
    }

    /// The next 64 uniform bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN);
        mix64(self.state)
    }

    /// Uniform in the open interval (0, 1): cell midpoints `(k + ½)·2⁻⁵²`,
    /// so neither endpoint can occur and `norminv` stays finite.
    #[inline]
    pub fn next_unit_open(&mut self) -> f64 {
        ((self.next_u64() >> 12) as f64 + 0.5) * (1.0 / (1u64 << 52) as f64)
    }
}

// Acklam's rational approximation of the standard normal quantile
// function (public-domain coefficients). Relative error < 1.15e-9 over
// the whole open unit interval.
const A: [f64; 6] = [
    -3.969_683_028_665_376e1,
    2.209_460_984_245_205e2,
    -2.759_285_104_469_687e2,
    1.383_577_518_672_69e2,
    -3.066_479_806_614_716e1,
    2.506_628_277_459_239,
];
const B: [f64; 5] = [
    -5.447_609_879_822_406e1,
    1.615_858_368_580_409e2,
    -1.556_989_798_598_866e2,
    6.680_131_188_771_972e1,
    -1.328_068_155_288_572e1,
];
const C: [f64; 6] = [
    -7.784_894_002_430_293e-3,
    -3.223_964_580_411_365e-1,
    -2.400_758_277_161_838,
    -2.549_732_539_343_734,
    4.374_664_141_464_968,
    2.938_163_982_698_783,
];
const D: [f64; 4] = [
    7.784_695_709_041_462e-3,
    3.224_671_290_700_398e-1,
    2.445_134_137_142_996,
    3.754_408_661_907_416,
];

/// Lower break point of the central branch; the central region covers
/// `p ∈ [0.02425, 0.97575]` — 95.15 % of all draws.
const P_LOW: f64 = 0.02425;

/// Standard normal quantile (inverse CDF) by Acklam's rational
/// approximation. `p` must lie in the open interval (0, 1).
///
/// The central branch is pure rational arithmetic (bit-identical on any
/// IEEE-754 platform); the two tail branches evaluate `ln`/`sqrt`
/// through libm, which is why absolute golden hashes over jittered
/// streams stay gated to the CI platform.
#[inline]
pub fn norminv(p: f64) -> f64 {
    debug_assert!(p > 0.0 && p < 1.0, "norminv domain is (0,1), got {p}");
    if p < P_LOW {
        // Lower tail.
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        // Central region: odd rational in q = p − ½.
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        // Upper tail, by symmetry.
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -((((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0))
    }
}

/// `exp(x)` as pure arithmetic: split off the power of two
/// (`x·log₂e = k + f`), evaluate `e^(f·ln2)` by a degree-7 polynomial and
/// assemble `2^k` directly into the exponent bits. Relative error < 1e-8
/// for `|x| ≤ 700`; no libm, so the result is bit-identical across
/// platforms.
#[inline]
pub fn fast_exp(x: f64) -> f64 {
    debug_assert!(x.abs() <= 700.0, "fast_exp domain |x| <= 700, got {x}");
    let y = x * std::f64::consts::LOG2_E;
    // Round to nearest by the shifter trick: adding 1.5·2⁵² pushes the
    // fraction out of the mantissa. Pure FP (baseline x86-64 lowers
    // `f64::round` to a libm call — several times the cost of the whole
    // remaining pipeline) and exact for |y| < 2⁵¹.
    const SHIFTER: f64 = 6_755_399_441_055_744.0; // 1.5 * 2^52
    let k = (y + SHIFTER) - SHIFTER;
    let t = (y - k) * std::f64::consts::LN_2; // |t| ≤ ln2/2 ≈ 0.3466
    let poly = 1.0
        + t * (1.0
            + t * (0.5
                + t * (1.0 / 6.0
                    + t * (1.0 / 24.0
                        + t * (1.0 / 120.0 + t * (1.0 / 720.0 + t * (1.0 / 5040.0)))))));
    // 2^k via the exponent field; |k| ≤ 1010 keeps it normal.
    poly * f64::from_bits(((1023 + k as i64) as u64) << 52)
}

/// Batch source of standard normals / log-normal multipliers over a
/// counter-based stream: one uniform per normal through [`norminv`],
/// filled buffer-at-a-time so the per-draw cost is a handful of flops.
#[derive(Debug, Clone)]
pub struct NormalSource {
    stream: SplitMix64,
}

impl NormalSource {
    /// Source keyed by `(seed, label, rep)` — see
    /// [`SplitMix64::from_parts`].
    pub fn new(seed: u64, label: u64, rep: u64) -> NormalSource {
        NormalSource {
            stream: SplitMix64::from_parts(seed, label, rep),
        }
    }

    /// The next standard normal.
    #[inline]
    pub fn next_normal(&mut self) -> f64 {
        norminv(self.stream.next_unit_open())
    }

    /// Fills `out` with standard normals.
    pub fn fill_normal(&mut self, out: &mut [f64]) {
        for slot in out.iter_mut() {
            *slot = self.next_normal();
        }
    }

    /// Fills `out` with log-normal multipliers `exp(σ·Z)`, median 1 —
    /// the jitter model's distribution, one tight pass.
    pub fn fill_lognormal(&mut self, sigma: f64, out: &mut [f64]) {
        for slot in out.iter_mut() {
            *slot = fast_exp(sigma * self.next_normal());
        }
    }
}

/// The log-normal multiplier quantile function `u ↦ exp(σ·Φ⁻¹(u))` for
/// one fixed σ, tabulated on a uniform grid and served by linear
/// interpolation.
///
/// The batch fill's per-draw cost is dominated by the `norminv` →
/// `fast_exp` latency chain (~50 flops with two divisions). σ is fixed
/// for a whole fill — and in practice for a whole scratch lifetime — so
/// the composition collapses into one table built once and then read at
/// a few flops per draw. Draws landing within [`Self::SLOW_MARGIN`]
/// cells of either end (≈ 3 % of the mass, where the quantile function's
/// curvature makes interpolation sloppy) take the exact
/// `norminv`/`fast_exp` path instead, so tails keep full accuracy.
///
/// Interpolation error at the margin boundary (|z| ≈ 2.58, the worst
/// curvature served from the table) is below 1e-3 in z — orders of
/// magnitude under sampling noise; the statistical-equivalence tests
/// compare the table-served stream against the exact scalar stream
/// directly.
#[derive(Debug, Clone)]
pub struct LognormalQuantileTable {
    sigma: f64,
    /// `knots[k] = exp(σ·Φ⁻¹(k / CELLS))`; the first and last
    /// [`Self::SLOW_MARGIN`] knots are never read (NaN-poisoned).
    knots: Vec<f64>,
}

impl LognormalQuantileTable {
    /// Grid cells (16 KiB of knots — half the typical L1).
    pub const CELLS: usize = 2048;
    /// Cells at each end served by the exact path.
    pub const SLOW_MARGIN: usize = 32;

    /// Builds the table for `sigma` (must be positive).
    pub fn new(sigma: f64) -> LognormalQuantileTable {
        assert!(sigma > 0.0, "table is for active jitter only");
        let mut knots = vec![f64::NAN; Self::CELLS + 1];
        for (k, slot) in knots.iter_mut().enumerate() {
            if (Self::SLOW_MARGIN..=Self::CELLS - Self::SLOW_MARGIN).contains(&k) {
                *slot = fast_exp(sigma * norminv(k as f64 / Self::CELLS as f64));
            }
        }
        LognormalQuantileTable { sigma, knots }
    }

    /// The σ this table was built for.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// The multiplier at quantile `u ∈ (0, 1)`.
    #[inline]
    pub fn mult(&self, u: f64) -> f64 {
        let t = u * Self::CELLS as f64;
        let k = t as usize;
        if !(Self::SLOW_MARGIN..Self::CELLS - Self::SLOW_MARGIN).contains(&k) {
            return fast_exp(self.sigma * norminv(u));
        }
        let a = self.knots[k];
        let b = self.knots[k + 1];
        a + (t - k as f64) * (b - a)
    }
}

/// The Pareto multiplier quantile function `u ↦ (2(1−u))^(−1/α)`,
/// median 1, tabulated on a uniform grid and served by linear
/// interpolation — the heavy-tailed sibling of
/// [`LognormalQuantileTable`] for straggler modeling (ROADMAP 5a).
///
/// A Pareto tail with exponent α has survival `P(X > x) ∝ x^(−α)`:
/// unlike the log-normal, whose tail thins super-polynomially, a small
/// fraction of draws is *much* larger than the median — the empirical
/// signature of stragglers. Normalizing the scale so the median is 1
/// keeps the multiplier convention of the jitter engine (median draw =
/// noise-free value). The minimum multiplier is `2^(−1/α)` < 1, so the
/// distribution straddles 1 like the log-normal does.
///
/// The exact path evaluates `exp(−ln(2(1−u))/α)` via [`fast_exp`] and
/// libm `ln` — like the `norminv` tail branches, `ln` keeps absolute
/// golden hashes gated to the CI platform. The upper tail diverges as
/// `u → 1`, so the slow margin is twice the log-normal table's.
#[derive(Debug, Clone)]
pub struct ParetoQuantileTable {
    alpha: f64,
    /// `knots[k] = (2(1 − k/CELLS))^(−1/α)`; the first and last
    /// [`Self::SLOW_MARGIN`] knots are never read (NaN-poisoned).
    knots: Vec<f64>,
}

impl ParetoQuantileTable {
    /// Grid cells (shared with [`LognormalQuantileTable`]).
    pub const CELLS: usize = LognormalQuantileTable::CELLS;
    /// Cells at each end served by the exact path — wider than the
    /// log-normal margin because the Pareto upper tail diverges.
    pub const SLOW_MARGIN: usize = 64;

    /// Builds the table for tail exponent `alpha` (must exceed 0.05 so
    /// the exact path stays inside [`fast_exp`]'s domain).
    pub fn new(alpha: f64) -> ParetoQuantileTable {
        assert!(
            alpha.is_finite() && alpha > 0.05,
            "pareto tail exponent must be finite and > 0.05, got {alpha}"
        );
        let mut knots = vec![f64::NAN; Self::CELLS + 1];
        for (k, slot) in knots.iter_mut().enumerate() {
            if (Self::SLOW_MARGIN..=Self::CELLS - Self::SLOW_MARGIN).contains(&k) {
                *slot = Self::exact(alpha, k as f64 / Self::CELLS as f64);
            }
        }
        ParetoQuantileTable { alpha, knots }
    }

    /// The α this table was built for.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    #[inline]
    fn exact(alpha: f64, u: f64) -> f64 {
        fast_exp(-(2.0 * (1.0 - u)).ln() / alpha)
    }

    /// The multiplier at quantile `u ∈ (0, 1)`.
    #[inline]
    pub fn mult(&self, u: f64) -> f64 {
        let t = u * Self::CELLS as f64;
        let k = t as usize;
        if !(Self::SLOW_MARGIN..Self::CELLS - Self::SLOW_MARGIN).contains(&k) {
            return Self::exact(self.alpha, u);
        }
        let a = self.knots[k];
        let b = self.knots[k + 1];
        a + (t - k as f64) * (b - a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quantile::quantile;

    #[test]
    fn stream_is_deterministic_per_parts() {
        let mut a = SplitMix64::from_parts(42, 7, 3);
        let mut b = SplitMix64::from_parts(42, 7, 3);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_parts_yield_distinct_streams() {
        let take = |mut s: SplitMix64| -> Vec<u64> { (0..8).map(|_| s.next_u64()).collect() };
        let base = take(SplitMix64::from_parts(42, 7, 3));
        assert_ne!(base, take(SplitMix64::from_parts(42, 7, 4)));
        assert_ne!(base, take(SplitMix64::from_parts(42, 8, 3)));
        assert_ne!(base, take(SplitMix64::from_parts(43, 7, 3)));
    }

    #[test]
    fn unit_draws_stay_strictly_inside_the_interval() {
        let mut s = SplitMix64::new(5);
        for _ in 0..100_000 {
            let u = s.next_unit_open();
            assert!(u > 0.0 && u < 1.0, "u = {u}");
        }
    }

    #[test]
    fn norminv_matches_known_quantiles() {
        // Reference values of Φ⁻¹ to well beyond the approximation error.
        for (p, z) in [
            (0.5, 0.0),
            (0.975, 1.959_963_984_540_054),
            (0.025, -1.959_963_984_540_054),
            (0.8413447460685429, 1.0),
            (0.99865010196837, 3.0),
            (0.001349898031630095, -3.0),   // tail branch
            (1e-6, -4.753_424_308_822_899), // deep tail
        ] {
            let got = norminv(p);
            assert!(
                (got - z).abs() < 2e-8 * (1.0 + z.abs()),
                "norminv({p}) = {got}, want {z}"
            );
        }
    }

    #[test]
    fn norminv_is_antisymmetric() {
        for &p in &[0.01, 0.024, 0.1, 0.3, 0.49] {
            let lo = norminv(p);
            let hi = norminv(1.0 - p);
            assert!((lo + hi).abs() < 1e-9, "p = {p}: {lo} vs {hi}");
        }
    }

    #[test]
    fn fast_exp_tracks_libm_exp() {
        let mut worst = 0.0f64;
        let mut x = -30.0;
        while x <= 30.0 {
            let rel = (fast_exp(x) - x.exp()).abs() / x.exp();
            worst = worst.max(rel);
            x += 0.0137;
        }
        assert!(worst < 1e-8, "worst relative error {worst}");
    }

    #[test]
    fn normals_have_unit_moments() {
        let mut src = NormalSource::new(11, 0, 0);
        let mut buf = vec![0.0; 200_000];
        src.fill_normal(&mut buf);
        let n = buf.len() as f64;
        let mean = buf.iter().sum::<f64>() / n;
        let var = buf.iter().map(|z| (z - mean) * (z - mean)).sum::<f64>() / n;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "variance {var}");
    }

    #[test]
    fn lognormal_fill_has_median_one_and_positive_support() {
        let mut src = NormalSource::new(3, 1, 9);
        let mut buf = vec![0.0; 100_000];
        src.fill_lognormal(0.2, &mut buf);
        assert!(buf.iter().all(|&m| m > 0.0));
        let med = quantile(&buf, 0.5);
        assert!((med - 1.0).abs() < 0.01, "median {med}");
    }

    /// The tabulated quantile function tracks the exact composition to
    /// interpolation accuracy, central region and tails alike.
    #[test]
    fn quantile_table_tracks_exact_composition() {
        for sigma in [0.05, 0.2, 0.5] {
            let tab = LognormalQuantileTable::new(sigma);
            let mut u = 1e-5;
            while u < 1.0 {
                let exact = fast_exp(sigma * norminv(u));
                let got = tab.mult(u);
                let rel = (got - exact).abs() / exact;
                assert!(rel < 1e-3, "sigma {sigma} u {u}: {got} vs {exact}");
                u += 3.33e-4;
            }
            // Median is exact to interpolation accuracy.
            assert!((tab.mult(0.5) - 1.0).abs() < 1e-6);
        }
    }

    /// The Pareto table tracks its exact composition the same way the
    /// log-normal table does, across the central region and both tails.
    #[test]
    fn pareto_table_tracks_exact_composition() {
        for alpha in [1.1, 2.5, 6.0] {
            let tab = ParetoQuantileTable::new(alpha);
            let mut u: f64 = 1e-5;
            while u < 1.0 {
                let exact = fast_exp(-(2.0 * (1.0 - u)).ln() / alpha);
                let got = tab.mult(u);
                let rel = (got - exact).abs() / exact;
                assert!(rel < 1e-3, "alpha {alpha} u {u}: {got} vs {exact}");
                u += 3.33e-4;
            }
            assert!((tab.mult(0.5) - 1.0).abs() < 1e-6);
        }
    }

    /// Pareto draws are heavy-tailed: the sample mean of a median-1
    /// Pareto stream sits well above the median, and far above the
    /// matching log-normal's, while the minimum stays at `2^(−1/α)`.
    #[test]
    fn pareto_draws_are_heavy_tailed_with_median_one() {
        let alpha = 1.5;
        let tab = ParetoQuantileTable::new(alpha);
        let mut s = SplitMix64::from_parts(77, 1, 0);
        let draws: Vec<f64> = (0..100_000).map(|_| tab.mult(s.next_unit_open())).collect();
        let floor = fast_exp(-std::f64::consts::LN_2 / alpha);
        assert!(draws.iter().all(|&m| m >= floor * (1.0 - 1e-12)));
        let med = quantile(&draws, 0.5);
        assert!((med - 1.0).abs() < 0.02, "median {med}");
        let mean = draws.iter().sum::<f64>() / draws.len() as f64;
        // α = 1.5 has finite mean x_m·α/(α−1) = 2^(−2/3)·3 ≈ 1.89.
        assert!(mean > 1.5, "mean {mean} not heavy-tailed");
    }
}
