//! Outlier filtering by Student-t confidence intervals with re-sampling.
//!
//! §4.1: each benchmark configuration collects a set of batch means; the
//! filter requires every batch mean to lie inside the two-sided 95 %
//! interval around the grand mean. Batches outside the interval are
//! re-collected until none remain (or a retry budget is exhausted —
//! experiments that keep producing outliers indicate either an unlucky
//! initial sample or inherent variability, which the thesis says must be
//! reported rather than hidden).

use crate::summary::Summary;
use crate::tdist::student_t_critical;

/// Outcome of the filter: the accepted sample and bookkeeping on rework.
#[derive(Debug, Clone)]
pub struct OutlierReport {
    /// Batch means that passed the interval test, in final order.
    pub accepted: Vec<f64>,
    /// Number of individual batches that had to be re-collected.
    pub resampled: usize,
    /// Number of full passes over the sample the filter needed.
    pub passes: usize,
    /// True if the retry budget ran out while outliers remained.
    pub budget_exhausted: bool,
}

impl OutlierReport {
    /// Grand mean of the accepted batch means.
    pub fn mean(&self) -> f64 {
        Summary::from_slice(&self.accepted).mean()
    }

    /// Median of the accepted batch means.
    pub fn median(&self) -> f64 {
        Summary::from_slice(&self.accepted).median()
    }
}

/// Indices of observations outside the `confidence` two-sided Student-t
/// interval around the sample mean. Empty when `xs.len() < 3` or when the
/// sample has zero variance.
pub fn outlier_indices(xs: &[f64], confidence: f64) -> Vec<usize> {
    if xs.len() < 3 {
        return Vec::new();
    }
    let s = Summary::from_slice(xs);
    let sd = s.std_dev();
    if sd == 0.0 {
        return Vec::new();
    }
    let t = student_t_critical(xs.len(), confidence);
    let half_width = t * sd;
    let mean = s.mean();
    xs.iter()
        .enumerate()
        .filter(|(_, &x)| (x - mean).abs() > half_width)
        .map(|(i, _)| i)
        .collect()
}

/// Collects `n` batch means from `sample` and re-collects any that fall
/// outside the two-sided `confidence` interval, until the sample is clean or
/// `max_passes` full passes have run.
///
/// `sample` is called once per batch (including re-collections); it is
/// expected to time one batch of the benchmark under study.
pub fn filter_outlier_means<F: FnMut() -> f64>(
    n: usize,
    confidence: f64,
    max_passes: usize,
    mut sample: F,
) -> OutlierReport {
    let mut xs: Vec<f64> = (0..n).map(|_| sample()).collect();
    let mut resampled = 0;
    let mut passes = 0;
    loop {
        passes += 1;
        let outliers = outlier_indices(&xs, confidence);
        if outliers.is_empty() {
            return OutlierReport {
                accepted: xs,
                resampled,
                passes,
                budget_exhausted: false,
            };
        }
        if passes >= max_passes {
            return OutlierReport {
                accepted: xs,
                resampled,
                passes,
                budget_exhausted: true,
            };
        }
        for idx in outliers {
            xs[idx] = sample();
            resampled += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_sample_passes_first_time() {
        let mut vals = (0..30).map(|i| 100.0 + (i % 3) as f64).cycle();
        let rep = filter_outlier_means(30, 0.95, 10, || {
            vals.next().expect("cycled iterator never ends")
        });
        assert_eq!(rep.passes, 1);
        assert_eq!(rep.resampled, 0);
        assert!(!rep.budget_exhausted);
        assert_eq!(rep.accepted.len(), 30);
    }

    #[test]
    fn single_spike_is_replaced() {
        // First 30 draws contain one enormous spike; replacements are clean.
        let mut calls = 0;
        let rep = filter_outlier_means(30, 0.95, 10, || {
            calls += 1;
            if calls == 7 {
                1e6
            } else {
                100.0 + (calls % 5) as f64
            }
        });
        assert!(rep.resampled >= 1);
        assert!(!rep.budget_exhausted);
        assert!(rep.accepted.iter().all(|&x| x < 1000.0));
    }

    #[test]
    fn constant_sample_has_no_outliers() {
        assert!(outlier_indices(&[5.0; 20], 0.95).is_empty());
    }

    #[test]
    fn tiny_samples_have_no_outliers() {
        assert!(outlier_indices(&[1.0, 100.0], 0.95).is_empty());
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        // The initial sample has one spike; every re-collection produces
        // another spike, so the filter can never converge.
        let mut calls = 0usize;
        let rep = filter_outlier_means(10, 0.95, 3, || {
            calls += 1;
            if calls == 5 || calls > 10 {
                1e9
            } else {
                1.0
            }
        });
        assert!(rep.budget_exhausted);
        assert_eq!(rep.passes, 3);
    }

    #[test]
    fn detects_obvious_outlier_index() {
        let mut xs = vec![10.0; 29];
        xs.push(10_000.0);
        let idx = outlier_indices(&xs, 0.95);
        assert_eq!(idx, vec![29]);
    }

    #[test]
    fn report_statistics() {
        let rep = OutlierReport {
            accepted: vec![1.0, 2.0, 3.0],
            resampled: 0,
            passes: 1,
            budget_exhausted: false,
        };
        assert_eq!(rep.mean(), 2.0);
        assert_eq!(rep.median(), 2.0);
    }
}
