//! Sample summaries: count, mean, standard deviation, extrema and median.

use crate::quantile::quantile_sorted;

/// Arithmetic mean of a slice via the Welford recurrence — the single
/// source of truth [`Summary::push`] also steps through, so
/// `mean(xs)` is bit-identical to `Summary::from_slice(xs).mean()`
/// without building a summary (and without allocating). 0 for an empty
/// slice.
pub fn mean(xs: &[f64]) -> f64 {
    let mut m = 0.0f64;
    for (n, &x) in xs.iter().enumerate() {
        m += welford_step(m, x, n + 1);
    }
    m
}

/// One Welford mean update: the increment to apply when observation `x`
/// arrives as the `count`-th sample (1-based) with running mean `mean`.
#[inline]
fn welford_step(mean: f64, x: f64, count: usize) -> f64 {
    (x - mean) / count as f64
}

/// A numerically stable summary of a sample of observations.
///
/// Means and standard deviations are accumulated with Welford's online
/// algorithm, so summaries can be built incrementally while a benchmark runs
/// without storing every observation. The median, which the thesis prefers
/// for latency statistics because of heavy-tailed OS noise (§5.6.3), reads
/// an insertion-maintained sorted copy of the retained observations, so
/// querying it repeatedly allocates and sorts nothing.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    count: usize,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    values: Vec<f64>,
    sorted: Vec<f64>,
}

impl Default for Summary {
    fn default() -> Self {
        Self::new()
    }
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            values: Vec::new(),
            sorted: Vec::new(),
        }
    }

    /// Builds a summary from a slice of observations.
    pub fn from_slice(xs: &[f64]) -> Self {
        let mut s = Summary::new();
        for &x in xs {
            s.push(x);
        }
        s
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += welford_step(self.mean, x, self.count);
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
        self.values.push(x);
        let pos = self.sorted.partition_point(|&v| v < x);
        self.sorted.insert(pos, x);
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Arithmetic mean; 0 for an empty summary.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (n − 1 denominator); 0 when n < 2.
    ///
    /// Clamped at zero: catastrophic cancellation on near-constant samples
    /// riding a large offset can leave the Welford accumulator a tiny
    /// negative number, which would make `std_dev` NaN and poison every
    /// statistic derived from it downstream.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.m2 / (self.count as f64 - 1.0)).max(0.0)
        }
    }

    /// Unbiased sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean, `s / sqrt(n)`.
    pub fn std_err(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.std_dev() / (self.count as f64).sqrt()
        }
    }

    /// Smallest observation; +inf for an empty summary.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation; −inf for an empty summary.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Sample median; 0 for an empty summary. Allocation-free: reads the
    /// maintained sorted copy.
    pub fn median(&self) -> f64 {
        quantile_sorted(&self.sorted, 0.5)
    }

    /// Linear-interpolated quantile of the retained observations;
    /// allocation-free for the same reason as [`Summary::median`].
    pub fn quantile(&self, q: f64) -> f64 {
        quantile_sorted(&self.sorted, q)
    }

    /// Borrow the retained observations in insertion order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Borrow the retained observations in ascending order.
    pub fn sorted_values(&self) -> &[f64] {
        &self.sorted
    }

    /// Coefficient of variation `s / |mean|`; +inf when the mean is zero.
    pub fn coeff_of_variation(&self) -> f64 {
        let m = self.mean();
        if m == 0.0 {
            f64::INFINITY
        } else {
            self.std_dev() / m.abs()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_benign() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.std_err(), 0.0);
        assert_eq!(s.median(), 0.0);
    }

    #[test]
    fn single_observation() {
        let s = Summary::from_slice(&[42.0]);
        assert_eq!(s.count(), 1);
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), 42.0);
        assert_eq!(s.max(), 42.0);
        assert_eq!(s.median(), 42.0);
    }

    #[test]
    fn known_mean_and_variance() {
        // Sample {2, 4, 4, 4, 5, 5, 7, 9}: mean 5, population var 4,
        // sample var 32/7.
        let s = Summary::from_slice(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn median_even_and_odd() {
        let odd = Summary::from_slice(&[3.0, 1.0, 2.0]);
        assert_eq!(odd.median(), 2.0);
        let even = Summary::from_slice(&[4.0, 1.0, 3.0, 2.0]);
        assert_eq!(even.median(), 2.5);
    }

    /// The slice-level `mean` and the incremental `Summary` step the
    /// same recurrence, so their results are bit-identical — the
    /// property `BarrierMeasurement::mean` relies on.
    #[test]
    fn slice_mean_is_bit_identical_to_summary() {
        use rand::Rng;
        let mut rng = crate::rng::derive_rng(5, 9);
        for len in [0usize, 1, 2, 7, 100, 1000] {
            let xs: Vec<f64> = (0..len).map(|_| rng.gen::<f64>() * 1e-3 + 1e-5).collect();
            assert_eq!(mean(&xs), Summary::from_slice(&xs).mean(), "len {len}");
        }
    }

    #[test]
    fn welford_matches_two_pass() {
        let xs: Vec<f64> = (0..1000).map(|i| (i as f64).sin() * 1e6 + 1e9).collect();
        let s = Summary::from_slice(&xs);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() as f64 - 1.0);
        assert!((s.mean() - mean).abs() / mean.abs() < 1e-12);
        assert!((s.variance() - var).abs() / var < 1e-9);
    }

    /// Near-constant observations riding a large offset: floating-point
    /// cancellation must never surface as a negative variance or a NaN
    /// standard deviation.
    #[test]
    fn variance_never_negative_under_cancellation() {
        // A handful of adversarial shapes around 1e15–1e16 offsets.
        let offsets = [1e12, 1e15, 4.0 / 3.0 * 1e16];
        let wiggles = [0.0, 1e-3, 0.5, 1.0];
        for &off in &offsets {
            for &w in &wiggles {
                let mut s = Summary::new();
                for i in 0..1000 {
                    // Alternating ±w around the offset, plus a rounding-
                    // hostile irrational step.
                    let x = off + if i % 2 == 0 { w } else { -w } + (i as f64).sqrt() * 1e-9;
                    s.push(x);
                }
                assert!(
                    s.variance() >= 0.0,
                    "variance {} at offset {off} wiggle {w}",
                    s.variance()
                );
                assert!(
                    s.std_dev().is_finite() && s.std_dev() >= 0.0,
                    "std_dev {} at offset {off} wiggle {w}",
                    s.std_dev()
                );
                assert!(s.coeff_of_variation().is_finite());
            }
        }
        // The exact constant-large-value case, where m2 should be 0 but
        // cancellation may leave dust of either sign.
        let s = Summary::from_slice(&[1e16 + 1.0; 64]);
        assert!(s.variance() >= 0.0);
        assert!(s.std_dev() >= 0.0);
    }

    /// The maintained sorted copy matches a from-scratch sort at every
    /// prefix, so median/quantile queries stay allocation-free and right.
    #[test]
    fn sorted_cache_tracks_insertions() {
        use crate::quantile::{median, quantile};
        let mut rng = crate::rng::derive_rng(77, 1);
        use rand::Rng;
        let mut s = Summary::new();
        let mut all = Vec::new();
        for _ in 0..200 {
            let x = (rng.gen::<f64>() * 16.0).floor(); // duplicate-heavy
            s.push(x);
            all.push(x);
            assert_eq!(s.median(), median(&all));
            assert_eq!(s.quantile(0.9), quantile(&all, 0.9));
        }
        let mut expect = all.clone();
        expect.sort_unstable_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        assert_eq!(s.sorted_values(), &expect[..]);
        assert_eq!(s.values(), &all[..]);
    }

    #[test]
    fn coefficient_of_variation() {
        let s = Summary::from_slice(&[10.0, 10.0, 10.0]);
        assert_eq!(s.coeff_of_variation(), 0.0);
        let z = Summary::from_slice(&[-1.0, 1.0]);
        assert_eq!(z.coeff_of_variation(), f64::INFINITY);
    }
}
