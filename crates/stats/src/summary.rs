//! Sample summaries: count, mean, standard deviation, extrema and median.

use crate::quantile::median;

/// A numerically stable summary of a sample of observations.
///
/// Means and standard deviations are accumulated with Welford's online
/// algorithm, so summaries can be built incrementally while a benchmark runs
/// without storing every observation. The median, which the thesis prefers
/// for latency statistics because of heavy-tailed OS noise (§5.6.3), is
/// computed on demand from the retained observations.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    count: usize,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    values: Vec<f64>,
}

impl Default for Summary {
    fn default() -> Self {
        Self::new()
    }
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            values: Vec::new(),
        }
    }

    /// Builds a summary from a slice of observations.
    pub fn from_slice(xs: &[f64]) -> Self {
        let mut s = Summary::new();
        for &x in xs {
            s.push(x);
        }
        s
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
        self.values.push(x);
    }

    /// Number of observations.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Arithmetic mean; 0 for an empty summary.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (n − 1 denominator); 0 when n < 2.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count as f64 - 1.0)
        }
    }

    /// Unbiased sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean, `s / sqrt(n)`.
    pub fn std_err(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.std_dev() / (self.count as f64).sqrt()
        }
    }

    /// Smallest observation; +inf for an empty summary.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation; −inf for an empty summary.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Sample median; 0 for an empty summary.
    pub fn median(&self) -> f64 {
        median(&self.values)
    }

    /// Borrow the retained observations in insertion order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Coefficient of variation `s / |mean|`; +inf when the mean is zero.
    pub fn coeff_of_variation(&self) -> f64 {
        let m = self.mean();
        if m == 0.0 {
            f64::INFINITY
        } else {
            self.std_dev() / m.abs()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_benign() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.std_err(), 0.0);
        assert_eq!(s.median(), 0.0);
    }

    #[test]
    fn single_observation() {
        let s = Summary::from_slice(&[42.0]);
        assert_eq!(s.count(), 1);
        assert_eq!(s.mean(), 42.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), 42.0);
        assert_eq!(s.max(), 42.0);
        assert_eq!(s.median(), 42.0);
    }

    #[test]
    fn known_mean_and_variance() {
        // Sample {2, 4, 4, 4, 5, 5, 7, 9}: mean 5, population var 4,
        // sample var 32/7.
        let s = Summary::from_slice(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn median_even_and_odd() {
        let odd = Summary::from_slice(&[3.0, 1.0, 2.0]);
        assert_eq!(odd.median(), 2.0);
        let even = Summary::from_slice(&[4.0, 1.0, 3.0, 2.0]);
        assert_eq!(even.median(), 2.5);
    }

    #[test]
    fn welford_matches_two_pass() {
        let xs: Vec<f64> = (0..1000).map(|i| (i as f64).sin() * 1e6 + 1e9).collect();
        let s = Summary::from_slice(&xs);
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() as f64 - 1.0);
        assert!((s.mean() - mean).abs() / mean.abs() < 1e-12);
        assert!((s.variance() - var).abs() / var < 1e-9);
    }

    #[test]
    fn coefficient_of_variation() {
        let s = Summary::from_slice(&[10.0, 10.0, 10.0]);
        assert_eq!(s.coeff_of_variation(), 0.0);
        let z = Summary::from_slice(&[-1.0, 1.0]);
        assert_eq!(z.coeff_of_variation(), f64::INFINITY);
    }
}
