//! Least-squares linear regression.
//!
//! The thesis extracts nearly all of its platform parameters as gradients or
//! intercepts of regression lines: computation rate from time-vs-iterations
//! (§4.1), per-request overhead `O_ij` from time-vs-request-count, and wire
//! latency `L_ij` / inverse bandwidth `β_ij` from time-vs-message-size
//! (§5.6.3).

/// Result of fitting `y ≈ intercept + slope·x` by ordinary least squares.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// Gradient of the fitted line.
    pub slope: f64,
    /// Intercept of the fitted line at `x = 0`.
    pub intercept: f64,
    /// Coefficient of determination in `[0, 1]`; 1 for a perfect fit.
    pub r_squared: f64,
    /// Number of points the fit used.
    pub n: usize,
}

impl LinearFit {
    /// Fits a least-squares line through `(x, y)` pairs.
    ///
    /// Requires at least two points with distinct `x` values; otherwise the
    /// fit degenerates to a horizontal line through the mean with
    /// `r_squared = 0`.
    pub fn fit(points: &[(f64, f64)]) -> LinearFit {
        let n = points.len();
        if n == 0 {
            return LinearFit {
                slope: 0.0,
                intercept: 0.0,
                r_squared: 0.0,
                n: 0,
            };
        }
        let nf = n as f64;
        let mean_x = points.iter().map(|p| p.0).sum::<f64>() / nf;
        let mean_y = points.iter().map(|p| p.1).sum::<f64>() / nf;
        let mut sxx = 0.0;
        let mut sxy = 0.0;
        let mut syy = 0.0;
        for &(x, y) in points {
            let dx = x - mean_x;
            let dy = y - mean_y;
            sxx += dx * dx;
            sxy += dx * dy;
            syy += dy * dy;
        }
        if sxx == 0.0 {
            return LinearFit {
                slope: 0.0,
                intercept: mean_y,
                r_squared: 0.0,
                n,
            };
        }
        let slope = sxy / sxx;
        let intercept = mean_y - slope * mean_x;
        let r_squared = if syy == 0.0 {
            1.0
        } else {
            (sxy * sxy) / (sxx * syy)
        };
        LinearFit {
            slope,
            intercept,
            r_squared,
            n,
        }
    }

    /// Evaluates the fitted line at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.intercept + self.slope * x
    }

    /// Intercept clamped below at zero.
    ///
    /// Physical quantities extracted as intercepts (wire latency, §5.6.3)
    /// cannot be negative; tiny negative intercepts arise from noise.
    pub fn nonneg_intercept(&self) -> f64 {
        self.intercept.max(0.0)
    }

    /// Slope clamped below at zero, for inverse bandwidths and per-request
    /// overheads that cannot be negative.
    pub fn nonneg_slope(&self) -> f64 {
        self.slope.max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_recovered() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 3.0 + 2.0 * i as f64)).collect();
        let f = LinearFit::fit(&pts);
        assert!((f.slope - 2.0).abs() < 1e-12);
        assert!((f.intercept - 3.0).abs() < 1e-12);
        assert!((f.r_squared - 1.0).abs() < 1e-12);
        assert_eq!(f.n, 10);
    }

    #[test]
    fn empty_fit_is_zero() {
        let f = LinearFit::fit(&[]);
        assert_eq!(f.slope, 0.0);
        assert_eq!(f.intercept, 0.0);
        assert_eq!(f.n, 0);
    }

    #[test]
    fn constant_x_degenerates_to_mean() {
        let f = LinearFit::fit(&[(1.0, 2.0), (1.0, 4.0)]);
        assert_eq!(f.slope, 0.0);
        assert_eq!(f.intercept, 3.0);
        assert_eq!(f.r_squared, 0.0);
    }

    #[test]
    fn constant_y_is_perfect_horizontal_fit() {
        let f = LinearFit::fit(&[(0.0, 5.0), (1.0, 5.0), (2.0, 5.0)]);
        assert_eq!(f.slope, 0.0);
        assert_eq!(f.intercept, 5.0);
        assert_eq!(f.r_squared, 1.0);
    }

    #[test]
    fn noisy_line_close_to_truth() {
        // Deterministic pseudo-noise, zero-mean over the set.
        let pts: Vec<(f64, f64)> = (0..100)
            .map(|i| {
                let x = i as f64;
                let noise = if i % 2 == 0 { 0.1 } else { -0.1 };
                (x, 7.0 + 0.5 * x + noise)
            })
            .collect();
        let f = LinearFit::fit(&pts);
        assert!((f.slope - 0.5).abs() < 1e-3);
        assert!((f.intercept - 7.0).abs() < 0.05);
        assert!(f.r_squared > 0.999);
    }

    #[test]
    fn predict_and_clamps() {
        let f = LinearFit {
            slope: -0.5,
            intercept: -1.0,
            r_squared: 1.0,
            n: 2,
        };
        assert_eq!(f.predict(2.0), -2.0);
        assert_eq!(f.nonneg_intercept(), 0.0);
        assert_eq!(f.nonneg_slope(), 0.0);
    }
}
