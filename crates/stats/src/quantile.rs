//! Order statistics: medians and linear-interpolated quantiles.
//!
//! Three entry points trade convenience against allocation:
//!
//! * [`quantile`] / [`median`] — borrow a slice, pay one scratch
//!   allocation, and *select* (no full sort) the needed order statistics;
//! * [`quantile_inplace`] — quantile over a caller-owned scratch buffer:
//!   no allocation at all, which is what the parallel measurement loops
//!   use on their per-worker buffers;
//! * [`quantile_sorted`] — O(1) lookup into an already-sorted slice, for
//!   callers that keep their samples ordered (e.g. `Summary`).

use std::cmp::Ordering;

fn cmp(a: &f64, b: &f64) -> Ordering {
    a.partial_cmp(b).expect("NaN in quantile input")
}

/// Sample median. Returns 0 for an empty slice.
///
/// The thesis reports barrier latencies as medians of repeated runs because
/// OS jitter produces a heavy right tail that distorts means (§5.6.3).
pub fn median(xs: &[f64]) -> f64 {
    quantile(xs, 0.5)
}

/// Linear-interpolated quantile (type-7 estimator, the R default).
///
/// `q` is clamped to `[0, 1]`. Returns 0 for an empty slice.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    let mut v: Vec<f64> = xs.to_vec();
    quantile_inplace(&mut v, q)
}

/// [`quantile`] over a caller-owned scratch buffer: allocation-free, and
/// selection-based (`select_nth_unstable`) rather than a full sort. The
/// buffer's element *order* is clobbered; its contents are preserved.
pub fn quantile_inplace(xs: &mut [f64], q: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let q = q.clamp(0.0, 1.0);
    let h = (xs.len() as f64 - 1.0) * q;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    let (_, &mut lo_v, rest) = xs.select_nth_unstable_by(lo, cmp);
    if lo == hi {
        return lo_v;
    }
    // `hi == lo + 1`, so the interpolation partner is the smallest
    // element of the upper partition — a linear scan, not another select.
    let hi_v = rest.iter().copied().fold(f64::INFINITY, f64::min);
    lo_v + (h - lo as f64) * (hi_v - lo_v)
}

/// [`quantile`] of an ascending-sorted slice: no allocation, no data
/// movement, O(1).
pub fn quantile_sorted(xs: &[f64], q: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    debug_assert!(
        xs.windows(2).all(|w| w[0] <= w[1]),
        "quantile_sorted needs ascending input"
    );
    let q = q.clamp(0.0, 1.0);
    let h = (xs.len() as f64 - 1.0) * q;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    if lo == hi {
        xs[lo]
    } else {
        xs[lo] + (h - lo as f64) * (xs[hi] - xs[lo])
    }
}

/// Interquartile range `Q3 − Q1`. Sorts one scratch copy and reads both
/// quartiles from it (the previous implementation cloned *and* fully
/// sorted twice).
pub fn iqr(xs: &[f64]) -> f64 {
    let mut v: Vec<f64> = xs.to_vec();
    v.sort_unstable_by(cmp);
    quantile_sorted(&v, 0.75) - quantile_sorted(&v, 0.25)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_zero() {
        assert_eq!(median(&[]), 0.0);
        assert_eq!(quantile(&[], 0.9), 0.0);
        assert_eq!(quantile_inplace(&mut [], 0.5), 0.0);
        assert_eq!(quantile_sorted(&[], 0.5), 0.0);
    }

    #[test]
    fn median_odd() {
        assert_eq!(median(&[5.0, 1.0, 3.0]), 3.0);
    }

    #[test]
    fn median_even_interpolates() {
        assert_eq!(median(&[1.0, 2.0, 3.0, 4.0]), 2.5);
    }

    #[test]
    fn quantile_extremes_are_min_max() {
        let xs = [9.0, 2.0, 7.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 2.0);
        assert_eq!(quantile(&xs, 1.0), 9.0);
    }

    #[test]
    fn quantile_clamps_out_of_range() {
        let xs = [1.0, 2.0];
        assert_eq!(quantile(&xs, -3.0), 1.0);
        assert_eq!(quantile(&xs, 7.0), 2.0);
    }

    #[test]
    fn quartiles_of_uniform_grid() {
        let xs: Vec<f64> = (0..=100).map(|i| i as f64).collect();
        assert!((quantile(&xs, 0.25) - 25.0).abs() < 1e-12);
        assert!((quantile(&xs, 0.75) - 75.0).abs() < 1e-12);
        assert!((iqr(&xs) - 50.0).abs() < 1e-12);
    }

    #[test]
    fn unsorted_input_is_handled() {
        let xs = [10.0, -1.0, 4.0, 4.0, 2.0];
        assert_eq!(median(&xs), 4.0);
    }

    /// The three paths agree bit-for-bit on awkward sizes and duplicate-
    /// heavy data — the selection path must be a pure optimization.
    #[test]
    fn all_paths_agree() {
        let mut rng = crate::rng::derive_rng(404, 0);
        use rand::Rng;
        for n in 1..40usize {
            let xs: Vec<f64> = (0..n).map(|_| (rng.gen::<f64>() * 8.0).floor()).collect();
            let mut sorted = xs.clone();
            sorted.sort_unstable_by(|a, b| a.partial_cmp(b).expect("no NaN"));
            for k in 0..=10u32 {
                let q = k as f64 / 10.0;
                let a = quantile(&xs, q);
                let mut scratch = xs.clone();
                let b = quantile_inplace(&mut scratch, q);
                let c = quantile_sorted(&sorted, q);
                assert_eq!(a, b, "n={n} q={q}");
                assert_eq!(a, c, "n={n} q={q}");
            }
        }
    }

    #[test]
    fn inplace_reorders_but_preserves_contents() {
        let mut xs = [5.0, 1.0, 4.0, 2.0, 3.0];
        let m = quantile_inplace(&mut xs, 0.5);
        assert_eq!(m, 3.0);
        let mut back = xs;
        back.sort_unstable_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        assert_eq!(back, [1.0, 2.0, 3.0, 4.0, 5.0]);
    }

    #[test]
    #[should_panic]
    fn nan_input_rejected() {
        quantile(&[1.0, f64::NAN, 2.0], 0.5);
    }
}
