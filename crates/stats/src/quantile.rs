//! Order statistics: medians and linear-interpolated quantiles.

/// Sample median. Returns 0 for an empty slice.
///
/// The thesis reports barrier latencies as medians of repeated runs because
/// OS jitter produces a heavy right tail that distorts means (§5.6.3).
pub fn median(xs: &[f64]) -> f64 {
    quantile(xs, 0.5)
}

/// Linear-interpolated quantile (type-7 estimator, the R default).
///
/// `q` is clamped to `[0, 1]`. Returns 0 for an empty slice.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v: Vec<f64> = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    let q = q.clamp(0.0, 1.0);
    let h = (v.len() as f64 - 1.0) * q;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        v[lo] + (h - lo as f64) * (v[hi] - v[lo])
    }
}

/// Interquartile range `Q3 − Q1`.
pub fn iqr(xs: &[f64]) -> f64 {
    quantile(xs, 0.75) - quantile(xs, 0.25)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_zero() {
        assert_eq!(median(&[]), 0.0);
        assert_eq!(quantile(&[], 0.9), 0.0);
    }

    #[test]
    fn median_odd() {
        assert_eq!(median(&[5.0, 1.0, 3.0]), 3.0);
    }

    #[test]
    fn median_even_interpolates() {
        assert_eq!(median(&[1.0, 2.0, 3.0, 4.0]), 2.5);
    }

    #[test]
    fn quantile_extremes_are_min_max() {
        let xs = [9.0, 2.0, 7.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 2.0);
        assert_eq!(quantile(&xs, 1.0), 9.0);
    }

    #[test]
    fn quantile_clamps_out_of_range() {
        let xs = [1.0, 2.0];
        assert_eq!(quantile(&xs, -3.0), 1.0);
        assert_eq!(quantile(&xs, 7.0), 2.0);
    }

    #[test]
    fn quartiles_of_uniform_grid() {
        let xs: Vec<f64> = (0..=100).map(|i| i as f64).collect();
        assert!((quantile(&xs, 0.25) - 25.0).abs() < 1e-12);
        assert!((quantile(&xs, 0.75) - 75.0).abs() < 1e-12);
        assert!((iqr(&xs) - 50.0).abs() < 1e-12);
    }

    #[test]
    fn unsorted_input_is_handled() {
        let xs = [10.0, -1.0, 4.0, 4.0, 2.0];
        assert_eq!(median(&xs), 4.0);
    }
}
