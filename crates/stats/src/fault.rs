//! Deterministic fault injection: the model and its per-repetition
//! realization.
//!
//! Real clusters crash, drop signals, degrade links and straggle; the
//! thesis models healthy machines only. This module supplies the fault
//! layer's *randomness contract*, built exactly like the jitter engine
//! (see DESIGN.md, "The fault layer"): every fault decision is realized
//! from counter-based [`SplitMix64`] streams keyed
//! `(seed, label, rep)`, so a repetition's faults depend only on its own
//! coordinates — never on thread count, lane width or execution order —
//! and the zero-fault configuration draws from *disjoint* streams,
//! leaving the fault-free draw order untouched bit-for-bit.
//!
//! Two streams per repetition:
//!
//! * [`FAULT_LABEL`] — the **plan stream**: crash set and crash times,
//!   per-node correlated slow periods and degraded links, per-rank
//!   Pareto-tailed straggler delays. Fixed draw order; realized once
//!   per repetition into a [`FaultPlan`].
//! * [`FAULT_DROP_LABEL`] — the **drop stream**: exactly one uniform per
//!   planned signal, converted to a retransmission-attempt count by the
//!   geometric inverse CDF (see [`attempts_from_uniform`]). One draw per
//!   signal — consumed even for suppressed (crashed-sender) signals —
//!   keeps the drop-draw count a pure function of the plan shape, which
//!   is what lets `hpm-analyze`'s draw audit extend to fault draws and
//!   keeps lane/thread invariance trivial.

use crate::stream::{ParetoQuantileTable, SplitMix64};

/// Stream label of the per-repetition fault-plan realization ("FALT").
pub const FAULT_LABEL: u64 = 0x4641_4C54;

/// Stream label of the per-signal drop/attempt stream ("DROP").
pub const FAULT_DROP_LABEL: u64 = 0x4452_4F50;

/// Per-link-class drop probabilities. The simulator classifies each
/// signal by whether it crosses node boundaries; intra-node transport
/// (shared memory) and the wire fail at very different rates, so the
/// knobs are separate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DropProb {
    /// Drop probability of intra-node signals.
    pub local: f64,
    /// Drop probability of inter-node (wire) signals.
    pub remote: f64,
}

impl DropProb {
    /// No drops on either class.
    pub const NONE: DropProb = DropProb {
        local: 0.0,
        remote: 0.0,
    };

    /// The same probability on both classes.
    pub fn uniform(p: f64) -> DropProb {
        DropProb {
            local: p,
            remote: p,
        }
    }
}

/// Why a [`FaultModel`] failed validation — one variant per knob class,
/// carrying the offending field name and value so sweep drivers can
/// surface exactly which configuration entry is bad instead of
/// panicking mid-run.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultModelError {
    /// A probability knob outside `[0, 1)`.
    ProbabilityOutOfRange { field: &'static str, value: f64 },
    /// A multiplier knob below 1 (faults slow things down, never speed
    /// them up).
    MultiplierBelowOne { field: &'static str, value: f64 },
    /// A duration knob below 0.
    NegativeDuration { field: &'static str, value: f64 },
    /// The retry timeout is not strictly positive.
    NonPositiveTimeout { value: f64 },
    /// The exponential backoff factor is below 1.
    BackoffBelowOne { value: f64 },
}

impl std::fmt::Display for FaultModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultModelError::ProbabilityOutOfRange { field, value } => {
                write!(f, "{field} must be in [0,1), got {value}")
            }
            FaultModelError::MultiplierBelowOne { field, value } => {
                write!(f, "{field} must be >= 1, got {value}")
            }
            FaultModelError::NegativeDuration { field, value } => {
                write!(f, "{field} must be >= 0, got {value}")
            }
            FaultModelError::NonPositiveTimeout { value } => {
                write!(f, "timeout must be positive, got {value}")
            }
            FaultModelError::BackoffBelowOne { value } => {
                write!(f, "backoff must be >= 1, got {value}")
            }
        }
    }
}

impl std::error::Error for FaultModelError {}

/// The fault configuration: what *can* go wrong and how often.
///
/// All knobs at their [`FaultModel::NONE`] values make every realized
/// [`FaultPlan`] neutral — no crashes, all multipliers exactly 1.0, all
/// delays exactly +0.0 — and the faulty executor's arithmetic collapses
/// to the fault-free path bit-for-bit (`x·1.0 ≡ x`, `x + 0.0 ≡ x` in
/// IEEE-754 for the finite non-negative times the simulator produces).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultModel {
    /// Ranks crashed per repetition (drawn without replacement).
    pub crash_count: usize,
    /// Crash times are uniform in `[0, crash_window)` seconds.
    pub crash_window: f64,
    /// Per-link-class signal drop probability.
    pub drop: DropProb,
    /// Probability a node's NIC/link is degraded for the repetition.
    pub degraded_prob: f64,
    /// Wire-time multiplier on signals touching a degraded node (≥ 1).
    pub degraded_mult: f64,
    /// Probability a node spends the repetition in a slow period
    /// (correlated across every draw on that node).
    pub slow_prob: f64,
    /// Service-time multiplier on slow nodes (≥ 1).
    pub slow_mult: f64,
    /// Probability a rank straggles into the repetition.
    pub straggler_prob: f64,
    /// Scale (seconds) of the straggler entry delay.
    pub straggler_scale: f64,
    /// Pareto tail exponent of the straggler delay (smaller = heavier).
    pub straggler_alpha: f64,
    /// Seconds a sender waits for an acknowledgement before
    /// retransmitting, and a receiver waits past its post before
    /// declaring a missing signal timed out.
    pub timeout: f64,
    /// Retransmissions attempted before a signal is declared lost.
    pub max_retries: u32,
    /// Exponential backoff factor between retransmissions (≥ 1).
    pub backoff: f64,
}

impl FaultModel {
    /// The healthy cluster: nothing fails, nothing straggles.
    pub const NONE: FaultModel = FaultModel {
        crash_count: 0,
        crash_window: 0.0,
        drop: DropProb::NONE,
        degraded_prob: 0.0,
        degraded_mult: 1.0,
        slow_prob: 0.0,
        slow_mult: 1.0,
        straggler_prob: 0.0,
        straggler_scale: 0.0,
        straggler_alpha: 2.0,
        timeout: 1e-3,
        max_retries: 3,
        backoff: 2.0,
    };

    /// True when every realized plan is neutral and no signal can drop —
    /// the executor may (but need not) skip fault bookkeeping entirely.
    pub fn is_none(&self) -> bool {
        self.crash_count == 0
            && self.drop == DropProb::NONE
            && self.degraded_prob == 0.0
            && self.slow_prob == 0.0
            && self.straggler_prob == 0.0
    }

    /// Validates the knob ranges (probabilities in [0,1), multipliers
    /// ≥ 1, positive timeout/backoff) without panicking — the entry
    /// points that accept user-supplied configurations (`run_spmd`, the
    /// faulty/recovering measurement loops) call this so a bad model
    /// fails with a structured, clearly worded error instead of silently
    /// misbehaving mid-sweep.
    pub fn checked(&self) -> Result<(), FaultModelError> {
        for (field, value) in [
            ("drop.local", self.drop.local),
            ("drop.remote", self.drop.remote),
            ("degraded_prob", self.degraded_prob),
            ("slow_prob", self.slow_prob),
            ("straggler_prob", self.straggler_prob),
        ] {
            if !(0.0..1.0).contains(&value) {
                return Err(FaultModelError::ProbabilityOutOfRange { field, value });
            }
        }
        for (field, value) in [
            ("degraded_mult", self.degraded_mult),
            ("slow_mult", self.slow_mult),
        ] {
            if !(1.0..).contains(&value) {
                return Err(FaultModelError::MultiplierBelowOne { field, value });
            }
        }
        for (field, value) in [
            ("crash_window", self.crash_window),
            ("straggler_scale", self.straggler_scale),
        ] {
            if !(0.0..).contains(&value) {
                return Err(FaultModelError::NegativeDuration { field, value });
            }
        }
        if self.timeout.is_nan() || self.timeout <= 0.0 {
            return Err(FaultModelError::NonPositiveTimeout {
                value: self.timeout,
            });
        }
        if !(1.0..).contains(&self.backoff) {
            return Err(FaultModelError::BackoffBelowOne {
                value: self.backoff,
            });
        }
        Ok(())
    }

    /// Panicking twin of [`FaultModel::checked`] for call sites whose
    /// models are authored in code, where a bad knob is a bug.
    pub fn validate(&self) {
        if let Err(e) = self.checked() {
            panic!("invalid FaultModel: {e}");
        }
    }

    /// Plan-stream draws consumed by [`FaultPlan::realize`] for `p`
    /// ranks on `nodes` nodes — the fault twin of
    /// `CompiledPattern::jitter_draws`, audited by the determinism
    /// tests. A pure function of the model and the machine shape.
    pub fn plan_draws(&self, p: usize, nodes: usize) -> usize {
        if self.is_none() {
            return 0;
        }
        2 * self.crash_count.min(p) + 2 * nodes + 2 * p
    }

    /// Backed-off windows summed beyond this many waits contribute
    /// nothing new at f64 precision for any sane timeout (with the
    /// minimal backoff of 2 the 64th window is already 2⁶³ timeouts), so
    /// [`FaultModel::retry_delay`] saturates here: the loop stays O(1)
    /// for adversarially large retry caps and the unguarded geometric
    /// growth can no longer overflow a total to `inf` and poison every
    /// downstream mean.
    pub const MAX_BACKOFF_STEPS: u32 = 64;

    /// The added latency of `attempts − 1` retransmissions: the sender
    /// burns the full (exponentially backed-off) timeout of every
    /// failed attempt before the one that lands. Saturates after
    /// [`FaultModel::MAX_BACKOFF_STEPS`] windows and clamps the sum to
    /// `f64::MAX`, so the result is finite for every attempt count —
    /// large retry caps inflate totals, they never `inf`-poison them.
    pub fn retry_delay(&self, attempts: u32) -> f64 {
        let steps = attempts.saturating_sub(1).min(Self::MAX_BACKOFF_STEPS);
        let mut delay = 0.0;
        let mut window = self.timeout;
        for _ in 0..steps {
            delay += window;
            window *= self.backoff;
        }
        delay.min(f64::MAX)
    }

    /// The full retry budget: time burned when every attempt fails and
    /// the signal is declared lost (`max_retries + 1` windows; the
    /// addition saturates so a `u32::MAX` retry cap is legal).
    pub fn loss_delay(&self) -> f64 {
        self.retry_delay(self.max_retries.saturating_add(2))
    }
}

/// Converts one uniform into a delivery-attempt count by the geometric
/// inverse CDF: `P(first n attempts all drop) = drop_p^n`, so
/// `attempts = 1 + ⌊ln(u)/ln(drop_p)⌋`. `drop_p ≤ 0` yields 1 attempt
/// (the caller consumes the uniform regardless, keeping the drop-draw
/// count independent of the knob values). Counts above
/// `max_retries + 1` mean the signal was lost.
#[inline]
pub fn attempts_from_uniform(u: f64, drop_p: f64) -> u32 {
    if drop_p <= 0.0 {
        return 1;
    }
    debug_assert!(drop_p < 1.0, "drop probability must be < 1, got {drop_p}");
    let failures = (u.ln() / drop_p.ln()) as u32;
    1 + failures
}

/// The per-signal drop stream: one uniform per planned signal from
/// `(seed, FAULT_DROP_LABEL, rep)`, with a draw counter so executors can
/// audit consumed-vs-planned exactly like the jitter engine does.
#[derive(Debug, Clone)]
pub struct DropStream {
    stream: SplitMix64,
    drawn: usize,
}

impl DropStream {
    /// Stream for repetition `rep`.
    pub fn new(seed: u64, rep: u64) -> DropStream {
        DropStream {
            stream: SplitMix64::from_parts(seed, FAULT_DROP_LABEL, rep),
            drawn: 0,
        }
    }

    /// The next uniform in (0, 1); every planned signal consumes exactly
    /// one, dropped-or-not, crashed-sender-or-not.
    #[inline]
    pub fn next_uniform(&mut self) -> f64 {
        self.drawn += 1;
        self.stream.next_unit_open()
    }

    /// Uniforms consumed since construction.
    pub fn drawn(&self) -> usize {
        self.drawn
    }
}

/// One repetition's realized faults: which ranks crash when, which
/// nodes are slow or degraded, which ranks straggle — everything the
/// executor needs, precomputed so the hot loop reads arrays.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Per-rank crash time; `f64::INFINITY` for surviving ranks.
    pub crash_time: Vec<f64>,
    /// Per-node service-time multiplier (1.0 = healthy).
    pub node_slow: Vec<f64>,
    /// Per-node wire-time multiplier (1.0 = healthy link).
    pub node_degraded: Vec<f64>,
    /// Per-rank entry delay in seconds (+0.0 = on time).
    pub straggler_delay: Vec<f64>,
}

impl FaultPlan {
    /// A neutral plan: nobody crashes, every multiplier is exactly 1.0,
    /// every delay exactly +0.0 — bitwise inert under IEEE-754.
    pub fn neutral(p: usize, nodes: usize) -> FaultPlan {
        FaultPlan {
            crash_time: vec![f64::INFINITY; p],
            node_slow: vec![1.0; nodes],
            node_degraded: vec![1.0; nodes],
            straggler_delay: vec![0.0; p],
        }
    }

    /// Realizes `model` for repetition `rep` from the plan stream
    /// `(seed, FAULT_LABEL, rep)`. The draw order is fixed — crash
    /// ranks, crash times, per-node slow/degraded gates, per-rank
    /// straggler gate + magnitude — and the draw count is
    /// [`FaultModel::plan_draws`] exactly. A [`FaultModel::is_none`]
    /// model short-circuits to [`FaultPlan::neutral`] without touching
    /// the stream.
    ///
    /// One-shot convenience over [`FaultPlan::realize_into`], which
    /// repetition loops use to reuse one plan's buffers.
    pub fn realize(model: &FaultModel, p: usize, nodes: usize, seed: u64, rep: u64) -> FaultPlan {
        let mut plan = FaultPlan::neutral(p, nodes);
        plan.realize_into(model, p, nodes, seed, rep);
        plan
    }

    /// In-place twin of [`FaultPlan::realize`]: resets this plan to
    /// neutral (resizing its buffers when the machine shape changed) and
    /// realizes `model` into it — same streams, same draw order, same
    /// bits, zero heap allocations once the buffers are sized.
    pub fn realize_into(
        &mut self,
        model: &FaultModel,
        p: usize,
        nodes: usize,
        seed: u64,
        rep: u64,
    ) {
        self.crash_time.clear();
        self.crash_time.resize(p, f64::INFINITY);
        self.node_slow.clear();
        self.node_slow.resize(nodes, 1.0);
        self.node_degraded.clear();
        self.node_degraded.resize(nodes, 1.0);
        self.straggler_delay.clear();
        self.straggler_delay.resize(p, 0.0);
        if model.is_none() {
            return;
        }
        let mut s = SplitMix64::from_parts(seed, FAULT_LABEL, rep);
        // Crash set: k draws mapped onto ranks, collisions resolved by
        // upward linear probing so the draw count stays fixed at k.
        let k = model.crash_count.min(p);
        for _ in 0..k {
            let mut r = (s.next_u64() % p as u64) as usize;
            while self.crash_time[r] < f64::INFINITY {
                r = (r + 1) % p;
            }
            self.crash_time[r] = 0.0; // marked; time assigned below
        }
        // Crash times, in rank order so the assignment is deterministic.
        for t in self.crash_time.iter_mut() {
            if *t < f64::INFINITY {
                *t = s.next_unit_open() * model.crash_window;
            }
        }
        // Correlated per-node state: one slow gate and one degraded gate
        // per node, both always drawn.
        for n in 0..nodes {
            let u_slow = s.next_unit_open();
            let u_deg = s.next_unit_open();
            if u_slow < model.slow_prob {
                self.node_slow[n] = model.slow_mult;
            }
            if u_deg < model.degraded_prob {
                self.node_degraded[n] = model.degraded_mult;
            }
        }
        // Per-rank stragglers: gate and Pareto magnitude, both always
        // drawn so the count is independent of the gate outcomes.
        let pareto = if model.straggler_prob > 0.0 && model.straggler_scale > 0.0 {
            Some(ParetoQuantileTable::new(model.straggler_alpha))
        } else {
            None
        };
        for d in self.straggler_delay.iter_mut() {
            let u_gate = s.next_unit_open();
            let u_mag = s.next_unit_open();
            if let Some(tab) = &pareto {
                if u_gate < model.straggler_prob {
                    *d = model.straggler_scale * tab.mult(u_mag);
                }
            }
        }
    }

    /// A neutral plan with the given ranks force-crashed at time 0 — the
    /// deterministic "what if exactly this set fails" scenario the
    /// recovery sweep replays against every registry crash set, with no
    /// stream draws at all.
    ///
    /// # Panics
    ///
    /// Panics when a rank is out of range.
    pub fn with_crashes(p: usize, nodes: usize, crashed: &[usize]) -> FaultPlan {
        let mut plan = FaultPlan::neutral(p, nodes);
        for &r in crashed {
            assert!(r < p, "crashed rank {r} out of range for p={p}");
            plan.crash_time[r] = 0.0;
        }
        plan
    }

    /// True when rank `i` has crashed by time `t`.
    #[inline]
    pub fn crashed_at(&self, rank: usize, t: f64) -> bool {
        t >= self.crash_time[rank]
    }

    /// Ranks that crash at any time in this repetition, ascending —
    /// allocation-free; the repetition loops' variant of
    /// [`FaultPlan::crashed_ranks`].
    pub fn crashed_ranks_iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.crash_time
            .iter()
            .enumerate()
            .filter(|(_, &t)| t < f64::INFINITY)
            .map(|(r, _)| r)
    }

    /// Ranks that crash at any time in this repetition, collected.
    pub fn crashed_ranks(&self) -> Vec<usize> {
        self.crashed_ranks_iter().collect()
    }

    /// Wire-time multiplier of a signal between two nodes: the worse of
    /// the two endpoint links (a degraded NIC bottlenecks both
    /// directions).
    #[inline]
    pub fn wire_mult(&self, src_node: usize, dst_node: usize) -> f64 {
        self.node_degraded[src_node].max(self.node_degraded[dst_node])
    }

    /// True when every field is bitwise neutral.
    pub fn is_neutral(&self) -> bool {
        self.crash_time.iter().all(|t| *t == f64::INFINITY)
            && self.node_slow.iter().all(|m| *m == 1.0)
            && self.node_degraded.iter().all(|m| *m == 1.0)
            && self.straggler_delay.iter().all(|d| *d == 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn faulty_model() -> FaultModel {
        FaultModel {
            crash_count: 3,
            crash_window: 1e-3,
            drop: DropProb::uniform(0.05),
            degraded_prob: 0.2,
            degraded_mult: 4.0,
            slow_prob: 0.3,
            slow_mult: 2.0,
            straggler_prob: 0.1,
            straggler_scale: 1e-4,
            straggler_alpha: 1.5,
            ..FaultModel::NONE
        }
    }

    #[test]
    fn none_model_realizes_neutral_without_draws() {
        let plan = FaultPlan::realize(&FaultModel::NONE, 16, 4, 42, 0);
        assert!(plan.is_neutral());
        assert_eq!(plan, FaultPlan::neutral(16, 4));
        assert_eq!(FaultModel::NONE.plan_draws(16, 4), 0);
    }

    #[test]
    fn realization_is_deterministic_per_rep_and_distinct_across_reps() {
        let m = faulty_model();
        let a = FaultPlan::realize(&m, 32, 8, 7, 5);
        let b = FaultPlan::realize(&m, 32, 8, 7, 5);
        assert_eq!(a, b);
        let c = FaultPlan::realize(&m, 32, 8, 7, 6);
        assert_ne!(a, c);
    }

    #[test]
    fn crash_set_has_exactly_k_distinct_ranks_inside_the_window() {
        let m = faulty_model();
        for rep in 0..50 {
            let plan = FaultPlan::realize(&m, 32, 8, 11, rep);
            let crashed = plan.crashed_ranks();
            assert_eq!(crashed.len(), 3, "rep {rep}");
            for &r in &crashed {
                let t = plan.crash_time[r];
                assert!(
                    (0.0..m.crash_window).contains(&t),
                    "rep {rep} rank {r} t {t}"
                );
            }
        }
    }

    #[test]
    fn crash_count_saturates_at_p() {
        let m = FaultModel {
            crash_count: 99,
            crash_window: 1.0,
            ..FaultModel::NONE
        };
        let plan = FaultPlan::realize(&m, 8, 2, 1, 0);
        assert_eq!(plan.crashed_ranks().len(), 8);
    }

    #[test]
    fn node_states_hit_their_configured_rates() {
        let m = faulty_model();
        let (mut slow, mut deg, mut strag) = (0usize, 0usize, 0usize);
        let reps = 2000u64;
        let (p, nodes) = (16, 8);
        for rep in 0..reps {
            let plan = FaultPlan::realize(&m, p, nodes, 3, rep);
            slow += plan.node_slow.iter().filter(|&&x| x > 1.0).count();
            deg += plan.node_degraded.iter().filter(|&&x| x > 1.0).count();
            strag += plan.straggler_delay.iter().filter(|&&x| x > 0.0).count();
        }
        let rate = |hits: usize, per: usize| hits as f64 / (reps as usize * per) as f64;
        assert!((rate(slow, nodes) - m.slow_prob).abs() < 0.02);
        assert!((rate(deg, nodes) - m.degraded_prob).abs() < 0.02);
        assert!((rate(strag, p) - m.straggler_prob).abs() < 0.02);
    }

    #[test]
    fn geometric_attempts_match_drop_probability() {
        // P(attempts > 1) = drop_p; P(attempts > 2) = drop_p².
        let drop_p = 0.3;
        let mut s = SplitMix64::from_parts(9, 9, 9);
        let n = 100_000;
        let (mut retried, mut retried_twice) = (0usize, 0usize);
        for _ in 0..n {
            let a = attempts_from_uniform(s.next_unit_open(), drop_p);
            assert!(a >= 1);
            if a > 1 {
                retried += 1;
            }
            if a > 2 {
                retried_twice += 1;
            }
        }
        assert!((retried as f64 / n as f64 - drop_p).abs() < 0.01);
        assert!((retried_twice as f64 / n as f64 - drop_p * drop_p).abs() < 0.01);
    }

    #[test]
    fn zero_drop_probability_is_one_attempt() {
        assert_eq!(attempts_from_uniform(0.5, 0.0), 1);
        assert_eq!(attempts_from_uniform(1e-12, 0.0), 1);
    }

    #[test]
    fn retry_delay_follows_exponential_backoff() {
        let m = FaultModel {
            timeout: 1.0,
            backoff: 2.0,
            max_retries: 3,
            ..FaultModel::NONE
        };
        assert_eq!(m.retry_delay(1), 0.0);
        assert_eq!(m.retry_delay(2), 1.0);
        assert_eq!(m.retry_delay(3), 3.0);
        assert_eq!(m.retry_delay(4), 7.0);
        // Loss burns all max_retries + 1 windows: 1 + 2 + 4 + 8.
        assert_eq!(m.loss_delay(), 15.0);
    }

    /// The backoff saturation point: attempts beyond
    /// `MAX_BACKOFF_STEPS + 1` add nothing, the value stays finite for
    /// any attempt count, and the pinned small-attempt values are
    /// untouched by the clamp.
    #[test]
    fn retry_delay_saturates_finite() {
        let m = FaultModel {
            timeout: 1.0,
            backoff: 2.0,
            max_retries: 3,
            ..FaultModel::NONE
        };
        let cap = FaultModel::MAX_BACKOFF_STEPS;
        let at_cap = m.retry_delay(cap + 1);
        assert!(at_cap.is_finite());
        // 2^64 − 1 at timeout 1, backoff 2.
        assert_eq!(at_cap, 2f64.powi(64) - 1.0);
        assert_eq!(m.retry_delay(cap + 2), at_cap, "saturation point");
        assert_eq!(m.retry_delay(u32::MAX), at_cap);
        // An adversarial model that used to overflow to inf in a handful
        // of windows now clamps to f64::MAX.
        let nasty = FaultModel {
            timeout: 1e308,
            backoff: 10.0,
            max_retries: u32::MAX,
            ..FaultModel::NONE
        };
        assert!(nasty.retry_delay(u32::MAX).is_finite());
        assert!(nasty.loss_delay().is_finite(), "u32::MAX cap may not wrap");
    }

    #[test]
    fn checked_reports_structured_errors() {
        assert_eq!(FaultModel::NONE.checked(), Ok(()));
        assert_eq!(faulty_model().checked(), Ok(()));
        let bad_prob = FaultModel {
            drop: DropProb::uniform(1.0),
            ..FaultModel::NONE
        };
        let err = bad_prob.checked().expect_err("certain drop is invalid");
        assert_eq!(
            err,
            FaultModelError::ProbabilityOutOfRange {
                field: "drop.local",
                value: 1.0
            }
        );
        assert_eq!(err.to_string(), "drop.local must be in [0,1), got 1");
        let boxed: Box<dyn std::error::Error> = Box::new(err);
        assert!(boxed.to_string().contains("drop.local"));
        let bad_timeout = FaultModel {
            timeout: 0.0,
            ..FaultModel::NONE
        };
        assert_eq!(
            bad_timeout.checked(),
            Err(FaultModelError::NonPositiveTimeout { value: 0.0 })
        );
        let bad_backoff = FaultModel {
            backoff: 0.5,
            ..FaultModel::NONE
        };
        assert_eq!(
            bad_backoff.checked(),
            Err(FaultModelError::BackoffBelowOne { value: 0.5 })
        );
        let nan_mult = FaultModel {
            slow_mult: f64::NAN,
            ..FaultModel::NONE
        };
        assert!(matches!(
            nan_mult.checked(),
            Err(FaultModelError::MultiplierBelowOne {
                field: "slow_mult",
                ..
            })
        ));
    }

    #[test]
    fn realize_into_matches_realize_bitwise_and_resizes() {
        let m = faulty_model();
        let mut plan = FaultPlan::neutral(1, 1);
        plan.realize_into(&m, 32, 8, 7, 5);
        assert_eq!(plan, FaultPlan::realize(&m, 32, 8, 7, 5));
        // Reuse across shapes and models, including back to neutral.
        plan.realize_into(&FaultModel::NONE, 16, 4, 7, 5);
        assert_eq!(plan, FaultPlan::neutral(16, 4));
    }

    #[test]
    fn crashed_ranks_iter_matches_collected() {
        let m = faulty_model();
        let plan = FaultPlan::realize(&m, 32, 8, 11, 3);
        assert_eq!(
            plan.crashed_ranks_iter().collect::<Vec<_>>(),
            plan.crashed_ranks()
        );
    }

    #[test]
    fn with_crashes_forces_exactly_the_given_set() {
        let plan = FaultPlan::with_crashes(8, 2, &[1, 6]);
        assert_eq!(plan.crashed_ranks(), vec![1, 6]);
        assert!(plan.crashed_at(1, 0.0) && plan.crashed_at(6, 0.0));
        assert!(!plan.crashed_at(0, f64::MAX));
        assert!(!plan.is_neutral());
        assert!(FaultPlan::with_crashes(4, 1, &[]).is_neutral());
    }

    #[test]
    fn drop_stream_counts_its_draws() {
        let mut d = DropStream::new(4, 2);
        for _ in 0..17 {
            let u = d.next_uniform();
            assert!(u > 0.0 && u < 1.0);
        }
        assert_eq!(d.drawn(), 17);
        // Same (seed, rep) → same stream.
        let mut e = DropStream::new(4, 2);
        let mut f = DropStream::new(4, 2);
        assert_eq!(e.next_uniform().to_bits(), f.next_uniform().to_bits());
    }

    #[test]
    fn plan_draw_count_matches_the_declared_formula() {
        let m = faulty_model();
        assert_eq!(m.plan_draws(32, 8), 2 * 3 + 2 * 8 + 2 * 32);
    }

    #[test]
    fn validate_accepts_the_faulty_model() {
        faulty_model().validate();
        FaultModel::NONE.validate();
    }

    #[test]
    #[should_panic]
    fn validate_rejects_degraded_mult_below_one() {
        FaultModel {
            degraded_mult: 0.5,
            ..FaultModel::NONE
        }
        .validate();
    }
}
