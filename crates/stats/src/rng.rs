//! Deterministic RNG plumbing and jitter models.
//!
//! Every stochastic element of the simulator draws from an explicitly seeded
//! `StdRng` so that experiments reproduce bit-for-bit. Jitter is modeled as
//! a log-normal multiplier on service times: OS noise on the thesis' test
//! systems is strictly positive and heavy-tailed (§4.1, §5.6.3), which a
//! log-normal captures while keeping the median — the statistic the
//! benchmarks extract — equal to the noise-free value.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Derives an independent child RNG from a base seed and a stream label.
///
/// Mixing uses SplitMix64 so that nearby labels produce uncorrelated
/// streams; the same `(seed, label)` always yields the same stream.
pub fn derive_rng(seed: u64, label: u64) -> StdRng {
    let mut z = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(label)
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut next = || {
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut x = z;
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    };
    let mut key = [0u8; 32];
    for chunk in key.chunks_mut(8) {
        chunk.copy_from_slice(&next().to_le_bytes());
    }
    StdRng::from_seed(key)
}

/// Multiplicative log-normal jitter with median 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JitterModel {
    /// Standard deviation of the underlying normal (log-space sigma).
    /// 0 disables jitter entirely.
    pub sigma: f64,
}

impl JitterModel {
    /// No jitter: every draw returns exactly 1.
    pub const NONE: JitterModel = JitterModel { sigma: 0.0 };

    /// Creates a jitter model; `sigma` must be non-negative and finite.
    pub fn new(sigma: f64) -> JitterModel {
        assert!(
            sigma.is_finite() && sigma >= 0.0,
            "jitter sigma must be finite and non-negative, got {sigma}"
        );
        JitterModel { sigma }
    }

    /// Draws a multiplier with median 1 (log-normal, `exp(sigma·Z)`).
    pub fn draw<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.sigma == 0.0 {
            return 1.0;
        }
        // Box-Muller from two uniforms; rand's StandardNormal would need the
        // rand_distr crate, which we avoid.
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen::<f64>();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (self.sigma * z).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quantile::median;

    #[test]
    fn same_seed_same_stream() {
        let mut a = derive_rng(42, 7);
        let mut b = derive_rng(42, 7);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_labels_differ() {
        let mut a = derive_rng(42, 7);
        let mut b = derive_rng(42, 8);
        let av: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let bv: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(av, bv);
    }

    #[test]
    fn zero_sigma_is_identity() {
        let mut rng = derive_rng(1, 1);
        for _ in 0..10 {
            assert_eq!(JitterModel::NONE.draw(&mut rng), 1.0);
        }
    }

    #[test]
    fn jitter_is_positive_with_median_near_one() {
        let jm = JitterModel::new(0.2);
        let mut rng = derive_rng(9, 3);
        let draws: Vec<f64> = (0..20_000).map(|_| jm.draw(&mut rng)).collect();
        assert!(draws.iter().all(|&x| x > 0.0));
        let med = median(&draws);
        assert!((med - 1.0).abs() < 0.02, "median {med}");
    }

    #[test]
    fn jitter_mean_exceeds_median() {
        // Log-normal is right-skewed: mean e^{σ²/2} > 1.
        let jm = JitterModel::new(0.5);
        let mut rng = derive_rng(5, 5);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| jm.draw(&mut rng)).sum::<f64>() / n as f64;
        assert!(mean > 1.05, "mean {mean}");
    }

    #[test]
    #[should_panic]
    fn negative_sigma_rejected() {
        JitterModel::new(-0.1);
    }
}
