//! Deterministic RNG plumbing and jitter models.
//!
//! Every stochastic element of the simulator draws from an explicitly seeded
//! stream so that experiments reproduce bit-for-bit. Jitter is modeled as
//! a log-normal multiplier on service times: OS noise on the thesis' test
//! systems is strictly positive and heavy-tailed (§4.1, §5.6.3), which a
//! log-normal captures while keeping the median — the statistic the
//! benchmarks extract — equal to the noise-free value.
//!
//! Two delivery mechanisms exist behind the one [`JitterSource`] trait:
//!
//! * [`ScalarJitter`] — `StdRng` + [`JitterModel::draw`], for call sites
//!   that draw occasionally (program compute times, one-shot runs). The
//!   Box-Muller transform produces two normals per uniform pair; `draw`
//!   caches the sine-branch output and serves it on the next call, so the
//!   scalar path costs one transcendental set per *two* draws.
//! * [`JitterBuf`] — a table of multipliers batch-filled from
//!   counter-based [`crate::stream::SplitMix64`] uniform streams through
//!   the tabulated quantile function
//!   ([`crate::stream::LognormalQuantileTable`]), consumed by cursor.
//!   This is the hot-path engine: the executor announces its exact draw
//!   count up front (`CompiledPattern::jitter_draws` in `hpm-core`), the
//!   buffer fills in one tight pass, and the inner simulation loop
//!   becomes pure indexed arithmetic.
//!   [`crate::stream::NormalSource`] keeps the exact (non-tabulated)
//!   composition as the reference the equivalence tests compare
//!   against.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Derives an independent child RNG from a base seed and a stream label.
///
/// Mixing uses SplitMix64 so that nearby labels produce uncorrelated
/// streams; the same `(seed, label)` always yields the same stream.
pub fn derive_rng(seed: u64, label: u64) -> StdRng {
    let mut z = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(label)
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut next = || {
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut x = z;
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    };
    let mut key = [0u8; 32];
    for chunk in key.chunks_mut(8) {
        chunk.copy_from_slice(&next().to_le_bytes());
    }
    StdRng::from_seed(key)
}

/// Multiplicative log-normal jitter with median 1.
///
/// Copies are cheap and carry their own Box-Muller cache; equality
/// compares the configuration (`sigma`) only.
#[derive(Debug, Clone, Copy)]
pub struct JitterModel {
    /// Standard deviation of the underlying normal (log-space sigma).
    /// 0 disables jitter entirely.
    pub sigma: f64,
    /// Cached second Box-Muller output (the sine branch), served on the
    /// next call so a pair of draws costs one transcendental set.
    spare: Option<f64>,
}

impl PartialEq for JitterModel {
    fn eq(&self, other: &JitterModel) -> bool {
        self.sigma == other.sigma
    }
}

impl JitterModel {
    /// No jitter: every draw returns exactly 1.
    pub const NONE: JitterModel = JitterModel {
        sigma: 0.0,
        spare: None,
    };

    /// Creates a jitter model; `sigma` must be non-negative and finite.
    pub fn new(sigma: f64) -> JitterModel {
        assert!(
            sigma.is_finite() && sigma >= 0.0,
            "jitter sigma must be finite and non-negative, got {sigma}"
        );
        JitterModel { sigma, spare: None }
    }

    /// Draws a multiplier with median 1 (log-normal, `exp(sigma·Z)`).
    ///
    /// Box-Muller from two uniforms (rand's StandardNormal would need the
    /// rand_distr crate, which we avoid), using *both* outputs: the
    /// cosine branch is returned immediately, the sine branch is cached
    /// and served on the next call without touching `rng`.
    pub fn draw<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        if self.sigma == 0.0 {
            return 1.0;
        }
        let z = match self.spare.take() {
            Some(z) => z,
            None => {
                let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                let u2: f64 = rng.gen::<f64>();
                let r = (-2.0 * u1.ln()).sqrt();
                let (sin, cos) = (2.0 * std::f64::consts::PI * u2).sin_cos();
                self.spare = Some(r * sin);
                r * cos
            }
        };
        (self.sigma * z).exp()
    }
}

/// A stream of jitter multipliers, as the message engine consumes them.
///
/// The simulator's timing loops are generic over this trait so the same
/// executor code runs on the scalar `StdRng` path and on batch-filled
/// tables; which one a caller picks decides the RNG draw-order contract
/// (see DESIGN.md, "The jitter engine").
pub trait JitterSource {
    /// The next multiplier (1.0 exactly when jitter is disabled).
    fn next_mult(&mut self) -> f64;
}

/// Scalar [`JitterSource`]: a [`JitterModel`] drawing from a borrowed
/// RNG. The model is held by value, so the Box-Muller pair cache lives
/// for this adapter's lifetime.
///
/// The adapter counts its `next_mult` calls (σ = 0 included — a draw
/// *slot* is consumed even when the multiplier short-circuits to 1.0),
/// so scalar executors can audit consumed-vs-planned draws against
/// `CompiledPattern::jitter_draws` exactly like the batched
/// [`JitterBuf`] path does.
pub struct ScalarJitter<'a, R: Rng + ?Sized> {
    model: JitterModel,
    rng: &'a mut R,
    drawn: usize,
}

impl<'a, R: Rng + ?Sized> ScalarJitter<'a, R> {
    /// Adapter over a model copy and a borrowed RNG.
    pub fn new(model: JitterModel, rng: &'a mut R) -> ScalarJitter<'a, R> {
        ScalarJitter {
            model,
            rng,
            drawn: 0,
        }
    }

    /// Multiplier slots consumed since construction (or the last
    /// [`ScalarJitter::reset_drawn`]).
    pub fn drawn(&self) -> usize {
        self.drawn
    }

    /// Rewinds the draw counter (the RNG itself keeps advancing) — one
    /// audit window per repetition.
    pub fn reset_drawn(&mut self) {
        self.drawn = 0;
    }
}

impl<R: Rng + ?Sized> JitterSource for ScalarJitter<'_, R> {
    #[inline]
    fn next_mult(&mut self) -> f64 {
        self.drawn += 1;
        self.model.draw(self.rng)
    }
}

/// Pareto-tailed [`JitterSource`]: median-1 heavy-tailed multipliers
/// served from a [`crate::stream::ParetoQuantileTable`] over a
/// counter-based uniform stream — the straggler half of ROADMAP 5a,
/// behind the same seam as the log-normal sources so any executor
/// generic over [`JitterSource`] runs on Pareto noise unchanged.
pub struct ParetoJitter {
    table: crate::stream::ParetoQuantileTable,
    stream: crate::stream::SplitMix64,
    drawn: usize,
}

impl ParetoJitter {
    /// Source with tail exponent `alpha` over the uniform stream
    /// `(seed, label, rep)`.
    pub fn new(alpha: f64, seed: u64, label: u64, rep: u64) -> ParetoJitter {
        ParetoJitter {
            table: crate::stream::ParetoQuantileTable::new(alpha),
            stream: crate::stream::SplitMix64::from_parts(seed, label, rep),
            drawn: 0,
        }
    }

    /// Multipliers drawn since construction.
    pub fn drawn(&self) -> usize {
        self.drawn
    }
}

impl JitterSource for ParetoJitter {
    #[inline]
    fn next_mult(&mut self) -> f64 {
        self.drawn += 1;
        self.table.mult(self.stream.next_unit_open())
    }
}

/// A batch-filled table of jitter multipliers, consumed front to back.
///
/// The table holds `draws` *rows* of `lanes` multipliers in draw-major
/// (SoA) order: row `d` holds draw `d` of every lane contiguously, and
/// lane `l`'s multipliers come from the independent uniform stream
/// `(seed, label, first_rep + l)` pushed through the tabulated
/// log-normal quantile function
/// ([`crate::stream::LognormalQuantileTable`]) — so a repetition's
/// multiplier sequence depends only on its own coordinates, never on
/// how repetitions were grouped into lanes. With `sigma == 0` the buffer stays inactive:
/// nothing is filled, every row reads as ones and the cursor never moves,
/// mirroring the scalar path's `NONE` short-circuit (and keeping the
/// noiseless path bit-identical and RNG-free).
///
/// Consuming past the filled rows panics — the draw-count contract
/// between `CompiledPattern::jitter_draws` and the executors is enforced,
/// not assumed; [`JitterBuf::consumed`] lets tests audit the exact count.
#[derive(Debug, Clone)]
pub struct JitterBuf {
    mults: Vec<f64>,
    ones: Vec<f64>,
    lanes: usize,
    row: usize,
    active: bool,
    /// Tabulated `u ↦ exp(σ·Φ⁻¹(u))`, built on first active fill and
    /// reused while σ stays the same (it does, for a scratch lifetime).
    table: Option<crate::stream::LognormalQuantileTable>,
}

impl Default for JitterBuf {
    fn default() -> JitterBuf {
        JitterBuf::new()
    }
}

impl JitterBuf {
    /// An empty, inactive buffer; [`JitterBuf::fill`]/[`JitterBuf::fill_lanes`]
    /// size it. Buffers reuse their allocation across fills.
    pub fn new() -> JitterBuf {
        // No allocations here: hot paths `mem::take` their buffer out of
        // a scratch (leaving this default behind) once per run.
        JitterBuf {
            mults: Vec::new(),
            ones: Vec::new(),
            lanes: 1,
            row: 0,
            active: false,
            table: None,
        }
    }

    /// Fills a single-lane table of `draws` multipliers from the stream
    /// `(seed, label, rep)` and rewinds the cursor.
    pub fn fill(&mut self, sigma: f64, seed: u64, label: u64, rep: u64, draws: usize) {
        self.fill_lanes(sigma, seed, label, rep, 1, draws);
    }

    /// Fills a `draws × lanes` table, lane `l` from the stream
    /// `(seed, label, first_rep + l)`, and rewinds the cursor.
    pub fn fill_lanes(
        &mut self,
        sigma: f64,
        seed: u64,
        label: u64,
        first_rep: u64,
        lanes: usize,
        draws: usize,
    ) {
        assert!(lanes >= 1, "at least one lane");
        self.lanes = lanes;
        self.row = 0;
        self.active = sigma != 0.0;
        if !self.active {
            return;
        }
        if self.table.as_ref().is_none_or(|t| t.sigma() != sigma) {
            self.table = Some(crate::stream::LognormalQuantileTable::new(sigma));
        }
        let table = self.table.as_ref().expect("table built above");
        // Every slot is overwritten below, so `resize` only adjusts the
        // length (no clear: the allocation is reused across fills).
        self.mults.resize(draws * lanes, 0.0);
        for l in 0..lanes {
            let mut stream =
                crate::stream::SplitMix64::from_parts(seed, label, first_rep + l as u64);
            let mut idx = l;
            while idx < draws * lanes {
                self.mults[idx] = table.mult(stream.next_unit_open());
                idx += lanes;
            }
        }
    }

    /// Lane count of the current fill.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Rows consumed since the last fill (0 while inactive — the
    /// noiseless path draws nothing, exactly like the scalar
    /// short-circuit).
    pub fn consumed(&self) -> usize {
        self.row
    }

    /// The next `k` rows (`k·lanes` multipliers, draw-major). While
    /// inactive, returns ones without advancing.
    #[inline]
    pub fn rows(&mut self, k: usize) -> &[f64] {
        let n = k * self.lanes;
        if !self.active {
            if self.ones.len() < n {
                self.ones.resize(n, 1.0);
            }
            return &self.ones[..n];
        }
        let start = self.row * self.lanes;
        self.row += k;
        &self.mults[start..start + n]
    }
}

impl JitterSource for JitterBuf {
    #[inline]
    fn next_mult(&mut self) -> f64 {
        if !self.active {
            return 1.0;
        }
        // A hard assert, like the bounds check below it: consuming a
        // multi-lane fill element-wise would silently interleave lanes
        // into a wrong-but-plausible stream, and the engine's contract
        // is that plan/engine divergence cannot stay silent.
        assert_eq!(self.lanes, 1, "scalar consumption needs a 1-lane fill");
        let v = self.mults[self.row];
        self.row += 1;
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quantile::median;

    #[test]
    fn same_seed_same_stream() {
        let mut a = derive_rng(42, 7);
        let mut b = derive_rng(42, 7);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_labels_differ() {
        let mut a = derive_rng(42, 7);
        let mut b = derive_rng(42, 8);
        let av: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let bv: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(av, bv);
    }

    #[test]
    fn zero_sigma_is_identity() {
        let mut rng = derive_rng(1, 1);
        let mut none = JitterModel::NONE;
        for _ in 0..10 {
            assert_eq!(none.draw(&mut rng), 1.0);
        }
    }

    #[test]
    fn jitter_is_positive_with_median_near_one() {
        let mut jm = JitterModel::new(0.2);
        let mut rng = derive_rng(9, 3);
        let draws: Vec<f64> = (0..20_000).map(|_| jm.draw(&mut rng)).collect();
        assert!(draws.iter().all(|&x| x > 0.0));
        let med = median(&draws);
        assert!((med - 1.0).abs() < 0.02, "median {med}");
    }

    #[test]
    fn jitter_mean_exceeds_median() {
        // Log-normal is right-skewed: mean e^{σ²/2} > 1.
        let mut jm = JitterModel::new(0.5);
        let mut rng = derive_rng(5, 5);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| jm.draw(&mut rng)).sum::<f64>() / n as f64;
        assert!(mean > 1.05, "mean {mean}");
    }

    /// The Box-Muller pair cache: two draws consume exactly one uniform
    /// pair, and the pair is the cosine/sine split of one radius.
    #[test]
    fn consecutive_draws_share_one_transcendental_pair() {
        let mut jm = JitterModel::new(0.3);
        let mut rng = derive_rng(1, 2);
        let d1 = jm.draw(&mut rng);
        let d2 = jm.draw(&mut rng);
        // Exactly two uniforms consumed for the two draws.
        let mut reference = derive_rng(1, 2);
        let _: f64 = reference.gen_range(f64::MIN_POSITIVE..1.0);
        let _: f64 = reference.gen();
        assert_eq!(rng.gen::<u64>(), reference.gen::<u64>());
        // cos²θ + sin²θ = 1: the two z's recombine into the radius.
        let (z1, z2) = (d1.ln() / 0.3, d2.ln() / 0.3);
        let r2 = z1 * z1 + z2 * z2;
        assert!(r2 > 0.0 && r2.is_finite());
    }

    /// Copying a model mid-pair duplicates the cache: both copies serve
    /// the same cached sine branch on their next draw. Copy a model
    /// *before* drawing from it (as the adapters here do) if the
    /// streams must be independent.
    #[test]
    fn copies_duplicate_the_pair_cache() {
        let mut jm = JitterModel::new(0.3);
        let mut rng = derive_rng(4, 4);
        let _ = jm.draw(&mut rng);
        let mut copy = jm;
        let from_cache = jm.draw(&mut rng);
        let from_copy_cache = copy.draw(&mut rng);
        // Both serve the same cached sine branch without touching rng.
        assert_eq!(from_cache, from_copy_cache);
    }

    #[test]
    fn equality_ignores_the_cache() {
        let mut a = JitterModel::new(0.2);
        let b = JitterModel::new(0.2);
        let mut rng = derive_rng(6, 6);
        let _ = a.draw(&mut rng);
        assert_eq!(a, b);
    }

    #[test]
    fn scalar_jitter_source_matches_model_draws() {
        let mut rng_a = derive_rng(8, 1);
        let mut rng_b = derive_rng(8, 1);
        let mut model = JitterModel::new(0.1);
        let mut src = ScalarJitter::new(JitterModel::new(0.1), &mut rng_b);
        for _ in 0..10 {
            assert_eq!(model.draw(&mut rng_a), src.next_mult());
        }
        assert_eq!(src.drawn(), 10);
        src.reset_drawn();
        assert_eq!(src.drawn(), 0);
    }

    /// The scalar draw counter counts slots, not RNG consumption: a
    /// σ = 0 adapter still tallies every call, so the audit holds on
    /// the noiseless path too.
    #[test]
    fn scalar_counter_counts_noiseless_slots() {
        let mut rng = derive_rng(2, 2);
        let mut src = ScalarJitter::new(JitterModel::NONE, &mut rng);
        for _ in 0..7 {
            assert_eq!(src.next_mult(), 1.0);
        }
        assert_eq!(src.drawn(), 7);
    }

    #[test]
    fn pareto_jitter_is_deterministic_heavy_tailed_and_counted() {
        let mut a = ParetoJitter::new(1.5, 21, 4, 0);
        let mut b = ParetoJitter::new(1.5, 21, 4, 0);
        let n = 50_000;
        let draws: Vec<f64> = (0..n).map(|_| a.next_mult()).collect();
        for &d in &draws {
            assert_eq!(d.to_bits(), b.next_mult().to_bits());
        }
        assert_eq!(a.drawn(), n);
        assert!(draws.iter().all(|&m| m > 0.0));
        let med = median(&draws);
        assert!((med - 1.0).abs() < 0.02, "median {med}");
        // Heavy tail: the sample mean sits well above the median.
        let mean = draws.iter().sum::<f64>() / n as f64;
        assert!(mean > 1.5, "mean {mean}");
    }

    #[test]
    fn jitter_buf_rows_match_per_lane_streams() {
        let mut buf = JitterBuf::new();
        buf.fill_lanes(0.05, 9, 3, 10, 4, 17);
        assert_eq!(buf.lanes(), 4);
        let mut flat: Vec<Vec<f64>> = (0..4)
            .map(|l| {
                let mut one = JitterBuf::new();
                one.fill(0.05, 9, 3, 10 + l as u64, 17);
                (0..17).map(|_| one.next_mult()).collect()
            })
            .collect();
        for d in 0..17 {
            let row = buf.rows(1).to_vec();
            for (l, lane) in flat.iter_mut().enumerate() {
                assert_eq!(row[l], lane[d], "draw {d} lane {l}");
            }
        }
        assert_eq!(buf.consumed(), 17);
    }

    #[test]
    fn inactive_buf_serves_ones_without_consuming() {
        let mut buf = JitterBuf::new();
        buf.fill_lanes(0.0, 1, 1, 0, 3, 100);
        assert!(buf.rows(4).iter().all(|&m| m == 1.0));
        assert_eq!(buf.consumed(), 0);
        assert_eq!(buf.next_mult(), 1.0);
    }

    #[test]
    #[should_panic]
    fn overconsuming_a_filled_buf_panics() {
        let mut buf = JitterBuf::new();
        buf.fill(0.1, 1, 1, 0, 2);
        let _ = buf.next_mult();
        let _ = buf.next_mult();
        let _ = buf.next_mult();
    }

    /// The scalar and batched streams describe the same distribution:
    /// their quantiles agree within sampling tolerance.
    #[test]
    fn batched_and_scalar_jitter_quantiles_agree() {
        use crate::quantile::quantile;
        let n = 60_000;
        let mut old_model = JitterModel::new(0.05);
        let mut rng = derive_rng(14, 0);
        let old: Vec<f64> = (0..n).map(|_| old_model.draw(&mut rng)).collect();
        let mut new = vec![0.0; n];
        crate::stream::NormalSource::new(14, 0, 0).fill_lognormal(0.05, &mut new);
        for q in [0.05, 0.25, 0.5, 0.75, 0.95] {
            let a = quantile(&old, q);
            let b = quantile(&new, q);
            assert!(
                (a - b).abs() / a < 0.02,
                "quantile {q}: scalar {a} vs batched {b}"
            );
        }
    }

    #[test]
    #[should_panic]
    fn negative_sigma_rejected() {
        JitterModel::new(-0.1);
    }
}
