//! Statistics substrate for the performance-modeling framework.
//!
//! Chapter 4 of the thesis builds its computational-rate benchmark on a small
//! set of statistical tools: sample summaries, medians, least-squares
//! regression lines, Student-t confidence intervals (computed by numerical
//! integration of the t probability density, as §4.1 describes), and an
//! outlier filter that re-samples until all batch means fall inside a 95 %
//! interval. Chapter 5 reuses the same machinery for communication
//! microbenchmarks. This crate implements those tools with no external
//! numerical dependencies.

pub mod fault;
pub mod outlier;
pub mod quantile;
pub mod regression;
pub mod rng;
pub mod stream;
pub mod summary;
pub mod tdist;

pub use fault::{
    attempts_from_uniform, DropProb, DropStream, FaultModel, FaultPlan, FAULT_DROP_LABEL,
    FAULT_LABEL,
};
pub use outlier::{filter_outlier_means, OutlierReport};
pub use quantile::{median, quantile};
pub use regression::LinearFit;
pub use rng::{derive_rng, JitterBuf, JitterModel, JitterSource, ParetoJitter, ScalarJitter};
pub use stream::{fast_exp, norminv, NormalSource, ParetoQuantileTable, SplitMix64};
pub use summary::{mean, Summary};
pub use tdist::{student_t_critical, StudentT};
