//! Cross-validation of the Eq. 5.4 critical-path predictor against the
//! simulated platform for every collective pattern — the §5.6.6
//! experiment design extended from barriers to collectives: benchmark the
//! platform (`O`/`L`/`β` matrices via the §5.6.3 microbenchmarks, never
//! peeking at true parameters), predict each collective's cost from its
//! stage matrices and payload schedule, then measure by executing the
//! same pattern on the simulated cluster, and compare.
//!
//! Three topologies cover the heterogeneity spectrum:
//!
//! * **homogeneous** — 4 processes on one socket: a single link class;
//! * **heterogeneous-rate** — 16 processes round-robin over two nodes:
//!   same-socket, same-node and remote links mixed, with the ~20×
//!   latency spread that breaks the classic scalar model;
//! * **multi-cluster** — 64 processes over all 8 nodes.
//!
//! Stated accuracy bound (asserted below): the log-depth collectives
//! (binomial broadcast/reduce/gather, allreduce, scan, flat broadcast)
//! predict within a relative error of **0.6** on every topology; the
//! dense single-stage patterns (total exchange, the two-phase
//! broadcast's allgather stage) within **0.95**. The dense patterns are
//! the §5.6.6 maximum-concurrency extremity where the thesis itself
//! observes prediction quality degrading — Eq. 5.4 serializes each
//! sender's requests but not the NIC egress and receiver contention a
//! complete exchange provokes, so the predictor underestimates there.

use hpm_collectives::pattern::{catalog, CollectivePattern};
use hpm_collectives::predict::{predict_collective, simulate_collective};
use hpm_core::pattern::CommPattern;
use hpm_simnet::microbench::{bench_platform, MicrobenchConfig};
use hpm_simnet::params::xeon_cluster_params;
use hpm_topology::{cluster_8x2x4, Placement, PlacementPolicy};

const PAYLOAD: u64 = 1024;
const REPS: usize = 8;
const SEED: u64 = 42;

struct Case {
    topology: &'static str,
    p: usize,
    name: String,
    predicted: f64,
    measured: f64,
}

fn run_cases() -> Vec<Case> {
    let params = xeon_cluster_params();
    let mut out = Vec::new();
    for (topology, p) in [
        ("homogeneous", 4usize),
        ("heterogeneous-rate", 16),
        ("multi-cluster", 64),
    ] {
        let placement = Placement::new(cluster_8x2x4(), PlacementPolicy::RoundRobin, p);
        let profile = bench_platform(&params, &placement, &MicrobenchConfig::quick(), SEED);
        for pat in catalog(p, 0, PAYLOAD) {
            let predicted = predict_collective(&pat, &profile.costs).total;
            let measured = simulate_collective(&pat, &params, &placement, REPS, SEED).mean();
            out.push(Case {
                topology,
                p,
                name: pat.name().to_string(),
                predicted,
                measured,
            });
        }
    }
    out
}

#[test]
fn predictions_track_simulated_collectives_within_stated_bounds() {
    let cases = run_cases();
    for c in &cases {
        let rel = (c.predicted - c.measured) / c.measured;
        println!(
            "{:<18} P={:>3} {:<20} pred {:>10.3e}  meas {:>10.3e}  rel {:+.2}",
            c.topology, c.p, c.name, c.predicted, c.measured, rel
        );
    }
    for c in &cases {
        let rel = (c.predicted - c.measured).abs() / c.measured;
        let dense = c.name == "total-exchange" || c.name == "broadcast-two-phase";
        let bound = if dense { 0.95 } else { 0.6 };
        assert!(
            rel < bound,
            "{} P={} {}: relative error {rel:.2} out of band (pred {:.3e}, meas {:.3e})",
            c.topology,
            c.p,
            c.name,
            c.predicted,
            c.measured
        );
    }
}

#[test]
fn prediction_ranks_broadcast_variants_like_the_simulator() {
    // At full scale with a payload large enough for bandwidth to matter,
    // prediction and simulation must agree that the two-phase broadcast
    // beats the flat one, and both must agree on the ordering.
    let params = xeon_cluster_params();
    let p = 64;
    let bytes = 1 << 16; // 64 KiB vector
    let placement = Placement::new(cluster_8x2x4(), PlacementPolicy::RoundRobin, p);
    let profile = bench_platform(&params, &placement, &MicrobenchConfig::quick(), SEED);
    let eval = |pat: &CollectivePattern| {
        (
            predict_collective(pat, &profile.costs).total,
            simulate_collective(pat, &params, &placement, REPS, SEED).mean(),
        )
    };
    let (flat_pred, flat_meas) = eval(&hpm_collectives::broadcast_flat(p, 0, bytes));
    let (two_pred, two_meas) = eval(&hpm_collectives::broadcast_two_phase(p, 0, bytes));
    assert!(
        flat_pred > two_pred,
        "prediction: flat {flat_pred} vs two-phase {two_pred}"
    );
    assert!(
        flat_meas > two_meas,
        "simulation: flat {flat_meas} vs two-phase {two_meas}"
    );
}

#[test]
fn heterogeneity_shifts_both_prediction_and_simulation() {
    // Moving the same 16-process allreduce from one node (shared memory
    // only) to two nodes (gigabit links on the critical path) must raise
    // both the predicted and the simulated cost by a large factor.
    let params = xeon_cluster_params();
    let pat = hpm_collectives::allreduce(16, PAYLOAD);
    let eval = |policy: PlacementPolicy| {
        let placement = Placement::new(cluster_8x2x4(), policy, 16);
        let profile = bench_platform(&params, &placement, &MicrobenchConfig::quick(), SEED);
        (
            predict_collective(&pat, &profile.costs).total,
            simulate_collective(&pat, &params, &placement, REPS, SEED).mean(),
        )
    };
    // Block keeps all 16 ranks on one 8-core node? No — 16 > 8 cores, so
    // block also spans two nodes; use 8 ranks for the single-node case.
    let pat8 = hpm_collectives::allreduce(8, PAYLOAD);
    let placement8 = Placement::new(cluster_8x2x4(), PlacementPolicy::Block, 8);
    let profile8 = bench_platform(&params, &placement8, &MicrobenchConfig::quick(), SEED);
    let pred8 = predict_collective(&pat8, &profile8.costs).total;
    let meas8 = simulate_collective(&pat8, &params, &placement8, REPS, SEED).mean();
    let (pred16, meas16) = eval(PlacementPolicy::RoundRobin);
    assert!(
        pred16 > 3.0 * pred8,
        "prediction must see the remote links: {pred16} vs {pred8}"
    );
    assert!(
        meas16 > 3.0 * meas8,
        "simulation must see the remote links: {meas16} vs {meas8}"
    );
}
