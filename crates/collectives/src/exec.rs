//! Executable SPMD collective implementations over [`BspCtx`].
//!
//! Each collective here is the *runnable* twin of a matrix pattern in
//! [`crate::pattern`]: the same stage structure, expressed as BSPlib
//! supersteps that move real `f64` payload through the simulated cluster's
//! process memories. One superstep per communication stage; data committed
//! in stage `s` is visible at the start of superstep `s + 1`, so combining
//! steps (reduce, scan) fold their inbound staging buffer before issuing
//! the next stage's puts.
//!
//! All programs run on deterministic seed data ([`seed_vector`],
//! [`exchange_chunk`]): integer-valued `f64`s, so sums are exact and
//! independent of combining order, which lets the test suites assert
//! numeric equality rather than tolerances.

use hpm_bsplib::ctx::BspCtx;
use hpm_bsplib::mem::RegHandle;
use hpm_bsplib::ops::StepOutcome;
use hpm_bsplib::runtime::{run_spmd, BspConfig, BspProgram};

use crate::pattern::log2_ceil;

/// Result of running one collective through the BSPlib runtime.
#[derive(Debug, Clone)]
pub struct CollectiveOutcome {
    /// Total virtual time of the run (all supersteps, including syncs).
    pub total_time: f64,
    /// Supersteps executed.
    pub supersteps: usize,
    /// Per-process result vector at the end of the run.
    pub values: Vec<Vec<f64>>,
}

/// Deterministic per-rank input vector: element `k` of rank `r` is
/// `r·1000 + k`. Integer-valued, so every combining order yields the same
/// exact sum.
pub fn seed_vector(pid: usize, n: usize) -> Vec<f64> {
    (0..n).map(|k| (pid * 1000 + k) as f64).collect()
}

/// Deterministic total-exchange chunk from `src` to `dst`.
pub fn exchange_chunk(src: usize, dst: usize, n: usize) -> Vec<f64> {
    (0..n)
        .map(|k| (src * 10_000 + dst * 100 + k) as f64)
        .collect()
}

fn encode(v: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(v.len() * 8);
    for x in v {
        out.extend_from_slice(&x.to_le_bytes());
    }
    out
}

fn decode(b: &[u8]) -> Vec<f64> {
    assert_eq!(b.len() % 8, 0, "byte length must be a multiple of 8");
    b.chunks_exact(8)
        .map(|c| f64::from_le_bytes(c.try_into().expect("8-byte chunk")))
        .collect()
}

/// Virtual rank with the root rotated to 0.
fn vrank(pid: usize, root: usize, p: usize) -> usize {
    (pid + p - root) % p
}

/// Physical rank of a virtual rank.
fn prank(vr: usize, root: usize, p: usize) -> usize {
    (vr + root) % p
}

/// Binomial-tree roles at stage `s` (virtual rank space, root ≡ 0).
fn sends_in(vr: usize, s: usize) -> bool {
    vr % (2 << s) == (1 << s)
}

fn receives_in(vr: usize, s: usize, p: usize) -> bool {
    vr.is_multiple_of(2 << s) && vr + (1 << s) < p
}

fn finish<P: BspProgram>(
    res: hpm_bsplib::runtime::BspRunResult<P>,
    take: impl Fn(&P) -> Vec<f64>,
) -> CollectiveOutcome {
    CollectiveOutcome {
        total_time: res.total_time,
        supersteps: res.superstep_count(),
        values: res.programs.iter().map(take).collect(),
    }
}

// ------------------------------------------------------------- broadcast

struct BcastFlat {
    root: usize,
    n: usize,
    step: usize,
    buf: Option<RegHandle>,
    out: Vec<f64>,
}

impl BspProgram for BcastFlat {
    fn superstep(&mut self, ctx: &mut BspCtx) -> StepOutcome {
        match self.step {
            0 => {
                let h = ctx.alloc(self.n * 8);
                if ctx.pid() == self.root {
                    ctx.write_buf(h)
                        .copy_from_slice(&encode(&seed_vector(self.root, self.n)));
                }
                ctx.push_reg(h);
                self.buf = Some(h);
                self.step = 1;
                StepOutcome::Continue
            }
            1 => {
                if ctx.pid() == self.root && self.n > 0 {
                    let h = self.buf.expect("registered");
                    let data = ctx.read_buf(h).to_vec();
                    for dst in 0..ctx.nprocs() {
                        if dst != self.root {
                            ctx.hpput(dst, h, 0, &data);
                        }
                    }
                }
                self.step = 2;
                StepOutcome::Continue
            }
            _ => {
                self.out = decode(ctx.read_buf(self.buf.expect("registered")));
                StepOutcome::Halt
            }
        }
    }
}

/// One-phase broadcast: the root puts the full vector to every rank.
pub fn run_broadcast_flat(cfg: &BspConfig, root: usize, n: usize) -> CollectiveOutcome {
    let res = run_spmd(cfg, |_| BcastFlat {
        root,
        n,
        step: 0,
        buf: None,
        out: Vec::new(),
    })
    .expect("broadcast-flat run");
    finish(res, |prog| prog.out.clone())
}

struct BcastTwoPhase {
    root: usize,
    n: usize,
    step: usize,
    buf: Option<RegHandle>,
    out: Vec<f64>,
}

impl BcastTwoPhase {
    /// Chunk of rank `j`: element range `[j·c, min((j+1)·c, n))`.
    fn chunk_range(&self, j: usize, p: usize) -> (usize, usize) {
        let c = self.n.div_ceil(p);
        ((j * c).min(self.n), ((j + 1) * c).min(self.n))
    }
}

impl BspProgram for BcastTwoPhase {
    fn superstep(&mut self, ctx: &mut BspCtx) -> StepOutcome {
        let p = ctx.nprocs();
        match self.step {
            0 => {
                let h = ctx.alloc(self.n * 8);
                if ctx.pid() == self.root {
                    ctx.write_buf(h)
                        .copy_from_slice(&encode(&seed_vector(self.root, self.n)));
                }
                ctx.push_reg(h);
                self.buf = Some(h);
                self.step = 1;
                StepOutcome::Continue
            }
            1 => {
                // Scatter: root sends chunk j to rank j.
                if ctx.pid() == self.root {
                    let h = self.buf.expect("registered");
                    for j in 0..p {
                        let (lo, hi) = self.chunk_range(j, p);
                        if j != self.root && lo < hi {
                            let data = ctx.read_buf(h)[lo * 8..hi * 8].to_vec();
                            ctx.hpput(j, h, lo * 8, &data);
                        }
                    }
                }
                self.step = 2;
                StepOutcome::Continue
            }
            2 => {
                // Allgather: every rank sends its own chunk to all others.
                let h = self.buf.expect("registered");
                let (lo, hi) = self.chunk_range(ctx.pid(), p);
                if lo < hi {
                    let data = ctx.read_buf(h)[lo * 8..hi * 8].to_vec();
                    for dst in 0..p {
                        if dst != ctx.pid() {
                            ctx.hpput(dst, h, lo * 8, &data);
                        }
                    }
                }
                self.step = 3;
                StepOutcome::Continue
            }
            _ => {
                self.out = decode(ctx.read_buf(self.buf.expect("registered")));
                StepOutcome::Halt
            }
        }
    }
}

/// Two-phase broadcast (scatter + allgather): `p`-fold less data through
/// the root at one extra stage of latency.
pub fn run_broadcast_two_phase(cfg: &BspConfig, root: usize, n: usize) -> CollectiveOutcome {
    let res = run_spmd(cfg, |_| BcastTwoPhase {
        root,
        n,
        step: 0,
        buf: None,
        out: Vec::new(),
    })
    .expect("broadcast-two-phase run");
    finish(res, |prog| prog.out.clone())
}

// ------------------------------------------- combining trees (reduce &c)

/// Which collective a [`Combining`] program executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CombineKind {
    /// Binomial combining tree toward the root.
    Reduce,
    /// Reduce to rank 0 followed by the mirrored binomial broadcast.
    Allreduce,
    /// Hillis–Steele inclusive prefix scan.
    Scan,
}

/// Shared engine for the combining collectives: one superstep per stage,
/// each folding the staging buffer filled in the previous stage before
/// issuing its own puts.
struct Combining {
    kind: CombineKind,
    root: usize,
    n: usize,
    step: usize,
    staging: Option<RegHandle>,
    acc: Vec<f64>,
}

impl Combining {
    fn fold_add(&mut self, ctx: &BspCtx) {
        let inbound = decode(ctx.read_buf(self.staging.expect("registered")));
        for (a, b) in self.acc.iter_mut().zip(inbound.iter()) {
            *a += b;
        }
    }

    fn replace(&mut self, ctx: &BspCtx) {
        self.acc = decode(ctx.read_buf(self.staging.expect("registered")));
    }
}

impl BspProgram for Combining {
    fn superstep(&mut self, ctx: &mut BspCtx) -> StepOutcome {
        let p = ctx.nprocs();
        let s_total = log2_ceil(p);
        let vr = match self.kind {
            CombineKind::Scan => ctx.pid(),
            _ => vrank(ctx.pid(), self.root, p),
        };
        if self.step == 0 {
            let h = ctx.alloc(self.n * 8);
            ctx.push_reg(h);
            self.staging = Some(h);
            self.acc = seed_vector(ctx.pid(), self.n);
            self.step = 1;
            return StepOutcome::Continue;
        }
        let t = self.step; // superstep index: stage t−1 communicates now
                           // Fold what landed at the end of the previous superstep.
        if t >= 2 {
            let s_prev = t - 2;
            match self.kind {
                CombineKind::Reduce if s_prev < s_total && receives_in(vr, s_prev, p) => {
                    self.fold_add(ctx)
                }
                CombineKind::Scan if s_prev < s_total && vr >= (1 << s_prev) => self.fold_add(ctx),
                CombineKind::Allreduce => {
                    if s_prev < s_total {
                        // Up-phase receive.
                        if receives_in(vr, s_prev, p) {
                            self.fold_add(ctx);
                        }
                    } else if s_prev < 2 * s_total {
                        // Down-phase receive: the final value replaces acc.
                        let d = 1usize << (2 * s_total - 1 - s_prev);
                        if vr % (2 * d) == d {
                            self.replace(ctx);
                        }
                    }
                }
                _ => {}
            }
        }
        // Issue this superstep's stage, if any remains.
        let stages = match self.kind {
            CombineKind::Allreduce => 2 * s_total,
            _ => s_total,
        };
        if t <= stages {
            let s = t - 1;
            let h = self.staging.expect("registered");
            match self.kind {
                CombineKind::Reduce if sends_in(vr, s) => {
                    let dst = prank(vr - (1 << s), self.root, p);
                    ctx.hpput(dst, h, 0, &encode(&self.acc));
                }
                CombineKind::Scan if vr + (1 << s) < p => {
                    ctx.hpput(vr + (1 << s), h, 0, &encode(&self.acc));
                }
                CombineKind::Allreduce => {
                    if s < s_total {
                        if sends_in(vr, s) {
                            ctx.hpput(vr - (1 << s), h, 0, &encode(&self.acc));
                        }
                    } else {
                        let d = 1usize << (2 * s_total - 1 - s);
                        if vr % (2 * d) == 0 && vr + d < p {
                            ctx.hpput(vr + d, h, 0, &encode(&self.acc));
                        }
                    }
                }
                _ => {}
            }
            self.step += 1;
            StepOutcome::Continue
        } else {
            StepOutcome::Halt
        }
    }
}

fn run_combining(cfg: &BspConfig, kind: CombineKind, root: usize, n: usize) -> CollectiveOutcome {
    // Only the reduce arms map virtual ranks back through the root
    // rotation; allreduce and scan address peers by raw virtual rank.
    assert!(
        kind == CombineKind::Reduce || root == 0,
        "{kind:?} does not support a non-zero root"
    );
    let res = run_spmd(cfg, |_| Combining {
        kind,
        root,
        n,
        step: 0,
        staging: None,
        acc: Vec::new(),
    })
    .expect("combining collective run");
    finish(res, |prog| prog.acc.clone())
}

/// Binomial-tree reduce: the root ends holding the elementwise sum.
pub fn run_reduce(cfg: &BspConfig, root: usize, n: usize) -> CollectiveOutcome {
    run_combining(cfg, CombineKind::Reduce, root, n)
}

/// Allreduce (reduce + mirrored broadcast): every rank ends holding the
/// elementwise sum.
pub fn run_allreduce(cfg: &BspConfig, n: usize) -> CollectiveOutcome {
    run_combining(cfg, CombineKind::Allreduce, 0, n)
}

/// Inclusive prefix scan: rank `i` ends holding the elementwise sum of
/// ranks `0..=i`.
pub fn run_scan(cfg: &BspConfig, n: usize) -> CollectiveOutcome {
    run_combining(cfg, CombineKind::Scan, 0, n)
}

// ----------------------------------------------------------------- gather

struct Gather {
    root: usize,
    n: usize,
    step: usize,
    buf: Option<RegHandle>,
    out: Vec<f64>,
}

impl BspProgram for Gather {
    fn superstep(&mut self, ctx: &mut BspCtx) -> StepOutcome {
        let p = ctx.nprocs();
        let s_total = log2_ceil(p);
        let vr = vrank(ctx.pid(), self.root, p);
        let block = self.n * 8;
        match self.step {
            0 => {
                let h = ctx.alloc(p * block);
                if block > 0 {
                    let pid = ctx.pid();
                    let own = encode(&seed_vector(pid, self.n));
                    ctx.write_buf(h)[pid * block..(pid + 1) * block].copy_from_slice(&own);
                }
                ctx.push_reg(h);
                self.buf = Some(h);
                self.step = 1;
                StepOutcome::Continue
            }
            t if t <= s_total => {
                let s = t - 1;
                if sends_in(vr, s) && block > 0 {
                    // Held span after s completed stages: [vr, vr + 2^s)
                    // clipped to p, in virtual ranks; blocks live at their
                    // physical offsets.
                    let h = self.buf.expect("registered");
                    let dst = prank(vr - (1 << s), self.root, p);
                    let held = (1usize << s).min(p - vr);
                    for w in vr..vr + held {
                        let off = prank(w, self.root, p) * block;
                        let data = ctx.read_buf(h)[off..off + block].to_vec();
                        ctx.hpput(dst, h, off, &data);
                    }
                }
                self.step += 1;
                StepOutcome::Continue
            }
            _ => {
                self.out = decode(ctx.read_buf(self.buf.expect("registered")));
                StepOutcome::Halt
            }
        }
    }
}

/// Binomial-tree gather: the root ends holding every rank's block, at
/// physical-rank offsets.
pub fn run_gather(cfg: &BspConfig, root: usize, n: usize) -> CollectiveOutcome {
    let res = run_spmd(cfg, |_| Gather {
        root,
        n,
        step: 0,
        buf: None,
        out: Vec::new(),
    })
    .expect("gather run");
    finish(res, |prog| prog.out.clone())
}

// --------------------------------------------------------- total exchange

struct TotalExchange {
    n: usize,
    step: usize,
    buf: Option<RegHandle>,
    out: Vec<f64>,
}

impl BspProgram for TotalExchange {
    fn superstep(&mut self, ctx: &mut BspCtx) -> StepOutcome {
        let p = ctx.nprocs();
        let block = self.n * 8;
        match self.step {
            0 => {
                let h = ctx.alloc(p * block);
                if block > 0 {
                    let pid = ctx.pid();
                    let own = encode(&exchange_chunk(pid, pid, self.n));
                    ctx.write_buf(h)[pid * block..(pid + 1) * block].copy_from_slice(&own);
                }
                ctx.push_reg(h);
                self.buf = Some(h);
                self.step = 1;
                StepOutcome::Continue
            }
            1 => {
                if block > 0 {
                    let h = self.buf.expect("registered");
                    let src = ctx.pid();
                    for dst in 0..p {
                        if dst != src {
                            ctx.hpput(
                                dst,
                                h,
                                src * block,
                                &encode(&exchange_chunk(src, dst, self.n)),
                            );
                        }
                    }
                }
                self.step = 2;
                StepOutcome::Continue
            }
            _ => {
                self.out = decode(ctx.read_buf(self.buf.expect("registered")));
                StepOutcome::Halt
            }
        }
    }
}

/// Total exchange: rank `j` ends holding chunk `i → j` at offset `i·n`,
/// for every `i`.
pub fn run_total_exchange(cfg: &BspConfig, n: usize) -> CollectiveOutcome {
    let res = run_spmd(cfg, |_| TotalExchange {
        n,
        step: 0,
        buf: None,
        out: Vec::new(),
    })
    .expect("total-exchange run");
    finish(res, |prog| prog.out.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpm_kernels::rate::xeon_core;
    use hpm_simnet::params::xeon_cluster_params;
    use hpm_topology::{cluster_8x2x4, Placement, PlacementPolicy};

    fn cfg(p: usize) -> BspConfig {
        BspConfig::new(
            xeon_cluster_params(),
            Placement::new(cluster_8x2x4(), PlacementPolicy::RoundRobin, p),
            xeon_core(),
            4711,
        )
    }

    fn expected_sum(p: usize, n: usize) -> Vec<f64> {
        (0..n)
            .map(|k| (0..p).map(|r| (r * 1000 + k) as f64).sum())
            .collect()
    }

    #[test]
    fn broadcast_flat_replicates_root_data() {
        for (p, root) in [(2, 0), (5, 3), (8, 0), (16, 7)] {
            let out = run_broadcast_flat(&cfg(p), root, 24);
            let want = seed_vector(root, 24);
            for (pid, v) in out.values.iter().enumerate() {
                assert_eq!(v, &want, "p={p} root={root} pid={pid}");
            }
            assert!(out.total_time > 0.0);
        }
    }

    #[test]
    fn broadcast_two_phase_replicates_root_data() {
        // Includes p ∤ n (ragged chunks) and p > n (empty chunks).
        for (p, root, n) in [(2, 1, 10), (5, 3, 17), (8, 0, 64), (16, 9, 7)] {
            let out = run_broadcast_two_phase(&cfg(p), root, n);
            let want = seed_vector(root, n);
            for (pid, v) in out.values.iter().enumerate() {
                assert_eq!(v, &want, "p={p} root={root} n={n} pid={pid}");
            }
        }
    }

    #[test]
    fn reduce_sums_at_root() {
        for (p, root) in [(1, 0), (2, 1), (6, 2), (8, 0), (16, 5)] {
            let out = run_reduce(&cfg(p), root, 16);
            assert_eq!(out.values[root], expected_sum(p, 16), "p={p} root={root}");
        }
    }

    #[test]
    fn allreduce_sums_everywhere() {
        for p in [1usize, 2, 3, 6, 8, 13, 16] {
            let out = run_allreduce(&cfg(p), 12);
            let want = expected_sum(p, 12);
            for (pid, v) in out.values.iter().enumerate() {
                assert_eq!(v, &want, "p={p} pid={pid}");
            }
        }
    }

    #[test]
    fn scan_yields_inclusive_prefixes() {
        for p in [1usize, 2, 5, 8, 11, 16] {
            let out = run_scan(&cfg(p), 8);
            for (pid, v) in out.values.iter().enumerate() {
                let want = expected_sum(pid + 1, 8);
                assert_eq!(v, &want, "p={p} pid={pid}");
            }
        }
    }

    #[test]
    fn gather_concatenates_at_root() {
        for (p, root) in [(2, 0), (6, 4), (8, 0), (16, 11)] {
            let n = 4;
            let out = run_gather(&cfg(p), root, n);
            let mut want = Vec::new();
            for r in 0..p {
                want.extend(seed_vector(r, n));
            }
            assert_eq!(out.values[root], want, "p={p} root={root}");
        }
    }

    #[test]
    fn total_exchange_transposes_chunks() {
        for p in [2usize, 5, 8] {
            let n = 3;
            let out = run_total_exchange(&cfg(p), n);
            for (dst, v) in out.values.iter().enumerate() {
                let mut want = Vec::new();
                for src in 0..p {
                    want.extend(exchange_chunk(src, dst, n));
                }
                assert_eq!(v, &want, "p={p} dst={dst}");
            }
        }
    }

    #[test]
    fn two_phase_broadcast_beats_flat_for_large_vectors() {
        // 16 ranks over two gigabit-linked nodes, 1 MiB vector: pushing
        // 15 full copies through the root's NIC must cost more than the
        // scatter+allgather's two rounds of 1/16-size chunks.
        let p = 16;
        let n = 1 << 17; // 1 MiB of f64s
        let flat = run_broadcast_flat(&cfg(p), 0, n).total_time;
        let two = run_broadcast_two_phase(&cfg(p), 0, n).total_time;
        assert!(flat > 1.5 * two, "flat {flat} should dwarf two-phase {two}");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run_allreduce(&cfg(9), 32);
        let b = run_allreduce(&cfg(9), 32);
        assert_eq!(a.total_time, b.total_time);
        assert_eq!(a.values, b.values);
    }

    #[test]
    fn superstep_counts_match_stage_structure() {
        // Stage-per-superstep: register + ⌈log₂p⌉ stages + drain.
        let p = 8;
        assert_eq!(run_reduce(&cfg(p), 0, 4).supersteps, 2 + log2_ceil(p));
        assert_eq!(run_allreduce(&cfg(p), 4).supersteps, 2 + 2 * log2_ceil(p));
        assert_eq!(run_broadcast_flat(&cfg(p), 0, 4).supersteps, 3);
        assert_eq!(run_broadcast_two_phase(&cfg(p), 0, 4).supersteps, 4);
        assert_eq!(run_total_exchange(&cfg(p), 4).supersteps, 3);
    }
}
