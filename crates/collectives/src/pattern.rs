//! Collective operations as stage-sequenced incidence matrices.
//!
//! Every collective here is expressed exactly the way the thesis expresses
//! barriers (§5.5): a sequence of `P×P` stage incidence matrices, extended
//! with the Ch. 6.5 payload schedule giving the per-message byte count of
//! each stage. The pair `(stages, payload)` is everything the
//! knowledge-matrix verifier, the Eq. 5.4 critical-path predictor and the
//! staged simulator need, so each builder yields a *closed-form
//! heterogeneous prediction* for free — the whole point of the
//! matrix-composed model.
//!
//! Conventions shared by all builders:
//!
//! * `p` is the process count; `p == 1` yields the degenerate zero-stage
//!   pattern (nothing to communicate).
//! * Rooted collectives take an explicit `root`; internally every rooted
//!   algorithm is built in *virtual rank* space (`vr = (r + p − root) mod
//!   p`, so the root is virtual rank 0) and mapped back, the standard
//!   rotation trick.
//! * `bytes` is the collective's vector size in bytes for
//!   broadcast/reduce/allreduce/scan, the per-rank block size for gather,
//!   and the per-destination chunk size for the total exchange. The
//!   payload schedule records the *per-message* size of each stage, which
//!   is what the Eq. 5.4 `bytes_s·β_ij` term consumes.

use hpm_core::knowledge::KnowledgeGoal;
use hpm_core::matrix::IMat;
pub use hpm_core::pattern::log2_ceil;
use hpm_core::pattern::{validate_stages, CommPattern};
use hpm_core::predictor::PayloadSchedule;

/// A collective operation in matrix form: stages, per-stage payload and
/// the knowledge goal its correctness requires.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CollectivePattern {
    name: String,
    p: usize,
    stages: Vec<IMat>,
    payload: PayloadSchedule,
    goal: KnowledgeGoal,
    root: Option<usize>,
}

impl CollectivePattern {
    /// Builds a pattern, validating stage dimensions and non-emptiness.
    /// Unlike barriers, a zero-stage pattern is legal: it is the `p == 1`
    /// degenerate case of every collective.
    pub fn new(
        name: &str,
        p: usize,
        stages: Vec<IMat>,
        payload: PayloadSchedule,
        goal: KnowledgeGoal,
        root: Option<usize>,
    ) -> CollectivePattern {
        validate_stages(p, &stages);
        if let Some(r) = root {
            assert!(r < p, "root {r} out of range for {p} processes");
        }
        CollectivePattern {
            name: name.to_string(),
            p,
            stages,
            payload,
            goal,
            root,
        }
    }

    /// Per-stage message payload sizes.
    pub fn payload(&self) -> &PayloadSchedule {
        &self.payload
    }

    /// The knowledge property this collective must establish.
    pub fn goal(&self) -> KnowledgeGoal {
        self.goal
    }

    /// Root rank for rooted collectives.
    pub fn root(&self) -> Option<usize> {
        self.root
    }
}

impl CommPattern for CollectivePattern {
    fn name(&self) -> &str {
        &self.name
    }

    fn p(&self) -> usize {
        self.p
    }

    fn stages(&self) -> usize {
        self.stages.len()
    }

    fn stage(&self, k: usize) -> &IMat {
        &self.stages[k]
    }
}

/// Maps a virtual rank (root ≡ 0) back to a physical rank.
fn phys(vr: usize, root: usize, p: usize) -> usize {
    (vr + root) % p
}

fn stage_from_virtual_edges(p: usize, root: usize, edges: &[(usize, usize)]) -> IMat {
    let mapped: Vec<(usize, usize)> = edges
        .iter()
        .map(|&(s, d)| (phys(s, root, p), phys(d, root, p)))
        .collect();
    IMat::from_edges(p, &mapped)
}

/// One-phase broadcast: the root sends the full vector to every other
/// process in a single stage — the minimum-depth, maximum-root-load
/// extremity.
pub fn broadcast_flat(p: usize, root: usize, bytes: u64) -> CollectivePattern {
    assert!(root < p, "root out of range");
    let (stages, payload) = if p == 1 {
        (Vec::new(), PayloadSchedule::none())
    } else {
        let edges: Vec<(usize, usize)> = (1..p).map(|vr| (0, vr)).collect();
        (
            vec![stage_from_virtual_edges(p, root, &edges)],
            PayloadSchedule::from_bytes(vec![bytes]),
        )
    };
    CollectivePattern::new(
        "broadcast-flat",
        p,
        stages,
        payload,
        KnowledgeGoal::RootReaches(root),
        Some(root),
    )
}

/// Binomial-tree broadcast: `⌈log₂ p⌉` stages of doubling coverage, each
/// message carrying the full vector.
pub fn broadcast_binomial(p: usize, root: usize, bytes: u64) -> CollectivePattern {
    assert!(root < p, "root out of range");
    let s = log2_ceil(p);
    let mut stages = Vec::new();
    for t in (0..s).rev() {
        let d = 1usize << t;
        let edges: Vec<(usize, usize)> = (0..p)
            .filter(|vr| vr % (2 * d) == 0 && vr + d < p)
            .map(|vr| (vr, vr + d))
            .collect();
        if !edges.is_empty() {
            stages.push(stage_from_virtual_edges(p, root, &edges));
        }
    }
    let payload = PayloadSchedule::from_bytes(vec![bytes; stages.len()]);
    CollectivePattern::new(
        "broadcast-binomial",
        p,
        stages,
        payload,
        KnowledgeGoal::RootReaches(root),
        Some(root),
    )
}

/// Two-phase BSP broadcast (scatter + allgather): stage 0 scatters `p`
/// chunks of `⌈bytes/p⌉`, stage 1 exchanges every chunk all-to-all. Twice
/// the latency depth of the flat broadcast but `p`-fold less data through
/// the root — the van-de-Geijn-style BSP optimal for large vectors.
pub fn broadcast_two_phase(p: usize, root: usize, bytes: u64) -> CollectivePattern {
    assert!(root < p, "root out of range");
    if p == 1 {
        return CollectivePattern::new(
            "broadcast-two-phase",
            p,
            Vec::new(),
            PayloadSchedule::none(),
            KnowledgeGoal::RootReaches(root),
            Some(root),
        );
    }
    let chunk = bytes.div_ceil(p as u64);
    let scatter: Vec<(usize, usize)> = (1..p).map(|vr| (0, vr)).collect();
    let mut allgather = Vec::with_capacity(p * (p - 1));
    for i in 0..p {
        for j in 0..p {
            if i != j {
                allgather.push((i, j));
            }
        }
    }
    CollectivePattern::new(
        "broadcast-two-phase",
        p,
        vec![
            stage_from_virtual_edges(p, root, &scatter),
            stage_from_virtual_edges(p, root, &allgather),
        ],
        PayloadSchedule::from_bytes(vec![chunk, chunk]),
        KnowledgeGoal::RootReaches(root),
        Some(root),
    )
}

/// Binomial reduce edges in virtual rank space, leaves-first: at stage
/// `s`, virtual rank `vr` with `vr mod 2^(s+1) == 2^s` sends its partial
/// result to `vr − 2^s`.
fn reduce_stages(p: usize, root: usize) -> Vec<IMat> {
    let mut stages = Vec::new();
    for s in 0..log2_ceil(p) {
        let d = 1usize << s;
        let edges: Vec<(usize, usize)> = (0..p)
            .filter(|vr| vr % (2 * d) == d)
            .map(|vr| (vr, vr - d))
            .collect();
        if !edges.is_empty() {
            stages.push(stage_from_virtual_edges(p, root, &edges));
        }
    }
    stages
}

/// Binomial-tree reduce: `⌈log₂ p⌉` combining stages toward the root,
/// each message carrying the full vector.
pub fn reduce_binomial(p: usize, root: usize, bytes: u64) -> CollectivePattern {
    assert!(root < p, "root out of range");
    let stages = reduce_stages(p, root);
    let payload = PayloadSchedule::from_bytes(vec![bytes; stages.len()]);
    CollectivePattern::new(
        "reduce-binomial",
        p,
        stages,
        payload,
        KnowledgeGoal::RootGathers(root),
        Some(root),
    )
}

/// Allreduce as reduce-then-broadcast: the binomial combining tree toward
/// rank 0 followed by its transposed stages in reverse — the same
/// gather/release mirror structure as the tree barrier (§5.5), with every
/// message carrying the full vector.
pub fn allreduce(p: usize, bytes: u64) -> CollectivePattern {
    let up = reduce_stages(p, 0);
    let down: Vec<IMat> = up.iter().rev().map(|s| s.transpose()).collect();
    let mut stages = up;
    stages.extend(down);
    let payload = PayloadSchedule::from_bytes(vec![bytes; stages.len()]);
    CollectivePattern::new(
        "allreduce",
        p,
        stages,
        payload,
        KnowledgeGoal::AllToAll,
        None,
    )
}

/// Inclusive prefix scan (Hillis–Steele): stage `s` sends `i → i + 2^s`
/// for every `i` with `i + 2^s < p`, each message carrying the full
/// vector. After `⌈log₂ p⌉` stages process `i` holds the combination of
/// ranks `0..=i`.
pub fn scan(p: usize, bytes: u64) -> CollectivePattern {
    let mut stages = Vec::new();
    for s in 0..log2_ceil(p) {
        let d = 1usize << s;
        let edges: Vec<(usize, usize)> = (0..p.saturating_sub(d)).map(|i| (i, i + d)).collect();
        if !edges.is_empty() {
            stages.push(IMat::from_edges(p, &edges));
        }
    }
    let payload = PayloadSchedule::from_bytes(vec![bytes; stages.len()]);
    CollectivePattern::new("scan", p, stages, payload, KnowledgeGoal::Prefix, None)
}

/// Binomial-tree gather: the reduce stage structure, but stage `s`
/// messages carry the sender's accumulated span of up to `2^s` blocks of
/// `bytes` each — the growing-payload schedule that distinguishes gather
/// from reduce in the cost model.
pub fn gather_binomial(p: usize, root: usize, bytes: u64) -> CollectivePattern {
    assert!(root < p, "root out of range");
    let stages = reduce_stages(p, root);
    let payload = PayloadSchedule::from_bytes(
        (0..stages.len() as u32)
            .map(|s| {
                let span = (1u64 << s).min(p as u64 - (1u64 << s));
                span.max(1) * bytes
            })
            .collect(),
    );
    CollectivePattern::new(
        "gather-binomial",
        p,
        stages,
        payload,
        KnowledgeGoal::RootGathers(root),
        Some(root),
    )
}

/// Total exchange (all-to-all personalized): every ordered pair exchanges
/// a distinct chunk in a single stage — the maximum-concurrency extremity,
/// and the §6.5 communication core of the BSP sync's count map.
pub fn total_exchange(p: usize, bytes: u64) -> CollectivePattern {
    let (stages, payload) = if p == 1 {
        (Vec::new(), PayloadSchedule::none())
    } else {
        let mut edges = Vec::with_capacity(p * (p - 1));
        for i in 0..p {
            for j in 0..p {
                if i != j {
                    edges.push((i, j));
                }
            }
        }
        (
            vec![IMat::from_edges(p, &edges)],
            PayloadSchedule::from_bytes(vec![bytes]),
        )
    };
    CollectivePattern::new(
        "total-exchange",
        p,
        stages,
        payload,
        KnowledgeGoal::AllToAll,
        None,
    )
}

/// The full catalog of collective patterns at a process count and payload
/// size — what the verification suite, the predict-vs-sim experiments and
/// the benchmarks iterate over.
pub fn catalog(p: usize, root: usize, bytes: u64) -> Vec<CollectivePattern> {
    vec![
        broadcast_flat(p, root, bytes),
        broadcast_binomial(p, root, bytes),
        broadcast_two_phase(p, root, bytes),
        reduce_binomial(p, root, bytes),
        allreduce(p, bytes),
        scan(p, bytes),
        gather_binomial(p, root, bytes),
        total_exchange(p, bytes),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpm_core::knowledge::verify_synchronizes;

    #[test]
    fn catalog_satisfies_knowledge_goals() {
        for p in 1..=17 {
            for root in [0, p / 2, p - 1] {
                for c in catalog(p, root, 256) {
                    let trace = verify_synchronizes(&c);
                    assert!(
                        trace.satisfies(c.goal()),
                        "{} p={p} root={root} violates {:?}",
                        c.name(),
                        c.goal()
                    );
                }
            }
        }
    }

    #[test]
    fn single_process_patterns_are_empty() {
        for c in catalog(1, 0, 1024) {
            assert_eq!(c.stages(), 0, "{}", c.name());
            assert_eq!(c.total_signals(), 0);
        }
    }

    #[test]
    fn binomial_depth_is_log() {
        for p in [2usize, 3, 4, 7, 8, 9, 16, 33] {
            let s = log2_ceil(p);
            assert_eq!(broadcast_binomial(p, 0, 1).stages(), s, "bcast p={p}");
            assert_eq!(reduce_binomial(p, 0, 1).stages(), s, "reduce p={p}");
            assert_eq!(scan(p, 1).stages(), s, "scan p={p}");
            assert_eq!(allreduce(p, 1).stages(), 2 * s, "allreduce p={p}");
        }
    }

    #[test]
    fn reduce_signal_count_is_p_minus_one() {
        // A combining tree delivers exactly one message per non-root.
        for p in 2..=33 {
            assert_eq!(reduce_binomial(p, 0, 1).total_signals(), p - 1, "p={p}");
            assert_eq!(broadcast_binomial(p, 0, 1).total_signals(), p - 1, "p={p}");
        }
    }

    #[test]
    fn allreduce_is_reduce_mirrored() {
        let a = allreduce(12, 64);
        let s = a.stages();
        for k in 0..s / 2 {
            assert_eq!(
                a.stage(s - 1 - k),
                &a.stage(k).transpose(),
                "stage {k} must mirror"
            );
        }
    }

    #[test]
    fn total_exchange_is_single_complete_stage() {
        let t = total_exchange(6, 128);
        assert_eq!(t.stages(), 1);
        assert_eq!(t.stage(0).edge_count(), 30);
        assert_eq!(t.payload().bytes(0), 128);
    }

    #[test]
    fn two_phase_broadcast_splits_payload() {
        let b = broadcast_two_phase(8, 0, 4096);
        assert_eq!(b.stages(), 2);
        assert_eq!(b.payload().bytes(0), 512);
        assert_eq!(b.payload().bytes(1), 512);
        // Non-dividing size rounds up.
        let c = broadcast_two_phase(8, 0, 4097);
        assert_eq!(c.payload().bytes(0), 513);
    }

    #[test]
    fn gather_payload_grows_geometrically() {
        let g = gather_binomial(16, 0, 100);
        assert_eq!(g.payload().bytes(0), 100);
        assert_eq!(g.payload().bytes(1), 200);
        assert_eq!(g.payload().bytes(2), 400);
        assert_eq!(g.payload().bytes(3), 800);
        // Final stage of a non-power-of-two gather carries the remainder.
        let g6 = gather_binomial(6, 0, 100);
        assert_eq!(g6.stages(), 3);
        assert_eq!(g6.payload().bytes(2), 200); // span min(4, 6-4) = 2
    }

    #[test]
    fn rooted_patterns_rotate_with_the_root() {
        let b = broadcast_flat(5, 3, 64);
        assert_eq!(b.stage(0).dsts(3).collect::<Vec<_>>(), vec![0, 1, 2, 4]);
        assert_eq!(b.stage(0).in_degree(3), 0);
        let r = reduce_binomial(5, 2, 64);
        let trace = verify_synchronizes(&r);
        assert!(trace.root_gathers(2));
        assert_eq!(r.root(), Some(2));
    }

    #[test]
    fn scan_respects_boundaries() {
        let s = scan(5, 8);
        // Stage 0: i -> i+1 for i in 0..4.
        assert_eq!(s.stage(0).edge_count(), 4);
        // Stage 2 (shift 4): only 0 -> 4.
        assert_eq!(s.stage(2).edge_count(), 1);
        assert!(s.stage(2).get(0, 4));
    }

    #[test]
    #[should_panic]
    fn root_out_of_range_rejected() {
        broadcast_flat(4, 4, 1);
    }
}
