//! # hpm-collectives — predicted BSP collective operations
//!
//! The thesis validates its matrix-composed performance model on two
//! communication workloads: barriers and a stencil halo exchange. This
//! crate extends the validated machinery to the standard collective
//! operations — broadcast (one-phase, binomial and two-phase
//! scatter-allgather), reduce, allreduce, prefix scan, gather and total
//! exchange — each in two coupled forms:
//!
//! * **a matrix cost pattern** ([`pattern`]): stage incidence matrices
//!   plus a per-stage payload schedule (the Ch. 6.5 extension), flowing
//!   through the same knowledge-matrix verification
//!   (`hpm_core::knowledge`, generalized to *rooted* goals), Eq. 5.4
//!   critical-path prediction ([`predict`]) and staged simulation as the
//!   barrier patterns do;
//! * **an executable SPMD implementation** ([`exec`]): BSPlib supersteps
//!   over [`hpm_bsplib::BspCtx`] that move real `f64` payload through the
//!   simulated cluster and produce numerically checkable results.
//!
//! The pairing is the point: the executable form establishes that the
//! algorithm computes the right answer on the runtime, while the matrix
//! form gives the closed-form heterogeneous prediction of what it costs —
//! and the predict-vs-sim test suite holds the two against each other
//! across homogeneous, heterogeneous-rate and multi-cluster topologies.

pub mod exec;
pub mod pattern;
pub mod predict;

pub use exec::{
    exchange_chunk, run_allreduce, run_broadcast_flat, run_broadcast_two_phase, run_gather,
    run_reduce, run_scan, run_total_exchange, seed_vector, CollectiveOutcome,
};
pub use pattern::{
    allreduce, broadcast_binomial, broadcast_flat, broadcast_two_phase, catalog, gather_binomial,
    log2_ceil, reduce_binomial, scan, total_exchange, CollectivePattern,
};
pub use predict::{predict_collective, simulate_collective};
