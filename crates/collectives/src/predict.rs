//! Closed-form prediction and staged simulation of collective patterns.
//!
//! A [`CollectivePattern`] carries everything the Eq. 5.4 critical-path
//! predictor needs — stages plus payload schedule — so prediction is a
//! single call into `hpm-core`. The same pair drives the Fig. 5.5 staged
//! executor of `hpm-simnet`, which is what the predict-vs-sim experiments
//! compare against: the simulator is the stand-in for the thesis'
//! measured clusters.

use crate::pattern::CollectivePattern;
use hpm_core::predictor::{predict_barrier, BarrierPrediction, CommCosts};
use hpm_simnet::barrier::{BarrierMeasurement, BarrierSim};
use hpm_simnet::params::PlatformParams;
use hpm_topology::Placement;

/// Predicts the collective's critical-path cost from benchmarked platform
/// cost matrices (§5.6.3's `O`/`L`/`β`).
pub fn predict_collective(pattern: &CollectivePattern, costs: &CommCosts) -> BarrierPrediction {
    predict_barrier(pattern, costs, pattern.payload())
}

/// Executes the collective's stage structure on the simulated platform,
/// repeating with independent jitter streams; the mean worst-case time is
/// the measurement the prediction is validated against.
pub fn simulate_collective(
    pattern: &CollectivePattern,
    params: &PlatformParams,
    placement: &Placement,
    reps: usize,
    seed: u64,
) -> BarrierMeasurement {
    BarrierSim::new(params, placement).measure(pattern, pattern.payload(), reps, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::{allreduce, broadcast_flat, broadcast_two_phase, total_exchange};
    use hpm_core::predictor::CommCosts;
    use hpm_simnet::params::xeon_cluster_params;
    use hpm_topology::{cluster_8x2x4, PlacementPolicy};

    #[test]
    fn flat_broadcast_cost_is_linear_in_p_under_uniform_costs() {
        let c = 1e-6;
        let t8 = predict_collective(
            &broadcast_flat(8, 0, 0),
            &CommCosts::uniform(8, 0.0, 0.0, c),
        );
        let t32 = predict_collective(
            &broadcast_flat(32, 0, 0),
            &CommCosts::uniform(32, 0.0, 0.0, c),
        );
        // Root pays 2c per destination on the single stage.
        assert!((t8.total - 2.0 * c * 7.0).abs() < 1e-15);
        assert!((t32.total - 2.0 * c * 31.0).abs() < 1e-15);
    }

    #[test]
    fn allreduce_depth_is_logarithmic_under_uniform_costs() {
        let c = 1e-6;
        for p in [8usize, 16, 64] {
            let pred = predict_collective(&allreduce(p, 0), &CommCosts::uniform(p, 0.0, 0.0, c));
            let stages = 2.0 * (p as f64).log2().ceil();
            assert!(
                (pred.total - 2.0 * c * stages).abs() < 1e-12,
                "p={p}: {} vs {}",
                pred.total,
                2.0 * c * stages
            );
        }
    }

    #[test]
    fn payload_term_separates_broadcast_variants() {
        // With pure bandwidth cost, the flat broadcast moves (p−1)·b bytes
        // through the root while the two-phase moves ~2·b in chunks.
        let p = 16;
        let b = 1 << 20;
        let mut costs = CommCosts::uniform(p, 0.0, 0.0, 0.0);
        costs.beta = hpm_core::matrix::DMat::from_fn(p, p, |i, j| if i == j { 0.0 } else { 1e-9 });
        let flat = predict_collective(&broadcast_flat(p, 0, b), &costs).total;
        let two = predict_collective(&broadcast_two_phase(p, 0, b), &costs).total;
        assert!(flat > 5.0 * two, "flat {flat} vs two-phase {two}");
    }

    #[test]
    fn simulation_is_deterministic_and_positive() {
        let params = xeon_cluster_params();
        let placement = Placement::new(cluster_8x2x4(), PlacementPolicy::RoundRobin, 16);
        let pat = total_exchange(16, 1024);
        let a = simulate_collective(&pat, &params, &placement, 4, 99).mean();
        let b = simulate_collective(&pat, &params, &placement, 4, 99).mean();
        assert_eq!(a, b);
        assert!(a > 0.0);
    }
}
