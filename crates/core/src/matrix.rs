//! Dense and incidence matrices.
//!
//! The framework deliberately trades sophisticated numerics for
//! transparency: every model term is a plain row-major `f64` matrix
//! ([`DMat`]) or a boolean incidence matrix ([`IMat`]), and every
//! composition rule of Ch. 3/5 is expressible with the handful of
//! operations here (sum, product, transpose, Hadamard product ⊗,
//! matrix–vector product with the all-ones vector).

/// A dense row-major `f64` matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct DMat {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DMat {
    /// Zero matrix of the given dimensions (both must be positive).
    pub fn zeros(rows: usize, cols: usize) -> DMat {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        DMat {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds a matrix from a function of `(row, col)`.
    pub fn from_fn<F: FnMut(usize, usize) -> f64>(rows: usize, cols: usize, mut f: F) -> DMat {
        let mut m = DMat::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m.data[i * cols + j] = f(i, j);
            }
        }
        m
    }

    /// Builds a matrix from row slices; all rows must have equal length.
    pub fn from_rows(rows: &[&[f64]]) -> DMat {
        assert!(!rows.is_empty(), "need at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "need at least one column");
        let mut m = DMat::zeros(rows.len(), cols);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(r.len(), cols, "ragged rows");
            m.data[i * cols..(i + 1) * cols].copy_from_slice(r);
        }
        m
    }

    /// Identity matrix.
    pub fn identity(n: usize) -> DMat {
        DMat::from_fn(n, n, |i, j| if i == j { 1.0 } else { 0.0 })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element access.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of range"
        );
        self.data[i * self.cols + j]
    }

    /// Element assignment.
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of range"
        );
        self.data[i * self.cols + j] = v;
    }

    /// Borrow a row as a slice.
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Element-wise sum; dimensions must match.
    pub fn add(&self, other: &DMat) -> DMat {
        self.zip_with(other, |a, b| a + b)
    }

    /// Element-wise difference; dimensions must match.
    pub fn sub(&self, other: &DMat) -> DMat {
        self.zip_with(other, |a, b| a - b)
    }

    /// Hadamard (element-wise) product — the `⊗` of Eq. 3.13.
    pub fn hadamard(&self, other: &DMat) -> DMat {
        self.zip_with(other, |a, b| a * b)
    }

    fn zip_with<F: Fn(f64, f64) -> f64>(&self, other: &DMat, f: F) -> DMat {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "dimension mismatch"
        );
        DMat {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Scalar multiple.
    pub fn scale(&self, k: f64) -> DMat {
        DMat {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| v * k).collect(),
        }
    }

    /// Matrix product; inner dimensions must agree.
    pub fn matmul(&self, other: &DMat) -> DMat {
        assert_eq!(self.cols, other.rows, "inner dimension mismatch");
        let mut out = DMat::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out.data[i * other.cols + j] += a * other.data[k * other.cols + j];
                }
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> DMat {
        DMat::from_fn(self.cols, self.rows, |i, j| self.get(j, i))
    }

    /// Product with the all-ones column vector: the row sums, i.e. the `·s`
    /// of Eq. 3.13 that turns a per-(proc, kernel) cost map into a
    /// per-process time vector.
    pub fn row_sums(&self) -> Vec<f64> {
        (0..self.rows).map(|i| self.row(i).iter().sum()).collect()
    }

    /// Largest element.
    pub fn max(&self) -> f64 {
        self.data.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Applies a function to every element.
    pub fn map<F: Fn(f64) -> f64>(&self, f: F) -> DMat {
        DMat {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// True if every element is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }
}

impl std::fmt::Display for DMat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, " ")?;
                }
                write!(f, "{:>10.3e}", self.get(i, j))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// A square boolean incidence matrix encoding one stage of a communication
/// pattern: `get(i, j)` means "process i signals process j" (§5.5).
///
/// Per-row out-degrees, per-column in-degrees and the total edge count are
/// maintained on insertion, so emptiness and degree queries — the tests
/// the predictor's posted-receive refinement and `last_send_stage` run in
/// their inner loops — are O(1) and never allocate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IMat {
    n: usize,
    data: Vec<bool>,
    out_deg: Vec<u32>,
    in_deg: Vec<u32>,
    edges: usize,
}

impl IMat {
    /// Empty (all-false) incidence matrix over `n` processes.
    pub fn empty(n: usize) -> IMat {
        assert!(n > 0, "incidence matrix needs at least one process");
        IMat {
            n,
            data: vec![false; n * n],
            out_deg: vec![0; n],
            in_deg: vec![0; n],
            edges: 0,
        }
    }

    /// Builds from directed edges `(src, dst)`. Self-loops are rejected —
    /// a process never signals itself in a barrier stage.
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> IMat {
        let mut m = IMat::empty(n);
        for &(s, d) in edges {
            m.insert(s, d);
        }
        m
    }

    /// Process count.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Tests an edge.
    pub fn get(&self, i: usize, j: usize) -> bool {
        assert!(i < self.n && j < self.n, "index ({i},{j}) out of range");
        self.data[i * self.n + j]
    }

    /// Inserts an edge; rejects self-loops and out-of-range indices.
    pub fn insert(&mut self, i: usize, j: usize) {
        assert!(i < self.n && j < self.n, "edge ({i},{j}) out of range");
        assert_ne!(
            i, j,
            "self-signal ({i},{i}) is meaningless in a barrier stage"
        );
        let cell = &mut self.data[i * self.n + j];
        if !*cell {
            *cell = true;
            self.out_deg[i] += 1;
            self.in_deg[j] += 1;
            self.edges += 1;
        }
    }

    /// Destinations signalled by `i`, ascending. Allocation-free: iterate
    /// directly, or go through [`crate::plan::StagePlan`] for repeated
    /// slice access on a hot path.
    pub fn dsts(&self, i: usize) -> impl Iterator<Item = usize> + '_ {
        assert!(i < self.n, "row {i} out of range");
        self.data[i * self.n..(i + 1) * self.n]
            .iter()
            .enumerate()
            .filter_map(|(j, &set)| set.then_some(j))
    }

    /// Sources signalling `j`, ascending. Allocation-free.
    pub fn srcs(&self, j: usize) -> impl Iterator<Item = usize> + '_ {
        assert!(j < self.n, "column {j} out of range");
        (0..self.n).filter(move |&i| self.data[i * self.n + j])
    }

    /// Number of destinations `i` signals — O(1), maintained on insert.
    pub fn out_degree(&self, i: usize) -> usize {
        self.out_deg[i] as usize
    }

    /// Number of sources signalling `j` — O(1), maintained on insert.
    pub fn in_degree(&self, j: usize) -> usize {
        self.in_deg[j] as usize
    }

    /// Total edge count — O(1), maintained on insert.
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// Transpose — the release stages of hierarchical barriers are the
    /// transposed arrival stages in reverse order (§5.5).
    pub fn transpose(&self) -> IMat {
        let mut t = IMat::empty(self.n);
        for i in 0..self.n {
            for j in self.dsts(i) {
                t.insert(j, i);
            }
        }
        t
    }

    /// The matrix as a `DMat` of zeros and ones, for algebraic use.
    pub fn to_dmat(&self) -> DMat {
        DMat::from_fn(
            self.n,
            self.n,
            |i, j| if self.get(i, j) { 1.0 } else { 0.0 },
        )
    }
}

impl std::fmt::Display for IMat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for i in 0..self.n {
            for j in 0..self.n {
                write!(f, "{}", if self.get(i, j) { " 1" } else { " 0" })?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let m = DMat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 2);
        assert_eq!(m.row(1), &[3.0, 4.0]);
    }

    #[test]
    fn matmul_known_product() {
        let a = DMat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = DMat::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.get(0, 0), 19.0);
        assert_eq!(c.get(0, 1), 22.0);
        assert_eq!(c.get(1, 0), 43.0);
        assert_eq!(c.get(1, 1), 50.0);
    }

    #[test]
    fn identity_is_neutral() {
        let a = DMat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let i = DMat::identity(2);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn hadamard_and_row_sums() {
        let r = DMat::from_rows(&[&[2.0, 3.0], &[4.0, 5.0]]);
        let c = DMat::from_rows(&[&[10.0, 100.0], &[1.0, 0.1]]);
        let t = r.hadamard(&c).row_sums();
        assert_eq!(t, vec![320.0, 4.5]);
    }

    #[test]
    fn transpose_involution() {
        let a = DMat::from_fn(3, 5, |i, j| (i * 7 + j) as f64);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn scale_and_map() {
        let a = DMat::from_rows(&[&[1.0, -2.0]]);
        assert_eq!(a.scale(3.0).row(0), &[3.0, -6.0]);
        assert_eq!(a.map(f64::abs).row(0), &[1.0, 2.0]);
    }

    #[test]
    #[should_panic]
    fn mismatched_add_panics() {
        DMat::zeros(2, 2).add(&DMat::zeros(2, 3));
    }

    #[test]
    #[should_panic]
    fn mismatched_matmul_panics() {
        DMat::zeros(2, 3).matmul(&DMat::zeros(2, 3));
    }

    #[test]
    fn imat_edges_and_degrees() {
        let m = IMat::from_edges(4, &[(1, 0), (2, 0), (3, 0)]);
        assert_eq!(m.edge_count(), 3);
        assert_eq!(m.srcs(0).collect::<Vec<_>>(), vec![1, 2, 3]);
        assert_eq!(m.dsts(1).collect::<Vec<_>>(), vec![0]);
        assert_eq!(m.dsts(0).count(), 0);
        assert_eq!(m.in_degree(0), 3);
        assert_eq!(m.out_degree(0), 0);
        assert_eq!(m.out_degree(1), 1);
        assert_eq!(m.in_degree(1), 0);
    }

    #[test]
    fn imat_duplicate_insert_counted_once() {
        let mut m = IMat::empty(3);
        m.insert(0, 1);
        m.insert(0, 1);
        assert_eq!(m.edge_count(), 1);
        assert_eq!(m.out_degree(0), 1);
        assert_eq!(m.in_degree(1), 1);
        assert_eq!(m, IMat::from_edges(3, &[(0, 1)]));
    }

    #[test]
    fn imat_transpose_swaps_degrees() {
        let m = IMat::from_edges(5, &[(0, 1), (0, 2), (3, 2), (4, 0)]);
        let t = m.transpose();
        for r in 0..5 {
            assert_eq!(m.out_degree(r), t.in_degree(r), "rank {r}");
            assert_eq!(m.in_degree(r), t.out_degree(r), "rank {r}");
        }
        assert_eq!(t.edge_count(), m.edge_count());
    }

    #[test]
    fn imat_transpose_reverses_edges() {
        let m = IMat::from_edges(3, &[(0, 1), (1, 2)]);
        let t = m.transpose();
        assert!(t.get(1, 0));
        assert!(t.get(2, 1));
        assert!(!t.get(0, 1));
    }

    #[test]
    fn imat_to_dmat_is_zero_one() {
        let m = IMat::from_edges(2, &[(0, 1)]);
        let d = m.to_dmat();
        assert_eq!(d.get(0, 1), 1.0);
        assert_eq!(d.get(1, 0), 0.0);
    }

    #[test]
    #[should_panic]
    fn self_loop_rejected() {
        IMat::from_edges(3, &[(1, 1)]);
    }
}
