//! Critical-path barrier cost prediction (§5.6.5, Fig. 6.2, §6.5).
//!
//! Given a barrier pattern and matrices of benchmarked platform parameters,
//! the predictor computes the worst path through the layered dependency
//! graph. The cost a process adds to every path through its stage is
//! Eq. 5.4 extended with the Ch. 6.5 payload term:
//!
//! ```text
//! cost(s, i) = Σ_j S_s(i,j)·(2·L_ij + bytes_s·β_ij)  +  max_j(O_ij·S_s(i,j))
//! ```
//!
//! with two refinements (§5.6.5):
//!
//! 1. the max term is never below the invocation cost `O_ii`;
//! 2. when a destination `j` is known to be already awaiting the signal
//!    (its last transmission happened at least two stages earlier), its
//!    `O_ij` term is replaced by `O_jj` — the posted-receive fast path.
//!
//! The thesis describes a recursive search over all paths recording the
//! maximal arrival at the final stage; because the graph is layered, the
//! equivalent forward dynamic program used here visits each edge once:
//!
//! ```text
//! entry(j, s+1) = max( entry(j, s) + cost(s, j),
//!                      max_{i: S_s(i,j)} entry(i, s) + cost(s, i) )
//! ```

use crate::matrix::DMat;
use crate::pattern::CommPattern;
use crate::plan::CompiledPattern;

/// Benchmarked platform cost matrices (§5.6.3).
///
/// * `o` — overheads: the diagonal holds the invocation overhead `O_ii`
///   (an empty request-start/wait call), off-diagonals the per-request
///   overhead `O_ij` of adding a signal from i to j.
/// * `l` — pairwise one-way latencies `L_ij` (regression intercepts).
/// * `beta` — pairwise inverse bandwidths `β_ij` (regression slopes),
///   used only when a payload schedule supplies nonzero message sizes.
#[derive(Debug, Clone, PartialEq)]
pub struct CommCosts {
    pub o: DMat,
    pub l: DMat,
    pub beta: DMat,
}

impl CommCosts {
    /// Validates that all three matrices are square and same-sized.
    pub fn new(o: DMat, l: DMat, beta: DMat) -> CommCosts {
        assert_eq!(o.rows(), o.cols(), "O must be square");
        assert_eq!((o.rows(), o.cols()), (l.rows(), l.cols()), "L shape");
        assert_eq!(
            (o.rows(), o.cols()),
            (beta.rows(), beta.cols()),
            "beta shape"
        );
        CommCosts { o, l, beta }
    }

    /// Process count.
    pub fn p(&self) -> usize {
        self.o.rows()
    }

    /// Uniform-cost model: `O_ii = o_call`, `O_ij = o_req`, `L_ij = lat`,
    /// zero beta — the homogeneous setting of the §5.4 textbook analysis.
    pub fn uniform(p: usize, o_call: f64, o_req: f64, lat: f64) -> CommCosts {
        let o = DMat::from_fn(p, p, |i, j| if i == j { o_call } else { o_req });
        let l = DMat::from_fn(p, p, |i, j| if i == j { 0.0 } else { lat });
        CommCosts::new(o, l, DMat::zeros(p, p))
    }
}

/// The point-to-point cost queries the predictor reads, abstracted over
/// storage. [`CommCosts`] answers them from dense benchmarked matrices —
/// O(p²) floats, the right form when every pair was measured. Scale
/// callers answer them from a few per-link-class parameters plus the
/// O(ranks) placement hierarchy (see `hpm-simnet`'s `ClassCosts`), so a
/// p = 4096 prediction never materializes a 16.7M-entry matrix.
pub trait CostModel {
    /// Process count the model covers.
    fn p(&self) -> usize;
    /// Overhead: invocation overhead `O_ii` on the diagonal, per-request
    /// overhead `O_ij` off it.
    fn o(&self, i: usize, j: usize) -> f64;
    /// One-way latency `L_ij` (zero on the diagonal).
    fn l(&self, i: usize, j: usize) -> f64;
    /// Inverse bandwidth `β_ij`.
    fn beta(&self, i: usize, j: usize) -> f64;
}

impl CostModel for CommCosts {
    fn p(&self) -> usize {
        CommCosts::p(self)
    }
    fn o(&self, i: usize, j: usize) -> f64 {
        self.o.get(i, j)
    }
    fn l(&self, i: usize, j: usize) -> f64 {
        self.l.get(i, j)
    }
    fn beta(&self, i: usize, j: usize) -> f64 {
        self.beta.get(i, j)
    }
}

/// Per-stage message payload sizes in bytes (§6.5). Stages beyond the
/// schedule's length carry zero payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PayloadSchedule {
    bytes: Vec<u64>,
}

impl PayloadSchedule {
    /// Pure synchronization: no payload in any stage.
    pub fn none() -> PayloadSchedule {
        PayloadSchedule { bytes: Vec::new() }
    }

    /// The same payload in every stage.
    pub fn uniform(stages: usize, bytes: u64) -> PayloadSchedule {
        PayloadSchedule {
            bytes: vec![bytes; stages],
        }
    }

    /// Explicit per-stage sizes.
    pub fn from_bytes(bytes: Vec<u64>) -> PayloadSchedule {
        PayloadSchedule { bytes }
    }

    /// The message-count map of the BSPlib total exchange (§6.5): each
    /// process contributes a row of `P` 32-bit counters; the dissemination
    /// pattern doubles the carried rows per stage, with the final stage
    /// carrying the remainder `P − 2^(S−1)`.
    pub fn dissemination_count_map(p: usize) -> PayloadSchedule {
        assert!(p > 0);
        if p == 1 {
            return PayloadSchedule::none();
        }
        let stages = crate::pattern::log2_ceil(p);
        let row_bytes = 4 * p as u64;
        let bytes = (0..stages)
            .map(|s| {
                let known = 1u64 << s;
                let remaining = p as u64 - known.min(p as u64);
                known.min(remaining.max(1)) * row_bytes
            })
            .collect();
        PayloadSchedule { bytes }
    }

    /// Payload of stage `s` in bytes.
    pub fn bytes(&self, s: usize) -> u64 {
        self.bytes.get(s).copied().unwrap_or(0)
    }
}

/// Prediction result: stage-resolved entry times and the total.
#[derive(Debug, Clone)]
pub struct BarrierPrediction {
    /// `entry[s][i]`: time process i enters stage s; the last row is the
    /// exit from the final stage.
    pub entry: Vec<Vec<f64>>,
    /// `stage_cost[s][i]`: the Eq. 5.4 cost process i adds in stage s.
    pub stage_cost: Vec<Vec<f64>>,
    /// Worst-case completion over all processes.
    pub total: f64,
}

impl BarrierPrediction {
    /// Completion time of one process.
    pub fn completion(&self, i: usize) -> f64 {
        *self
            .entry
            .last()
            .expect("at least one row")
            .get(i)
            .expect("process index in range")
    }
}

/// Eq. 5.4 stage cost with payload extension and both refinements, over
/// the compiled pattern: destination slices from the CSR plan, posted
/// receivers from the precomputed table.
fn stage_cost<C: CostModel + ?Sized>(
    plan: &CompiledPattern,
    costs: &C,
    payload: &PayloadSchedule,
    s: usize,
    i: usize,
) -> f64 {
    let bytes = payload.bytes(s) as f64;
    let mut latency_term = 0.0;
    let mut max_term = costs.o(i, i); // refinement 1: floor at O_ii
    for &j in plan.stage(s).dsts(i) {
        latency_term += 2.0 * costs.l(i, j) + bytes * costs.beta(i, j);
        let o = if plan.is_posted(j, s) {
            costs.o(j, j) // refinement 2: posted receiver
        } else {
            costs.o(i, j)
        };
        if o > max_term {
            max_term = o;
        }
    }
    latency_term + max_term
}

/// Predicts the cost of executing `pattern` on a platform described by
/// `costs`, with per-stage payloads from `payload`.
///
/// Works on any [`CommPattern`] — barriers and collectives alike; the name
/// keeps the thesis' framing (the predictor was introduced for barriers,
/// §5.6.5) while the machinery is pattern-agnostic. Compiles the pattern
/// and delegates to [`predict_compiled`]; callers predicting the same
/// pattern repeatedly (the greedy construction of Ch. 7, parameter
/// sweeps) should compile once themselves.
pub fn predict_barrier<P: CommPattern + ?Sized>(
    pattern: &P,
    costs: &CommCosts,
    payload: &PayloadSchedule,
) -> BarrierPrediction {
    predict_compiled(&pattern.plan(), costs, payload)
}

/// [`predict_barrier`] over an already-compiled pattern: the whole
/// forward dynamic program runs on CSR slices and O(1) posted lookups,
/// allocating only the prediction it returns.
pub fn predict_compiled(
    plan: &CompiledPattern,
    costs: &CommCosts,
    payload: &PayloadSchedule,
) -> BarrierPrediction {
    predict_compiled_with(plan, costs, payload)
}

/// [`predict_compiled`] over any [`CostModel`] — the entry point for
/// class-level cost models, whose storage is independent of p. The DP
/// itself is O(p·stages + edges) in time and O(p·stages) in its returned
/// tables, so with a class-level model the whole prediction is free of
/// pairwise-dense anything.
pub fn predict_compiled_with<C: CostModel + ?Sized>(
    plan: &CompiledPattern,
    costs: &C,
    payload: &PayloadSchedule,
) -> BarrierPrediction {
    assert_eq!(
        plan.p(),
        costs.p(),
        "pattern and cost matrices must agree on process count"
    );
    let p = plan.p();
    let stages = plan.stages();
    let mut entry = vec![vec![0.0f64; p]];
    let mut stage_costs = Vec::with_capacity(stages);
    for s in 0..stages {
        let costs_s: Vec<f64> = (0..p)
            .map(|i| stage_cost(plan, costs, payload, s, i))
            .collect();
        let prev = entry.last().expect("entry starts non-empty").clone();
        let mut next: Vec<f64> = (0..p).map(|j| prev[j] + costs_s[j]).collect();
        let stage = plan.stage(s);
        for i in 0..p {
            let done = prev[i] + costs_s[i];
            for &j in stage.dsts(i) {
                if done > next[j] {
                    next[j] = done;
                }
            }
        }
        stage_costs.push(costs_s);
        entry.push(next);
    }
    let total = entry
        .last()
        .expect("non-empty")
        .iter()
        .copied()
        .fold(f64::NEG_INFINITY, f64::max);
    BarrierPrediction {
        entry,
        stage_cost: stage_costs,
        total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::IMat;
    use crate::pattern::BarrierPattern;

    fn linear(p: usize) -> BarrierPattern {
        let gather: Vec<(usize, usize)> = (1..p).map(|i| (i, 0)).collect();
        let release: Vec<(usize, usize)> = (1..p).map(|i| (0, i)).collect();
        BarrierPattern::new(
            "linear",
            p,
            vec![IMat::from_edges(p, &gather), IMat::from_edges(p, &release)],
        )
    }

    fn dissemination(p: usize) -> BarrierPattern {
        let stages = (p as f64).log2().ceil() as usize;
        let mats = (0..stages)
            .map(|s| {
                let edges: Vec<(usize, usize)> = (0..p).map(|i| (i, (i + (1 << s)) % p)).collect();
                IMat::from_edges(p, &edges)
            })
            .collect();
        BarrierPattern::new("dissemination", p, mats)
    }

    #[test]
    fn uniform_linear_matches_asymptotic_form() {
        // §5.4: T_linear = 2cP under uniform message cost c. With zero
        // overheads the prediction must be exactly 2c(P−1) + 2c·... — the
        // release stage dominates: master's stage-1 cost 2c(P−1); stage 0
        // adds one sender's 2c. Check the closed form.
        let p = 16;
        let c = 1e-6;
        let costs = CommCosts::uniform(p, 0.0, 0.0, c);
        let pred = predict_barrier(&linear(p), &costs, &PayloadSchedule::none());
        let expect = 2.0 * c + 2.0 * c * (p as f64 - 1.0);
        assert!(
            (pred.total - expect).abs() < 1e-15,
            "got {}, expect {expect}",
            pred.total
        );
    }

    #[test]
    fn uniform_dissemination_is_logarithmic() {
        let c = 1e-6;
        for p in [8usize, 16, 32, 64] {
            let costs = CommCosts::uniform(p, 0.0, 0.0, c);
            let pred = predict_barrier(&dissemination(p), &costs, &PayloadSchedule::none());
            let stages = (p as f64).log2().ceil();
            let expect = 2.0 * c * stages;
            assert!(
                (pred.total - expect).abs() < 1e-12,
                "p={p}: got {}, expect {expect}",
                pred.total
            );
        }
    }

    #[test]
    fn linear_to_dissemination_ratio_grows_with_p() {
        let costs64 = CommCosts::uniform(64, 1e-7, 5e-7, 1e-6);
        let lin = predict_barrier(&linear(64), &costs64, &PayloadSchedule::none()).total;
        let dis = predict_barrier(&dissemination(64), &costs64, &PayloadSchedule::none()).total;
        assert!(lin > 5.0 * dis, "linear {lin} vs dissemination {dis}");
    }

    #[test]
    fn invocation_floor_applies_to_idle_processes() {
        // In stage 1 of the linear barrier, ranks 1..p only receive; their
        // stage cost must be exactly O_ii.
        let p = 4;
        let costs = CommCosts::uniform(p, 3e-7, 9e-7, 1e-6);
        let pred = predict_barrier(&linear(p), &costs, &PayloadSchedule::none());
        // Rank 1 cost in stage 1 = O_11.
        assert!((pred.stage_cost[1][1] - 3e-7).abs() < 1e-18);
    }

    #[test]
    fn posted_receive_refinement_reduces_cost() {
        // 3-stage pattern: 1 → 0 in stage 0; filler 2 → 1 keeps stage 1
        // non-empty; 1 → 0 again in stage 2. By stage 2, rank 0 has been
        // idle since before stage 1, so rank 1's max term uses O_00 < O_10.
        let p = 3;
        let s0 = IMat::from_edges(p, &[(1, 0)]);
        let s1 = IMat::from_edges(p, &[(2, 1)]);
        let s2 = IMat::from_edges(p, &[(1, 0)]);
        let pat = BarrierPattern::new("posted", p, vec![s0, s1, s2]);
        let costs = CommCosts::uniform(p, 1e-7, 8e-7, 1e-6);
        let pred = predict_barrier(&pat, &costs, &PayloadSchedule::none());
        // Stage 0: receiver not yet posted → O_10 = 8e-7 in the max term.
        assert!((pred.stage_cost[0][1] - (2e-6 + 8e-7)).abs() < 1e-15);
        // Stage 2: rank 0 posted → O_00 = 1e-7.
        assert!((pred.stage_cost[2][1] - (2e-6 + 1e-7)).abs() < 1e-15);
    }

    #[test]
    fn payload_adds_bandwidth_term() {
        let p = 8;
        let mut costs = CommCosts::uniform(p, 0.0, 0.0, 1e-6);
        costs.beta = DMat::from_fn(p, p, |i, j| if i == j { 0.0 } else { 1e-8 });
        let pat = dissemination(p);
        let no_payload = predict_barrier(&pat, &costs, &PayloadSchedule::none()).total;
        let payload = PayloadSchedule::dissemination_count_map(p);
        let with_payload = predict_barrier(&pat, &costs, &payload).total;
        // Payload bytes over the critical path: stage s carries
        // min(2^s, P−2^s)·4P bytes at β = 1e-8.
        let extra: f64 = (0..3)
            .map(|s: usize| {
                let rows = (1u64 << s).min(8 - (1u64 << s).min(8)).max(1);
                rows as f64 * 32.0 * 1e-8
            })
            .sum();
        assert!(
            (with_payload - no_payload - extra).abs() < 1e-12,
            "delta {} vs extra {extra}",
            with_payload - no_payload
        );
    }

    #[test]
    fn count_map_schedule_doubles_then_remainder() {
        let ps = PayloadSchedule::dissemination_count_map(8);
        // Rows carried: 1, 2, 4 → bytes 32, 64, 128.
        assert_eq!(ps.bytes(0), 32);
        assert_eq!(ps.bytes(1), 64);
        assert_eq!(ps.bytes(2), 128);
        assert_eq!(ps.bytes(3), 0);
        // Non-power-of-two: P = 5 → rows 1, 2, 1 (remainder).
        let p5 = PayloadSchedule::dissemination_count_map(5);
        assert_eq!(p5.bytes(0), 20);
        assert_eq!(p5.bytes(1), 40);
        assert_eq!(p5.bytes(2), 20);
    }

    #[test]
    fn completion_accessor_matches_total() {
        let p = 8;
        let costs = CommCosts::uniform(p, 1e-7, 5e-7, 1e-6);
        let pred = predict_barrier(&dissemination(p), &costs, &PayloadSchedule::none());
        let max = (0..p).map(|i| pred.completion(i)).fold(0.0, f64::max);
        assert_eq!(max, pred.total);
    }

    #[test]
    fn heterogeneous_latency_shifts_critical_path() {
        // Make rank 3's links 50x slower: the prediction must rise and the
        // slow rank must sit on the critical path.
        let p = 4;
        let uniform = CommCosts::uniform(p, 0.0, 0.0, 1e-6);
        let mut slow = uniform.clone();
        for j in 0..p {
            if j != 3 {
                slow.l.set(3, j, 50e-6);
                slow.l.set(j, 3, 50e-6);
            }
        }
        let pat = dissemination(p);
        let fast = predict_barrier(&pat, &uniform, &PayloadSchedule::none()).total;
        let slowed = predict_barrier(&pat, &slow, &PayloadSchedule::none()).total;
        assert!(slowed > 10.0 * fast, "{slowed} vs {fast}");
    }

    #[test]
    #[should_panic]
    fn mismatched_process_count_rejected() {
        let costs = CommCosts::uniform(4, 0.0, 0.0, 1e-6);
        predict_barrier(&linear(8), &costs, &PayloadSchedule::none());
    }

    /// A plan compiled once and reused across cost matrices yields the
    /// exact numbers the per-call compiling entry point produces.
    #[test]
    fn reused_plan_matches_fresh_compilation() {
        let pat = dissemination(24);
        let plan = pat.plan();
        for seed in 0..4u64 {
            let o = 1e-7 * (seed + 1) as f64;
            let costs = CommCosts::uniform(24, o, 5.0 * o, 1e-6);
            let fresh = predict_barrier(&pat, &costs, &PayloadSchedule::none());
            let reused = predict_compiled(&plan, &costs, &PayloadSchedule::none());
            assert_eq!(fresh.total, reused.total);
            assert_eq!(fresh.entry, reused.entry);
            assert_eq!(fresh.stage_cost, reused.stage_cost);
        }
    }
}
