//! The original BSP performance model (§3.1).
//!
//! Four scalars — `p` processes, computation rate `r`, router throughput
//! `g` and synchronization latency `l` — with all costs expressed in flop
//! equivalents. This model is retained as the baseline: its inner-product
//! prediction deviates from measurement by five orders of magnitude on the
//! 8×2×4 test cluster (Fig. 3.2), which is the motivation for the
//! heterogeneous extensions in the rest of the crate.

/// Classic BSP machine parameters, in the notation of Bisseling that the
/// thesis follows: `r` in flop/s, `g` and `l` in flop-equivalents.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassicBsp {
    /// Level of parallelism.
    pub p: usize,
    /// Computation rate in flop/s.
    pub r: f64,
    /// Communication throughput in flops per transferred word.
    pub g: f64,
    /// Synchronization cost in flop equivalents.
    pub l: f64,
}

impl ClassicBsp {
    /// Creates a parameter set; all rates must be positive.
    pub fn new(p: usize, r: f64, g: f64, l: f64) -> ClassicBsp {
        assert!(p > 0, "need at least one process");
        assert!(r > 0.0 && g >= 0.0 && l >= 0.0, "invalid BSP parameters");
        ClassicBsp { p, r, g, l }
    }

    /// `h = max(h_s, h_r)` (Eq. 3.1).
    pub fn h_relation(sent: u64, received: u64) -> u64 {
        sent.max(received)
    }

    /// Communication superstep cost in flop equivalents: `hg + l`
    /// (Eq. 3.2).
    pub fn comm_flops(&self, h: u64) -> f64 {
        h as f64 * self.g + self.l
    }

    /// Computation superstep cost in flop equivalents: `w + l` (Eq. 3.3).
    pub fn comp_flops(&self, w: f64) -> f64 {
        w + self.l
    }

    /// Seconds for a number of flop equivalents.
    pub fn seconds(&self, flops: f64) -> f64 {
        flops / self.r
    }

    /// The classic prediction for the two-superstep inner product of §3.1
    /// (Eq. 3.7): a local sum of `n/p` products, a 1-relation scatter and a
    /// `p`-term accumulation.
    pub fn inner_product_seconds(&self, n: u64) -> f64 {
        let local = (n as f64 / self.p as f64) * 2.0;
        let accum = self.p as f64;
        // Eq. 3.7: (N/p·2 + l + g + l + p) / r — the first superstep's
        // synchronization, the 1-relation scatter (g + l), then the local
        // accumulation.
        self.seconds(local + self.l + self.g + self.l + accum)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table_3_1_p8() -> ClassicBsp {
        // First row of Table 3.1: P = 8, r = 991.695 Mflop/s,
        // g = 105.4, l = 30575.7.
        ClassicBsp::new(8, 991.695e6, 105.4, 30575.7)
    }

    #[test]
    fn h_relation_takes_max() {
        assert_eq!(ClassicBsp::h_relation(10, 3), 10);
        assert_eq!(ClassicBsp::h_relation(3, 10), 10);
    }

    #[test]
    fn comm_and_comp_costs() {
        let m = ClassicBsp::new(4, 1e9, 50.0, 1000.0);
        assert_eq!(m.comm_flops(10), 1500.0);
        assert_eq!(m.comp_flops(250.0), 1250.0);
        assert!((m.seconds(1e9) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inner_product_prediction_matches_eq_3_7() {
        let m = table_3_1_p8();
        let n = 100_000_000u64;
        let by_hand = ((n as f64 / 8.0) * 2.0 + m.l + m.g + m.l + 8.0) / m.r;
        assert!((m.inner_product_seconds(n) - by_hand).abs() < 1e-15);
    }

    #[test]
    fn prediction_has_the_spurious_minimum() {
        // The classic model predicts a cost minimum in p (Fig. 3.2's
        // criticism): growing l with p eventually dominates the shrinking
        // local work. Emulate Table 3.1's l growth and verify the
        // non-monotonicity the thesis points out.
        let n = 100_000_000u64;
        let ls = [30575.7, 631365.8, 1450059.5, 1771331.3, 2500077.3];
        let ps = [8usize, 16, 24, 32, 40];
        let times: Vec<f64> = ps
            .iter()
            .zip(ls.iter())
            .map(|(&p, &l)| ClassicBsp::new(p, 991.695e6, 105.4, l).inner_product_seconds(n))
            .collect();
        let min_at = times
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("predicted times are finite"))
            .expect("times is non-empty")
            .0;
        assert!(
            min_at > 0 && min_at < times.len() - 1,
            "expected an interior minimum, times: {times:?}"
        );
    }

    #[test]
    #[should_panic]
    fn zero_processes_rejected() {
        ClassicBsp::new(0, 1.0, 1.0, 1.0);
    }
}
