//! The fundamental equation of modeling and the overlap term
//! (Eqs. 1.1–1.4, 3.15–3.16).
//!
//! With the computational superstep as the unit of work, total time splits
//! into non-maskable computation, non-maskable communication, the larger of
//! the two maskable parts, and synchronization:
//!
//! ```text
//! T_total = (T_comp − T'_comp) + (T_comm − T'_comm)
//!           + max(T'_comp, T'_comm) + T_sync          (Eq. 1.4)
//! ```
//!
//! Conversely, measuring `T_total` alongside the component estimates yields
//! the overlap actually achieved (Eq. 3.16):
//! `T_overlap = T_comp + T_comm − (T_total − T_sync)`.

/// Per-process superstep cost decomposition.
///
/// All vectors are indexed by process; `sync` is the collective
/// synchronization cost (from the barrier predictor).
#[derive(Debug, Clone, PartialEq)]
pub struct SuperstepModel {
    /// Total computation time per process (`T_comp`).
    pub comp: Vec<f64>,
    /// The maskable part of computation (`T'_comp ≤ T_comp`).
    pub comp_maskable: Vec<f64>,
    /// Total communication time per process (`T_comm`).
    pub comm: Vec<f64>,
    /// The maskable part of communication (`T'_comm ≤ T_comm`).
    pub comm_maskable: Vec<f64>,
    /// Synchronization cost of the closing barrier.
    pub sync: f64,
}

impl SuperstepModel {
    /// Validates the decomposition invariants.
    pub fn new(
        comp: Vec<f64>,
        comp_maskable: Vec<f64>,
        comm: Vec<f64>,
        comm_maskable: Vec<f64>,
        sync: f64,
    ) -> SuperstepModel {
        let p = comp.len();
        assert!(p > 0, "need at least one process");
        assert_eq!(comp_maskable.len(), p, "comp_maskable length");
        assert_eq!(comm.len(), p, "comm length");
        assert_eq!(comm_maskable.len(), p, "comm_maskable length");
        assert!(sync >= 0.0, "sync cost cannot be negative");
        for i in 0..p {
            assert!(
                comp_maskable[i] <= comp[i] + 1e-15 && comp_maskable[i] >= 0.0,
                "proc {i}: maskable computation exceeds total"
            );
            assert!(
                comm_maskable[i] <= comm[i] + 1e-15 && comm_maskable[i] >= 0.0,
                "proc {i}: maskable communication exceeds total"
            );
        }
        SuperstepModel {
            comp,
            comp_maskable,
            comm,
            comm_maskable,
            sync,
        }
    }

    /// A fully sequential model: nothing maskable.
    pub fn without_overlap(comp: Vec<f64>, comm: Vec<f64>, sync: f64) -> SuperstepModel {
        let z = vec![0.0; comp.len()];
        SuperstepModel::new(comp, z.clone(), comm, z, sync)
    }

    /// Number of processes.
    pub fn p(&self) -> usize {
        self.comp.len()
    }

    /// Eq. 1.4 evaluated for one process.
    pub fn proc_total(&self, i: usize) -> f64 {
        (self.comp[i] - self.comp_maskable[i])
            + (self.comm[i] - self.comm_maskable[i])
            + self.comp_maskable[i].max(self.comm_maskable[i])
            + self.sync
    }

    /// The superstep cost: the slowest process (the barrier makes the step
    /// collective).
    pub fn total(&self) -> f64 {
        (0..self.p())
            .map(|i| self.proc_total(i))
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Time saved by overlap relative to fully sequential execution.
    pub fn overlap_saving(&self) -> f64 {
        let sequential =
            SuperstepModel::without_overlap(self.comp.clone(), self.comm.clone(), self.sync);
        sequential.total() - self.total()
    }

    /// The largest possible saving: everything maskable.
    pub fn perfect_overlap_total(&self) -> f64 {
        (0..self.p())
            .map(|i| self.comp[i].max(self.comm[i]) + self.sync)
            .fold(f64::NEG_INFINITY, f64::max)
    }
}

/// Eq. 3.16: the overlap achieved in an observed execution, from measured
/// component estimates and a measured total (per process).
///
/// Negative values are clamped to zero: measurement noise can make the sum
/// of parts smaller than the whole.
pub fn overlap_estimate(comp: f64, comm: f64, sync: f64, measured_total: f64) -> f64 {
    (comp + comm + sync - measured_total).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fully_sequential_total() {
        let m = SuperstepModel::without_overlap(vec![3.0, 2.0], vec![1.0, 2.5], 0.5);
        assert!((m.proc_total(0) - 4.5).abs() < 1e-12);
        assert!((m.proc_total(1) - 5.0).abs() < 1e-12);
        assert!((m.total() - 5.0).abs() < 1e-12);
        assert_eq!(m.overlap_saving(), 0.0);
    }

    #[test]
    fn full_overlap_bounded_by_max() {
        // Everything maskable: total = max(comp, comm) + sync.
        let m = SuperstepModel::new(vec![4.0], vec![4.0], vec![3.0], vec![3.0], 1.0);
        assert!((m.total() - 5.0).abs() < 1e-12);
        assert!((m.overlap_saving() - 3.0).abs() < 1e-12);
        assert_eq!(m.total(), m.perfect_overlap_total());
    }

    #[test]
    fn partial_overlap_interpolates() {
        // comp 4 (2 maskable), comm 3 (all maskable):
        // (4−2) + (3−3) + max(2,3) + 1 = 6.
        let m = SuperstepModel::new(vec![4.0], vec![2.0], vec![3.0], vec![3.0], 1.0);
        assert!((m.total() - 6.0).abs() < 1e-12);
        // Between sequential (8) and perfect (5).
        assert!(m.total() < 8.0 && m.total() > 5.0);
    }

    #[test]
    fn overlap_bisseling_factor_two_bound() {
        // §3.5 cites Bisseling: perfect overlap yields at most 2x speedup.
        let m = SuperstepModel::new(vec![5.0], vec![5.0], vec![5.0], vec![5.0], 0.0);
        let sequential = 10.0;
        assert!((sequential / m.total() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn slowest_process_governs() {
        let m = SuperstepModel::new(
            vec![1.0, 10.0],
            vec![0.0, 0.0],
            vec![1.0, 1.0],
            vec![0.0, 0.0],
            0.0,
        );
        assert!((m.total() - 11.0).abs() < 1e-12);
    }

    #[test]
    fn eq_3_16_overlap_estimate() {
        // Components sum to 9, measured total 7 → 2 units were overlapped.
        assert!((overlap_estimate(4.0, 3.0, 2.0, 7.0) - 2.0).abs() < 1e-12);
        // Noise making total exceed the parts clamps to zero.
        assert_eq!(overlap_estimate(1.0, 1.0, 0.5, 3.0), 0.0);
    }

    #[test]
    #[should_panic]
    fn maskable_exceeding_total_rejected() {
        SuperstepModel::new(vec![1.0], vec![2.0], vec![1.0], vec![0.0], 0.0);
    }
}
