//! # hpm-core — the matrix-composed heterogeneous performance model
//!
//! This crate is the primary contribution of the reproduced thesis: a
//! framework that replaces the scalar parameters of the classic BSP
//! performance model with *matrices* of per-processor and per-pair
//! parameters, so that heterogeneous collections of subsystems compose
//! into predictions by mechanical linear algebra instead of manual
//! analysis.
//!
//! The pieces, in thesis order:
//!
//! * [`classic`] — the original BSP performance model `(p, r, g, l)` and
//!   its inner-product cost function (§3.1), kept as the baseline whose
//!   five-orders-of-magnitude misprediction motivates everything else.
//! * [`matrix`] — dense `f64` matrices ([`matrix::DMat`]) and boolean
//!   incidence matrices ([`matrix::IMat`]).
//! * [`compute`] — heterogeneous computation: requirement ⊗ cost
//!   composition, per-superstep time vectors and imbalance (§3.3,
//!   Eqs. 3.9–3.13).
//! * [`hockney`] — the heterogeneous Hockney communication model: `P×P`
//!   latency and inverse-bandwidth matrices (§3.4, Eq. 3.14).
//! * [`pattern`] — staged communication patterns as sequences of stage
//!   incidence matrices (§5.5, Figs. 5.2–5.4): the shared
//!   [`pattern::CommPattern`] abstraction plus the barrier-shaped
//!   [`pattern::BarrierPattern`].
//! * [`plan`] — the flat execution form: CSR stage adjacency
//!   ([`plan::StagePlan`]) and whole patterns compiled once
//!   ([`plan::CompiledPattern`]) for allocation-free hot loops in the
//!   predictor, verifier and simulator.
//! * [`knowledge`] — the knowledge-matrix correctness test
//!   `K_i = K_{i−1} + K_{i−1}·S_i` (Eqs. 5.1–5.2), generalized to rooted
//!   and prefix knowledge goals for collective operations.
//! * [`predictor`] — the critical-path barrier cost predictor with the
//!   Eq. 5.4 stage cost, both §5.6.5 refinements and the Ch. 6.5 payload
//!   extension.
//! * [`superstep`] — the fundamental equation of modeling (Eq. 1.1/1.4)
//!   and the overlap estimate (Eqs. 3.15–3.16).
//! * [`recovery`] — survivor re-planning after crashes:
//!   [`plan::CompiledPattern::restrict_to_survivors`] prunes and
//!   compacts, [`recovery::repair_plan`] synthesizes a fresh verified
//!   pattern over the survivors when pruning severed the knowledge flow.

pub mod classic;
pub mod compute;
pub mod hockney;
pub mod knowledge;
pub mod matrix;
pub mod pattern;
pub mod plan;
pub mod predictor;
pub mod recovery;
pub mod superstep;

pub use classic::ClassicBsp;
pub use compute::{cross_mapping_costs, imbalance, superstep_times};
pub use hockney::{comm_times, HeteroHockney, Hockney};
pub use knowledge::{
    verify_compiled, verify_goal, verify_synchronizes, KnowledgeGoal, KnowledgeTrace,
    KnowledgeView, VerifyScratch,
};
pub use matrix::{DMat, IMat};
pub use pattern::{BarrierPattern, CommPattern};
pub use plan::{CompiledPattern, StagePlan};
pub use predictor::{
    predict_barrier, predict_compiled, predict_compiled_with, BarrierPrediction, CommCosts,
    CostModel, PayloadSchedule,
};
pub use recovery::{remap_goal, repair_plan};
pub use superstep::{overlap_estimate, SuperstepModel};
