//! Heterogeneous computation composition (§3.3).
//!
//! A parallel program's computational demand in one superstep is a `P×K`
//! *requirement matrix* `R` (how much of each of `K` kernels each process
//! applies, in elements), and the platform's capability is a `P×K` *cost
//! matrix* `C` (seconds per element of each kernel on each processor).
//! Their Hadamard product summed over kernels gives the per-process
//! superstep time vector (Eq. 3.13):
//!
//! ```text
//! t = (R ⊗ C) · s,   s = [1, 1, …]ᵀ
//! ```
//!
//! The spread of `t` exposes load imbalance (Eq. 3.11); the regular product
//! `R · Cᵀ` evaluates every process-requirement-to-processor mapping, the
//! scheduling view the thesis notes in passing.

use crate::matrix::DMat;

/// Per-process superstep time vector `t = (R ⊗ C)·s` (Eq. 3.13).
///
/// `r` and `c` must both be `P×K`. Entries of `r` are workload sizes
/// (elements), entries of `c` are seconds per element.
pub fn superstep_times(r: &DMat, c: &DMat) -> Vec<f64> {
    assert_eq!(
        (r.rows(), r.cols()),
        (c.rows(), c.cols()),
        "requirement and cost matrices must agree in shape"
    );
    r.hadamard(c).row_sums()
}

/// Load imbalance of a superstep time vector: `max/mean − 1`; zero for a
/// perfectly balanced step, and 0 for an empty or all-zero vector.
pub fn imbalance(t: &[f64]) -> f64 {
    if t.is_empty() {
        return 0.0;
    }
    let mean = t.iter().sum::<f64>() / t.len() as f64;
    if mean == 0.0 {
        return 0.0;
    }
    let max = t.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    max / mean - 1.0
}

/// The `P×P` map of "cost of running process i's requirements on processor
/// j's capabilities": `R · Cᵀ`. Its diagonal is `superstep_times`; its
/// permutations evaluate alternative task mappings (§3.3).
pub fn cross_mapping_costs(r: &DMat, c: &DMat) -> DMat {
    assert_eq!(
        (r.rows(), r.cols()),
        (c.rows(), c.cols()),
        "requirement and cost matrices must agree in shape"
    );
    r.matmul(&c.transpose())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The worked example of Eq. 3.12/3.13: two DAXPY processes, the second
    /// processor halving add and multiply cost via fused multiply-add.
    fn eq_3_12_matrices(n: f64) -> (DMat, DMat) {
        let r = DMat::from_rows(&[&[n, n, n], &[n, n, n]]);
        let c = DMat::from_rows(&[&[1.0, 1.0, 1.0], &[1.0, 0.5, 0.5]]);
        (r, c)
    }

    #[test]
    fn eq_3_13_reproduced() {
        let (r, c) = eq_3_12_matrices(10.0);
        let t = superstep_times(&r, &c);
        assert_eq!(t, vec![30.0, 20.0]);
    }

    #[test]
    fn homogeneous_case_is_balanced() {
        let r = DMat::from_rows(&[&[5.0, 5.0], &[5.0, 5.0]]);
        let c = DMat::from_rows(&[&[2.0, 3.0], &[2.0, 3.0]]);
        let t = superstep_times(&r, &c);
        assert_eq!(t[0], t[1]);
        assert_eq!(imbalance(&t), 0.0);
    }

    #[test]
    fn eq_3_11_imbalance_detected() {
        // Process 0 runs DAXPY (=, +, *), process 1 a difference (=, −):
        // requirement rows differ, t exposes the mismatch.
        let r = DMat::from_rows(&[&[8.0, 8.0, 0.0, 8.0], &[8.0, 0.0, 8.0, 0.0]]);
        let c = DMat::from_rows(&[&[1.0, 1.0, 1.0, 1.0], &[1.0, 1.0, 1.0, 1.0]]);
        let t = superstep_times(&r, &c);
        assert_eq!(t, vec![24.0, 16.0]);
        assert!(imbalance(&t) > 0.0);
    }

    #[test]
    fn cross_mapping_diagonal_matches_times() {
        let (r, c) = eq_3_12_matrices(7.0);
        let x = cross_mapping_costs(&r, &c);
        let t = superstep_times(&r, &c);
        assert_eq!(x.get(0, 0), t[0]);
        assert_eq!(x.get(1, 1), t[1]);
        // Off-diagonal: process 0's needs on processor 1's capabilities.
        assert_eq!(x.get(0, 1), 14.0);
    }

    #[test]
    fn imbalance_edge_cases() {
        assert_eq!(imbalance(&[]), 0.0);
        assert_eq!(imbalance(&[0.0, 0.0]), 0.0);
        assert!((imbalance(&[1.0, 3.0]) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn shape_mismatch_rejected() {
        superstep_times(&DMat::zeros(2, 3), &DMat::zeros(3, 2));
    }
}
