//! The flat, compiled form of a staged pattern: CSR adjacency, compiled
//! once, executed allocation-free.
//!
//! The dense [`IMat`] encoding is the right *authoring* form — the §5.5
//! algebra (transpose, knowledge products, rendering) is clearest on
//! dense boolean matrices — but it is the wrong *execution* form: every
//! hot loop of this workspace (the Eq. 5.4 predictor, the knowledge
//! recurrence, the Fig. 5.5 staged executor) walks "the destinations of
//! rank i in stage s", which on a dense row is an O(P) scan, and the old
//! `IMat::dsts` API returned a freshly allocated `Vec` per query — one
//! allocation per rank per stage per repetition.
//!
//! [`StagePlan`] is one stage in compressed sparse row form (flat index
//! arrays plus offsets, both directions), and [`CompiledPattern`] is a
//! whole pattern compiled stage by stage, together with the derived
//! tables the predictor needs: per-rank last-transmission stages and the
//! §5.6.5 posted-receiver booleans. Compile once per pattern (via
//! [`crate::pattern::CommPattern::plan`]), then every enumeration is a
//! slice borrow and every posted test an indexed load.
//!
//! The compiled form is a pure view: it enumerates exactly the edges of
//! the dense stages, in the same ascending order, so executors switching
//! to it reproduce their dense-path results bit for bit (the RNG draw
//! order of the simulator is part of that contract — see DESIGN.md).

use crate::matrix::IMat;
use crate::pattern::CommPattern;

/// Jitter multipliers the staged executor consumes per signal: the
/// sender's `o_send`, the wire term, the receiver's `o_recv` and the
/// acknowledgement — in that order. Part of the draw-order contract the
/// batched jitter engine sizes its tables by (see DESIGN.md).
pub const SIGNAL_JITTER_DRAWS: usize = 4;

/// Jitter multipliers the staged executor consumes per process per
/// stage: the library call overhead at stage entry.
pub const ENTRY_JITTER_DRAWS: usize = 1;

/// One stage of a pattern in compressed sparse row form, both directions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StagePlan {
    p: usize,
    /// Destination lists of all ranks, concatenated in rank order.
    dsts: Vec<usize>,
    /// `dsts_off[i]..dsts_off[i+1]` delimits rank i's destinations.
    dsts_off: Vec<usize>,
    /// Source lists of all ranks, concatenated in rank order.
    srcs: Vec<usize>,
    /// `srcs_off[j]..srcs_off[j+1]` delimits rank j's sources.
    srcs_off: Vec<usize>,
}

impl StagePlan {
    /// Compiles one dense incidence matrix into CSR form: one dense row
    /// scan per rank (O(P²) total), with the source lists filled by
    /// counting placement from the same pass — ascending `i` keeps every
    /// rank's source span sorted.
    pub fn from_imat(m: &IMat) -> StagePlan {
        let p = m.n();
        let edges = m.edge_count();
        let mut dsts = Vec::with_capacity(edges);
        let mut dsts_off = Vec::with_capacity(p + 1);
        dsts_off.push(0);
        let mut srcs_off = Vec::with_capacity(p + 1);
        srcs_off.push(0);
        for j in 0..p {
            srcs_off.push(srcs_off[j] + m.in_degree(j));
        }
        let mut srcs = vec![0usize; edges];
        let mut cursor = srcs_off[..p].to_vec();
        for i in 0..p {
            for j in m.dsts(i) {
                dsts.push(j);
                srcs[cursor[j]] = i;
                cursor[j] += 1;
            }
            dsts_off.push(dsts.len());
        }
        StagePlan {
            p,
            dsts,
            dsts_off,
            srcs,
            srcs_off,
        }
    }

    /// Compiles one stage directly from an edge list — O(p + E log E)
    /// time and O(p + E) storage, never materializing a dense incidence
    /// matrix. This is the authoring route of the scale path: a
    /// dissemination stage at p = 4096 is 4096 edges (64 KB of CSR)
    /// where the dense form is a 16.7 MB boolean matrix.
    ///
    /// Edges are `(src, dst)` pairs; order is irrelevant, so the result
    /// is identical to routing the same edges through
    /// [`IMat::from_edges`] and [`StagePlan::from_imat`] — both
    /// directions enumerate ascending, the compiled-form contract.
    ///
    /// # Panics
    ///
    /// Rejects malformed input up front rather than silently building a
    /// CSR the executors would misinterpret: panics on out-of-range
    /// ranks, duplicate edges (a signal would be double-counted in
    /// jitter-draw accounting), and self-sends (`i → i` is not a
    /// communication the staged model assigns a cost to).
    pub fn from_edges(p: usize, edges: &[(usize, usize)]) -> StagePlan {
        let mut es = edges.to_vec();
        es.sort_unstable();
        for w in es.windows(2) {
            assert!(
                w[0] != w[1],
                "duplicate edge ({},{}) — each signal must appear once",
                w[0].0,
                w[0].1
            );
        }
        let mut dsts = Vec::with_capacity(es.len());
        let mut dsts_off = Vec::with_capacity(p + 1);
        dsts_off.push(0);
        let mut in_deg = vec![0usize; p];
        for &(i, j) in &es {
            assert!(i < p && j < p, "edge ({i},{j}) out of range for p={p}");
            assert!(
                i != j,
                "self-send edge ({i},{j}) — ranks never signal themselves"
            );
            in_deg[j] += 1;
        }
        let mut srcs_off = Vec::with_capacity(p + 1);
        srcs_off.push(0);
        for j in 0..p {
            srcs_off.push(srcs_off[j] + in_deg[j]);
        }
        let mut srcs = vec![0usize; es.len()];
        let mut cursor = srcs_off[..p].to_vec();
        let mut next = 0usize;
        for rank in 0..p {
            while next < es.len() && es[next].0 == rank {
                let j = es[next].1;
                dsts.push(j);
                srcs[cursor[j]] = rank;
                cursor[j] += 1;
                next += 1;
            }
            dsts_off.push(dsts.len());
        }
        StagePlan {
            p,
            dsts,
            dsts_off,
            srcs,
            srcs_off,
        }
    }

    /// Assembles a stage from raw CSR parts, **unvalidated** — the
    /// adversarial-input route for the static analyzer's tests and the
    /// escape hatch pattern synthesis will use. Nothing checks that the
    /// offsets are monotone, the adjacency sorted, or the two directions
    /// mirrors of each other; run `hpm_analyze::analyze` over plans
    /// built this way before executing them.
    pub fn from_raw_csr(
        p: usize,
        dsts: Vec<usize>,
        dsts_off: Vec<usize>,
        srcs: Vec<usize>,
        srcs_off: Vec<usize>,
    ) -> StagePlan {
        StagePlan {
            p,
            dsts,
            dsts_off,
            srcs,
            srcs_off,
        }
    }

    /// Process count.
    #[must_use]
    pub fn p(&self) -> usize {
        self.p
    }

    /// Destinations signalled by `i`, ascending — a borrowed slice.
    #[must_use]
    pub fn dsts(&self, i: usize) -> &[usize] {
        &self.dsts[self.dsts_off[i]..self.dsts_off[i + 1]]
    }

    /// Sources signalling `j`, ascending — a borrowed slice.
    #[must_use]
    pub fn srcs(&self, j: usize) -> &[usize] {
        &self.srcs[self.srcs_off[j]..self.srcs_off[j + 1]]
    }

    /// Number of destinations `i` signals.
    #[must_use]
    pub fn out_degree(&self, i: usize) -> usize {
        self.dsts_off[i + 1] - self.dsts_off[i]
    }

    /// Number of sources signalling `j`.
    #[must_use]
    pub fn in_degree(&self, j: usize) -> usize {
        self.srcs_off[j + 1] - self.srcs_off[j]
    }

    /// Total edge count.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.dsts.len()
    }

    /// The concatenated destination lists, all ranks — the raw CSR index
    /// array behind [`StagePlan::dsts`]. Introspection hook for the
    /// static analyzer, which must inspect the arrays without trusting
    /// the sliced accessors' indexing to be in bounds.
    #[must_use]
    pub fn dst_indices(&self) -> &[usize] {
        &self.dsts
    }

    /// The destination offset array: `dst_offsets()[i]..[i + 1]`
    /// delimits rank i's span in [`StagePlan::dst_indices`].
    #[must_use]
    pub fn dst_offsets(&self) -> &[usize] {
        &self.dsts_off
    }

    /// The concatenated source lists, all ranks — the raw CSR index
    /// array behind [`StagePlan::srcs`].
    #[must_use]
    pub fn src_indices(&self) -> &[usize] {
        &self.srcs
    }

    /// The source offset array: `src_offsets()[j]..[j + 1]` delimits
    /// rank j's span in [`StagePlan::src_indices`].
    #[must_use]
    pub fn src_offsets(&self) -> &[usize] {
        &self.srcs_off
    }

    /// Jitter multipliers the staged executor consumes for this stage:
    /// one call-overhead draw per process plus [`SIGNAL_JITTER_DRAWS`]
    /// per signal. Every signal draws — self-loop and local signals
    /// included — so the count is exact, not an upper bound.
    #[must_use]
    pub fn jitter_draws(&self) -> usize {
        self.p * ENTRY_JITTER_DRAWS + self.edge_count() * SIGNAL_JITTER_DRAWS
    }
}

/// A staged pattern compiled for flat execution: per-stage CSR adjacency
/// plus the derived tables of the §5.6.5 predictor refinements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledPattern {
    name: String,
    p: usize,
    stages: Vec<StagePlan>,
    /// `posted[s * p + j]`: true when rank j is known to be awaiting
    /// signals at stage s (its last transmission, if any, ended at least
    /// two stages earlier) — refinement 2 of §5.6.5, precomputed.
    posted: Vec<bool>,
    /// `last_send[s * p + i]`: last stage index `< s` in which rank i
    /// transmitted, or `usize::MAX` when it had not yet. Row `s == 0` is
    /// all-MAX; the table has `stages + 1` rows so the final row answers
    /// "before the end of the pattern".
    last_send: Vec<usize>,
    /// Exact jitter draws one staged execution consumes, precomputed —
    /// the batched engine sizes its `JitterBuf` from this.
    jitter_draws: usize,
}

impl CompiledPattern {
    /// Compiles any staged pattern: one dense row scan per rank per
    /// stage (O(P² · stages)) plus O(P · stages) for the derived tables.
    /// Compilation is the cold half of compile-then-execute — done once
    /// per pattern, off the repetition hot path.
    pub fn compile<P: CommPattern + ?Sized>(pattern: &P) -> CompiledPattern {
        let p = pattern.p();
        let stages: Vec<StagePlan> = (0..pattern.stages())
            .map(|s| {
                let m = pattern.stage(s);
                assert_eq!(m.n(), p, "stage {s} has wrong dimension");
                StagePlan::from_imat(m)
            })
            .collect();
        CompiledPattern::from_stages(pattern.name(), p, stages)
    }

    /// Compiles a pattern authored directly as per-stage edge lists,
    /// bypassing the dense [`IMat`] form entirely — the authoring route
    /// of the scale path, O(p·stages + edges) where the dense route is
    /// O(p²·stages). Produces exactly what [`CompiledPattern::compile`]
    /// produces for the same edges.
    pub fn from_stage_edges(
        name: &str,
        p: usize,
        stage_edges: &[Vec<(usize, usize)>],
    ) -> CompiledPattern {
        let stages = stage_edges
            .iter()
            .map(|edges| StagePlan::from_edges(p, edges))
            .collect();
        CompiledPattern::from_stages(name, p, stages)
    }

    /// Assembles a compiled pattern from already-built stage plans and
    /// derives the §5.6.5 posted/last-send tables — the shared tail of
    /// both the dense and the sparse authoring routes.
    pub fn from_stages(name: &str, p: usize, stages: Vec<StagePlan>) -> CompiledPattern {
        for (s, stage) in stages.iter().enumerate() {
            assert_eq!(stage.p(), p, "stage {s} has wrong dimension");
        }
        let n_stages = stages.len();
        let mut posted = vec![false; n_stages * p];
        let mut last_send = vec![usize::MAX; (n_stages + 1) * p];
        for s in 0..n_stages {
            for i in 0..p {
                let prev = last_send[s * p + i];
                // Posted iff the rank's last transmission (if any) ended
                // at least two stages ago; at stage 0 nothing is posted.
                posted[s * p + i] = s > 0 && (prev == usize::MAX || prev + 1 < s);
                last_send[(s + 1) * p + i] = if stages[s].out_degree(i) > 0 { s } else { prev };
            }
        }
        let jitter_draws = stages.iter().map(StagePlan::jitter_draws).sum();
        CompiledPattern {
            name: name.to_string(),
            p,
            stages,
            posted,
            last_send,
            jitter_draws,
        }
    }

    /// Assembles a compiled pattern from caller-supplied derived tables,
    /// **unvalidated** — the adversarial-input route for the static
    /// analyzer's tests: planting a wrong posted bit, last-send entry or
    /// draw count here is how each consistency rule gets its failing
    /// input. [`CompiledPattern::from_stages`] is the honest route that
    /// derives the tables itself.
    pub fn from_raw_tables(
        name: &str,
        p: usize,
        stages: Vec<StagePlan>,
        posted: Vec<bool>,
        last_send: Vec<usize>,
        jitter_draws: usize,
    ) -> CompiledPattern {
        CompiledPattern {
            name: name.to_string(),
            p,
            stages,
            posted,
            last_send,
            jitter_draws,
        }
    }

    /// Descriptive name inherited from the source pattern.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Process count.
    #[must_use]
    pub fn p(&self) -> usize {
        self.p
    }

    /// Number of stages.
    #[must_use]
    pub fn stages(&self) -> usize {
        self.stages.len()
    }

    /// Borrow one compiled stage.
    #[must_use]
    pub fn stage(&self, k: usize) -> &StagePlan {
        &self.stages[k]
    }

    /// Total signal count across all stages.
    #[must_use]
    pub fn total_signals(&self) -> usize {
        self.stages.iter().map(StagePlan::edge_count).sum()
    }

    /// The raw §5.6.5 posted table (`stages × p`, row-major) behind
    /// [`CompiledPattern::is_posted`] — introspection hook so the static
    /// analyzer can check the table's shape before indexing it.
    #[must_use]
    pub fn posted_table(&self) -> &[bool] {
        &self.posted
    }

    /// The raw last-transmission table (`(stages + 1) × p`, row-major)
    /// behind [`CompiledPattern::last_send_stage`]; `usize::MAX` encodes
    /// "has not transmitted yet".
    #[must_use]
    pub fn last_send_table(&self) -> &[usize] {
        &self.last_send
    }

    /// Exact jitter multipliers one staged execution (one repetition)
    /// consumes: per stage, [`ENTRY_JITTER_DRAWS`] per process plus
    /// [`SIGNAL_JITTER_DRAWS`] per signal slot. The batched engine
    /// allocates and fills its table from this number and the audit
    /// tests assert the executor consumes exactly it — a silent
    /// divergence between plan and engine trips either the test or the
    /// buffer's bounds check.
    #[must_use]
    pub fn jitter_draws(&self) -> usize {
        self.jitter_draws
    }

    /// True when rank `j` is known to be awaiting signals at stage `s` —
    /// the §5.6.5 posted-receiver refinement, as one indexed load.
    #[must_use]
    pub fn is_posted(&self, j: usize, s: usize) -> bool {
        self.posted[s * self.p + j]
    }

    /// The last stage index before `before` in which `i` transmitted, if
    /// any — the precomputed equivalent of
    /// [`CommPattern::last_send_stage`]. O(1).
    #[must_use]
    pub fn last_send_stage(&self, i: usize, before: usize) -> Option<usize> {
        let row = before.min(self.stages.len());
        let s = self.last_send[row * self.p + i];
        (s != usize::MAX).then_some(s)
    }

    /// The survivor-compacted repair of this plan after the ranks in
    /// `crashed` failed: every edge incident to a crashed rank is
    /// dropped, the survivors are renumbered `0..p'` in ascending
    /// original-rank order, stages whose edge list empties out vanish
    /// entirely (an empty stage is a structural error in the analyzer's
    /// rule set — and a stage the executor would pay entry overhead for
    /// without communicating), and the result is rebuilt through the
    /// honest [`CompiledPattern::from_stage_edges`] route so the
    /// posted/last-send tables and the `jitter_draws` count are
    /// re-derived for the compacted shape. The static audit therefore
    /// holds on the repaired plan exactly as it does on a freshly
    /// authored one.
    ///
    /// Note the contrast with the analyzer's k-crash coverage check,
    /// which keeps the original `p` and merely isolates crashed ranks:
    /// this method produces the plan survivors would actually *execute*,
    /// so the rank space is compacted. Whether the compacted plan still
    /// attains its knowledge goal is a separate question — see
    /// [`crate::recovery::repair_plan`] for the re-planning fallback.
    ///
    /// # Panics
    ///
    /// Panics when a crashed rank is out of range or when no rank
    /// survives (an empty machine has no plan).
    #[must_use]
    pub fn restrict_to_survivors(&self, crashed: &[usize]) -> CompiledPattern {
        let p = self.p;
        let mut dead = vec![false; p];
        for &r in crashed {
            assert!(r < p, "crashed rank {r} out of range for p={p}");
            dead[r] = true;
        }
        let mut remap = vec![usize::MAX; p];
        let mut np = 0usize;
        for (i, &d) in dead.iter().enumerate() {
            if !d {
                remap[i] = np;
                np += 1;
            }
        }
        assert!(np > 0, "restrict_to_survivors: every rank crashed");
        let mut stage_edges: Vec<Vec<(usize, usize)>> = Vec::with_capacity(self.stages.len());
        for stage in &self.stages {
            let mut edges = Vec::with_capacity(stage.edge_count());
            for i in 0..p {
                if dead[i] {
                    continue;
                }
                for &j in stage.dsts(i) {
                    if !dead[j] {
                        edges.push((remap[i], remap[j]));
                    }
                }
            }
            if !edges.is_empty() {
                stage_edges.push(edges);
            }
        }
        let name = format!("{}-survivors", self.name);
        CompiledPattern::from_stage_edges(&name, np, &stage_edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::IMat;
    use crate::pattern::BarrierPattern;

    fn dissemination(p: usize) -> BarrierPattern {
        let stages = crate::pattern::log2_ceil(p);
        let mats = (0..stages)
            .map(|s| {
                let edges: Vec<(usize, usize)> = (0..p).map(|i| (i, (i + (1 << s)) % p)).collect();
                IMat::from_edges(p, &edges)
            })
            .collect();
        BarrierPattern::new("dissemination", p, mats)
    }

    #[test]
    fn csr_matches_dense_enumeration() {
        let pat = dissemination(13);
        let plan = CompiledPattern::compile(&pat);
        assert_eq!(plan.p(), 13);
        assert_eq!(plan.stages(), pat.stages());
        assert_eq!(plan.total_signals(), pat.total_signals());
        for s in 0..pat.stages() {
            let dense = pat.stage(s);
            let flat = plan.stage(s);
            assert_eq!(flat.edge_count(), dense.edge_count());
            for r in 0..13 {
                assert_eq!(flat.dsts(r), dense.dsts(r).collect::<Vec<_>>(), "stage {s}");
                assert_eq!(flat.srcs(r), dense.srcs(r).collect::<Vec<_>>(), "stage {s}");
                assert_eq!(flat.out_degree(r), dense.out_degree(r));
                assert_eq!(flat.in_degree(r), dense.in_degree(r));
            }
        }
    }

    #[test]
    fn last_send_table_matches_trait_scan() {
        use crate::pattern::CommPattern;
        let s0 = IMat::from_edges(4, &[(1, 0), (2, 0), (3, 0)]);
        let s1 = IMat::from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        let pat = BarrierPattern::new("linear", 4, vec![s0, s1]);
        let plan = pat.plan();
        for i in 0..4 {
            for before in 0..=3 {
                assert_eq!(
                    plan.last_send_stage(i, before),
                    pat.last_send_stage(i, before),
                    "rank {i} before {before}"
                );
            }
        }
    }

    #[test]
    fn posted_table_matches_definition() {
        // 3-stage pattern from the predictor's posted-receive test:
        // 1 → 0, then 2 → 1, then 1 → 0 again.
        let p = 3;
        let s0 = IMat::from_edges(p, &[(1, 0)]);
        let s1 = IMat::from_edges(p, &[(2, 1)]);
        let s2 = IMat::from_edges(p, &[(1, 0)]);
        let pat = BarrierPattern::new("posted", p, vec![s0, s1, s2]);
        let plan = CompiledPattern::compile(&pat);
        // Stage 0: nothing posted yet.
        for j in 0..p {
            assert!(!plan.is_posted(j, 0));
        }
        // Stage 1: rank 0 never sent → posted; rank 1 sent in stage 0 →
        // not posted; rank 2 never sent → posted.
        assert!(plan.is_posted(0, 1));
        assert!(!plan.is_posted(1, 1));
        assert!(plan.is_posted(2, 1));
        // Stage 2: rank 0 idle since before stage 1 → posted; rank 1
        // last sent stage 0 (0 + 1 < 2) → posted; rank 2 sent stage 1 →
        // not posted.
        assert!(plan.is_posted(0, 2));
        assert!(plan.is_posted(1, 2));
        assert!(!plan.is_posted(2, 2));
    }

    #[test]
    fn jitter_draw_count_sums_entries_and_signals() {
        let pat = dissemination(13);
        let plan = CompiledPattern::compile(&pat);
        let mut want = 0;
        for s in 0..plan.stages() {
            let stage = plan.stage(s);
            let stage_want = 13 * ENTRY_JITTER_DRAWS + stage.edge_count() * SIGNAL_JITTER_DRAWS;
            assert_eq!(stage.jitter_draws(), stage_want, "stage {s}");
            want += stage_want;
        }
        assert_eq!(plan.jitter_draws(), want);
        // Dissemination: every rank signals once per stage.
        assert_eq!(want, plan.stages() * (13 + 13 * SIGNAL_JITTER_DRAWS));
    }

    /// The sparse authoring route (edge lists → CSR, no dense matrix)
    /// produces bit-identical compiled patterns to the dense route, for
    /// shuffled edge input.
    #[test]
    fn sparse_authoring_matches_dense_route() {
        for p in [2usize, 5, 13, 24, 64] {
            let stages = crate::pattern::log2_ceil(p);
            let mut stage_edges: Vec<Vec<(usize, usize)>> = (0..stages)
                .map(|s| (0..p).map(|i| (i, (i + (1 << s)) % p)).collect())
                .collect();
            // Order must not matter.
            for edges in &mut stage_edges {
                edges.reverse();
            }
            let sparse = CompiledPattern::from_stage_edges("dissemination", p, &stage_edges);
            let dense = CompiledPattern::compile(&dissemination(p));
            assert_eq!(sparse, dense, "p={p}");
        }
        // An asymmetric tree-like shape exercises uneven degrees.
        let edges = vec![vec![(1, 0), (2, 0), (3, 1)], vec![(0, 1), (0, 2), (0, 3)]];
        let sparse = CompiledPattern::from_stage_edges("t", 4, &edges);
        let mats = vec![
            IMat::from_edges(4, &edges[0]),
            IMat::from_edges(4, &edges[1]),
        ];
        let dense = CompiledPattern::compile(&BarrierPattern::new("t", 4, mats));
        assert_eq!(sparse, dense);
    }

    #[test]
    #[should_panic]
    fn sparse_authoring_rejects_out_of_range_edges() {
        StagePlan::from_edges(4, &[(0, 4)]);
    }

    #[test]
    #[should_panic(expected = "duplicate edge (0,1)")]
    fn sparse_authoring_rejects_duplicate_edges() {
        StagePlan::from_edges(4, &[(0, 1), (2, 3), (0, 1)]);
    }

    #[test]
    #[should_panic(expected = "self-send edge (2,2)")]
    fn sparse_authoring_rejects_self_sends() {
        StagePlan::from_edges(4, &[(0, 1), (2, 2)]);
    }

    /// Survivor compaction drops exactly the edges incident to crashed
    /// ranks, renumbers the rest order-preservingly, and re-derives the
    /// tables: the restriction of dissemination(8) after rank 3 crashes
    /// equals the plan compiled directly from the translated edges.
    #[test]
    fn restrict_to_survivors_compacts_and_rederives() {
        let plan = CompiledPattern::compile(&dissemination(8));
        let pruned = plan.restrict_to_survivors(&[3]);
        assert_eq!(pruned.p(), 7);
        assert_eq!(pruned.name(), "dissemination-survivors");
        // Build the expected plan by hand: remap is identity below 3,
        // minus one above.
        let remap = |r: usize| if r < 3 { r } else { r - 1 };
        let mut want_edges: Vec<Vec<(usize, usize)>> = Vec::new();
        for s in 0..plan.stages() {
            let mut edges = Vec::new();
            for i in 0..8 {
                if i == 3 {
                    continue;
                }
                for &j in plan.stage(s).dsts(i) {
                    if j != 3 {
                        edges.push((remap(i), remap(j)));
                    }
                }
            }
            want_edges.push(edges);
        }
        let want = CompiledPattern::from_stage_edges("dissemination-survivors", 7, &want_edges);
        assert_eq!(pruned, want);
        // The re-derived draw count reflects the compacted shape.
        let edges: usize = (0..pruned.stages())
            .map(|s| pruned.stage(s).edge_count())
            .sum();
        assert_eq!(
            pruned.jitter_draws(),
            pruned.stages() * 7 * ENTRY_JITTER_DRAWS + edges * SIGNAL_JITTER_DRAWS
        );
    }

    /// Stages that lose every edge disappear instead of surviving as
    /// empty stages the executor would pay entry overhead for.
    #[test]
    fn restrict_to_survivors_drops_emptied_stages() {
        // Stage 0 only connects ranks 1 and 2; stage 1 connects 0 and 3.
        let edges = vec![vec![(1, 2), (2, 1)], vec![(0, 3), (3, 0)]];
        let plan = CompiledPattern::from_stage_edges("two", 4, &edges);
        let pruned = plan.restrict_to_survivors(&[1]);
        assert_eq!(pruned.p(), 3);
        assert_eq!(pruned.stages(), 1, "stage 0 must vanish entirely");
        assert_eq!(pruned.stage(0).dsts(0), &[2]);
        assert_eq!(pruned.stage(0).dsts(2), &[0]);
    }

    /// A crash set that severs everything leaves a legal zero-stage plan
    /// over the survivors; crashing every rank panics.
    #[test]
    fn restrict_to_survivors_degenerate_cases() {
        let plan = CompiledPattern::compile(&dissemination(4));
        let lonely = plan.restrict_to_survivors(&[0, 1, 2]);
        assert_eq!(lonely.p(), 1);
        assert_eq!(lonely.stages(), 0);
        assert_eq!(lonely.jitter_draws(), 0);
        // Unordered, duplicated crash lists are tolerated.
        let dup = plan.restrict_to_survivors(&[2, 0, 2]);
        assert_eq!(dup.p(), 2);
    }

    #[test]
    #[should_panic(expected = "every rank crashed")]
    fn restrict_to_survivors_rejects_total_loss() {
        let plan = CompiledPattern::compile(&dissemination(2));
        let _ = plan.restrict_to_survivors(&[0, 1]);
    }

    #[test]
    fn zero_stage_pattern_compiles() {
        struct Degenerate;
        impl CommPattern for Degenerate {
            fn name(&self) -> &str {
                "degenerate"
            }
            fn p(&self) -> usize {
                1
            }
            fn stages(&self) -> usize {
                0
            }
            fn stage(&self, _: usize) -> &IMat {
                unreachable!("no stages")
            }
        }
        let plan = CompiledPattern::compile(&Degenerate);
        assert_eq!(plan.stages(), 0);
        assert_eq!(plan.total_signals(), 0);
        assert_eq!(plan.last_send_stage(0, 0), None);
    }
}
