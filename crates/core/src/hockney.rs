//! The Hockney and heterogeneous Hockney communication models (§3.4).
//!
//! Hockney models a point-to-point transfer as `T = α + β·M` — startup
//! latency plus inverse bandwidth times message size. The heterogeneous
//! extension (after Lastovetsky et al., which the thesis adopts) records
//! `α` and `β` for every ordered pair of processes in `P×P` matrices,
//! turning topology into data instead of structure. Per-process superstep
//! communication time is then a pair of Hadamard compositions, the
//! communication half of Eq. 3.15:
//!
//! ```text
//! t_comm = (R_messages ⊗ C_latency + R_data ⊗ C_β) · s
//! ```

use crate::matrix::DMat;

/// Scalar Hockney model: `T(m) = α + β·m`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hockney {
    /// Startup latency in seconds.
    pub alpha: f64,
    /// Inverse bandwidth in seconds per byte.
    pub beta: f64,
}

impl Hockney {
    /// Transfer time for `m` bytes.
    pub fn cost(&self, m: usize) -> f64 {
        self.alpha + self.beta * m as f64
    }
}

/// Heterogeneous Hockney model: per-pair latency and inverse bandwidth.
///
/// Both matrices are `P×P`; diagonals are conventionally zero (a process
/// does not transport data to itself through the interconnect).
#[derive(Debug, Clone, PartialEq)]
pub struct HeteroHockney {
    /// `alpha.get(i, j)`: startup latency from i to j, seconds.
    pub alpha: DMat,
    /// `beta.get(i, j)`: inverse bandwidth from i to j, seconds/byte.
    pub beta: DMat,
}

impl HeteroHockney {
    /// Validates shapes and constructs the model.
    pub fn new(alpha: DMat, beta: DMat) -> HeteroHockney {
        assert_eq!(alpha.rows(), alpha.cols(), "alpha must be square");
        assert_eq!(
            (alpha.rows(), alpha.cols()),
            (beta.rows(), beta.cols()),
            "alpha and beta must agree in shape"
        );
        HeteroHockney { alpha, beta }
    }

    /// Number of processes.
    pub fn p(&self) -> usize {
        self.alpha.rows()
    }

    /// Transfer time of `m` bytes from `i` to `j`.
    pub fn cost(&self, i: usize, j: usize, m: usize) -> f64 {
        self.alpha.get(i, j) + self.beta.get(i, j) * m as f64
    }
}

/// Per-process communication time vector (Eq. 3.15, communication terms):
/// `(R_msg ⊗ α + R_data ⊗ β) · s`.
///
/// `msg_counts.get(i, j)` is the number of messages i sends to j in the
/// superstep; `volumes.get(i, j)` the bytes. Both must be `P×P` matching
/// the model.
pub fn comm_times(msg_counts: &DMat, volumes: &DMat, hh: &HeteroHockney) -> Vec<f64> {
    let p = hh.p();
    assert_eq!((msg_counts.rows(), msg_counts.cols()), (p, p));
    assert_eq!((volumes.rows(), volumes.cols()), (p, p));
    let latency_part = msg_counts.hadamard(&hh.alpha);
    let bandwidth_part = volumes.hadamard(&hh.beta);
    latency_part.add(&bandwidth_part).row_sums()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_scale_model() -> HeteroHockney {
        // 4 processes: {0,1} and {2,3} are local pairs (1 µs), cross pairs
        // remote (50 µs); bandwidths 1 GB/s local, 100 MB/s remote.
        let local = 1e-6;
        let remote = 50e-6;
        let bl = 1e-9;
        let br = 1e-8;
        let alpha = DMat::from_fn(4, 4, |i, j| {
            if i == j {
                0.0
            } else if i / 2 == j / 2 {
                local
            } else {
                remote
            }
        });
        let beta = DMat::from_fn(4, 4, |i, j| {
            if i == j {
                0.0
            } else if i / 2 == j / 2 {
                bl
            } else {
                br
            }
        });
        HeteroHockney::new(alpha, beta)
    }

    #[test]
    fn scalar_hockney() {
        let h = Hockney {
            alpha: 1e-5,
            beta: 1e-8,
        };
        assert!((h.cost(0) - 1e-5).abs() < 1e-18);
        assert!((h.cost(1000) - 2e-5).abs() < 1e-18);
    }

    #[test]
    fn pairwise_costs_respect_locality() {
        let hh = two_scale_model();
        assert!(hh.cost(0, 1, 0) < hh.cost(0, 2, 0));
        // A large message is cheaper to a local peer despite equal size.
        assert!(hh.cost(0, 1, 1 << 20) < hh.cost(0, 3, 1 << 20));
    }

    #[test]
    fn comm_times_compose_latency_and_volume() {
        let hh = two_scale_model();
        // Process 0 sends one 1000-byte message to 1 and one to 2.
        let mut counts = DMat::zeros(4, 4);
        counts.set(0, 1, 1.0);
        counts.set(0, 2, 1.0);
        let mut vols = DMat::zeros(4, 4);
        vols.set(0, 1, 1000.0);
        vols.set(0, 2, 1000.0);
        let t = comm_times(&counts, &vols, &hh);
        let expect = (1e-6 + 1000.0 * 1e-9) + (50e-6 + 1000.0 * 1e-8);
        assert!((t[0] - expect).abs() < 1e-15);
        assert_eq!(t[1], 0.0);
        assert_eq!(t[2], 0.0);
    }

    #[test]
    fn message_count_scales_latency_linearly() {
        let hh = two_scale_model();
        let mut one = DMat::zeros(4, 4);
        one.set(0, 3, 1.0);
        let mut five = DMat::zeros(4, 4);
        five.set(0, 3, 5.0);
        let z = DMat::zeros(4, 4);
        let t1 = comm_times(&one, &z, &hh)[0];
        let t5 = comm_times(&five, &z, &hh)[0];
        assert!((t5 - 5.0 * t1).abs() < 1e-15);
    }

    #[test]
    #[should_panic]
    fn non_square_alpha_rejected() {
        HeteroHockney::new(DMat::zeros(2, 3), DMat::zeros(2, 3));
    }
}
