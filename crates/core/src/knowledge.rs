//! Knowledge-matrix correctness verification (Eqs. 5.1–5.2), generalized
//! to rooted and prefix knowledge goals.
//!
//! A barrier is correct iff no process can leave before every process has
//! arrived. The thesis checks this algebraically: let `K(i, j)` count the
//! acknowledgements process i holds of process j's arrival. Initially
//! `K_0 = I + S_0` (every process knows itself, plus stage-0 signals);
//! each further stage propagates transitive knowledge:
//!
//! ```text
//! K_i = K_{i−1} + K_{i−1} × S_i
//! ```
//!
//! After the final stage the barrier synchronizes iff `K` is all-nonzero.
//! Because counts are path counts they can grow exponentially with stage
//! count, so we accumulate in saturating `u64`.
//!
//! Collective operations need weaker, *rooted* variants of the same test:
//! a reduce is correct when the root has a signal path from every process
//! (`K(root, ·)` all-nonzero), a broadcast when every process has a path
//! from the root (`K(·, root)` all-nonzero), and a prefix scan when every
//! process has a path from each of its predecessors (lower triangle
//! all-nonzero). [`KnowledgeGoal`] names these variants and
//! [`KnowledgeTrace::satisfies`] checks them, so every pattern — barrier
//! or collective — flows through one verifier.

use crate::pattern::CommPattern;
use crate::plan::{CompiledPattern, StagePlan};

/// What a pattern must guarantee to be correct: which knowledge pairs must
/// be established by its final stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KnowledgeGoal {
    /// Every process knows of every arrival — barriers, allreduce,
    /// allgather, total exchange.
    AllToAll,
    /// The root knows of every arrival — reduce, gather.
    RootGathers(usize),
    /// Every process knows of the root's arrival — broadcast, scatter.
    RootReaches(usize),
    /// Process `i` knows of every arrival `j ≤ i` — prefix scans.
    Prefix,
}

/// Outcome of a knowledge-matrix verification.
#[derive(Debug, Clone)]
pub struct KnowledgeTrace {
    /// Final knowledge counts (row-major `p×p`).
    counts: Vec<u64>,
    p: usize,
    /// Stage after which each `(i, j)` first became known (usize::MAX when
    /// never). Row-major.
    first_known: Vec<usize>,
}

/// A borrowing view of a verification outcome — the same queries as
/// [`KnowledgeTrace`], over tables owned elsewhere. This is what the
/// scratch-pooled entry point [`VerifyScratch::verify`] returns: the
/// `p×p` tables stay in the caller's scratch, so a verify loop touches
/// the heap only when the process count grows.
#[derive(Debug, Clone, Copy)]
pub struct KnowledgeView<'a> {
    counts: &'a [u64],
    first_known: &'a [usize],
    p: usize,
}

impl<'a> KnowledgeView<'a> {
    /// Knowledge count of pair `(i, j)`: how many acknowledgement paths
    /// inform i of j's arrival.
    pub fn count(&self, i: usize, j: usize) -> u64 {
        self.counts[i * self.p + j]
    }

    /// True iff every process knows of every arrival.
    pub fn synchronizes(&self) -> bool {
        self.counts.iter().all(|&c| c > 0)
    }

    /// True iff `root` knows of every process' arrival — the gather-side
    /// rooted goal (all data can reach the root).
    pub fn root_gathers(&self, root: usize) -> bool {
        assert!(root < self.p, "root out of range");
        (0..self.p).all(|j| self.count(root, j) > 0)
    }

    /// True iff every process knows of `root`'s arrival — the
    /// broadcast-side rooted goal (the root's data can reach everyone).
    pub fn root_reaches(&self, root: usize) -> bool {
        assert!(root < self.p, "root out of range");
        (0..self.p).all(|i| self.count(i, root) > 0)
    }

    /// True iff every process knows of all its predecessors (inclusive
    /// prefix property: `K(i, j) > 0` for every `j ≤ i`).
    pub fn prefix_complete(&self) -> bool {
        (0..self.p).all(|i| (0..=i).all(|j| self.count(i, j) > 0))
    }

    /// Checks a named goal.
    pub fn satisfies(&self, goal: KnowledgeGoal) -> bool {
        match goal {
            KnowledgeGoal::AllToAll => self.synchronizes(),
            KnowledgeGoal::RootGathers(r) => self.root_gathers(r),
            KnowledgeGoal::RootReaches(r) => self.root_reaches(r),
            KnowledgeGoal::Prefix => self.prefix_complete(),
        }
    }

    /// Pairs `(i, j)` where i never learns of j's arrival — the failure
    /// trace §5.5 describes as a debugging aid.
    pub fn unknown_pairs(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for i in 0..self.p {
            for j in 0..self.p {
                if self.counts[i * self.p + j] == 0 {
                    out.push((i, j));
                }
            }
        }
        out
    }

    /// Stage index after which `(i, j)` first became known, or `None`.
    pub fn first_known(&self, i: usize, j: usize) -> Option<usize> {
        let s = self.first_known[i * self.p + j];
        (s != usize::MAX).then_some(s)
    }
}

impl KnowledgeTrace {
    /// Borrow this trace as a [`KnowledgeView`].
    pub fn view(&self) -> KnowledgeView<'_> {
        KnowledgeView {
            counts: &self.counts,
            first_known: &self.first_known,
            p: self.p,
        }
    }

    /// Knowledge count of pair `(i, j)`: how many acknowledgement paths
    /// inform i of j's arrival.
    pub fn count(&self, i: usize, j: usize) -> u64 {
        self.view().count(i, j)
    }

    /// True iff every process knows of every arrival.
    pub fn synchronizes(&self) -> bool {
        self.view().synchronizes()
    }

    /// True iff `root` knows of every process' arrival — the gather-side
    /// rooted goal (all data can reach the root).
    pub fn root_gathers(&self, root: usize) -> bool {
        self.view().root_gathers(root)
    }

    /// True iff every process knows of `root`'s arrival — the
    /// broadcast-side rooted goal (the root's data can reach everyone).
    pub fn root_reaches(&self, root: usize) -> bool {
        self.view().root_reaches(root)
    }

    /// True iff every process knows of all its predecessors (inclusive
    /// prefix property: `K(i, j) > 0` for every `j ≤ i`).
    pub fn prefix_complete(&self) -> bool {
        self.view().prefix_complete()
    }

    /// Checks a named goal.
    pub fn satisfies(&self, goal: KnowledgeGoal) -> bool {
        self.view().satisfies(goal)
    }

    /// Pairs `(i, j)` where i never learns of j's arrival — the failure
    /// trace §5.5 describes as a debugging aid.
    pub fn unknown_pairs(&self) -> Vec<(usize, usize)> {
        self.view().unknown_pairs()
    }

    /// Stage index after which `(i, j)` first became known, or `None`.
    pub fn first_known(&self, i: usize, j: usize) -> Option<usize> {
        self.view().first_known(i, j)
    }
}

/// Caller-owned scratch for the knowledge recurrence: the three `p×p`
/// tables (counts, first-known stages, per-stage snapshot) that
/// [`verify_compiled`] would otherwise allocate per call — 400 MB of
/// churn per verification at p = 4096. Reused across calls, the tables
/// are resized once per process count and then recycled in place.
#[derive(Debug, Default)]
pub struct VerifyScratch {
    counts: Vec<u64>,
    first_known: Vec<usize>,
    snapshot: Vec<u64>,
}

impl VerifyScratch {
    /// Empty scratch; the first verification sizes it.
    pub fn new() -> VerifyScratch {
        VerifyScratch::default()
    }

    /// Runs the Eq. 5.1/5.2 recurrence over `plan` into this scratch and
    /// returns a borrowing view of the outcome. Allocation-free once the
    /// tables have grown to the largest process count seen.
    pub fn verify(&mut self, plan: &CompiledPattern) -> KnowledgeView<'_> {
        run_recurrence(
            plan,
            &mut self.counts,
            &mut self.first_known,
            &mut self.snapshot,
        );
        KnowledgeView {
            counts: &self.counts,
            first_known: &self.first_known,
            p: plan.p(),
        }
    }
}

/// Runs the Eq. 5.1/5.2 recurrence over any staged pattern. Compiles the
/// pattern and delegates to [`verify_compiled`]; callers verifying a
/// pattern they already compiled should go there directly.
pub fn verify_synchronizes<P: CommPattern + ?Sized>(pattern: &P) -> KnowledgeTrace {
    verify_compiled(&pattern.plan())
}

/// The Eq. 5.1/5.2 recurrence over an already-compiled pattern: the
/// signal enumeration of every stage reads CSR slices instead of scanning
/// dense rows.
pub fn verify_compiled(plan: &CompiledPattern) -> KnowledgeTrace {
    let mut counts = Vec::new();
    let mut first_known = Vec::new();
    let mut snapshot = Vec::new();
    run_recurrence(plan, &mut counts, &mut first_known, &mut snapshot);
    KnowledgeTrace {
        counts,
        p: plan.p(),
        first_known,
    }
}

/// The shared recurrence core: clears and (re)sizes the three tables to
/// `p×p` — allocation-free when they are already large enough — then
/// runs the stage loop.
fn run_recurrence(
    plan: &CompiledPattern,
    counts: &mut Vec<u64>,
    first_known: &mut Vec<usize>,
    snapshot: &mut Vec<u64>,
) {
    let p = plan.p();
    counts.clear();
    counts.resize(p * p, 0);
    first_known.clear();
    first_known.resize(p * p, usize::MAX);
    snapshot.clear();
    snapshot.resize(p * p, 0);
    // K = I.
    for i in 0..p {
        counts[i * p + i] = 1;
        first_known[i * p + i] = 0;
    }
    for stage_idx in 0..plan.stages() {
        // K ← K + K × S. In index form: when i signals j in this stage,
        // everything i knows flows to j: add(j, *) += K(i, *).
        snapshot.copy_from_slice(counts);
        apply_stage(
            snapshot,
            counts,
            first_known,
            plan.stage(stage_idx),
            stage_idx,
        );
    }
}

/// Convenience: verifies a pattern against a named knowledge goal.
pub fn verify_goal<P: CommPattern + ?Sized>(pattern: &P, goal: KnowledgeGoal) -> bool {
    verify_synchronizes(pattern).satisfies(goal)
}

fn apply_stage(
    snapshot: &[u64],
    counts: &mut [u64],
    first_known: &mut [usize],
    stage: &StagePlan,
    stage_idx: usize,
) {
    let p = stage.p();
    for i in 0..p {
        let src_row = &snapshot[i * p..(i + 1) * p];
        for &j in stage.dsts(i) {
            for (k, &add) in src_row.iter().enumerate() {
                if add > 0 {
                    let cell = j * p + k;
                    counts[cell] = counts[cell].saturating_add(add);
                    if first_known[cell] == usize::MAX {
                        first_known[cell] = stage_idx;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::IMat;
    use crate::pattern::BarrierPattern;

    fn linear(p: usize) -> BarrierPattern {
        let gather: Vec<(usize, usize)> = (1..p).map(|i| (i, 0)).collect();
        let release: Vec<(usize, usize)> = (1..p).map(|i| (0, i)).collect();
        BarrierPattern::new(
            "linear",
            p,
            vec![IMat::from_edges(p, &gather), IMat::from_edges(p, &release)],
        )
    }

    fn dissemination(p: usize) -> BarrierPattern {
        let stages = (p as f64).log2().ceil() as usize;
        let mats = (0..stages)
            .map(|s| {
                let edges: Vec<(usize, usize)> = (0..p).map(|i| (i, (i + (1 << s)) % p)).collect();
                IMat::from_edges(p, &edges)
            })
            .collect();
        BarrierPattern::new("dissemination", p, mats)
    }

    #[test]
    fn linear_barrier_synchronizes() {
        for p in [2, 3, 4, 8, 17] {
            let t = verify_synchronizes(&linear(p));
            assert!(t.synchronizes(), "linear p={p}");
        }
    }

    #[test]
    fn dissemination_synchronizes_for_all_counts() {
        for p in 2..=40 {
            let t = verify_synchronizes(&dissemination(p));
            assert!(t.synchronizes(), "dissemination p={p}");
        }
    }

    #[test]
    fn broken_barrier_detected_with_trace() {
        // Gather without release: ranks 1..p never learn of each other.
        let p = 4;
        let gather = IMat::from_edges(p, &[(1, 0), (2, 0), (3, 0)]);
        let b = BarrierPattern::new("broken", p, vec![gather]);
        let t = verify_synchronizes(&b);
        assert!(!t.synchronizes());
        let unknown = t.unknown_pairs();
        assert!(unknown.contains(&(1, 2)), "1 must not know 2: {unknown:?}");
        assert!(unknown.contains(&(3, 1)));
        // But the master knows everyone.
        assert!(!unknown.iter().any(|&(i, _)| i == 0));
    }

    #[test]
    fn gather_alone_satisfies_only_the_rooted_goal() {
        // The broken barrier above is a perfectly good gather pattern:
        // the root knows all, nobody else learns anything new.
        let p = 4;
        let gather = IMat::from_edges(p, &[(1, 0), (2, 0), (3, 0)]);
        let b = BarrierPattern::new("gather", p, vec![gather]);
        let t = verify_synchronizes(&b);
        assert!(t.satisfies(KnowledgeGoal::RootGathers(0)));
        assert!(!t.satisfies(KnowledgeGoal::RootReaches(0)));
        assert!(!t.satisfies(KnowledgeGoal::AllToAll));
        assert!(!t.satisfies(KnowledgeGoal::RootGathers(1)));
    }

    #[test]
    fn release_alone_satisfies_only_the_broadcast_goal() {
        let p = 4;
        let release = IMat::from_edges(p, &[(0, 1), (0, 2), (0, 3)]);
        let b = BarrierPattern::new("release", p, vec![release]);
        let t = verify_synchronizes(&b);
        assert!(t.satisfies(KnowledgeGoal::RootReaches(0)));
        assert!(!t.satisfies(KnowledgeGoal::RootGathers(0)));
        assert!(!t.satisfies(KnowledgeGoal::AllToAll));
    }

    #[test]
    fn chain_satisfies_the_prefix_goal() {
        // i → i+1 in sequence: exactly the inclusive-scan dependency.
        let p = 5;
        let stages: Vec<IMat> = (0..p - 1)
            .map(|i| IMat::from_edges(p, &[(i, i + 1)]))
            .collect();
        let b = BarrierPattern::new("chain", p, stages);
        let t = verify_synchronizes(&b);
        assert!(t.satisfies(KnowledgeGoal::Prefix));
        assert!(!t.satisfies(KnowledgeGoal::AllToAll));
        // The downward chain (p−1 → p−2 → … → 0, stages in that order)
        // funnels everything into rank 0 but is not a prefix pattern.
        let rev: Vec<IMat> = (1..p)
            .rev()
            .map(|i| IMat::from_edges(p, &[(i, i - 1)]))
            .collect();
        let r = BarrierPattern::new("rev-chain", p, rev);
        assert!(!verify_synchronizes(&r).satisfies(KnowledgeGoal::Prefix));
        assert!(verify_synchronizes(&r).satisfies(KnowledgeGoal::RootGathers(0)));
    }

    #[test]
    fn full_synchronization_implies_every_goal() {
        let t = verify_synchronizes(&dissemination(9));
        for goal in [
            KnowledgeGoal::AllToAll,
            KnowledgeGoal::RootGathers(3),
            KnowledgeGoal::RootReaches(7),
            KnowledgeGoal::Prefix,
        ] {
            assert!(t.satisfies(goal), "{goal:?}");
        }
    }

    #[test]
    fn verify_goal_convenience_matches_trace() {
        let b = linear(6);
        assert!(verify_goal(&b, KnowledgeGoal::AllToAll));
        assert!(verify_goal(&b, KnowledgeGoal::RootGathers(0)));
    }

    #[test]
    fn one_stage_too_few_dissemination_fails() {
        // ceil(log2 p) − 1 stages cannot synchronize.
        let p = 8;
        let mats: Vec<IMat> = (0..2)
            .map(|s| {
                let edges: Vec<(usize, usize)> = (0..p).map(|i| (i, (i + (1 << s)) % p)).collect();
                IMat::from_edges(p, &edges)
            })
            .collect();
        let b = BarrierPattern::new("short-diss", p, mats);
        assert!(!verify_synchronizes(&b).synchronizes());
    }

    #[test]
    fn knowledge_counts_grow_along_paths() {
        let t = verify_synchronizes(&dissemination(4));
        // Own arrival known from the start.
        assert!(t.count(0, 0) >= 1);
        assert_eq!(t.first_known(0, 0), Some(0));
        // In a 2-stage dissemination over 4 procs, 0 learns of 2 only at
        // stage 1 (distance 2 = 2^1).
        assert_eq!(t.first_known(2, 0), Some(1));
    }

    #[test]
    fn self_knowledge_never_lost() {
        let t = verify_synchronizes(&linear(6));
        for i in 0..6 {
            assert!(t.count(i, i) >= 1);
        }
    }

    /// One scratch reused across patterns of different sizes — including
    /// shrinking ones — reproduces the allocating entry point exactly.
    #[test]
    fn scratch_verify_matches_fresh_verify() {
        use crate::pattern::CommPattern;
        let mut scratch = VerifyScratch::new();
        for p in [17usize, 8, 31, 2, 8] {
            let plan = dissemination(p).plan();
            let fresh = verify_compiled(&plan);
            let pooled = scratch.verify(&plan);
            assert_eq!(pooled.synchronizes(), fresh.synchronizes(), "p={p}");
            for i in 0..p {
                for j in 0..p {
                    assert_eq!(pooled.count(i, j), fresh.count(i, j), "p={p} ({i},{j})");
                    assert_eq!(
                        pooled.first_known(i, j),
                        fresh.first_known(i, j),
                        "p={p} ({i},{j})"
                    );
                }
            }
            assert_eq!(pooled.unknown_pairs(), fresh.unknown_pairs());
        }
        // Goal queries flow through the same view on both paths.
        let gather = BarrierPattern::new(
            "gather",
            4,
            vec![IMat::from_edges(4, &[(1, 0), (2, 0), (3, 0)])],
        );
        let plan = gather.plan();
        let view = scratch.verify(&plan);
        assert!(view.satisfies(KnowledgeGoal::RootGathers(0)));
        assert!(!view.satisfies(KnowledgeGoal::AllToAll));
        assert!(!view.prefix_complete());
        assert!(view.root_gathers(0) && !view.root_reaches(0));
    }
}
