//! Knowledge-matrix correctness verification (Eqs. 5.1–5.2).
//!
//! A barrier is correct iff no process can leave before every process has
//! arrived. The thesis checks this algebraically: let `K(i, j)` count the
//! acknowledgements process i holds of process j's arrival. Initially
//! `K_0 = I + S_0` (every process knows itself, plus stage-0 signals);
//! each further stage propagates transitive knowledge:
//!
//! ```text
//! K_i = K_{i−1} + K_{i−1} × S_i
//! ```
//!
//! After the final stage the barrier synchronizes iff `K` is all-nonzero.
//! Because counts are path counts they can grow exponentially with stage
//! count, so we accumulate in saturating `u64`.

use crate::matrix::IMat;
use crate::pattern::BarrierPattern;

/// Outcome of a knowledge-matrix verification.
#[derive(Debug, Clone)]
pub struct KnowledgeTrace {
    /// Final knowledge counts (row-major `p×p`).
    counts: Vec<u64>,
    p: usize,
    /// Stage after which each `(i, j)` first became known (usize::MAX when
    /// never). Row-major.
    first_known: Vec<usize>,
}

impl KnowledgeTrace {
    /// Knowledge count of pair `(i, j)`: how many acknowledgement paths
    /// inform i of j's arrival.
    pub fn count(&self, i: usize, j: usize) -> u64 {
        self.counts[i * self.p + j]
    }

    /// True iff every process knows of every arrival.
    pub fn synchronizes(&self) -> bool {
        self.counts.iter().all(|&c| c > 0)
    }

    /// Pairs `(i, j)` where i never learns of j's arrival — the failure
    /// trace §5.5 describes as a debugging aid.
    pub fn unknown_pairs(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for i in 0..self.p {
            for j in 0..self.p {
                if self.counts[i * self.p + j] == 0 {
                    out.push((i, j));
                }
            }
        }
        out
    }

    /// Stage index after which `(i, j)` first became known, or `None`.
    pub fn first_known(&self, i: usize, j: usize) -> Option<usize> {
        let s = self.first_known[i * self.p + j];
        (s != usize::MAX).then_some(s)
    }
}

/// Runs the Eq. 5.1/5.2 recurrence over a pattern.
pub fn verify_synchronizes(pattern: &BarrierPattern) -> KnowledgeTrace {
    let p = pattern.p();
    let mut counts = vec![0u64; p * p];
    let mut first_known = vec![usize::MAX; p * p];
    // K = I.
    for i in 0..p {
        counts[i * p + i] = 1;
        first_known[i * p + i] = 0;
    }
    for (stage_idx, stage) in pattern.iter().enumerate() {
        // K ← K + K × S. In index form: when i signals j in this stage,
        // everything i knows flows to j: add(j, *) += K(i, *).
        let snapshot = counts.clone();
        apply_stage(&snapshot, &mut counts, &mut first_known, stage, stage_idx);
    }
    KnowledgeTrace {
        counts,
        p,
        first_known,
    }
}

fn apply_stage(
    snapshot: &[u64],
    counts: &mut [u64],
    first_known: &mut [usize],
    stage: &IMat,
    stage_idx: usize,
) {
    let p = stage.n();
    for i in 0..p {
        for j in stage.dsts(i) {
            for k in 0..p {
                let add = snapshot[i * p + k];
                if add > 0 {
                    let cell = j * p + k;
                    counts[cell] = counts[cell].saturating_add(add);
                    if first_known[cell] == usize::MAX {
                        first_known[cell] = stage_idx;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::IMat;

    fn linear(p: usize) -> BarrierPattern {
        let gather: Vec<(usize, usize)> = (1..p).map(|i| (i, 0)).collect();
        let release: Vec<(usize, usize)> = (1..p).map(|i| (0, i)).collect();
        BarrierPattern::new(
            "linear",
            p,
            vec![IMat::from_edges(p, &gather), IMat::from_edges(p, &release)],
        )
    }

    fn dissemination(p: usize) -> BarrierPattern {
        let stages = (p as f64).log2().ceil() as usize;
        let mats = (0..stages)
            .map(|s| {
                let edges: Vec<(usize, usize)> =
                    (0..p).map(|i| (i, (i + (1 << s)) % p)).collect();
                IMat::from_edges(p, &edges)
            })
            .collect();
        BarrierPattern::new("dissemination", p, mats)
    }

    #[test]
    fn linear_barrier_synchronizes() {
        for p in [2, 3, 4, 8, 17] {
            let t = verify_synchronizes(&linear(p));
            assert!(t.synchronizes(), "linear p={p}");
        }
    }

    #[test]
    fn dissemination_synchronizes_for_all_counts() {
        for p in 2..=40 {
            let t = verify_synchronizes(&dissemination(p));
            assert!(t.synchronizes(), "dissemination p={p}");
        }
    }

    #[test]
    fn broken_barrier_detected_with_trace() {
        // Gather without release: ranks 1..p never learn of each other.
        let p = 4;
        let gather = IMat::from_edges(p, &[(1, 0), (2, 0), (3, 0)]);
        let b = BarrierPattern::new("broken", p, vec![gather]);
        let t = verify_synchronizes(&b);
        assert!(!t.synchronizes());
        let unknown = t.unknown_pairs();
        assert!(unknown.contains(&(1, 2)), "1 must not know 2: {unknown:?}");
        assert!(unknown.contains(&(3, 1)));
        // But the master knows everyone.
        assert!(!unknown.iter().any(|&(i, _)| i == 0));
    }

    #[test]
    fn one_stage_too_few_dissemination_fails() {
        // ceil(log2 p) − 1 stages cannot synchronize.
        let p = 8;
        let mats: Vec<IMat> = (0..2)
            .map(|s| {
                let edges: Vec<(usize, usize)> =
                    (0..p).map(|i| (i, (i + (1 << s)) % p)).collect();
                IMat::from_edges(p, &edges)
            })
            .collect();
        let b = BarrierPattern::new("short-diss", p, mats);
        assert!(!verify_synchronizes(&b).synchronizes());
    }

    #[test]
    fn knowledge_counts_grow_along_paths() {
        let t = verify_synchronizes(&dissemination(4));
        // Own arrival known from the start.
        assert!(t.count(0, 0) >= 1);
        assert_eq!(t.first_known(0, 0), Some(0));
        // In a 2-stage dissemination over 4 procs, 0 learns of 2 only at
        // stage 1 (distance 2 = 2^1).
        assert_eq!(t.first_known(2, 0), Some(1));
    }

    #[test]
    fn self_knowledge_never_lost() {
        let t = verify_synchronizes(&linear(6));
        for i in 0..6 {
            assert!(t.count(i, i) >= 1);
        }
    }
}
