//! Barrier communication patterns as stage-sequenced incidence matrices
//! (§5.5).
//!
//! Any barrier algorithm is a layered dependency graph: a sequence of
//! `P×P` incidence matrices `S_0, S_1, …`, where `S_k(i, j) = 1` means
//! "process i signals process j in stage k". The encoding captures both
//! the sequential dependencies (the stage sequence) and the signals that
//! may be in flight simultaneously (within a stage) — everything a
//! simulator or cost predictor needs, independent of the algorithm that
//! generated it.

use crate::matrix::IMat;

/// A barrier algorithm encoded as stage incidence matrices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BarrierPattern {
    name: String,
    p: usize,
    stages: Vec<IMat>,
}

impl BarrierPattern {
    /// Builds a pattern, validating that every stage is a `p×p` incidence
    /// matrix and that no stage is empty (an empty stage is a semantic
    /// no-op that would distort stage-count-based analysis).
    pub fn new(name: &str, p: usize, stages: Vec<IMat>) -> BarrierPattern {
        assert!(p > 0, "pattern needs at least one process");
        assert!(!stages.is_empty(), "pattern needs at least one stage");
        for (k, s) in stages.iter().enumerate() {
            assert_eq!(s.n(), p, "stage {k} has wrong dimension");
            assert!(s.edge_count() > 0, "stage {k} is empty");
        }
        BarrierPattern {
            name: name.to_string(),
            p,
            stages,
        }
    }

    /// Descriptive name (e.g. `dissemination`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Process count.
    pub fn p(&self) -> usize {
        self.p
    }

    /// Number of stages.
    pub fn stages(&self) -> usize {
        self.stages.len()
    }

    /// Borrow one stage.
    pub fn stage(&self, k: usize) -> &IMat {
        &self.stages[k]
    }

    /// Iterate over stages in order.
    pub fn iter(&self) -> impl Iterator<Item = &IMat> {
        self.stages.iter()
    }

    /// Total signal count across all stages.
    pub fn total_signals(&self) -> usize {
        self.stages.iter().map(|s| s.edge_count()).sum()
    }

    /// The last stage index in which `i` transmitted a signal, if any —
    /// used by the predictor's posted-receive refinement (§5.6.5).
    pub fn last_send_stage(&self, i: usize, before: usize) -> Option<usize> {
        (0..before.min(self.stages.len()))
            .rev()
            .find(|&k| !self.stages[k].dsts(i).is_empty())
    }

    /// Renders all stages in the layout of Figs. 5.2–5.4.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for (k, s) in self.stages.iter().enumerate() {
            writeln!(out, "S{k} =").unwrap();
            write!(out, "{s}").unwrap();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear4() -> BarrierPattern {
        // Fig. 5.2: gather to rank 0, then release.
        let s0 = IMat::from_edges(4, &[(1, 0), (2, 0), (3, 0)]);
        let s1 = IMat::from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        BarrierPattern::new("linear", 4, vec![s0, s1])
    }

    #[test]
    fn fig_5_2_linear_shape() {
        let b = linear4();
        assert_eq!(b.stages(), 2);
        assert_eq!(b.total_signals(), 6);
        assert_eq!(b.stage(0).srcs(0), vec![1, 2, 3]);
        assert_eq!(b.stage(1).dsts(0), vec![1, 2, 3]);
    }

    #[test]
    fn release_is_transposed_gather() {
        let b = linear4();
        assert_eq!(b.stage(1), &b.stage(0).transpose());
    }

    #[test]
    fn last_send_stage_lookup() {
        let b = linear4();
        // Rank 1 sends only in stage 0.
        assert_eq!(b.last_send_stage(1, 2), Some(0));
        assert_eq!(b.last_send_stage(1, 1), Some(0));
        assert_eq!(b.last_send_stage(1, 0), None);
        // Rank 0 sends only in stage 1.
        assert_eq!(b.last_send_stage(0, 1), None);
        assert_eq!(b.last_send_stage(0, 2), Some(1));
    }

    #[test]
    fn render_contains_all_stages() {
        let text = linear4().render();
        assert!(text.contains("S0 ="));
        assert!(text.contains("S1 ="));
    }

    #[test]
    #[should_panic]
    fn empty_stage_rejected() {
        BarrierPattern::new("bad", 3, vec![IMat::empty(3)]);
    }

    #[test]
    #[should_panic]
    fn wrong_dimension_rejected() {
        BarrierPattern::new("bad", 4, vec![IMat::from_edges(3, &[(0, 1)])]);
    }
}
