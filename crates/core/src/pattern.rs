//! Stage-sequenced communication patterns (§5.5).
//!
//! Any staged communication algorithm — a barrier, a broadcast, a
//! reduction — is a layered dependency graph: a sequence of `P×P`
//! incidence matrices `S_0, S_1, …`, where `S_k(i, j) = 1` means
//! "process i signals process j in stage k". The encoding captures both
//! the sequential dependencies (the stage sequence) and the signals that
//! may be in flight simultaneously (within a stage) — everything a
//! simulator or cost predictor needs, independent of the algorithm that
//! generated it.
//!
//! [`CommPattern`] is the shared abstraction: anything exposing its stages
//! as incidence matrices flows through the same knowledge-matrix
//! verification ([`crate::knowledge`]), critical-path cost prediction
//! ([`crate::predictor`]) and staged simulation unchanged.
//! [`BarrierPattern`] is the barrier-shaped implementation; the collective
//! operations of `hpm-collectives` provide another.

use crate::matrix::IMat;
use crate::plan::CompiledPattern;

/// A staged communication pattern: a sequence of `P×P` incidence matrices.
///
/// Implementors supply the four accessors; the derived structure queries
/// (`total_signals`, `last_send_stage`, `render`) come for free and are
/// what the predictor and verifier build on. The trait is object-safe so
/// heterogeneous pattern collections can be handled through `&dyn
/// CommPattern`.
pub trait CommPattern {
    /// Descriptive name (e.g. `dissemination`, `allreduce`).
    fn name(&self) -> &str;

    /// Process count.
    fn p(&self) -> usize;

    /// Number of stages. A zero-stage pattern is the degenerate
    /// single-process collective: nothing to communicate.
    fn stages(&self) -> usize;

    /// Borrow one stage.
    fn stage(&self, k: usize) -> &IMat;

    /// Total signal count across all stages.
    fn total_signals(&self) -> usize {
        (0..self.stages()).map(|k| self.stage(k).edge_count()).sum()
    }

    /// The last stage index before `before` in which `i` transmitted a
    /// signal, if any — used by the predictor's posted-receive refinement
    /// (§5.6.5). O(1) per stage on the maintained degree counts (and
    /// O(1) overall on a [`CompiledPattern`], which precomputes the whole
    /// table).
    fn last_send_stage(&self, i: usize, before: usize) -> Option<usize> {
        (0..before.min(self.stages()))
            .rev()
            .find(|&k| self.stage(k).out_degree(i) > 0)
    }

    /// Compiles the pattern into its flat execution form — CSR stage
    /// adjacency plus the precomputed §5.6.5 tables. Build once, then
    /// hand the result to the predictor, verifier and simulator hot
    /// paths.
    fn plan(&self) -> CompiledPattern {
        CompiledPattern::compile(self)
    }

    /// Renders all stages in the layout of Figs. 5.2–5.4.
    fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for k in 0..self.stages() {
            writeln!(out, "S{k} =").expect("writing to a String cannot fail");
            write!(out, "{}", self.stage(k)).expect("writing to a String cannot fail");
        }
        out
    }
}

/// `⌈log₂ p⌉`: the stage depth of the binomial and dissemination-style
/// patterns — the single source of truth the pattern builders, payload
/// schedules and executors must agree on.
pub fn log2_ceil(p: usize) -> usize {
    assert!(p > 0, "log2_ceil requires a positive process count");
    usize::BITS as usize - (p - 1).leading_zeros() as usize
}

/// Validates a stage list: every stage must be `p×p` and non-empty (an
/// empty stage is a semantic no-op that would distort stage-count-based
/// analysis). Shared by every pattern constructor.
pub fn validate_stages(p: usize, stages: &[IMat]) {
    assert!(p > 0, "pattern needs at least one process");
    for (k, s) in stages.iter().enumerate() {
        assert_eq!(s.n(), p, "stage {k} has wrong dimension");
        assert!(s.edge_count() > 0, "stage {k} is empty");
    }
}

/// A barrier algorithm encoded as stage incidence matrices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BarrierPattern {
    name: String,
    p: usize,
    stages: Vec<IMat>,
}

impl BarrierPattern {
    /// Builds a pattern, validating that every stage is a `p×p` incidence
    /// matrix and that no stage is empty. Barriers always communicate, so
    /// at least one stage is required.
    pub fn new(name: &str, p: usize, stages: Vec<IMat>) -> BarrierPattern {
        assert!(!stages.is_empty(), "pattern needs at least one stage");
        validate_stages(p, &stages);
        BarrierPattern {
            name: name.to_string(),
            p,
            stages,
        }
    }

    /// Iterate over stages in order.
    pub fn iter(&self) -> impl Iterator<Item = &IMat> {
        self.stages.iter()
    }
}

impl CommPattern for BarrierPattern {
    fn name(&self) -> &str {
        &self.name
    }

    fn p(&self) -> usize {
        self.p
    }

    fn stages(&self) -> usize {
        self.stages.len()
    }

    fn stage(&self, k: usize) -> &IMat {
        &self.stages[k]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear4() -> BarrierPattern {
        // Fig. 5.2: gather to rank 0, then release.
        let s0 = IMat::from_edges(4, &[(1, 0), (2, 0), (3, 0)]);
        let s1 = IMat::from_edges(4, &[(0, 1), (0, 2), (0, 3)]);
        BarrierPattern::new("linear", 4, vec![s0, s1])
    }

    #[test]
    fn fig_5_2_linear_shape() {
        let b = linear4();
        assert_eq!(b.stages(), 2);
        assert_eq!(b.total_signals(), 6);
        assert_eq!(b.stage(0).srcs(0).collect::<Vec<_>>(), vec![1, 2, 3]);
        assert_eq!(b.stage(1).dsts(0).collect::<Vec<_>>(), vec![1, 2, 3]);
    }

    #[test]
    fn release_is_transposed_gather() {
        let b = linear4();
        assert_eq!(b.stage(1), &b.stage(0).transpose());
    }

    #[test]
    fn last_send_stage_lookup() {
        let b = linear4();
        // Rank 1 sends only in stage 0.
        assert_eq!(b.last_send_stage(1, 2), Some(0));
        assert_eq!(b.last_send_stage(1, 1), Some(0));
        assert_eq!(b.last_send_stage(1, 0), None);
        // Rank 0 sends only in stage 1.
        assert_eq!(b.last_send_stage(0, 1), None);
        assert_eq!(b.last_send_stage(0, 2), Some(1));
    }

    #[test]
    fn render_contains_all_stages() {
        let text = linear4().render();
        assert!(text.contains("S0 ="));
        assert!(text.contains("S1 ="));
    }

    #[test]
    fn trait_object_view_matches_concrete() {
        let b = linear4();
        let dyn_view: &dyn CommPattern = &b;
        assert_eq!(dyn_view.p(), 4);
        assert_eq!(dyn_view.stages(), 2);
        assert_eq!(dyn_view.total_signals(), 6);
        assert_eq!(dyn_view.name(), "linear");
    }

    #[test]
    #[should_panic]
    fn empty_stage_rejected() {
        BarrierPattern::new("bad", 3, vec![IMat::empty(3)]);
    }

    #[test]
    #[should_panic]
    fn wrong_dimension_rejected() {
        BarrierPattern::new("bad", 4, vec![IMat::from_edges(3, &[(0, 1)])]);
    }

    #[test]
    #[should_panic]
    fn zero_stages_rejected_for_barriers() {
        BarrierPattern::new("bad", 3, Vec::new());
    }
}
