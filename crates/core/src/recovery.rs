//! Survivor re-planning: synthesize a fresh pattern over the ranks that
//! outlived a crash set.
//!
//! [`CompiledPattern::restrict_to_survivors`] repairs a plan by pruning —
//! which preserves the original pattern's shape but can sever the
//! knowledge flow (a dissemination relay that crashed leaves pairs
//! permanently uninformed, exactly what the analyzer's k-crash coverage
//! rule detects). [`repair_plan`] is the fallback: it ignores the broken
//! plan and re-plans from scratch over the `p' = p - |crashed|`
//! survivors, choosing the canonical shape for the goal —
//!
//! * [`KnowledgeGoal::AllToAll`] / [`KnowledgeGoal::Prefix`]: a
//!   dissemination pattern over the compacted rank space (⌈log₂ p'⌉
//!   stages of `i → (i + 2^s) mod p'`), the §5.5 shape whose knowledge
//!   recurrence saturates every pair;
//! * [`KnowledgeGoal::RootGathers`] / [`KnowledgeGoal::RootReaches`]: a
//!   binomial tree rotated around the surviving root's compacted rank —
//!   gather runs the stages leaf-to-root, broadcast root-to-leaf.
//!
//! The synthesized plan is verified against the remapped goal through
//! the Eq. 5.1/5.2 knowledge recurrence before it is returned, so a
//! `Some` answer is a *proof* the crash set is recoverable; `None` means
//! no survivor re-plan can attain the goal (no survivors at all, or a
//! rooted goal whose root crashed — the root's knowledge died with it).
//! The `unrecoverable-crash-set` analyzer rule is exactly this function
//! run in the negative.

use crate::knowledge::{KnowledgeGoal, VerifyScratch};
use crate::plan::CompiledPattern;

/// Translates a knowledge goal into the compacted survivor rank space:
/// rooted goals follow their root through the remap and become `None`
/// when the root itself crashed. `AllToAll` and `Prefix` are untouched
/// (prefix order is inherited from the ascending survivor renumbering).
///
/// # Panics
///
/// Panics when a crashed rank or the goal's root is out of range.
#[must_use]
pub fn remap_goal(goal: KnowledgeGoal, p: usize, crashed: &[usize]) -> Option<KnowledgeGoal> {
    let dead = dead_mask(p, crashed);
    let remap_root = |r: usize| {
        assert!(r < p, "goal root {r} out of range for p={p}");
        if dead[r] {
            None
        } else {
            Some(dead[..r].iter().filter(|&&d| !d).count())
        }
    };
    match goal {
        KnowledgeGoal::AllToAll => Some(KnowledgeGoal::AllToAll),
        KnowledgeGoal::Prefix => Some(KnowledgeGoal::Prefix),
        KnowledgeGoal::RootGathers(r) => remap_root(r).map(KnowledgeGoal::RootGathers),
        KnowledgeGoal::RootReaches(r) => remap_root(r).map(KnowledgeGoal::RootReaches),
    }
}

/// Re-plans a pattern attaining `goal` over the survivors of `crashed`
/// among ranks `0..p`, in the compacted rank space (ascending surviving
/// original ranks become `0..p'`). Returns `None` when no survivor
/// re-plan exists: every rank crashed, or a rooted goal's root did.
///
/// The returned plan is named `repair-<shape>` and has been verified to
/// attain the remapped goal; a single survivor yields the legal
/// zero-stage plan (its knowledge is trivially complete).
///
/// # Panics
///
/// Panics when a crashed rank or the goal's root is out of range.
#[must_use]
pub fn repair_plan(p: usize, goal: KnowledgeGoal, crashed: &[usize]) -> Option<CompiledPattern> {
    let dead = dead_mask(p, crashed);
    let np = dead.iter().filter(|&&d| !d).count();
    if np == 0 {
        return None;
    }
    let goal = remap_goal(goal, p, crashed)?;
    let stage_edges = match goal {
        KnowledgeGoal::AllToAll | KnowledgeGoal::Prefix => dissemination_edges(np),
        KnowledgeGoal::RootGathers(root) => binomial_gather_edges(np, root),
        KnowledgeGoal::RootReaches(root) => binomial_broadcast_edges(np, root),
    };
    let name = match goal {
        KnowledgeGoal::AllToAll | KnowledgeGoal::Prefix => "repair-dissemination",
        KnowledgeGoal::RootGathers(_) => "repair-binomial-gather",
        KnowledgeGoal::RootReaches(_) => "repair-binomial-broadcast",
    };
    let plan = CompiledPattern::from_stage_edges(name, np, &stage_edges);
    let mut scratch = VerifyScratch::new();
    debug_assert!(
        scratch.verify(&plan).satisfies(goal),
        "synthesized repair plan must attain its goal by construction"
    );
    scratch.verify(&plan).satisfies(goal).then_some(plan)
}

fn dead_mask(p: usize, crashed: &[usize]) -> Vec<bool> {
    let mut dead = vec![false; p];
    for &r in crashed {
        assert!(r < p, "crashed rank {r} out of range for p={p}");
        dead[r] = true;
    }
    dead
}

/// ⌈log₂ p⌉ for p ≥ 1 by bit scan (0 stages at p = 1).
fn log2_ceil(p: usize) -> usize {
    let mut stages = 0;
    while (1usize << stages) < p {
        stages += 1;
    }
    stages
}

/// The classic dissemination stages `i → (i + 2^s) mod p`.
fn dissemination_edges(p: usize) -> Vec<Vec<(usize, usize)>> {
    (0..log2_ceil(p))
        .map(|s| (0..p).map(|i| (i, (i + (1 << s)) % p)).collect())
        .collect()
}

/// Binomial broadcast from `root`: in rotated coordinates
/// `v = (i - root) mod p`, stage s has every informed node `v < 2^s`
/// signal `v + 2^s` (when in range) — ⌈log₂ p⌉ stages, p − 1 edges.
fn binomial_broadcast_edges(p: usize, root: usize) -> Vec<Vec<(usize, usize)>> {
    let orig = |v: usize| (v + root) % p;
    (0..log2_ceil(p))
        .map(|s| {
            (0..1usize << s)
                .filter(|v| v + (1 << s) < p)
                .map(|v| (orig(v), orig(v + (1 << s))))
                .collect()
        })
        .collect()
}

/// Binomial gather to `root`: the broadcast stages reversed in time with
/// every edge flipped — children hand their accumulated knowledge up
/// until the root holds everything.
fn binomial_gather_edges(p: usize, root: usize) -> Vec<Vec<(usize, usize)>> {
    let mut stages = binomial_broadcast_edges(p, root);
    stages.reverse();
    for stage in &mut stages {
        for edge in stage.iter_mut() {
            *edge = (edge.1, edge.0);
        }
    }
    stages
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repair_all_to_all_is_dissemination_over_survivors() {
        let plan = repair_plan(8, KnowledgeGoal::AllToAll, &[2, 5]).expect("recoverable");
        assert_eq!(plan.p(), 6);
        assert_eq!(plan.stages(), 3);
        assert_eq!(plan.name(), "repair-dissemination");
        let mut scratch = VerifyScratch::new();
        assert!(scratch.verify(&plan).synchronizes());
    }

    #[test]
    fn repair_rooted_goals_rotate_around_surviving_root() {
        // Root 4 survives the crash of {0, 2}: compacted root is 2.
        let plan = repair_plan(6, KnowledgeGoal::RootGathers(4), &[0, 2]).expect("recoverable");
        assert_eq!(plan.p(), 4);
        let mut scratch = VerifyScratch::new();
        assert!(scratch.verify(&plan).root_gathers(2));
        let bcast = repair_plan(6, KnowledgeGoal::RootReaches(4), &[0, 2]).expect("recoverable");
        assert!(scratch.verify(&bcast).root_reaches(2));
        // A binomial tree moves exactly p' − 1 signals.
        assert_eq!(bcast.total_signals(), 3);
    }

    #[test]
    fn crashed_root_is_unrecoverable() {
        assert!(repair_plan(8, KnowledgeGoal::RootGathers(3), &[3]).is_none());
        assert!(repair_plan(8, KnowledgeGoal::RootReaches(0), &[0, 5]).is_none());
        assert_eq!(remap_goal(KnowledgeGoal::RootGathers(3), 8, &[3]), None);
    }

    #[test]
    fn no_survivors_is_unrecoverable() {
        assert!(repair_plan(2, KnowledgeGoal::AllToAll, &[0, 1]).is_none());
    }

    #[test]
    fn single_survivor_yields_zero_stage_plan() {
        let plan = repair_plan(4, KnowledgeGoal::AllToAll, &[0, 1, 3]).expect("recoverable");
        assert_eq!(plan.p(), 1);
        assert_eq!(plan.stages(), 0);
        let rooted = repair_plan(4, KnowledgeGoal::RootReaches(2), &[0, 1, 3]).expect("root lives");
        assert_eq!(rooted.p(), 1);
    }

    #[test]
    fn remap_goal_follows_root_through_compaction() {
        assert_eq!(
            remap_goal(KnowledgeGoal::RootGathers(5), 8, &[1, 3]),
            Some(KnowledgeGoal::RootGathers(3))
        );
        assert_eq!(
            remap_goal(KnowledgeGoal::Prefix, 8, &[1]),
            Some(KnowledgeGoal::Prefix)
        );
    }

    /// Every goal × every k ≤ 2 crash set over small p: repair either
    /// proves recoverability (verified plan) or the root crashed.
    #[test]
    fn repair_exhaustive_small_p() {
        let mut scratch = VerifyScratch::new();
        for p in 2..9usize {
            for a in 0..p {
                for b in a..p {
                    let crashed: Vec<usize> = if a == b { vec![a] } else { vec![a, b] };
                    for goal in [
                        KnowledgeGoal::AllToAll,
                        KnowledgeGoal::Prefix,
                        KnowledgeGoal::RootGathers(p - 1),
                        KnowledgeGoal::RootReaches(0),
                    ] {
                        match repair_plan(p, goal, &crashed) {
                            Some(plan) => {
                                let remapped =
                                    remap_goal(goal, p, &crashed).expect("plan implies root lives");
                                assert!(
                                    scratch.verify(&plan).satisfies(remapped),
                                    "p={p} crashed={crashed:?} goal={goal:?}"
                                );
                            }
                            None => {
                                assert!(
                                    crashed.len() == p || remap_goal(goal, p, &crashed).is_none(),
                                    "None only for dead root or empty machine: \
                                     p={p} crashed={crashed:?} goal={goal:?}"
                                );
                            }
                        }
                    }
                }
            }
        }
    }
}
