//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides exactly the API surface the workspace uses: a seedable
//! deterministic [`rngs::StdRng`] plus the [`Rng`]/[`SeedableRng`] traits
//! with `gen`, `gen_range` and `next_u64`. The generator is xoshiro256++
//! rather than upstream's ChaCha12 — every consumer in this workspace
//! seeds explicitly and depends only on determinism, never on matching
//! upstream's stream.

use std::ops::Range;

/// Core randomness source: everything is derived from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Seed type (32 bytes for [`rngs::StdRng`], as upstream).
    type Seed;

    /// Builds a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;
}

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of a standard-distribution type.
    fn gen<T: Standard>(&mut self) -> T {
        T::gen_from(self)
    }

    /// Samples uniformly from a half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable by `Rng::gen`.
pub trait Standard: Sized {
    fn gen_from<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn gen_from<R: RngCore + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn gen_from<R: RngCore + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn gen_from<R: RngCore + ?Sized>(rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn gen_from<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn gen_from<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types samplable by `Rng::gen_range` over a half-open range.
pub trait SampleUniform: Sized {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<$t>) -> $t {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = range.end.abs_diff(range.start) as u64;
                // Modulo bias is negligible for the span sizes used here.
                range.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<f64>) -> f64 {
        assert!(
            range.start < range.end && range.start.is_finite() && range.end.is_finite(),
            "cannot sample range {:?}",
            range
        );
        let f: f64 = f64::gen_from(rng);
        let v = range.start + f * (range.end - range.start);
        // Guard against rounding up to the excluded endpoint.
        if v >= range.end {
            range.start
        } else {
            v
        }
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> StdRng {
            let mut s = [0u64; 4];
            for (k, chunk) in seed.chunks(8).enumerate() {
                s[k] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // The all-zero state is a fixed point of xoshiro; remix it.
            if s.iter().all(|&w| w == 0) {
                let mut z = 0x9E37_79B9_7F4A_7C15u64;
                for w in s.iter_mut() {
                    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
                    let mut x = z;
                    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                    *w = x ^ (x >> 31);
                }
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    fn rng(tag: u8) -> StdRng {
        StdRng::from_seed([tag; 32])
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = rng(1);
        let mut b = rng(1);
        let av: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let bv: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        assert_eq!(av, bv);
    }

    #[test]
    fn streams_differ_across_seeds() {
        let mut a = rng(1);
        let mut b = rng(2);
        let av: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let bv: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        assert_ne!(av, bv);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = rng(3);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = rng(4);
        for _ in 0..10_000 {
            let x = r.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = r.gen_range(f64::MIN_POSITIVE..1.0);
            assert!(y > 0.0 && y < 1.0);
        }
    }

    #[test]
    fn zero_seed_is_remixed() {
        let mut r = StdRng::from_seed([0; 32]);
        assert_ne!(r.gen::<u64>(), 0);
    }
}
