//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate implements the subset of criterion's API the workspace benches
//! use: `Criterion::benchmark_group`, `sample_size`, `bench_function`,
//! `Bencher::iter`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros. Instead of criterion's statistical engine it
//! runs each closure a fixed number of times and prints the mean — enough
//! for `cargo bench` to produce comparable numbers and for the bench
//! targets to stay compiling under `--all-targets` builds.

use std::time::Instant;

pub use std::hint::black_box;

/// Top-level harness handle.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
        }
    }

    /// Runs an ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut Criterion {
        run_one("", &id.into(), self.sample_size, f);
        self
    }
}

/// A named group sharing a sample size.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut BenchmarkGroup {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Times one benchmark function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<String>,
        f: F,
    ) -> &mut BenchmarkGroup {
        run_one(&self.name, &id.into(), self.sample_size, f);
        self
    }

    /// Ends the group (kept for API compatibility; reporting is per-bench).
    pub fn finish(self) {}
}

/// Handed to each benchmark closure; `iter` times the workload.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Runs `f` once as warm-up, then `sample_size` timed passes.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(f());
            self.samples.push(t0.elapsed().as_secs_f64());
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(group: &str, id: &str, sample_size: usize, mut f: F) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut b);
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    if b.samples.is_empty() {
        println!("{label:<48} (no samples)");
        return;
    }
    let mean = b.samples.iter().sum::<f64>() / b.samples.len() as f64;
    let min = b.samples.iter().copied().fold(f64::INFINITY, f64::min);
    println!(
        "{label:<48} mean {:>12} min {:>12} ({} samples)",
        fmt_time(mean),
        fmt_time(min),
        b.samples.len()
    );
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Declares a function that runs the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut calls = 0usize;
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        g.bench_function("count", |b| b.iter(|| calls += 1));
        g.finish();
        // 1 warm-up + 3 timed.
        assert_eq!(calls, 4);
    }

    #[test]
    fn time_formatting_covers_scales() {
        assert!(fmt_time(5e-9).ends_with("ns"));
        assert!(fmt_time(5e-6).ends_with("µs"));
        assert!(fmt_time(5e-3).ends_with("ms"));
        assert!(fmt_time(5.0).ends_with('s'));
    }
}
