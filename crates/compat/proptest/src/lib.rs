//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate implements the subset of proptest's surface the workspace test
//! suites use: the `proptest!` macro (with an optional
//! `#![proptest_config(...)]` header), range and `collection::vec`
//! strategies, and the `prop_assert!`/`prop_assert_eq!`/`prop_assume!`
//! assertion macros. Cases are generated from a deterministic RNG seeded
//! by test name and case index, so failures reproduce exactly; there is no
//! shrinking — the failure message reports the assertion that fired.

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// A value generator: the sampling core of proptest's `Strategy`.
    pub trait Strategy {
        type Value;
        fn sample(&self, rng: &mut StdRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

    /// Strategy for `Vec<T>` with a sampled length.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        pub(crate) elem: S,
        pub(crate) len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

pub mod collection {
    use super::strategy::{Strategy, VecStrategy};
    use std::ops::Range;

    /// `Vec` strategy with element strategy and length range.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { elem, len }
    }
}

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        assert!(cases > 0, "need at least one case");
        ProptestConfig { cases }
    }
}

/// Why a generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` filtered the inputs; try another case.
    Reject,
    /// A `prop_assert*!` failed.
    Fail(String),
}

/// Deterministic per-case RNG: seeded from the test name and case index.
pub fn case_rng(test_name: &str, case: u64) -> StdRng {
    // FNV-1a over the name, then SplitMix64 expansion with the case index.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let mut z = h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let mut seed = [0u8; 32];
    for chunk in seed.chunks_mut(8) {
        z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut x = z;
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        chunk.copy_from_slice(&(x ^ (x >> 31)).to_le_bytes());
    }
    StdRng::from_seed(seed)
}

pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        TestCaseError,
    };
}

/// The test-declaration macro: each `fn name(arg in strategy, ...) { .. }`
/// becomes a `#[test]` running `cases` sampled instances.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($params:tt)*) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut passed = 0u32;
            let mut attempted = 0u64;
            while passed < cfg.cases {
                attempted += 1;
                assert!(
                    attempted <= cfg.cases as u64 * 32,
                    "prop_assume! rejected too many cases ({} attempts for {} passes)",
                    attempted,
                    passed
                );
                let mut rng = $crate::case_rng(stringify!($name), attempted);
                let _ = &mut rng;
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $crate::__proptest_bind!(rng; $($params)*);
                    $body
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(()) => passed += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject) => continue,
                    ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!("property '{}' failed at case {}: {}", stringify!($name), attempted, msg)
                    }
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident;) => {};
    ($rng:ident; mut $arg:ident in $strat:expr) => {
        let mut $arg = $crate::strategy::Strategy::sample(&($strat), &mut $rng);
    };
    ($rng:ident; $arg:ident in $strat:expr) => {
        let $arg = $crate::strategy::Strategy::sample(&($strat), &mut $rng);
    };
    ($rng:ident; mut $arg:ident in $strat:expr, $($rest:tt)*) => {
        let mut $arg = $crate::strategy::Strategy::sample(&($strat), &mut $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
    ($rng:ident; $arg:ident in $strat:expr, $($rest:tt)*) => {
        let $arg = $crate::strategy::Strategy::sample(&($strat), &mut $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
}

/// Asserts within a property; failure reports the sampled case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Equality assertion within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let a = $a;
        let b = $b;
        $crate::prop_assert!(
            a == b,
            "{} == {} failed: {:?} vs {:?}",
            stringify!($a),
            stringify!($b),
            a,
            b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let a = $a;
        let b = $b;
        $crate::prop_assert!(a == b, $($fmt)+);
    }};
}

/// Inequality assertion within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let a = $a;
        let b = $b;
        $crate::prop_assert!(
            a != b,
            "{} != {} failed: both {:?}",
            stringify!($a),
            stringify!($b),
            a
        );
    }};
}

/// Filters a case: rejected cases are re-sampled, not failed.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Sampled values respect their range.
        #[test]
        fn ranges_respected(p in 2usize..48, x in -5.0f64..5.0) {
            prop_assert!((2..48).contains(&p));
            prop_assert!((-5.0..5.0).contains(&x));
        }

        /// Vec strategy respects both element and length bounds.
        #[test]
        fn vec_strategy_bounds(mut xs in crate::collection::vec(0.5f64..2.0, 1..9)) {
            prop_assert!(!xs.is_empty() && xs.len() < 9);
            xs.reverse();
            prop_assert!(xs.iter().all(|&x| (0.5..2.0).contains(&x)));
        }

        /// Assumptions reject rather than fail.
        #[test]
        fn assume_filters(p in 1usize..10) {
            prop_assume!(p % 2 == 0);
            prop_assert_eq!(p % 2, 0);
        }
    }

    #[test]
    fn case_rng_is_deterministic() {
        use rand::Rng;
        let a: u64 = crate::case_rng("t", 3).gen();
        let b: u64 = crate::case_rng("t", 3).gen();
        let c: u64 = crate::case_rng("t", 4).gen();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    // A property declared without #[test]: the macro still generates the
    // runner fn, which the should_panic wrapper below drives by hand.
    proptest! {
        fn always_fails(x in 0usize..10) {
            prop_assert!(x > 100, "x was {}", x);
        }
    }

    #[test]
    #[should_panic]
    fn failing_property_panics() {
        always_fails();
    }
}
