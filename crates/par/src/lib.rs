//! Deterministic scoped-thread fan-out for the measurement layers.
//!
//! Every measurement loop in this workspace — barrier repetitions,
//! microbenchmark process pairs, per-p figure sweeps — is embarrassingly
//! parallel *and* bit-for-bit reproducible, because each work item derives
//! its own RNG stream from `(seed, item index)` rather than sharing a
//! sequential generator. That makes the parallel schedule irrelevant to
//! the numbers: [`par_map_indexed`] may execute items in any order on any
//! number of threads, yet the returned vector is always identical to what
//! a serial `(0..n).map(f).collect()` produces.
//!
//! The implementation is a work-stealing loop over [`std::thread::scope`]:
//! no thread pool to initialize, no external dependency (the build
//! environment has no registry access, so rayon is not an option), and no
//! unsafe code — each worker collects `(index, value)` pairs privately and
//! the results are scattered back into input order after the join.
//!
//! The fan-out width is a process-wide setting ([`set_threads`] /
//! [`threads`]) so that deep call chains (an experiment sweep calling the
//! microbenchmark calling the barrier executor) need not thread a
//! configuration value through every signature; nested `par_map_indexed`
//! calls simply run their inner items on the calling worker.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Process-wide fan-out width; 0 means "not set, use the hardware".
static THREADS: AtomicUsize = AtomicUsize::new(0);

/// Serializes [`with_threads`] scopes so concurrent callers (e.g. tests
/// pinning different widths) cannot race on the global setting.
static WIDTH_LOCK: Mutex<()> = Mutex::new(());

/// Set when a worker is already inside a fan-out, so nested calls stay
/// serial instead of oversubscribing.
static ACTIVE: AtomicBool = AtomicBool::new(false);

/// Sets the process-wide fan-out width. `None` (the default) means one
/// worker per available hardware thread; `Some(1)` forces serial
/// execution. Results are identical either way — this knob trades wall
/// clock for cores, never numbers.
pub fn set_threads(n: Option<usize>) {
    THREADS.store(n.map_or(0, |n| n.max(1)), Ordering::SeqCst);
}

/// Runs `f` with the fan-out width pinned to `n`, restoring the previous
/// setting afterwards (also on panic). Scopes are serialized process-wide,
/// so concurrent callers — tests comparing serial against parallel runs,
/// say — cannot clobber each other's width mid-measurement.
pub fn with_threads<R>(n: Option<usize>, f: impl FnOnce() -> R) -> R {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREADS.store(self.0, Ordering::SeqCst);
        }
    }
    let _guard = WIDTH_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let _restore = Restore(THREADS.load(Ordering::SeqCst));
    set_threads(n);
    f()
}

/// The fan-out width [`par_map_indexed`] will use right now.
pub fn threads() -> usize {
    match THREADS.load(Ordering::SeqCst) {
        0 => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        n => n,
    }
}

/// Maps `f` over `0..n` on up to [`threads`] scoped workers, returning
/// results in index order.
///
/// Determinism contract: `f` must derive any randomness it needs from its
/// index alone (e.g. `derive_rng(seed, k)`), never from shared mutable
/// state. Under that contract the output is bit-identical to the serial
/// `(0..n).map(f).collect()` for every thread count — an equality the
/// workspace enforces with tests at each ported call site.
///
/// Panics in `f` propagate to the caller (the scope re-raises them).
pub fn par_map_indexed<U, F>(n: usize, f: F) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync,
{
    par_map_indexed_with(n, || (), |(), k| f(k))
}

/// [`par_map_indexed`] with worker-local scratch state: `init` runs once
/// per worker (once total on the serial path) and the resulting value is
/// handed mutably to every item that worker processes.
///
/// This is the allocation-amortization hook of the measurement layers: a
/// barrier repetition needs network-queue and stage-buffer scratch, and
/// creating it per item would put hundreds of heap allocations on the hot
/// path. With worker-local state, scratch is built O(workers) times and
/// reused across that worker's whole share of the items.
///
/// The determinism contract of [`par_map_indexed`] extends to the state:
/// `f` must leave no information in the scratch that influences a later
/// item's result (reset-or-overwrite before use), so results stay
/// bit-identical to a serial run at every thread count.
pub fn par_map_indexed_with<S, U, I, F>(n: usize, init: I, f: F) -> Vec<U>
where
    U: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> U + Sync,
{
    let workers = threads().min(n);
    // Serial fast path: no items, one worker, or already inside a fan-out
    // (nested parallelism would oversubscribe without speeding anything
    // up — the outer level owns the cores).
    if workers <= 1 || ACTIVE.swap(true, Ordering::SeqCst) {
        if n == 0 {
            return Vec::new();
        }
        let mut state = init();
        return (0..n).map(|k| f(&mut state, k)).collect();
    }
    let next = AtomicUsize::new(0);
    let mut parts: Vec<Vec<(usize, U)>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut state = init();
                    let mut local: Vec<(usize, U)> = Vec::new();
                    loop {
                        let k = next.fetch_add(1, Ordering::Relaxed);
                        if k >= n {
                            break;
                        }
                        local.push((k, f(&mut state, k)));
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(part) => parts.push(part),
                Err(payload) => {
                    ACTIVE.store(false, Ordering::SeqCst);
                    std::panic::resume_unwind(payload);
                }
            }
        }
    });
    ACTIVE.store(false, Ordering::SeqCst);
    let mut slots: Vec<Option<U>> = (0..n).map(|_| None).collect();
    for (k, v) in parts.into_iter().flatten() {
        debug_assert!(slots[k].is_none(), "index {k} produced twice");
        slots[k] = Some(v);
    }
    slots
        .into_iter()
        .map(|s| s.expect("every index produced exactly once"))
        .collect()
}

/// Maps `f` over a slice on up to [`threads`] workers, preserving order —
/// sugar over [`par_map_indexed`] for sweeping a list of measurement
/// points.
pub fn par_map_slice<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(usize, &T) -> U + Sync,
{
    par_map_indexed(items.len(), |k| f(k, &items[k]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn preserves_index_order() {
        for &t in &[1usize, 2, 3, 8] {
            let got = with_threads(Some(t), || par_map_indexed(100, |k| k * k));
            let want: Vec<usize> = (0..100).map(|k| k * k).collect();
            assert_eq!(got, want, "threads={t}");
        }
    }

    /// Worker-local scratch: results match the stateless map at every
    /// thread count when the state is overwritten before each use, and
    /// the number of `init` calls never exceeds the worker count.
    #[test]
    fn worker_local_state_is_reused_not_shared() {
        static INITS: AtomicUsize = AtomicUsize::new(0);
        for &t in &[1usize, 2, 4, 16] {
            INITS.store(0, Ordering::SeqCst);
            let got = with_threads(Some(t), || {
                par_map_indexed_with(
                    64,
                    || {
                        INITS.fetch_add(1, Ordering::SeqCst);
                        vec![0u64; 8]
                    },
                    |scratch, k| {
                        // Overwrite-before-use, as the contract requires.
                        for (i, slot) in scratch.iter_mut().enumerate() {
                            *slot = (k * 31 + i) as u64;
                        }
                        scratch.iter().sum::<u64>()
                    },
                )
            });
            let want: Vec<u64> = (0..64u64)
                .map(|k| (0..8u64).map(|i| k * 31 + i).sum())
                .collect();
            assert_eq!(got, want, "threads={t}");
            let inits = INITS.load(Ordering::SeqCst);
            assert!(inits <= t.min(64), "threads={t}: {inits} inits");
            assert!(inits >= 1, "threads={t}");
        }
    }

    #[test]
    fn with_state_empty_input_skips_init() {
        static INITS: AtomicUsize = AtomicUsize::new(0);
        let got: Vec<u32> = par_map_indexed_with(
            0,
            || {
                INITS.fetch_add(1, Ordering::SeqCst);
            },
            |(), _| 0,
        );
        assert!(got.is_empty());
        assert_eq!(INITS.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn empty_input_is_fine() {
        let got: Vec<u32> = with_threads(Some(4), || par_map_indexed(0, |_| unreachable!()));
        assert!(got.is_empty());
    }

    #[test]
    fn slice_variant_sees_items_and_indices() {
        let items = vec!["a", "b", "c"];
        let got = with_threads(Some(2), || par_map_slice(&items, |k, s| format!("{k}:{s}")));
        assert_eq!(got, vec!["0:a", "1:b", "2:c"]);
    }

    #[test]
    fn parallel_equals_serial_for_derived_rng_work() {
        use rand::Rng;
        let work = |k: usize| {
            let mut rng = hpm_stats::rng::derive_rng(42, k as u64);
            (0..32)
                .map(|_| rng.gen::<u64>())
                .fold(0u64, u64::wrapping_add)
        };
        let serial: Vec<u64> = (0..64).map(work).collect();
        for &t in &[2usize, 4, 7] {
            let par = with_threads(Some(t), || par_map_indexed(64, work));
            assert_eq!(par, serial, "threads={t}");
        }
    }

    #[test]
    fn nested_calls_fall_back_to_serial() {
        let got = with_threads(Some(4), || {
            par_map_indexed(4, |i| par_map_indexed(4, move |j| i * 10 + j))
        });
        let want: Vec<Vec<usize>> = (0..4)
            .map(|i| (0..4).map(|j| i * 10 + j).collect())
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn every_index_runs_exactly_once() {
        let hits: Vec<AtomicUsize> = (0..257).map(|_| AtomicUsize::new(0)).collect();
        with_threads(Some(5), || {
            par_map_indexed(hits.len(), |k| hits[k].fetch_add(1, Ordering::SeqCst))
        });
        assert!(hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
    }

    #[test]
    fn threads_setting_round_trips() {
        let before = THREADS.load(Ordering::SeqCst);
        with_threads(Some(3), || assert_eq!(threads(), 3));
        assert_eq!(THREADS.load(Ordering::SeqCst), before, "width restored");
        assert!(threads() >= 1);
    }

    #[test]
    fn panic_propagates_and_width_is_restored() {
        let before = THREADS.load(Ordering::SeqCst);
        let r = std::panic::catch_unwind(|| {
            with_threads(Some(2), || {
                par_map_indexed(8, |k| {
                    if k == 5 {
                        panic!("boom");
                    }
                    k
                })
            })
        });
        assert!(r.is_err());
        assert_eq!(THREADS.load(Ordering::SeqCst), before, "width restored");
    }
}
