//! Pass two: the determinism-contract source lint.
//!
//! The simulator's contract is bit-identical output at any thread and
//! lane count, from counter-based RNG streams keyed by (seed, label,
//! repetition). A handful of constructs silently break that contract
//! when they creep into simulation code:
//!
//! - **host clocks** (`std::time::Instant`, `SystemTime`) — wall-clock
//!   reads make output depend on the machine, not the seed;
//! - **hash collections** (`HashMap`, `HashSet`) — iteration order is
//!   randomized per process, so any iteration leaks nondeterminism
//!   (membership-only use is safe, but earns an explicit allowlist
//!   entry rather than a silent pass);
//! - **ambient RNG** (`thread_rng`, `from_entropy`, `OsRng`,
//!   `rand::random`) — draws outside the keyed-stream discipline;
//! - **`static mut`** — cross-thread mutable state with no ordering.
//!
//! [`scan_source`] is the pure core: it walks one file's lines, strips
//! `//` comments, skips `#[cfg(test)]` items (test code may time and
//! hash freely), and reports token matches not covered by the
//! allowlist. The `hpm-analyze --src` binary applies it to every
//! `crates/*/src/**.rs` file. Exemptions live in one committed file
//! (`crates/analyze/allowlist.txt`), one line per `path-prefix rule`
//! pair, so every exception to the contract is visible in review.

use std::path::Path;

/// One lint hit: file, 1-based line, rule name, offending token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintFinding {
    pub path: String,
    pub line: usize,
    pub rule: &'static str,
    pub token: String,
}

impl std::fmt::Display for LintFinding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] forbidden token `{}`",
            self.path, self.line, self.rule, self.token
        )
    }
}

/// The rule table: rule name → forbidden tokens. Tokens match on
/// identifier boundaries (so `Instant` does not fire inside
/// `InstantArray`).
pub const RULES: &[(&str, &[&str])] = &[
    ("host-clock", &["Instant", "SystemTime"]),
    ("hash-collection", &["HashMap", "HashSet"]),
    (
        "ambient-rng",
        &["thread_rng", "from_entropy", "OsRng", "rand::random"],
    ),
    ("static-mut", &["static mut"]),
];

/// One allowlist entry: findings under `path_prefix` whose rule matches
/// `rule` (or `*`) are suppressed.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    pub path_prefix: String,
    pub rule: String,
}

/// Parses the committed allowlist format: one `path-prefix rule` pair
/// per line, `#` starts a comment, blank lines ignored.
#[must_use]
pub fn parse_allowlist(text: &str) -> Vec<AllowEntry> {
    text.lines()
        .map(|l| l.split('#').next().unwrap_or("").trim())
        .filter(|l| !l.is_empty())
        .map(|l| {
            let mut parts = l.split_whitespace();
            let path_prefix = parts.next().unwrap_or("").to_string();
            let rule = parts.next().unwrap_or("*").to_string();
            AllowEntry { path_prefix, rule }
        })
        .collect()
}

fn allowed(allow: &[AllowEntry], path: &str, rule: &str) -> bool {
    allow
        .iter()
        .any(|e| path.starts_with(&e.path_prefix) && (e.rule == "*" || e.rule == rule))
}

fn is_ident(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// True when `needle` occurs in `line` on identifier boundaries.
fn token_match(line: &str, needle: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = line[from..].find(needle) {
        let at = from + pos;
        let before_ok = at == 0 || !is_ident(line[..at].chars().next_back().unwrap_or(' '));
        let after = at + needle.len();
        let after_ok =
            after >= line.len() || !is_ident(line[after..].chars().next().unwrap_or(' '));
        if before_ok && after_ok {
            return true;
        }
        from = at + needle.len();
    }
    false
}

/// Yields `(line_index, comment-stripped line)` for every line outside
/// `#[cfg(test)]` items. After the attribute (and any further
/// attributes), the next item is swallowed — brace-delimited (a `mod`
/// or `fn`) or `;`-terminated (a `use`). Shared by the token lint and
/// the stream-label scanner so both see the same "library source".
fn live_lines(source: &str) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    let mut pending_cfg_test = false;
    let mut skipping = false;
    let mut depth: i64 = 0;
    let mut seen_open = false;
    let track = |line: &str, depth: &mut i64, seen_open: &mut bool, skipping: &mut bool| {
        for c in line.chars() {
            match c {
                '{' => {
                    *depth += 1;
                    *seen_open = true;
                }
                '}' => *depth -= 1,
                ';' if !*seen_open && *depth == 0 => *skipping = false,
                _ => {}
            }
        }
        if *seen_open && *depth <= 0 {
            *skipping = false;
        }
    };
    for (idx, raw) in source.lines().enumerate() {
        let line = raw.split("//").next().unwrap_or("");
        if skipping {
            track(line, &mut depth, &mut seen_open, &mut skipping);
            continue;
        }
        let trimmed = line.trim();
        if trimmed.starts_with("#[cfg(test)]") {
            pending_cfg_test = true;
            continue;
        }
        if pending_cfg_test {
            if trimmed.starts_with("#[") || trimmed.is_empty() {
                continue;
            }
            pending_cfg_test = false;
            skipping = true;
            depth = 0;
            seen_open = false;
            track(line, &mut depth, &mut seen_open, &mut skipping);
            continue;
        }
        out.push((idx, line.to_string()));
    }
    out
}

/// Scans one file's source text. `path` is the repo-relative label used
/// for reporting and allowlist matching.
#[must_use]
pub fn scan_source(path: &str, source: &str, allow: &[AllowEntry]) -> Vec<LintFinding> {
    let mut findings = Vec::new();
    for (idx, line) in live_lines(source) {
        for (rule, tokens) in RULES {
            if allowed(allow, path, rule) {
                continue;
            }
            for needle in *tokens {
                if token_match(&line, needle) {
                    findings.push(LintFinding {
                        path: path.to_string(),
                        line: idx + 1,
                        rule,
                        token: (*needle).to_string(),
                    });
                }
            }
        }
    }
    findings
}

/// Walks `root` for `crates/*/src/**.rs` plus the facade `src/*.rs` and
/// scans every file. Paths are visited in sorted order so the report is
/// deterministic.
pub fn scan_tree(root: &Path, allow: &[AllowEntry]) -> std::io::Result<Vec<LintFinding>> {
    let mut files = Vec::new();
    collect_rs(&root.join("crates"), &mut files)?;
    collect_rs(&root.join("src"), &mut files)?;
    files.sort();
    let mut findings = Vec::new();
    for f in files {
        let rel = f
            .strip_prefix(root)
            .unwrap_or(&f)
            .to_string_lossy()
            .replace('\\', "/");
        // The contract covers library code: `src/` trees only. Bench
        // harnesses and integration tests may time and hash freely.
        if !(rel.starts_with("src/") || rel.contains("/src/")) {
            continue;
        }
        let source = std::fs::read_to_string(&f)?;
        findings.extend(scan_source(&rel, &source, allow));
    }
    Ok(findings)
}

/// One keyed-stream label declaration: `const NAME_LABEL: u64 = VALUE;`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LabelDecl {
    pub path: String,
    pub line: usize,
    pub name: String,
    pub value: u64,
}

/// Extracts every `const *_LABEL: u64` declaration from one file's
/// source. Labels partition the SplitMix64 stream space (see DESIGN.md,
/// "The jitter engine"); this scanner feeds the registry audit that
/// keeps them collision-free.
#[must_use]
pub fn scan_labels(path: &str, source: &str) -> Vec<LabelDecl> {
    let mut out = Vec::new();
    for (idx, line) in live_lines(source) {
        let line = line.trim();
        let rest = line
            .strip_prefix("pub const ")
            .or_else(|| line.strip_prefix("pub(crate) const "))
            .or_else(|| line.strip_prefix("const "));
        let Some(rest) = rest else { continue };
        let Some((name, tail)) = rest.split_once(':') else {
            continue;
        };
        let name = name.trim();
        if !name.ends_with("_LABEL") {
            continue;
        }
        let Some((ty, val)) = tail.split_once('=') else {
            continue;
        };
        if ty.trim() != "u64" {
            continue;
        }
        let val = val.trim().trim_end_matches(';').trim().replace('_', "");
        let value = if let Some(hex) = val.strip_prefix("0x") {
            u64::from_str_radix(hex, 16).ok()
        } else {
            val.parse().ok()
        };
        if let Some(value) = value {
            out.push(LabelDecl {
                path: path.to_string(),
                line: idx + 1,
                name: name.to_string(),
                value,
            });
        }
    }
    out
}

/// Parses the committed label registry (`crates/analyze/stream_labels.txt`):
/// one `NAME VALUE` pair per line, `#` comments, `_` digit separators.
#[must_use]
pub fn parse_label_registry(text: &str) -> Vec<(String, u64)> {
    text.lines()
        .map(|l| l.split('#').next().unwrap_or("").trim())
        .filter(|l| !l.is_empty())
        .filter_map(|l| {
            let mut parts = l.split_whitespace();
            let name = parts.next()?.to_string();
            let val = parts.next()?.replace('_', "");
            let value = if let Some(hex) = val.strip_prefix("0x") {
                u64::from_str_radix(hex, 16).ok()?
            } else {
                val.parse().ok()?
            };
            Some((name, value))
        })
        .collect()
}

/// Audits the declared labels against the committed registry. Errors:
/// a declaration missing from the registry, a registry/declaration
/// value mismatch, a stale registry entry with no declaration, and —
/// the one that actually corrupts physics — two labels sharing a value,
/// which silently correlates two subsystems' randomness.
#[must_use]
pub fn check_labels(decls: &[LabelDecl], registry: &[(String, u64)]) -> Vec<String> {
    let mut errors = Vec::new();
    for d in decls {
        match registry.iter().find(|(n, _)| *n == d.name) {
            None => errors.push(format!(
                "{}:{}: stream label {} = {:#x} is not registered in stream_labels.txt",
                d.path, d.line, d.name, d.value
            )),
            Some((_, v)) if *v != d.value => errors.push(format!(
                "{}:{}: stream label {} declares {:#x} but the registry records {v:#x}",
                d.path, d.line, d.name, d.value
            )),
            _ => {}
        }
    }
    for (n, _) in registry {
        if !decls.iter().any(|d| &d.name == n) {
            errors.push(format!(
                "stream_labels.txt: registered label {n} has no declaration in the source tree"
            ));
        }
    }
    for (i, a) in decls.iter().enumerate() {
        for b in &decls[i + 1..] {
            if a.value == b.value && a.name != b.name {
                errors.push(format!(
                    "stream label collision: {} ({}:{}) and {} ({}:{}) share {:#x}",
                    a.name, a.path, a.line, b.name, b.path, b.line, a.value
                ));
            }
        }
    }
    errors
}

/// Walks the same `crates/*/src` + facade tree as [`scan_tree`] and
/// collects every stream-label declaration, in sorted file order.
pub fn scan_labels_tree(root: &Path) -> std::io::Result<Vec<LabelDecl>> {
    let mut files = Vec::new();
    collect_rs(&root.join("crates"), &mut files)?;
    collect_rs(&root.join("src"), &mut files)?;
    files.sort();
    let mut decls = Vec::new();
    for f in files {
        let rel = f
            .strip_prefix(root)
            .unwrap_or(&f)
            .to_string_lossy()
            .replace('\\', "/");
        if !(rel.starts_with("src/") || rel.contains("/src/")) {
            continue;
        }
        let source = std::fs::read_to_string(&f)?;
        decls.extend(scan_labels(&rel, &source));
    }
    Ok(decls)
}

fn collect_rs(dir: &Path, out: &mut Vec<std::path::PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_hit(src: &str) -> Vec<&'static str> {
        scan_source("crates/x/src/lib.rs", src, &[])
            .into_iter()
            .map(|f| f.rule)
            .collect()
    }

    #[test]
    fn flags_each_rule() {
        assert_eq!(rules_hit("let t = Instant::now();"), vec!["host-clock"]);
        assert_eq!(rules_hit("let t = SystemTime::now();"), vec!["host-clock"]);
        assert_eq!(
            rules_hit("use std::collections::HashMap;"),
            vec!["hash-collection"]
        );
        assert_eq!(
            rules_hit("let s: HashSet<u32> = x;"),
            vec!["hash-collection"]
        );
        assert_eq!(
            rules_hit("let mut rng = thread_rng();"),
            vec!["ambient-rng"]
        );
        assert_eq!(
            rules_hit("let x: f64 = rand::random();"),
            vec!["ambient-rng"]
        );
        assert_eq!(
            rules_hit("static mut COUNTER: u64 = 0;"),
            vec!["static-mut"]
        );
    }

    #[test]
    fn token_boundaries_respected() {
        assert!(rules_hit("struct InstantArray;").is_empty());
        assert!(rules_hit("let my_hash_map_like = 1;").is_empty());
        assert!(rules_hit("fn instant() {}").is_empty());
    }

    #[test]
    fn comments_do_not_fire() {
        assert!(rules_hit("// a HashMap would break determinism here").is_empty());
        assert!(rules_hit("/// never use Instant in the simulator").is_empty());
    }

    #[test]
    fn cfg_test_items_are_skipped() {
        let src = "\
#[cfg(test)]
mod tests {
    use std::time::Instant;
    #[test]
    fn times_something() {
        let t = Instant::now();
        let m = std::collections::HashMap::new();
    }
}
let live = 1;
";
        assert!(rules_hit(src).is_empty());
        // …but live code after the module is still scanned.
        let src2 = format!("{src}\nlet t = Instant::now();\n");
        assert_eq!(rules_hit(&src2), vec!["host-clock"]);
    }

    #[test]
    fn cfg_test_use_statement_is_skipped() {
        let src = "#[cfg(test)]\nuse std::collections::HashSet;\nlet live = HashMap::new();\n";
        let found = scan_source("crates/x/src/lib.rs", src, &[]);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].token, "HashMap");
        assert_eq!(found[0].line, 3);
    }

    #[test]
    fn allowlist_suppresses_by_prefix_and_rule() {
        let allow = parse_allowlist(
            "# exemptions\n\
             crates/compat/ host-clock  # vendored stand-ins\n\
             crates/x/src/special.rs *\n",
        );
        assert!(scan_source(
            "crates/compat/criterion/src/lib.rs",
            "Instant::now();",
            &allow
        )
        .is_empty());
        // Same rule elsewhere still fires.
        assert_eq!(
            scan_source("crates/y/src/lib.rs", "Instant::now();", &allow).len(),
            1
        );
        // The wildcard entry covers every rule for that file.
        assert!(scan_source("crates/x/src/special.rs", "static mut X: u8 = 0;", &allow).is_empty());
        // …but only host-clock is exempt under compat.
        assert_eq!(
            scan_source("crates/compat/rand/src/lib.rs", "thread_rng();", &allow).len(),
            1
        );
    }

    #[test]
    fn findings_report_position() {
        let found = scan_source(
            "crates/x/src/lib.rs",
            "let a = 1;\nlet t = Instant::now();",
            &[],
        );
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].line, 2);
        assert_eq!(found[0].path, "crates/x/src/lib.rs");
        assert!(found[0].to_string().contains("host-clock"));
    }

    #[test]
    fn label_scanner_parses_declarations() {
        let src = "\
pub const SYNC_JITTER_LABEL: u64 = 0x5253_594E; // b\"RSYN\"
pub(crate) const DROP_LABEL: u64 = 99;
const NOT_A_LABEL: u32 = 7;
const OTHER_CONST: u64 = 3;
// const COMMENTED_LABEL: u64 = 1;
";
        let decls = scan_labels("crates/x/src/lib.rs", src);
        assert_eq!(decls.len(), 2);
        assert_eq!(decls[0].name, "SYNC_JITTER_LABEL");
        assert_eq!(decls[0].value, 0x5253_594E);
        assert_eq!(decls[0].line, 1);
        assert_eq!(decls[1].name, "DROP_LABEL");
        assert_eq!(decls[1].value, 99);
    }

    #[test]
    fn label_registry_audit_catches_drift() {
        let registry = parse_label_registry(
            "# comment\nA_LABEL 0x10\nB_LABEL 0x2_0 # inline\nSTALE_LABEL 0x30\n",
        );
        assert_eq!(registry.len(), 3);
        let decl = |name: &str, value: u64| LabelDecl {
            path: "crates/x/src/lib.rs".to_string(),
            line: 1,
            name: name.to_string(),
            value,
        };
        // Clean: both registered labels declared at their recorded values.
        let clean = [decl("A_LABEL", 0x10), decl("B_LABEL", 0x20)];
        let errors = check_labels(&clean, &registry);
        assert_eq!(errors.len(), 1, "{errors:?}");
        assert!(errors[0].contains("STALE_LABEL"));
        // Unregistered declaration, value mismatch, and a collision.
        let dirty = [
            decl("A_LABEL", 0x10),
            decl("B_LABEL", 0x99),
            decl("ROGUE_LABEL", 0x10),
            decl("STALE_LABEL", 0x30),
        ];
        let errors = check_labels(&dirty, &registry);
        assert!(errors
            .iter()
            .any(|e| e.contains("ROGUE_LABEL") && e.contains("not registered")));
        assert!(errors
            .iter()
            .any(|e| e.contains("B_LABEL") && e.contains("registry records")));
        assert!(errors.iter().any(|e| e.contains("collision")));
    }

    #[test]
    fn workspace_labels_match_committed_registry() {
        // The real tree against the real registry — the same audit the
        // CI binary runs, pinned as a unit test so a new stream label
        // cannot land without its registration.
        let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(std::path::Path::parent)
            .expect("workspace root")
            .to_path_buf();
        let registry_text = std::fs::read_to_string(root.join("crates/analyze/stream_labels.txt"))
            .expect("read stream_labels.txt");
        let registry = parse_label_registry(&registry_text);
        let decls = scan_labels_tree(&root).expect("scan workspace labels");
        assert!(!decls.is_empty(), "label scan found nothing");
        let errors = check_labels(&decls, &registry);
        assert!(errors.is_empty(), "{errors:#?}");
    }
}
