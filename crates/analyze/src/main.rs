//! `hpm-analyze` — the determinism-contract source lint, as a binary.
//!
//! ```text
//! hpm-analyze --src [--root DIR] [--allowlist FILE]
//! ```
//!
//! Walks `crates/*/src` (plus the facade `src/`) under the workspace
//! root, reports every determinism-contract violation not covered by
//! the committed allowlist, and exits nonzero on any finding — the CI
//! `analyze` job's first half. (The second half, the plan analyzer over
//! the experiment registry, runs as `repro analyze`; it lives in the
//! bench crate because only the registry knows every pattern and its
//! registered process count.)
//!
//! The same pass audits the keyed-stream label registry: every
//! `const *_LABEL: u64` declaration must appear in
//! `crates/analyze/stream_labels.txt` at its declared value, with no
//! two labels sharing a value (`--labels FILE` overrides the registry
//! path).

use hpm_analyze::lint;
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut src_mode = false;
    let mut root = PathBuf::from(".");
    let mut allowlist: Option<PathBuf> = None;
    let mut labels: Option<PathBuf> = None;
    let mut it = args.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--src" => src_mode = true,
            "--root" => root = PathBuf::from(it.next().expect("--root needs a directory")),
            "--allowlist" => {
                allowlist = Some(PathBuf::from(it.next().expect("--allowlist needs a file")));
            }
            "--labels" => {
                labels = Some(PathBuf::from(it.next().expect("--labels needs a file")));
            }
            other => {
                eprintln!("unknown argument: {other}");
                usage();
                std::process::exit(2);
            }
        }
    }
    if !src_mode {
        usage();
        std::process::exit(2);
    }
    let allow_path = allowlist.unwrap_or_else(|| root.join("crates/analyze/allowlist.txt"));
    let allow_text = std::fs::read_to_string(&allow_path).unwrap_or_else(|e| {
        eprintln!("cannot read allowlist {}: {e}", allow_path.display());
        std::process::exit(2);
    });
    let allow = lint::parse_allowlist(&allow_text);
    let findings = lint::scan_tree(&root, &allow).unwrap_or_else(|e| {
        eprintln!("scan failed under {}: {e}", root.display());
        std::process::exit(2);
    });
    for f in &findings {
        println!("{f}");
    }
    let labels_path = labels.unwrap_or_else(|| root.join("crates/analyze/stream_labels.txt"));
    let registry_text = std::fs::read_to_string(&labels_path).unwrap_or_else(|e| {
        eprintln!("cannot read label registry {}: {e}", labels_path.display());
        std::process::exit(2);
    });
    let registry = lint::parse_label_registry(&registry_text);
    let decls = lint::scan_labels_tree(&root).unwrap_or_else(|e| {
        eprintln!("label scan failed under {}: {e}", root.display());
        std::process::exit(2);
    });
    let label_errors = lint::check_labels(&decls, &registry);
    for e in &label_errors {
        println!("{e}");
    }
    if findings.is_empty() && label_errors.is_empty() {
        println!(
            "source lint clean ({} allowlist entries, {} stream labels audited)",
            allow.len(),
            decls.len()
        );
    } else {
        eprintln!(
            "{} determinism-contract violations, {} stream-label errors",
            findings.len(),
            label_errors.len()
        );
        std::process::exit(1);
    }
}

fn usage() {
    eprintln!("usage: hpm-analyze --src [--root DIR] [--allowlist FILE] [--labels FILE]");
}
