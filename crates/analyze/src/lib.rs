//! Static analysis of compiled communication plans — verdicts without
//! execution.
//!
//! The workspace's hardest-won properties (bit-identical replay at any
//! lane count, exact jitter-draw accounting, allocation-free staged
//! execution) are enforced dynamically by goldens and audit tests: they
//! fire *after* a malformed plan has been executed. This crate is the
//! static counterpart. [`analyze`] walks a [`CompiledPattern`]'s CSR
//! stages and derived tables and reports every violation of the
//! compiled-form contract as a structured [`Diagnostic`], and
//! [`analyze_with_goal`] additionally decides knowledge-goal
//! attainability through the §5.5 recurrence — all without running a
//! single simulated repetition. That is the verdict ROADMAP item 4
//! (pattern synthesis) needs: machine-generated candidate plans are
//! rejected by rule name, not by a crashed simulation.
//!
//! The rule catalogue (see DESIGN.md, "The static analysis layer"):
//!
//! | rule | severity | checks |
//! |------|----------|--------|
//! | `csr-offsets` | error | offset arrays: length `p + 1`, start 0, monotone, end at index-array length |
//! | `csr-order` | error | adjacency spans strictly ascending (sorted, deduplicated) |
//! | `csr-mirror` | error | `j ∈ dsts(i) ⇔ i ∈ srcs(j)`; Σ out-degree ≡ Σ in-degree ≡ edge count |
//! | `rank-range` | error | every endpoint in `0..p` |
//! | `self-send` | error | no `i → i` edges |
//! | `empty-stage` | error | every stage carries at least one signal |
//! | `dead-rank` | warning | a rank neither sends nor receives in any stage |
//! | `jitter-draws` | error | the precomputed draw count ≡ Σ per-stage `p·ENTRY + edges·SIGNAL` |
//! | `last-send-table` | error | the §5.6.5 last-transmission table matches a recomputation |
//! | `posted-table` | error | the §5.6.5 posted booleans match their definition |
//! | `goal-unattainable` | error | the knowledge recurrence reaches the declared [`KnowledgeGoal`] |
//! | `k-crash-coverage` | warning | the goal, restricted to survivors, outlives a pruned crash set ([`Analyzer::k_crash_coverage`]) |
//! | `unrecoverable-crash-set` | error | the survivor re-plan synthesizer can repair the crash set ([`Analyzer::unrecoverable_crash_set`]) |
//!
//! The jitter-draw rule is statically decidable because drawing is part
//! of the compiled-form contract, not of runtime control flow: the
//! batched engine consumes exactly [`ENTRY_JITTER_DRAWS`] per process
//! per stage plus [`SIGNAL_JITTER_DRAWS`] per signal slot, in plan
//! order, unconditionally. The count is a function of the CSR shape
//! alone, so the audit that used to live only in simnet's executor
//! tests (`consumed() == jitter_draws()`) has a static twin here.
//!
//! The companion [`lint`] module is pass two: a source scanner (exposed
//! as the `hpm-analyze --src` binary) that rejects
//! determinism-contract violations in the simulation crates' code
//! itself.

pub mod lint;

use hpm_core::knowledge::{KnowledgeGoal, KnowledgeView, VerifyScratch};
use hpm_core::plan::{CompiledPattern, ENTRY_JITTER_DRAWS, SIGNAL_JITTER_DRAWS};
use std::fmt;

/// How bad a finding is. `Error` findings make a plan unusable (an
/// executor would miscount draws, misroute signals or hang); `Warning`
/// findings are legal but suspicious shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    Warning,
    Error,
}

impl Severity {
    /// Lower-case display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// The analyzer's rule catalogue. Every diagnostic names the rule that
/// produced it, so callers (and the adversarial tests) can match on the
/// violation kind rather than parse messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// CSR offset arrays malformed: wrong length, non-monotone, or
    /// inconsistent with the index-array length.
    CsrOffsets,
    /// An adjacency span is not strictly ascending (unsorted or
    /// duplicated entries).
    CsrOrder,
    /// The two CSR directions disagree: an edge present in `dsts` is
    /// missing from `srcs` or vice versa.
    CsrMirror,
    /// An edge endpoint lies outside `0..p`.
    RankRange,
    /// A rank signals itself.
    SelfSend,
    /// A stage carries no signals.
    EmptyStage,
    /// A rank neither sends nor receives in any stage.
    DeadRank,
    /// The precomputed jitter-draw count disagrees with the CSR shape.
    JitterDraws,
    /// The precomputed last-transmission table disagrees with the
    /// out-degrees it is derived from.
    LastSendTable,
    /// The §5.6.5 posted table disagrees with its definition.
    PostedTable,
    /// The knowledge recurrence never establishes the declared goal.
    GoalUnattainable,
    /// After pruning a crashed rank set, the surviving ranks no longer
    /// attain the declared goal among themselves.
    KCrashCoverage,
    /// No survivor re-plan can attain the goal after the crash set: the
    /// repair synthesizer ([`hpm_core::recovery::repair_plan`]) returned
    /// nothing, so the runtime recovery layer cannot help either.
    UnrecoverableCrashSet,
}

impl Rule {
    /// Stable kebab-case rule name, as printed by `repro analyze`.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Rule::CsrOffsets => "csr-offsets",
            Rule::CsrOrder => "csr-order",
            Rule::CsrMirror => "csr-mirror",
            Rule::RankRange => "rank-range",
            Rule::SelfSend => "self-send",
            Rule::EmptyStage => "empty-stage",
            Rule::DeadRank => "dead-rank",
            Rule::JitterDraws => "jitter-draws",
            Rule::LastSendTable => "last-send-table",
            Rule::PostedTable => "posted-table",
            Rule::GoalUnattainable => "goal-unattainable",
            Rule::KCrashCoverage => "k-crash-coverage",
            Rule::UnrecoverableCrashSet => "unrecoverable-crash-set",
        }
    }
}

/// One analyzer finding: which rule fired, where, and why.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    pub severity: Severity,
    /// Stage the finding is anchored to, when it is stage-local.
    pub stage: Option<usize>,
    /// Ranks involved, capped at [`MAX_LISTED`] (the message carries the
    /// total when the list is truncated).
    pub ranks: Vec<usize>,
    pub rule: Rule,
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.severity.name(), self.rule.name())?;
        if let Some(s) = self.stage {
            write!(f, " stage {s}")?;
        }
        write!(f, ": {}", self.message)
    }
}

/// Rank/pair lists inside a single diagnostic are capped at this many
/// entries; the message records the uncapped total.
pub const MAX_LISTED: usize = 8;

/// The analyzer, holding the reusable knowledge-verification scratch.
/// Analyzing many plans through one `Analyzer` touches the heap only
/// when the process count grows — the same scratch-pooling contract as
/// [`VerifyScratch`] itself.
pub struct Analyzer {
    scratch: VerifyScratch,
}

impl Default for Analyzer {
    fn default() -> Self {
        Analyzer::new()
    }
}

impl Analyzer {
    #[must_use]
    pub fn new() -> Analyzer {
        Analyzer {
            scratch: VerifyScratch::new(),
        }
    }

    /// Runs every structural rule over `plan` — everything except
    /// knowledge-goal attainability, which needs a declared goal (see
    /// [`Analyzer::analyze_with_goal`]). Returns an empty vector for a
    /// well-formed plan.
    #[must_use]
    pub fn analyze(&mut self, plan: &CompiledPattern) -> Vec<Diagnostic> {
        structural(plan)
    }

    /// Structural rules plus knowledge-goal attainability. The §5.5
    /// recurrence only runs when the structural pass found no errors —
    /// a malformed CSR is not worth tracing knowledge through, and may
    /// not even be safe to index.
    #[must_use]
    pub fn analyze_with_goal(
        &mut self,
        plan: &CompiledPattern,
        goal: KnowledgeGoal,
    ) -> Vec<Diagnostic> {
        let mut diags = structural(plan);
        if diags.iter().any(|d| d.severity == Severity::Error) {
            return diags;
        }
        let view = self.scratch.verify(plan);
        if !view.satisfies(goal) {
            diags.push(goal_diagnostic(&view, plan.p(), goal));
        }
        diags
    }

    /// Static k-crash coverage: prunes every signal a crashed rank sends
    /// or receives, replays the §5.5 knowledge recurrence over the
    /// surviving edges, and decides whether `goal` *restricted to the
    /// survivors* is still attained. A rooted goal whose root crashed is
    /// lost by definition.
    ///
    /// The structural rules deliberately do not run on the pruned plan:
    /// pruning legitimately produces empty stages and dead ranks, which
    /// are contract violations for an executable plan but the expected
    /// shape of a post-crash one. Only the recurrence is consulted.
    #[must_use]
    pub fn k_crash_coverage(
        &mut self,
        plan: &CompiledPattern,
        goal: KnowledgeGoal,
        crashed: &[usize],
    ) -> CrashVerdict {
        let p = plan.p();
        let mut dead = vec![false; p];
        for &r in crashed {
            assert!(r < p, "crashed rank {r} out of range for p = {p}");
            dead[r] = true;
        }
        let mut stage_edges: Vec<Vec<(usize, usize)>> = Vec::with_capacity(plan.stages());
        for s in 0..plan.stages() {
            let stage = plan.stage(s);
            let mut edges = Vec::new();
            for i in 0..p {
                if dead[i] {
                    continue;
                }
                for &j in stage.dsts(i) {
                    if !dead[j] {
                        edges.push((i, j));
                    }
                }
            }
            stage_edges.push(edges);
        }
        let pruned = CompiledPattern::from_stage_edges(plan.name(), p, &stage_edges);
        let view = self.scratch.verify(&pruned);
        let root_crashed = match goal {
            KnowledgeGoal::RootGathers(r) | KnowledgeGoal::RootReaches(r) => dead[r],
            KnowledgeGoal::AllToAll | KnowledgeGoal::Prefix => false,
        };
        let alive = |r: usize| !dead[r];
        let uninformed_pairs = if root_crashed {
            0
        } else {
            match goal {
                KnowledgeGoal::AllToAll => (0..p)
                    .filter(|&i| alive(i))
                    .flat_map(|i| (0..p).filter(|&j| alive(j)).map(move |j| (i, j)))
                    .filter(|&(i, j)| view.count(i, j) == 0)
                    .count(),
                KnowledgeGoal::RootGathers(r) => (0..p)
                    .filter(|&j| alive(j) && view.count(r, j) == 0)
                    .count(),
                KnowledgeGoal::RootReaches(r) => (0..p)
                    .filter(|&i| alive(i) && view.count(i, r) == 0)
                    .count(),
                KnowledgeGoal::Prefix => (0..p)
                    .filter(|&i| alive(i))
                    .flat_map(|i| (0..=i).filter(|&j| alive(j)).map(move |j| (i, j)))
                    .filter(|&(i, j)| view.count(i, j) == 0)
                    .count(),
            }
        };
        CrashVerdict {
            crashed: {
                let mut c: Vec<usize> = crashed.to_vec();
                c.sort_unstable();
                c.dedup();
                c
            },
            goal,
            root_crashed,
            uninformed_pairs,
        }
    }

    /// Runs the survivor re-plan synthesizer
    /// ([`hpm_core::recovery::repair_plan`]) against a crash set and
    /// reports the sets *no* re-plan can fix. This is the actionable
    /// promotion of [`Analyzer::k_crash_coverage`]: a warning there says
    /// the deployed plan loses the goal, while a diagnostic here says the
    /// runtime recovery layer cannot help either — today that means the
    /// root of a rooted goal crashed, or no rank survived at all.
    #[must_use]
    pub fn unrecoverable_crash_set(
        &mut self,
        plan: &CompiledPattern,
        goal: KnowledgeGoal,
        crashed: &[usize],
    ) -> Option<Diagnostic> {
        if hpm_core::recovery::repair_plan(plan.p(), goal, crashed).is_some() {
            return None;
        }
        let mut sorted: Vec<usize> = crashed.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let listed: Vec<usize> = sorted.iter().copied().take(MAX_LISTED).collect();
        let why = if sorted.len() >= plan.p() {
            "no rank survives"
        } else {
            "the goal cannot be restated over the survivors"
        };
        let message = format!(
            "{goal:?} unrecoverable after crashing {}: {why}",
            capped("ranks", sorted.len(), &listed)
        );
        Some(Diagnostic {
            severity: Severity::Error,
            stage: None,
            ranks: listed,
            rule: Rule::UnrecoverableCrashSet,
            message,
        })
    }
}

/// Verdict of one static crash scenario (see
/// [`Analyzer::k_crash_coverage`]): the pruned rank set and whether the
/// goal, restricted to the survivors, is still attained.
#[derive(Debug, Clone)]
pub struct CrashVerdict {
    /// The pruned ranks, sorted and deduplicated.
    pub crashed: Vec<usize>,
    /// The goal the verdict is about.
    pub goal: KnowledgeGoal,
    /// True when the goal is rooted and its root was pruned — lost by
    /// definition, without consulting the recurrence.
    pub root_crashed: bool,
    /// Survivor pairs the recurrence left uninformed (0 when the goal
    /// survives or the root crashed).
    pub uninformed_pairs: usize,
}

impl CrashVerdict {
    /// True when the surviving ranks still attain the goal.
    #[must_use]
    pub fn survives(&self) -> bool {
        !self.root_crashed && self.uninformed_pairs == 0
    }

    /// Renders a lost goal as a [`Rule::KCrashCoverage`] warning;
    /// `None` when the goal survives. Warning severity: crash
    /// vulnerability is a property being measured, not a malformed plan.
    #[must_use]
    pub fn diagnostic(&self) -> Option<Diagnostic> {
        if self.survives() {
            return None;
        }
        let listed: Vec<usize> = self.crashed.iter().copied().take(MAX_LISTED).collect();
        let why = if self.root_crashed {
            "the goal's root is among the crashed".to_string()
        } else {
            format!("{} survivor pairs stay uninformed", self.uninformed_pairs)
        };
        Some(Diagnostic {
            severity: Severity::Warning,
            stage: None,
            ranks: listed.clone(),
            rule: Rule::KCrashCoverage,
            message: format!(
                "{:?} lost after crashing {}: {why}",
                self.goal,
                capped("ranks", self.crashed.len(), &listed)
            ),
        })
    }
}

/// One-shot structural analysis — convenience over [`Analyzer::analyze`]
/// for callers that do not amortize the scratch.
#[must_use]
pub fn analyze(plan: &CompiledPattern) -> Vec<Diagnostic> {
    Analyzer::new().analyze(plan)
}

/// One-shot structural + goal analysis.
#[must_use]
pub fn analyze_with_goal(plan: &CompiledPattern, goal: KnowledgeGoal) -> Vec<Diagnostic> {
    Analyzer::new().analyze_with_goal(plan, goal)
}

/// Describes how an offset array violates the CSR shape, or `None` when
/// it is well-formed: length `p + 1`, starts at 0, monotone
/// non-decreasing, ends at the index-array length.
fn offsets_error(off: &[usize], p: usize, indices_len: usize) -> Option<String> {
    if off.len() != p + 1 {
        return Some(format!(
            "offset array has {} entries, want p + 1 = {}",
            off.len(),
            p + 1
        ));
    }
    if off[0] != 0 {
        return Some(format!("offset array starts at {}, want 0", off[0]));
    }
    if let Some(i) = (0..p).find(|&i| off[i] > off[i + 1]) {
        return Some(format!(
            "offsets decrease at rank {i}: {} > {}",
            off[i],
            off[i + 1]
        ));
    }
    if off[p] != indices_len {
        return Some(format!(
            "offsets end at {}, but the index array holds {} entries",
            off[p], indices_len
        ));
    }
    None
}

/// Renders a capped rank list plus total, e.g. `3 ranks: [0, 2, 5]`.
fn capped(label: &str, all: usize, listed: &[usize]) -> String {
    let ell = if all > listed.len() { ", …" } else { "" };
    let shown: Vec<String> = listed.iter().map(|r| r.to_string()).collect();
    format!("{all} {label}: [{}{ell}]", shown.join(", "))
}

/// The structural pass shared by [`Analyzer::analyze`] and
/// [`Analyzer::analyze_with_goal`].
fn structural(plan: &CompiledPattern) -> Vec<Diagnostic> {
    let p = plan.p();
    let mut diags = Vec::new();
    // Stages whose CSR arrays can be indexed safely; the derived-table
    // rules only run when every stage is trusted.
    let mut all_trusted = true;

    for s in 0..plan.stages() {
        let stage = plan.stage(s);
        let mut trusted = true;

        if stage.p() != p {
            diags.push(Diagnostic {
                severity: Severity::Error,
                stage: Some(s),
                ranks: vec![],
                rule: Rule::CsrOffsets,
                message: format!("stage declares p = {}, plan declares p = {}", stage.p(), p),
            });
            all_trusted = false;
            continue;
        }
        for (dir, off, len) in [
            ("dst", stage.dst_offsets(), stage.dst_indices().len()),
            ("src", stage.src_offsets(), stage.src_indices().len()),
        ] {
            if let Some(err) = offsets_error(off, p, len) {
                diags.push(Diagnostic {
                    severity: Severity::Error,
                    stage: Some(s),
                    ranks: vec![],
                    rule: Rule::CsrOffsets,
                    message: format!("{dir} {err}"),
                });
                trusted = false;
            }
        }
        if !trusted {
            all_trusted = false;
            continue;
        }

        // Per-span rules: order, range, self-sends. An out-of-range
        // endpoint poisons the mirror check (it has no span to mirror
        // into), so track it.
        let mut in_range = true;
        for (dir, spans) in [("dsts", false), ("srcs", true)] {
            for r in 0..p {
                let span = if spans { stage.srcs(r) } else { stage.dsts(r) };
                if span.windows(2).any(|w| w[0] >= w[1]) {
                    diags.push(Diagnostic {
                        severity: Severity::Error,
                        stage: Some(s),
                        ranks: vec![r],
                        rule: Rule::CsrOrder,
                        message: format!("{dir}({r}) is not strictly ascending: {span:?}"),
                    });
                }
                let bad: Vec<usize> = span.iter().copied().filter(|&x| x >= p).collect();
                if !bad.is_empty() {
                    in_range = false;
                    let listed: Vec<usize> = bad.iter().copied().take(MAX_LISTED).collect();
                    diags.push(Diagnostic {
                        severity: Severity::Error,
                        stage: Some(s),
                        ranks: vec![r],
                        rule: Rule::RankRange,
                        message: format!(
                            "{dir}({r}) holds {} for p = {p}",
                            capped("out-of-range ranks", bad.len(), &listed)
                        ),
                    });
                }
                if !spans && span.contains(&r) {
                    diags.push(Diagnostic {
                        severity: Severity::Error,
                        stage: Some(s),
                        ranks: vec![r],
                        rule: Rule::SelfSend,
                        message: format!("rank {r} signals itself"),
                    });
                }
            }
        }

        // Mirror consistency: the two directions must enumerate the same
        // edge set. Only meaningful when every endpoint has a span.
        if in_range {
            let mut missing: Vec<(usize, usize)> = Vec::new();
            for i in 0..p {
                for &j in stage.dsts(i) {
                    if !stage.srcs(j).contains(&i) {
                        missing.push((i, j));
                    }
                }
            }
            for j in 0..p {
                for &i in stage.srcs(j) {
                    if !stage.dsts(i).contains(&j) {
                        missing.push((i, j));
                    }
                }
            }
            if stage.dst_indices().len() != stage.src_indices().len() {
                diags.push(Diagnostic {
                    severity: Severity::Error,
                    stage: Some(s),
                    ranks: vec![],
                    rule: Rule::CsrMirror,
                    message: format!(
                        "Σ out-degree = {} but Σ in-degree = {}",
                        stage.dst_indices().len(),
                        stage.src_indices().len()
                    ),
                });
            }
            if !missing.is_empty() {
                let listed: Vec<usize> = missing
                    .iter()
                    .take(MAX_LISTED / 2)
                    .flat_map(|&(i, j)| [i, j])
                    .collect();
                let shown: Vec<String> = missing
                    .iter()
                    .take(MAX_LISTED / 2)
                    .map(|&(i, j)| format!("{i}→{j}"))
                    .collect();
                let ell = if missing.len() > MAX_LISTED / 2 {
                    ", …"
                } else {
                    ""
                };
                diags.push(Diagnostic {
                    severity: Severity::Error,
                    stage: Some(s),
                    ranks: listed,
                    rule: Rule::CsrMirror,
                    message: format!(
                        "{} edges present in one direction only: [{}{ell}]",
                        missing.len(),
                        shown.join(", ")
                    ),
                });
            }
        }

        if stage.edge_count() == 0 {
            diags.push(Diagnostic {
                severity: Severity::Error,
                stage: Some(s),
                ranks: vec![],
                rule: Rule::EmptyStage,
                message: "stage carries no signals".to_string(),
            });
        }
    }

    if !all_trusted {
        return diags;
    }

    // Dead ranks: legal (a zero-stage pattern at p = 1 is how collectives
    // degenerate) but suspicious in any staged pattern — a rank the
    // knowledge recurrence can never inform.
    if plan.stages() > 0 {
        let dead: Vec<usize> = (0..p)
            .filter(|&r| {
                (0..plan.stages())
                    .all(|s| plan.stage(s).out_degree(r) == 0 && plan.stage(s).in_degree(r) == 0)
            })
            .collect();
        if !dead.is_empty() {
            let listed: Vec<usize> = dead.iter().copied().take(MAX_LISTED).collect();
            diags.push(Diagnostic {
                severity: Severity::Warning,
                stage: None,
                ranks: listed.clone(),
                rule: Rule::DeadRank,
                message: capped("ranks never send or receive", dead.len(), &listed),
            });
        }
    }

    // Jitter-draw accounting: the precomputed count the batched engine
    // sizes its tables from must equal the sum the staged executor will
    // actually consume — a pure function of the CSR shape.
    let want: usize = (0..plan.stages())
        .map(|s| p * ENTRY_JITTER_DRAWS + plan.stage(s).edge_count() * SIGNAL_JITTER_DRAWS)
        .sum();
    if plan.jitter_draws() != want {
        diags.push(Diagnostic {
            severity: Severity::Error,
            stage: None,
            ranks: vec![],
            rule: Rule::JitterDraws,
            message: format!(
                "plan reports {} jitter draws but the stages consume {want} \
                 ({ENTRY_JITTER_DRAWS}/process/stage + {SIGNAL_JITTER_DRAWS}/signal)",
                plan.jitter_draws()
            ),
        });
    }

    // §5.6.5 derived tables: recompute both from the out-degrees and
    // compare. `last_send` first — `posted` is defined in terms of it.
    let n_stages = plan.stages();
    let mut last_send = vec![usize::MAX; (n_stages + 1) * p];
    for s in 0..n_stages {
        for i in 0..p {
            let prev = last_send[s * p + i];
            last_send[(s + 1) * p + i] = if plan.stage(s).out_degree(i) > 0 {
                s
            } else {
                prev
            };
        }
    }
    if plan.last_send_table() != last_send.as_slice() {
        let bad: Vec<(usize, usize)> = table_mismatches(plan.last_send_table(), &last_send, p);
        diags.push(Diagnostic {
            severity: Severity::Error,
            stage: bad.first().map(|&(s, _)| s),
            ranks: bad.iter().map(|&(_, i)| i).take(MAX_LISTED).collect(),
            rule: Rule::LastSendTable,
            message: table_message("last-send", plan.last_send_table().len(), &last_send, &bad),
        });
    }
    let mut posted = vec![false; n_stages * p];
    for s in 0..n_stages {
        for i in 0..p {
            let prev = last_send[s * p + i];
            posted[s * p + i] = s > 0 && (prev == usize::MAX || prev + 1 < s);
        }
    }
    if plan.posted_table() != posted.as_slice() {
        let bad: Vec<(usize, usize)> = plan
            .posted_table()
            .iter()
            .zip(posted.iter())
            .enumerate()
            .filter(|(_, (a, b))| a != b)
            .map(|(k, _)| (k / p, k % p))
            .collect();
        diags.push(Diagnostic {
            severity: Severity::Error,
            stage: bad.first().map(|&(s, _)| s),
            ranks: bad.iter().map(|&(_, i)| i).take(MAX_LISTED).collect(),
            rule: Rule::PostedTable,
            message: table_message("posted", plan.posted_table().len(), &posted, &bad),
        });
    }

    diags
}

/// `(row, rank)` positions where two same-shape tables differ; when the
/// shapes differ the answer is the whole table, represented empty.
fn table_mismatches(got: &[usize], want: &[usize], p: usize) -> Vec<(usize, usize)> {
    if got.len() != want.len() {
        return vec![];
    }
    got.iter()
        .zip(want.iter())
        .enumerate()
        .filter(|(_, (a, b))| a != b)
        .map(|(k, _)| (k / p, k % p))
        .collect()
}

/// Message for a derived-table mismatch: wrong shape, or the first few
/// wrong cells.
fn table_message<T>(label: &str, got_len: usize, want: &[T], bad: &[(usize, usize)]) -> String {
    if got_len != want.len() {
        return format!(
            "{label} table holds {got_len} entries, want {} (stages × p shape)",
            want.len()
        );
    }
    let shown: Vec<String> = bad
        .iter()
        .take(MAX_LISTED)
        .map(|&(s, i)| format!("(stage {s}, rank {i})"))
        .collect();
    let ell = if bad.len() > MAX_LISTED { ", …" } else { "" };
    format!(
        "{label} table disagrees with its definition at {} cells: [{}{ell}]",
        bad.len(),
        shown.join(", ")
    )
}

/// Builds the `goal-unattainable` diagnostic: which pairs the recurrence
/// never informed, phrased per goal.
fn goal_diagnostic(view: &KnowledgeView<'_>, p: usize, goal: KnowledgeGoal) -> Diagnostic {
    let (label, failing): (&str, Vec<(usize, usize)>) = match goal {
        KnowledgeGoal::AllToAll => (
            "pairs (i, j) where i never learns of j",
            (0..p)
                .flat_map(|i| (0..p).map(move |j| (i, j)))
                .filter(|&(i, j)| view.count(i, j) == 0)
                .collect(),
        ),
        KnowledgeGoal::RootGathers(r) => (
            "ranks the root never hears from",
            (0..p)
                .filter(|&j| view.count(r, j) == 0)
                .map(|j| (r, j))
                .collect(),
        ),
        KnowledgeGoal::RootReaches(r) => (
            "ranks the root never reaches",
            (0..p)
                .filter(|&i| view.count(i, r) == 0)
                .map(|i| (i, r))
                .collect(),
        ),
        KnowledgeGoal::Prefix => (
            "prefix pairs (i, j ≤ i) where i never learns of j",
            (0..p)
                .flat_map(|i| (0..=i).map(move |j| (i, j)))
                .filter(|&(i, j)| view.count(i, j) == 0)
                .collect(),
        ),
    };
    let shown: Vec<String> = failing
        .iter()
        .take(MAX_LISTED)
        .map(|&(i, j)| format!("({i}, {j})"))
        .collect();
    let ell = if failing.len() > MAX_LISTED {
        ", …"
    } else {
        ""
    };
    Diagnostic {
        severity: Severity::Error,
        stage: None,
        ranks: failing
            .iter()
            .take(MAX_LISTED / 2)
            .flat_map(|&(i, j)| [i, j])
            .collect(),
        rule: Rule::GoalUnattainable,
        message: format!(
            "{goal:?} not established: {} {label}: [{}{ell}]",
            failing.len(),
            shown.join(", ")
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpm_core::plan::StagePlan;

    /// A well-formed 2-stage plan on 4 ranks: a gather to 0, then a
    /// broadcast from 0.
    fn clean_plan() -> CompiledPattern {
        CompiledPattern::from_stage_edges(
            "gather-bcast",
            4,
            &[vec![(1, 0), (2, 0), (3, 0)], vec![(0, 1), (0, 2), (0, 3)]],
        )
    }

    /// Clones `plan`'s stages through the raw route so tests can plant a
    /// single wrong derived-table entry.
    fn raw_clone_with<F>(plan: &CompiledPattern, mutate: F) -> CompiledPattern
    where
        F: FnOnce(&mut Vec<bool>, &mut Vec<usize>, &mut usize),
    {
        let stages: Vec<StagePlan> = (0..plan.stages()).map(|s| plan.stage(s).clone()).collect();
        let mut posted = plan.posted_table().to_vec();
        let mut last_send = plan.last_send_table().to_vec();
        let mut draws = plan.jitter_draws();
        mutate(&mut posted, &mut last_send, &mut draws);
        CompiledPattern::from_raw_tables(plan.name(), plan.p(), stages, posted, last_send, draws)
    }

    fn rules(diags: &[Diagnostic]) -> Vec<Rule> {
        diags.iter().map(|d| d.rule).collect()
    }

    #[test]
    fn clean_plan_analyzes_clean() {
        assert!(analyze(&clean_plan()).is_empty());
        assert!(analyze_with_goal(&clean_plan(), KnowledgeGoal::AllToAll).is_empty());
    }

    #[test]
    fn zero_stage_plan_analyzes_clean() {
        // p = 1 collectives degenerate to zero stages — legal, and the
        // dead-rank rule must not fire on them.
        let plan = CompiledPattern::from_stage_edges("noop", 1, &[]);
        assert!(analyze(&plan).is_empty());
    }

    #[test]
    fn csr_offsets_rule_fires() {
        // dst offsets end at 2 but only one index is stored.
        let stage = StagePlan::from_raw_csr(2, vec![1], vec![0, 2, 2], vec![0], vec![0, 0, 1]);
        let plan = CompiledPattern::from_stages("bad-off", 2, vec![stage]);
        let diags = analyze(&plan);
        assert_eq!(rules(&diags), vec![Rule::CsrOffsets], "{diags:?}");
        assert_eq!(diags[0].stage, Some(0));
        assert_eq!(diags[0].severity, Severity::Error);
    }

    #[test]
    fn csr_order_rule_fires() {
        // Rank 0's destinations are [2, 1]: present in both directions
        // (mirror-consistent) but unsorted.
        let stage = StagePlan::from_raw_csr(
            3,
            vec![2, 1],
            vec![0, 2, 2, 2],
            vec![0, 0],
            vec![0, 0, 1, 2],
        );
        let plan = CompiledPattern::from_stages("unsorted", 3, vec![stage]);
        let diags = analyze(&plan);
        assert!(
            diags
                .iter()
                .any(|d| d.rule == Rule::CsrOrder && d.ranks == vec![0]),
            "{diags:?}"
        );
    }

    #[test]
    fn csr_mirror_rule_fires() {
        // dsts says 0 → 1, srcs says 2 signals 1: each direction is
        // internally well-formed but they describe different edges.
        let stage =
            StagePlan::from_raw_csr(3, vec![1], vec![0, 1, 1, 1], vec![2], vec![0, 0, 1, 1]);
        let plan = CompiledPattern::from_stages("split-brain", 3, vec![stage]);
        let diags = analyze(&plan);
        assert!(
            diags
                .iter()
                .any(|d| d.rule == Rule::CsrMirror && d.ranks == vec![0, 1, 2, 1]),
            "{diags:?}"
        );
    }

    #[test]
    fn rank_range_rule_fires() {
        // 0 signals rank 7 in a p = 2 stage.
        let stage = StagePlan::from_raw_csr(2, vec![7], vec![0, 1, 1], vec![0], vec![0, 0, 1]);
        let plan = CompiledPattern::from_stages("oob", 2, vec![stage]);
        let diags = analyze(&plan);
        assert!(diags.iter().any(|d| d.rule == Rule::RankRange), "{diags:?}");
        // The mirror check must not run (and panic) on out-of-range input.
        assert!(diags.iter().all(|d| d.rule != Rule::CsrMirror));
    }

    #[test]
    fn self_send_rule_fires() {
        let stage =
            StagePlan::from_raw_csr(2, vec![0, 1], vec![0, 1, 2], vec![0, 1], vec![0, 1, 2]);
        let plan = CompiledPattern::from_stages("selfie", 2, vec![stage]);
        let diags = analyze(&plan);
        let selfs: Vec<&Diagnostic> = diags.iter().filter(|d| d.rule == Rule::SelfSend).collect();
        assert_eq!(selfs.len(), 2, "{diags:?}");
        assert_eq!(selfs[0].ranks, vec![0]);
        assert_eq!(selfs[1].ranks, vec![1]);
    }

    #[test]
    fn empty_stage_rule_fires() {
        let stage = StagePlan::from_edges(3, &[]);
        let plan = CompiledPattern::from_stages("hollow", 3, vec![stage]);
        let diags = analyze(&plan);
        assert!(
            diags
                .iter()
                .any(|d| d.rule == Rule::EmptyStage && d.stage == Some(0)),
            "{diags:?}"
        );
    }

    #[test]
    fn dead_rank_rule_warns() {
        // Rank 2 never participates in the 3-rank exchange 0 ↔ 1.
        let plan = CompiledPattern::from_stage_edges("pairwise", 3, &[vec![(0, 1), (1, 0)]]);
        let diags = analyze(&plan);
        assert_eq!(rules(&diags), vec![Rule::DeadRank], "{diags:?}");
        assert_eq!(diags[0].severity, Severity::Warning);
        assert_eq!(diags[0].ranks, vec![2]);
    }

    #[test]
    fn jitter_draws_rule_fires() {
        let plan = raw_clone_with(&clean_plan(), |_, _, draws| *draws += 1);
        let diags = analyze(&plan);
        assert_eq!(rules(&diags), vec![Rule::JitterDraws], "{diags:?}");
    }

    #[test]
    fn last_send_table_rule_fires() {
        // Claim rank 0 transmitted in stage 0 (it only receives there —
        // the gather flows into it, its own sends start in stage 1).
        let plan = raw_clone_with(&clean_plan(), |_, last_send, _| {
            last_send[4] = 0;
        });
        let diags = analyze(&plan);
        assert_eq!(rules(&diags), vec![Rule::LastSendTable], "{diags:?}");
        assert_eq!(diags[0].stage, Some(1));
        assert_eq!(diags[0].ranks, vec![0]);
    }

    #[test]
    fn posted_table_rule_fires() {
        // Claim rank 1 is posted at stage 1 — it sent in stage 0, so the
        // §5.6.5 definition says it is not.
        let plan = raw_clone_with(&clean_plan(), |posted, _, _| {
            posted[4 + 1] = true;
        });
        let diags = analyze(&plan);
        assert_eq!(rules(&diags), vec![Rule::PostedTable], "{diags:?}");
        assert_eq!(diags[0].stage, Some(1));
        assert_eq!(diags[0].ranks, vec![1]);
    }

    #[test]
    fn goal_unattainable_rule_fires() {
        // A pure gather satisfies RootGathers(0) but not AllToAll.
        let gather = CompiledPattern::from_stage_edges("gather", 3, &[vec![(1, 0), (2, 0)]]);
        assert!(analyze_with_goal(&gather, KnowledgeGoal::RootGathers(0)).is_empty());
        let diags = analyze_with_goal(&gather, KnowledgeGoal::AllToAll);
        assert_eq!(rules(&diags), vec![Rule::GoalUnattainable], "{diags:?}");
        assert!(
            diags[0].message.contains("AllToAll"),
            "{}",
            diags[0].message
        );

        // The broadcast-direction goals distinguish the two rooted cases.
        let diags = analyze_with_goal(&gather, KnowledgeGoal::RootReaches(0));
        assert_eq!(rules(&diags), vec![Rule::GoalUnattainable]);
    }

    #[test]
    fn goal_pass_skips_malformed_plans() {
        // Structural errors must short-circuit the knowledge recurrence.
        let stage = StagePlan::from_raw_csr(2, vec![7], vec![0, 1, 1], vec![0], vec![0, 0, 1]);
        let plan = CompiledPattern::from_stages("oob", 2, vec![stage]);
        let diags = analyze_with_goal(&plan, KnowledgeGoal::AllToAll);
        assert!(
            diags.iter().all(|d| d.rule != Rule::GoalUnattainable),
            "{diags:?}"
        );
        assert!(!diags.is_empty());
    }

    #[test]
    fn diagnostics_render_with_rule_and_stage() {
        let stage = StagePlan::from_edges(3, &[]);
        let plan = CompiledPattern::from_stages("hollow", 3, vec![stage]);
        let diags = analyze(&plan);
        let rendered = diags[0].to_string();
        assert!(
            rendered.starts_with("error[empty-stage] stage 0:"),
            "{rendered}"
        );
    }

    /// Dissemination edges: stage `k` sends `i → (i + 2^k) mod p`.
    fn dissemination_edges(p: usize) -> Vec<Vec<(usize, usize)>> {
        let mut stages = Vec::new();
        let mut d = 1;
        while d < p {
            stages.push((0..p).map(|i| (i, (i + d) % p)).collect());
            d *= 2;
        }
        stages
    }

    #[test]
    fn k_crash_coverage_flags_severed_relays() {
        let mut an = Analyzer::new();
        let dis = CompiledPattern::from_stage_edges("dissem", 8, &dissemination_edges(8));
        // Zero crashes: trivially survives (and matches analyze_with_goal).
        assert!(an
            .k_crash_coverage(&dis, KnowledgeGoal::AllToAll, &[])
            .survives());
        // Dissemination relays knowledge along unique chains: crashing
        // rank 1 leaves some survivor ignorant of some other survivor
        // (e.g. rank 3 only hears of rank 0 via rank 1 or 2-then-1).
        let v = an.k_crash_coverage(&dis, KnowledgeGoal::AllToAll, &[1]);
        assert!(!v.survives(), "{v:?}");
        assert!(v.uninformed_pairs > 0);
        let d = v.diagnostic().expect("lost goal renders a diagnostic");
        assert_eq!(d.rule, Rule::KCrashCoverage);
        assert_eq!(d.severity, Severity::Warning);
        assert!(d.message.contains("survivor pairs"), "{}", d.message);
        // A single-stage complete exchange shrugs off any single crash.
        let p = 5;
        let edges: Vec<(usize, usize)> = (0..p)
            .flat_map(|i| (0..p).filter(move |&j| j != i).map(move |j| (i, j)))
            .collect();
        let a2a = CompiledPattern::from_stage_edges("a2a", p, &[edges]);
        for r in 0..p {
            let v = an.k_crash_coverage(&a2a, KnowledgeGoal::AllToAll, &[r]);
            assert!(v.survives(), "crash {r}: {v:?}");
            assert!(v.diagnostic().is_none());
        }
    }

    #[test]
    fn crashed_root_loses_rooted_goals_by_definition() {
        let mut an = Analyzer::new();
        let gather =
            CompiledPattern::from_stage_edges("gather", 4, &[vec![(1, 0), (2, 0), (3, 0)]]);
        let v = an.k_crash_coverage(&gather, KnowledgeGoal::RootGathers(0), &[0]);
        assert!(v.root_crashed);
        assert!(!v.survives());
        assert!(
            v.diagnostic().expect("lost").message.contains("root"),
            "{v:?}"
        );
        // Crashing a leaf only removes that leaf from the goal's scope:
        // the root still gathers from every survivor.
        let v = an.k_crash_coverage(&gather, KnowledgeGoal::RootGathers(0), &[2]);
        assert!(v.survives(), "{v:?}");
    }

    #[test]
    fn unrecoverable_crash_set_promotes_only_hopeless_sets() {
        let mut an = Analyzer::new();
        let dis = CompiledPattern::from_stage_edges("dissem", 8, &dissemination_edges(8));
        // Crashing a relay loses the goal *under the deployed plan* (a
        // k-crash-coverage warning) but a survivor re-plan repairs it, so
        // the promotion stays silent.
        assert!(!an
            .k_crash_coverage(&dis, KnowledgeGoal::AllToAll, &[1])
            .survives());
        assert!(an
            .unrecoverable_crash_set(&dis, KnowledgeGoal::AllToAll, &[1])
            .is_none());
        // A crashed root is beyond repair: no survivor plan can gather to
        // a dead rank.
        let d = an
            .unrecoverable_crash_set(&dis, KnowledgeGoal::RootGathers(3), &[3])
            .expect("dead root is unrecoverable");
        assert_eq!(d.rule, Rule::UnrecoverableCrashSet);
        assert_eq!(d.rule.name(), "unrecoverable-crash-set");
        assert_eq!(d.severity, Severity::Error);
        assert_eq!(d.ranks, vec![3]);
        assert!(d.message.contains("RootReaches") || d.message.contains("RootGathers"));
        // ... unless the root survives.
        assert!(an
            .unrecoverable_crash_set(&dis, KnowledgeGoal::RootGathers(3), &[2, 5])
            .is_none());
        // Everything-crashed is unrecoverable for any goal.
        let all: Vec<usize> = (0..8).collect();
        let d = an
            .unrecoverable_crash_set(&dis, KnowledgeGoal::AllToAll, &all)
            .expect("no survivors");
        assert!(d.message.contains("no rank survives"), "{}", d.message);
        // Whenever the static verdict survives, the repair synthesizer must
        // also succeed: recoverability is at least as strong.
        for r in 0..8 {
            if an
                .k_crash_coverage(&dis, KnowledgeGoal::AllToAll, &[r])
                .survives()
            {
                assert!(an
                    .unrecoverable_crash_set(&dis, KnowledgeGoal::AllToAll, &[r])
                    .is_none());
            }
        }
    }

    #[test]
    fn analyzer_scratch_is_reusable() {
        let mut an = Analyzer::new();
        for p in [2usize, 4, 8] {
            let edges: Vec<(usize, usize)> = (0..p)
                .flat_map(|i| (0..p).filter(move |&j| j != i).map(move |j| (i, j)))
                .collect();
            let plan = CompiledPattern::from_stage_edges("a2a", p, &[edges]);
            assert!(an
                .analyze_with_goal(&plan, KnowledgeGoal::AllToAll)
                .is_empty());
        }
    }
}
