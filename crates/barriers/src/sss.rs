//! Subset-size determination by latency-scale clustering (§7.2).
//!
//! The hybrid barriers of Chapter 7 need the process set partitioned into
//! subsets whose internal communication is an order of magnitude cheaper
//! than communication between them. The thesis derives these subsets from
//! the benchmarked latency matrix alone — no topology information is given
//! to the algorithm; locality is *recovered* from the measurements
//! (Tables 7.1/7.2 report the resulting clusterings for 60 processes on
//! the 8×2×4 machine and 115 on the 10×2×6).
//!
//! The procedure: collect all off-diagonal pairwise latencies, find the
//! widest gap between consecutive values in log space (the scale
//! separation), and union-find all pairs cheaper than that gap's midpoint.

use hpm_core::matrix::DMat;

/// A latency-scale clustering of processes.
#[derive(Debug, Clone, PartialEq)]
pub struct Clustering {
    /// Groups of process ranks, each sorted ascending; groups ordered by
    /// their smallest member.
    pub groups: Vec<Vec<usize>>,
    /// The latency threshold separating intra- from inter-group pairs.
    pub threshold: f64,
}

impl Clustering {
    /// Number of groups.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// True when every process forms its own group.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Group sizes in group order — the "output of SSS clustering" columns
    /// of Tables 7.1/7.2.
    pub fn sizes(&self) -> Vec<usize> {
        self.groups.iter().map(|g| g.len()).collect()
    }

    /// The representative (smallest rank) of each group.
    pub fn representatives(&self) -> Vec<usize> {
        self.groups.iter().map(|g| g[0]).collect()
    }

    /// Group index of a rank.
    pub fn group_of(&self, rank: usize) -> usize {
        self.groups
            .iter()
            .position(|g| g.binary_search(&rank).is_ok())
            .expect("rank not in any group")
    }

    /// Renders the Tables 7.1/7.2 layout: one row per group with size and
    /// members.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        writeln!(
            out,
            "clusters: {}  threshold: {:.3e} s",
            self.len(),
            self.threshold
        )
        .expect("writing to a String cannot fail");
        for (k, g) in self.groups.iter().enumerate() {
            writeln!(
                out,
                "  subset {k:>2}  size {:>3}  rep {:>3}  members {:?}",
                g.len(),
                g[0],
                g
            )
            .expect("writing to a String cannot fail");
        }
        out
    }
}

/// Finds the widest multiplicative gap in the sorted latencies and returns
/// its geometric midpoint; `None` if all latencies sit on one scale (gap
/// below a factor of 3).
fn scale_threshold(mut lats: Vec<f64>) -> Option<f64> {
    lats.retain(|&l| l > 0.0);
    if lats.len() < 2 {
        return None;
    }
    lats.sort_by(|a, b| a.partial_cmp(b).expect("NaN latency"));
    lats.dedup();
    let mut best_ratio = 1.0;
    let mut best_mid = None;
    for w in lats.windows(2) {
        let ratio = w[1] / w[0];
        if ratio > best_ratio {
            best_ratio = ratio;
            best_mid = Some((w[0] * w[1]).sqrt());
        }
    }
    (best_ratio > 3.0).then(|| best_mid.expect("midpoint set with ratio"))
}

/// Clusters processes by the dominant latency-scale separation of a
/// benchmarked `P×P` latency matrix. With no separation (single-scale
/// platform), every process is its own group and `threshold` is 0.
pub fn sss_clusters(latency: &DMat) -> Clustering {
    assert_eq!(
        latency.rows(),
        latency.cols(),
        "latency matrix must be square"
    );
    let p = latency.rows();
    let mut lats = Vec::with_capacity(p * (p - 1));
    for i in 0..p {
        for j in 0..p {
            if i != j {
                lats.push(latency.get(i, j));
            }
        }
    }
    let threshold = match scale_threshold(lats) {
        Some(t) => t,
        None => {
            return Clustering {
                groups: (0..p).map(|i| vec![i]).collect(),
                threshold: 0.0,
            }
        }
    };
    // Union-find over cheap pairs (symmetric closure: either direction
    // below threshold joins the pair).
    let mut parent: Vec<usize> = (0..p).collect();
    fn find(parent: &mut Vec<usize>, x: usize) -> usize {
        if parent[x] != x {
            let root = find(parent, parent[x]);
            parent[x] = root;
        }
        parent[x]
    }
    for i in 0..p {
        for j in (i + 1)..p {
            if latency.get(i, j) < threshold || latency.get(j, i) < threshold {
                let (a, b) = (find(&mut parent, i), find(&mut parent, j));
                if a != b {
                    parent[a.max(b)] = a.min(b);
                }
            }
        }
    }
    let mut by_root: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
    for i in 0..p {
        let r = find(&mut parent, i);
        by_root.entry(r).or_default().push(i);
    }
    Clustering {
        groups: by_root.into_values().collect(),
        threshold,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic latency matrix: `groups[k]` share a 1 µs scale, cross
    /// pairs cost 10 µs.
    fn two_scale(p: usize, group_of: impl Fn(usize) -> usize) -> DMat {
        DMat::from_fn(p, p, |i, j| {
            if i == j {
                0.0
            } else if group_of(i) == group_of(j) {
                1e-6 + (i + j) as f64 * 1e-9 // slight in-scale spread
            } else {
                1e-5 + (i * j % 7) as f64 * 1e-8
            }
        })
    }

    #[test]
    fn recovers_node_groups() {
        // 12 processes round-robin over 3 "nodes": group = rank % 3.
        let l = two_scale(12, |r| r % 3);
        let c = sss_clusters(&l);
        assert_eq!(c.len(), 3);
        assert_eq!(c.sizes(), vec![4, 4, 4]);
        assert_eq!(c.group_of(0), c.group_of(3));
        assert_ne!(c.group_of(0), c.group_of(1));
    }

    #[test]
    fn uneven_groups_like_table_7_1() {
        // 60 processes round-robin on 8 nodes: sizes 8,8,8,8,7,7,7,7.
        let l = two_scale(60, |r| r % 8);
        let c = sss_clusters(&l);
        assert_eq!(c.len(), 8);
        let mut sizes = c.sizes();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![7, 7, 7, 7, 8, 8, 8, 8]);
    }

    #[test]
    fn single_scale_yields_singletons() {
        let l = DMat::from_fn(6, 6, |i, j| if i == j { 0.0 } else { 1e-6 });
        let c = sss_clusters(&l);
        assert_eq!(c.len(), 6);
        assert_eq!(c.threshold, 0.0);
    }

    #[test]
    fn representatives_are_smallest_members() {
        let l = two_scale(9, |r| r / 3);
        let c = sss_clusters(&l);
        assert_eq!(c.representatives(), vec![0, 3, 6]);
    }

    #[test]
    fn threshold_sits_between_scales() {
        let l = two_scale(8, |r| r % 2);
        let c = sss_clusters(&l);
        assert!(
            c.threshold > 1.2e-6 && c.threshold < 1e-5,
            "{}",
            c.threshold
        );
    }

    #[test]
    fn render_mentions_every_subset() {
        let l = two_scale(6, |r| r % 2);
        let text = sss_clusters(&l).render();
        assert!(text.contains("subset  0"));
        assert!(text.contains("subset  1"));
    }

    #[test]
    fn asymmetric_cheap_direction_still_joins() {
        let mut l = DMat::from_fn(4, 4, |i, j| if i == j { 0.0 } else { 1e-4 });
        l.set(0, 1, 1e-6); // only one direction is cheap
        l.set(2, 3, 1e-6);
        let c = sss_clusters(&l);
        assert_eq!(c.len(), 2);
        assert_eq!(c.groups[0], vec![0, 1]);
        assert_eq!(c.groups[1], vec![2, 3]);
    }
}
