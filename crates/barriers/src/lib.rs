//! # hpm-barriers — barrier algorithms and adaptive construction
//!
//! Pattern builders for the barrier algorithms the thesis studies
//! ([`patterns`]: linear, k-ary tree, dissemination, ring, all-to-all),
//! plus the Chapter-7 machinery that *generates* barriers from platform
//! measurements: latency-scale subset clustering ([`sss`], §7.2),
//! hierarchical hybrid composition ([`hybrid`], Fig. 7.2) and greedy
//! model-driven construction ([`greedy`], §7.3, Fig. 7.3).
//!
//! Every builder produces a [`hpm_core::BarrierPattern`], so all of them
//! flow through the same knowledge-matrix verification, cost predictor and
//! simulator unchanged — the uniformity that makes automatic adaptation
//! possible.

pub mod greedy;
pub mod hybrid;
pub mod patterns;
pub mod sss;

pub use greedy::{greedy_adaptive_barrier, GreedyReport};
pub use hybrid::{hybrid_barrier, GatherShape};
pub use patterns::{
    all_to_all, binary_tree, dissemination, dissemination_plan, kary_tree, linear, ring,
};
pub use sss::{sss_clusters, Clustering};
