//! Greedy, adaptive barrier construction (§7.3, Fig. 7.3).
//!
//! Fully automatic barrier generation from a platform profile: cluster the
//! latency matrix into subsets (§7.2), greedily choose the cheapest gather
//! shape for every subset using the cost predictor on the subset's own
//! sub-matrices, then choose the top-level pattern by predicting the cost
//! of each complete composition. The thesis' Chapter-7 result is that the
//! barriers this procedure emits equal or outperform the library defaults
//! on both test clusters (Figs. 7.6–7.7).

use crate::hybrid::{hybrid_barrier, GatherShape};
use crate::patterns;
use crate::sss::{sss_clusters, Clustering};
use hpm_core::matrix::DMat;
use hpm_core::pattern::{BarrierPattern, CommPattern};
use hpm_core::predictor::{predict_barrier, CommCosts, PayloadSchedule};

/// The constructed barrier plus the decisions that produced it.
#[derive(Debug, Clone)]
pub struct GreedyReport {
    /// The generated pattern.
    pub pattern: BarrierPattern,
    /// The latency clustering the construction was based on.
    pub clustering: Clustering,
    /// Chosen gather shape and predicted subset cost per group.
    pub intra_choices: Vec<(GatherShape, f64)>,
    /// Name and predicted total of the winning top-level pattern.
    pub inter_choice: (String, f64),
    /// Predicted total cost of the emitted barrier.
    pub predicted_total: f64,
}

/// Restricts cost matrices to a subset of ranks.
fn sub_costs(costs: &CommCosts, ranks: &[usize]) -> CommCosts {
    let n = ranks.len();
    let pick = |m: &DMat| DMat::from_fn(n, n, |i, j| m.get(ranks[i], ranks[j]));
    CommCosts::new(pick(&costs.o), pick(&costs.l), pick(&costs.beta))
}

/// Builds a standalone gather+release barrier over a subset (in local
/// indices) so its cost can be predicted in isolation.
fn subset_barrier(n: usize, shape: GatherShape) -> BarrierPattern {
    match shape {
        GatherShape::Flat => patterns::linear(n, 0),
        GatherShape::Tree(d) => patterns::kary_tree(n, d),
    }
}

/// Candidate gather shapes for a subset of `n` members.
fn intra_candidates(n: usize) -> Vec<GatherShape> {
    if n <= 3 {
        vec![GatherShape::Flat]
    } else {
        vec![
            GatherShape::Flat,
            GatherShape::Tree(2),
            GatherShape::Tree(4),
        ]
    }
}

/// Constructs a customized barrier for the platform described by `costs`.
pub fn greedy_adaptive_barrier(costs: &CommCosts) -> GreedyReport {
    let p = costs.p();
    assert!(p >= 2, "a barrier needs at least two processes");
    let clustering = sss_clusters(&costs.l);
    let payload = PayloadSchedule::none();

    // Degenerate single-scale platform: pick the best flat algorithm.
    if clustering.len() == p || clustering.len() == 1 {
        let candidates: Vec<BarrierPattern> = vec![
            patterns::linear(p, 0),
            patterns::binary_tree(p),
            patterns::kary_tree(p, 4),
            patterns::dissemination(p),
        ];
        let (best, cost) = candidates
            .into_iter()
            .map(|b| {
                let c = predict_barrier(&b, costs, &payload).total;
                (b, c)
            })
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("NaN prediction"))
            .expect("non-empty candidates");
        let name = best.name().to_string();
        return GreedyReport {
            pattern: best,
            clustering,
            intra_choices: Vec::new(),
            inter_choice: (name, cost),
            predicted_total: cost,
        };
    }

    // Greedy per-subset gather choice.
    let mut shapes = Vec::with_capacity(clustering.len());
    let mut intra_choices = Vec::with_capacity(clustering.len());
    for group in &clustering.groups {
        if group.len() == 1 {
            shapes.push(GatherShape::Flat);
            intra_choices.push((GatherShape::Flat, 0.0));
            continue;
        }
        let local = sub_costs(costs, group);
        let (shape, cost) = intra_candidates(group.len())
            .into_iter()
            .map(|s| {
                let b = subset_barrier(group.len(), s);
                (s, predict_barrier(&b, &local, &payload).total)
            })
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("NaN prediction"))
            .expect("non-empty candidates");
        shapes.push(shape);
        intra_choices.push((shape, cost));
    }

    // Top-level choice by full-composition prediction.
    let m = clustering.len();
    let inter_candidates: Vec<BarrierPattern> = if m == 2 {
        vec![patterns::linear(2, 0)]
    } else {
        vec![
            patterns::linear(m, 0),
            patterns::binary_tree(m),
            patterns::dissemination(m),
        ]
    };
    let mut candidates: Vec<(BarrierPattern, String, f64)> = inter_candidates
        .into_iter()
        .map(|inter| {
            let name = inter.name().to_string();
            let full = hybrid_barrier(p, &clustering.groups, &shapes, Some(&inter));
            let t = predict_barrier(&full, costs, &payload).total;
            (full, name, t)
        })
        .collect();
    // The flat defaults compete too: on placements where a default
    // pattern's shifts happen to stay subset-local (e.g. dissemination
    // under round-robin with power-of-two node counts), it can beat any
    // hierarchical composition, and the constructor must never emit a
    // barrier worse than a library default it can predict.
    for flat in [
        patterns::linear(p, 0),
        patterns::binary_tree(p),
        patterns::kary_tree(p, 4),
        patterns::dissemination(p),
    ] {
        let t = predict_barrier(&flat, costs, &payload).total;
        let name = flat.name().to_string();
        candidates.push((flat, name, t));
    }
    let (pattern, inter_name, total) = candidates
        .into_iter()
        .min_by(|a, b| a.2.partial_cmp(&b.2).expect("NaN prediction"))
        .expect("non-empty candidates");

    GreedyReport {
        pattern,
        clustering,
        intra_choices,
        inter_choice: (inter_name, total),
        predicted_total: total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpm_core::knowledge::verify_synchronizes;

    /// Two-scale synthetic cost model: `nodes` groups by `rank % nodes`.
    fn synthetic_costs(p: usize, nodes: usize) -> CommCosts {
        let local = 1e-6;
        let remote = 1e-5;
        let l = DMat::from_fn(p, p, |i, j| {
            if i == j {
                0.0
            } else if i % nodes == j % nodes {
                local
            } else {
                remote
            }
        });
        let o = DMat::from_fn(p, p, |i, j| if i == j { 3e-7 } else { 5e-7 });
        CommCosts::new(o, l, DMat::zeros(p, p))
    }

    #[test]
    fn generated_barrier_synchronizes() {
        for (p, nodes) in [(16usize, 2usize), (24, 3), (60, 8), (31, 4)] {
            let rep = greedy_adaptive_barrier(&synthetic_costs(p, nodes));
            assert!(
                verify_synchronizes(&rep.pattern).synchronizes(),
                "p={p} nodes={nodes}"
            );
        }
    }

    #[test]
    fn clustering_matches_synthetic_structure() {
        let rep = greedy_adaptive_barrier(&synthetic_costs(24, 3));
        assert_eq!(rep.clustering.len(), 3);
        assert_eq!(rep.intra_choices.len(), 3);
    }

    #[test]
    fn prediction_not_worse_than_defaults() {
        // The construction is chosen by predicted cost, so its prediction
        // must be ≤ every flat default's prediction on the same model.
        let costs = synthetic_costs(32, 4);
        let rep = greedy_adaptive_barrier(&costs);
        let payload = PayloadSchedule::none();
        for pat in [
            patterns::linear(32, 0),
            patterns::binary_tree(32),
            patterns::dissemination(32),
        ] {
            let d = predict_barrier(&pat, &costs, &payload).total;
            assert!(
                rep.predicted_total <= d * 1.001,
                "adaptive {} must not lose to {} ({d})",
                rep.predicted_total,
                pat.name()
            );
        }
    }

    #[test]
    fn single_scale_platform_falls_back_to_flat_choice() {
        let p = 12;
        let l = DMat::from_fn(p, p, |i, j| if i == j { 0.0 } else { 2e-6 });
        let o = DMat::from_fn(p, p, |i, j| if i == j { 1e-7 } else { 2e-7 });
        let costs = CommCosts::new(o, l, DMat::zeros(p, p));
        let rep = greedy_adaptive_barrier(&costs);
        assert!(verify_synchronizes(&rep.pattern).synchronizes());
        assert!(rep.intra_choices.is_empty());
        // On a uniform platform the log-depth patterns win.
        assert_ne!(rep.inter_choice.0, "linear");
    }

    #[test]
    fn large_subsets_prefer_trees_over_flat_when_overhead_dominates() {
        // Make per-request overhead huge relative to latency: a flat
        // 16-member gather serializes 15 round trips at the rep, while a
        // tree spreads them — the predictor must notice.
        let p = 32;
        let l = DMat::from_fn(p, p, |i, j| {
            if i == j {
                0.0
            } else if i % 2 == j % 2 {
                5e-6
            } else {
                5e-5
            }
        });
        let o = DMat::from_fn(p, p, |_, _| 1e-7);
        let costs = CommCosts::new(o, l, DMat::zeros(p, p));
        let rep = greedy_adaptive_barrier(&costs);
        assert_eq!(rep.clustering.len(), 2);
        for (shape, _) in &rep.intra_choices {
            assert_ne!(*shape, GatherShape::Flat, "16-member subsets should tree");
        }
    }
}
