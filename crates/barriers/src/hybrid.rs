//! Hierarchical hybrid barrier composition (§7.1, Fig. 7.2).
//!
//! A hybrid barrier synchronizes each subset internally (gathering to a
//! representative), synchronizes the representatives with an arbitrary
//! top-level pattern, and releases each subset (the transposed gather in
//! reverse). Subsets of different depth are aligned so that all gathers
//! finish together: gather stages are right-aligned before the top-level
//! phase, release stages left-aligned after it.

use crate::patterns;
use hpm_core::matrix::IMat;
use hpm_core::pattern::{BarrierPattern, CommPattern};

/// How a subset gathers to (and is released by) its representative.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GatherShape {
    /// Every member signals the representative directly in one stage.
    Flat,
    /// A `degree`-ary tree over the subset (heap indexing in subset
    /// order), one stage per level.
    Tree(usize),
}

impl GatherShape {
    /// Human-readable label.
    pub fn label(&self) -> String {
        match self {
            GatherShape::Flat => "flat".into(),
            GatherShape::Tree(d) => format!("tree-{d}"),
        }
    }
}

/// Gather stages for one subset: edges in *global* ranks, deepest level
/// first, everything flowing to `group[0]`.
fn gather_stages(group: &[usize], shape: GatherShape) -> Vec<Vec<(usize, usize)>> {
    let n = group.len();
    if n <= 1 {
        return Vec::new();
    }
    match shape {
        GatherShape::Flat => {
            vec![(1..n).map(|k| (group[k], group[0])).collect()]
        }
        GatherShape::Tree(degree) => {
            assert!(degree >= 1, "tree degree must be at least 1");
            let depth_of = |k: usize| -> usize {
                let mut d = 0;
                let mut node = k;
                while node > 0 {
                    node = (node - 1) / degree;
                    d += 1;
                }
                d
            };
            let max_depth = (0..n).map(depth_of).max().expect("non-empty");
            (1..=max_depth)
                .rev()
                .map(|level| {
                    (1..n)
                        .filter(|&k| depth_of(k) == level)
                        .map(|k| (group[k], group[(k - 1) / degree]))
                        .collect::<Vec<_>>()
                })
                .filter(|edges: &Vec<_>| !edges.is_empty())
                .collect()
        }
    }
}

/// Composes a hierarchical hybrid barrier.
///
/// * `p` — total process count; `groups` must partition `0..p`;
/// * `shapes` — one gather shape per group;
/// * `inter` — top-level pattern over *group indices* (its process count
///   must equal `groups.len()`); `None` only when there is a single group.
pub fn hybrid_barrier(
    p: usize,
    groups: &[Vec<usize>],
    shapes: &[GatherShape],
    inter: Option<&BarrierPattern>,
) -> BarrierPattern {
    assert!(!groups.is_empty(), "need at least one group");
    assert_eq!(groups.len(), shapes.len(), "one shape per group");
    // Partition check.
    let mut seen = vec![false; p];
    for g in groups {
        assert!(!g.is_empty(), "empty group");
        for w in g.windows(2) {
            assert!(w[0] < w[1], "group members must be sorted ascending");
        }
        for &r in g {
            assert!(r < p, "rank {r} out of range");
            assert!(!seen[r], "rank {r} appears in two groups");
            seen[r] = true;
        }
    }
    assert!(seen.iter().all(|&s| s), "groups must cover every rank");
    match inter {
        Some(ip) => assert_eq!(
            ip.p(),
            groups.len(),
            "inter pattern must span exactly the representatives"
        ),
        None => assert_eq!(groups.len(), 1, "multiple groups need an inter pattern"),
    }

    let per_group: Vec<Vec<Vec<(usize, usize)>>> = groups
        .iter()
        .zip(shapes.iter())
        .map(|(g, &s)| gather_stages(g, s))
        .collect();
    let max_depth = per_group.iter().map(|s| s.len()).max().unwrap_or(0);

    let mut stages: Vec<IMat> = Vec::new();
    // Gather phase, right-aligned.
    for k in 0..max_depth {
        let mut edges = Vec::new();
        for gs in &per_group {
            let offset = max_depth - gs.len();
            if k >= offset {
                edges.extend_from_slice(&gs[k - offset]);
            }
        }
        if !edges.is_empty() {
            stages.push(IMat::from_edges(p, &edges));
        }
    }
    // Top-level phase over representatives.
    if let Some(ip) = inter {
        let reps: Vec<usize> = groups.iter().map(|g| g[0]).collect();
        for s in 0..ip.stages() {
            let mut edges = Vec::new();
            for a in 0..ip.p() {
                for b in ip.stage(s).dsts(a) {
                    edges.push((reps[a], reps[b]));
                }
            }
            stages.push(IMat::from_edges(p, &edges));
        }
    }
    // Release phase, left-aligned: transposed gathers in reverse order.
    for k in 0..max_depth {
        let mut edges = Vec::new();
        for gs in &per_group {
            // Reverse order: release stage k corresponds to gather stage
            // len−1−k of this group.
            if k < gs.len() {
                let src_stage = &gs[gs.len() - 1 - k];
                edges.extend(src_stage.iter().map(|&(a, b)| (b, a)));
            }
        }
        if !edges.is_empty() {
            stages.push(IMat::from_edges(p, &edges));
        }
    }
    let inter_name = inter.map(|i| i.name().to_string()).unwrap_or_default();
    let shape_names: Vec<String> = shapes.iter().map(|s| s.label()).collect();
    BarrierPattern::new(
        &format!("hybrid[{}|{}]", shape_names.join(","), inter_name),
        p,
        stages,
    )
}

/// Convenience: one group per node-like cluster, flat gathers, a
/// dissemination top level — the common-sense hierarchical default the
/// greedy constructor competes with.
pub fn flat_dissemination_hybrid(p: usize, groups: &[Vec<usize>]) -> BarrierPattern {
    let shapes = vec![GatherShape::Flat; groups.len()];
    if groups.len() == 1 {
        hybrid_barrier(p, groups, &shapes, None)
    } else {
        let inter = patterns::dissemination(groups.len());
        hybrid_barrier(p, groups, &shapes, Some(&inter))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpm_core::knowledge::verify_synchronizes;

    fn groups_round_robin(p: usize, nodes: usize) -> Vec<Vec<usize>> {
        let mut g = vec![Vec::new(); nodes];
        for r in 0..p {
            g[r % nodes].push(r);
        }
        g.retain(|v| !v.is_empty());
        g
    }

    #[test]
    fn hybrid_synchronizes_for_many_partitions() {
        for p in [4usize, 7, 12, 16, 24] {
            for nodes in [2usize, 3, 4] {
                if nodes >= p {
                    continue;
                }
                let groups = groups_round_robin(p, nodes);
                let b = flat_dissemination_hybrid(p, &groups);
                assert!(
                    verify_synchronizes(&b).synchronizes(),
                    "p={p} nodes={nodes}"
                );
            }
        }
    }

    #[test]
    fn tree_gather_hybrid_synchronizes() {
        let p = 18;
        let groups = groups_round_robin(p, 3);
        let shapes = vec![GatherShape::Tree(2); 3];
        let inter = patterns::binary_tree(3);
        let b = hybrid_barrier(p, &groups, &shapes, Some(&inter));
        assert!(verify_synchronizes(&b).synchronizes());
    }

    #[test]
    fn mixed_shapes_and_uneven_groups() {
        let groups = vec![vec![0, 1, 2, 3, 4, 5, 6], vec![7, 8], vec![9]];
        let shapes = vec![GatherShape::Tree(2), GatherShape::Flat, GatherShape::Flat];
        let inter = patterns::linear(3, 0);
        let b = hybrid_barrier(10, &groups, &shapes, Some(&inter));
        assert!(verify_synchronizes(&b).synchronizes());
    }

    #[test]
    fn single_group_needs_no_inter() {
        let b = hybrid_barrier(6, &[vec![0, 1, 2, 3, 4, 5]], &[GatherShape::Tree(2)], None);
        assert!(verify_synchronizes(&b).synchronizes());
    }

    #[test]
    fn stage_count_right_aligns_gathers() {
        // Groups of depth 1 (flat pairs) and depth 2 (tree of 4): total
        // gather depth is 2, inter adds its stages, release adds 2.
        let groups = vec![vec![0, 1, 2, 3], vec![4, 5]];
        let shapes = vec![GatherShape::Tree(2), GatherShape::Flat];
        let inter = patterns::linear(2, 0);
        let b = hybrid_barrier(6, &groups, &shapes, Some(&inter));
        assert_eq!(b.stages(), 2 + 2 + 2);
        assert!(verify_synchronizes(&b).synchronizes());
    }

    #[test]
    fn signals_flow_to_representatives_first() {
        let groups = vec![vec![0, 2, 4], vec![1, 3, 5]];
        let b = flat_dissemination_hybrid(6, &groups);
        // Stage 0: members signal reps 0 and 1.
        assert_eq!(b.stage(0).srcs(0).collect::<Vec<_>>(), vec![2, 4]);
        assert_eq!(b.stage(0).srcs(1).collect::<Vec<_>>(), vec![3, 5]);
    }

    #[test]
    #[should_panic]
    fn overlapping_groups_rejected() {
        hybrid_barrier(
            4,
            &[vec![0, 1], vec![1, 2, 3]],
            &[GatherShape::Flat, GatherShape::Flat],
            Some(&patterns::linear(2, 0)),
        );
    }

    #[test]
    #[should_panic]
    fn incomplete_cover_rejected() {
        hybrid_barrier(
            5,
            &[vec![0, 1], vec![2, 3]],
            &[GatherShape::Flat, GatherShape::Flat],
            Some(&patterns::linear(2, 0)),
        );
    }
}
