//! Builders for the standard barrier algorithms (§5.3, Figs. 5.2–5.4).
//!
//! Each builder returns the algorithm in matrix form. The linear and tree
//! barriers follow the gather/release structure whose release stages are
//! the transposed arrival stages in reverse order; the dissemination
//! barrier is the cyclic-shift pattern `i → (i + 2^s) mod P`. The ring and
//! all-to-all patterns are the §5.6.6 extremities of the design space
//! (minimum and maximum concurrent communication), included because the
//! thesis discusses them as the boundary cases where prediction quality
//! degrades.

use hpm_core::matrix::IMat;
use hpm_core::pattern::BarrierPattern;
use hpm_core::plan::CompiledPattern;

/// The linear barrier (Fig. 5.2): every process signals `root`, then
/// `root` signals everyone.
pub fn linear(p: usize, root: usize) -> BarrierPattern {
    assert!(p >= 2, "a barrier needs at least two processes");
    assert!(root < p, "root out of range");
    let gather: Vec<(usize, usize)> = (0..p).filter(|&i| i != root).map(|i| (i, root)).collect();
    let release: Vec<(usize, usize)> = (0..p).filter(|&i| i != root).map(|i| (root, i)).collect();
    BarrierPattern::new(
        "linear",
        p,
        vec![IMat::from_edges(p, &gather), IMat::from_edges(p, &release)],
    )
}

/// The dissemination barrier (Fig. 5.3): `⌈log₂P⌉` stages of cyclic shifts,
/// stage `s` signalling `i → (i + 2^s) mod P`.
pub fn dissemination(p: usize) -> BarrierPattern {
    assert!(p >= 2, "a barrier needs at least two processes");
    let stages = (p as f64).log2().ceil() as usize;
    let mats: Vec<IMat> = (0..stages)
        .map(|s| {
            let edges: Vec<(usize, usize)> = (0..p).map(|i| (i, (i + (1 << s)) % p)).collect();
            IMat::from_edges(p, &edges)
        })
        .collect();
    BarrierPattern::new("dissemination", p, mats)
}

/// The dissemination barrier compiled straight to execution form, never
/// materializing the dense per-stage matrices — the authoring route for
/// large process counts, where a single dense stage at p = 4096 is a
/// 16.7 MB boolean matrix while its compiled form is 64 KB of CSR.
/// Identical to `CompiledPattern::compile(&dissemination(p))`.
pub fn dissemination_plan(p: usize) -> CompiledPattern {
    assert!(p >= 2, "a barrier needs at least two processes");
    let stages = (p as f64).log2().ceil() as usize;
    let stage_edges: Vec<Vec<(usize, usize)>> = (0..stages)
        .map(|s| (0..p).map(|i| (i, (i + (1 << s)) % p)).collect())
        .collect();
    CompiledPattern::from_stage_edges("dissemination", p, &stage_edges)
}

/// A k-ary tree barrier rooted at rank 0 with heap indexing
/// (`parent(i) = (i−1)/degree`): arrival stages from the deepest level up,
/// then the transposed stages in reverse as release (Fig. 5.4's
/// construction rule).
pub fn kary_tree(p: usize, degree: usize) -> BarrierPattern {
    assert!(p >= 2, "a barrier needs at least two processes");
    assert!(degree >= 1, "tree degree must be at least 1");
    let depth_of = |i: usize| -> usize {
        let mut d = 0;
        let mut node = i;
        while node > 0 {
            node = (node - 1) / degree;
            d += 1;
        }
        d
    };
    let max_depth = (0..p).map(depth_of).max().expect("non-empty");
    let mut arrival: Vec<IMat> = Vec::new();
    for level in (1..=max_depth).rev() {
        let edges: Vec<(usize, usize)> = (1..p)
            .filter(|&i| depth_of(i) == level)
            .map(|i| (i, (i - 1) / degree))
            .collect();
        if !edges.is_empty() {
            arrival.push(IMat::from_edges(p, &edges));
        }
    }
    let release: Vec<IMat> = arrival.iter().rev().map(|s| s.transpose()).collect();
    let mut stages = arrival;
    stages.extend(release);
    BarrierPattern::new(&format!("tree-{degree}"), p, stages)
}

/// Binary tree barrier — the `T` of Figs. 5.6–5.13.
pub fn binary_tree(p: usize) -> BarrierPattern {
    kary_tree(p, 2)
}

/// The token-ring barrier: `2(P−1)` stages with a single signal each —
/// the minimum-concurrency extremity (§5.6.6).
pub fn ring(p: usize) -> BarrierPattern {
    assert!(p >= 2, "a barrier needs at least two processes");
    let mats: Vec<IMat> = (0..2 * (p - 1))
        .map(|k| IMat::from_edges(p, &[(k % p, (k + 1) % p)]))
        .collect();
    BarrierPattern::new("ring", p, mats)
}

/// The single-stage all-to-all barrier: every ordered pair signals at once
/// — the maximum-concurrency extremity (§5.6.6).
pub fn all_to_all(p: usize) -> BarrierPattern {
    assert!(p >= 2, "a barrier needs at least two processes");
    let mut edges = Vec::with_capacity(p * (p - 1));
    for i in 0..p {
        for j in 0..p {
            if i != j {
                edges.push((i, j));
            }
        }
    }
    BarrierPattern::new("all-to-all", p, vec![IMat::from_edges(p, &edges)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpm_core::knowledge::verify_synchronizes;
    use hpm_core::pattern::CommPattern;

    #[test]
    fn all_builders_synchronize_across_process_counts() {
        for p in 2..=33 {
            assert!(
                verify_synchronizes(&linear(p, 0)).synchronizes(),
                "linear {p}"
            );
            assert!(
                verify_synchronizes(&dissemination(p)).synchronizes(),
                "dissemination {p}"
            );
            assert!(
                verify_synchronizes(&binary_tree(p)).synchronizes(),
                "binary tree {p}"
            );
            assert!(
                verify_synchronizes(&kary_tree(p, 4)).synchronizes(),
                "4-ary tree {p}"
            );
            assert!(verify_synchronizes(&ring(p)).synchronizes(), "ring {p}");
            assert!(
                verify_synchronizes(&all_to_all(p)).synchronizes(),
                "all-to-all {p}"
            );
        }
    }

    #[test]
    fn linear_with_nonzero_root() {
        let b = linear(5, 3);
        assert!(verify_synchronizes(&b).synchronizes());
        assert_eq!(b.stage(0).srcs(3).collect::<Vec<_>>(), vec![0, 1, 2, 4]);
    }

    #[test]
    fn fig_5_3_dissemination_4() {
        let b = dissemination(4);
        assert_eq!(b.stages(), 2);
        // Stage 0: i → i+1 mod 4.
        assert!(b.stage(0).get(0, 1));
        assert!(b.stage(0).get(3, 0));
        // Stage 1: i → i+2 mod 4.
        assert!(b.stage(1).get(0, 2));
        assert!(b.stage(1).get(3, 1));
    }

    #[test]
    fn tree_release_is_transposed_reverse() {
        let b = binary_tree(7);
        let s = b.stages();
        for k in 0..s / 2 {
            assert_eq!(
                b.stage(s - 1 - k),
                &b.stage(k).transpose(),
                "release stage {k} must mirror arrival"
            );
        }
    }

    #[test]
    fn dissemination_stage_count_is_log_ceil() {
        assert_eq!(dissemination(8).stages(), 3);
        assert_eq!(dissemination(9).stages(), 4);
        assert_eq!(dissemination(64).stages(), 6);
        assert_eq!(dissemination(65).stages(), 7);
    }

    #[test]
    fn every_process_signals_once_per_dissemination_stage() {
        let b = dissemination(12);
        for s in 0..b.stages() {
            for i in 0..12 {
                assert_eq!(b.stage(s).out_degree(i), 1, "stage {s} proc {i}");
            }
        }
    }

    #[test]
    fn ring_has_one_signal_per_stage() {
        let b = ring(6);
        assert_eq!(b.stages(), 10);
        for s in 0..b.stages() {
            assert_eq!(b.stage(s).edge_count(), 1);
        }
    }

    #[test]
    fn all_to_all_is_complete() {
        let b = all_to_all(5);
        assert_eq!(b.stages(), 1);
        assert_eq!(b.stage(0).edge_count(), 20);
    }

    #[test]
    fn tree_signal_count_is_two_p_minus_two() {
        // Each non-root signals its parent once and is released once.
        for p in [2usize, 5, 8, 16, 23] {
            assert_eq!(binary_tree(p).total_signals(), 2 * (p - 1), "p={p}");
        }
    }

    #[test]
    fn dissemination_plan_matches_dense_compilation() {
        use hpm_core::plan::CompiledPattern;
        for p in [2usize, 5, 16, 24, 64, 100] {
            let sparse = dissemination_plan(p);
            let dense = CompiledPattern::compile(&dissemination(p));
            assert_eq!(sparse, dense, "p={p}");
        }
    }

    #[test]
    fn unary_tree_degenerates_to_chain() {
        let b = kary_tree(4, 1);
        assert!(verify_synchronizes(&b).synchronizes());
        // Chain of depth 3: 6 stages.
        assert_eq!(b.stages(), 6);
    }
}
