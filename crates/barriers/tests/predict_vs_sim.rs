//! Cross-validation of the Eq. 5.4 critical-path predictor against the
//! simulated platform — the experiment design of §5.6.6: benchmark the
//! platform (O/L/β matrices), predict each barrier's cost, then measure by
//! executing the same pattern, and compare.
//!
//! The thesis finds predictions within tenths of milliseconds absolutely,
//! with relative errors from tens of percent at small scale (where call
//! overheads dominate) improving as process counts grow. The assertions
//! here encode those qualitative bounds.

use hpm_barriers::patterns::{binary_tree, dissemination, linear};
use hpm_core::pattern::{BarrierPattern, CommPattern};
use hpm_core::predictor::{predict_barrier, PayloadSchedule};
use hpm_simnet::barrier::BarrierSim;
use hpm_simnet::microbench::{bench_platform, MicrobenchConfig};
use hpm_simnet::params::xeon_cluster_params;
use hpm_topology::{cluster_8x2x4, Placement, PlacementPolicy};

struct Case {
    p: usize,
    name: &'static str,
    predicted: f64,
    measured: f64,
}

fn run_cases(ps: &[usize]) -> Vec<Case> {
    let params = xeon_cluster_params();
    let mut out = Vec::new();
    for &p in ps {
        let placement = Placement::new(cluster_8x2x4(), PlacementPolicy::RoundRobin, p);
        let profile = bench_platform(&params, &placement, &MicrobenchConfig::quick(), 42);
        let sim = BarrierSim::new(&params, &placement);
        let patterns: Vec<BarrierPattern> = vec![dissemination(p), binary_tree(p), linear(p, 0)];
        for pat in patterns {
            let predicted = predict_barrier(&pat, &profile.costs, &PayloadSchedule::none()).total;
            let measured = sim.measure(&pat, &PayloadSchedule::none(), 16, 7).mean();
            out.push(Case {
                p,
                name: match pat.name() {
                    "dissemination" => "D",
                    "tree-2" => "T",
                    _ => "L",
                },
                predicted,
                measured,
            });
        }
    }
    out
}

#[test]
fn predictions_track_measurements() {
    let cases = run_cases(&[8, 16, 32, 64]);
    for c in &cases {
        let rel = (c.predicted - c.measured) / c.measured;
        println!(
            "P={:>3} {}  pred {:>10.3e}  meas {:>10.3e}  rel {:+.2}",
            c.p, c.name, c.predicted, c.measured, rel
        );
    }
    // Relative error stays within the thesis' observed band (< ~2x at
    // small scale, tighter at large scale).
    for c in &cases {
        let rel = (c.predicted - c.measured).abs() / c.measured;
        let bound = if c.p <= 8 { 2.0 } else { 1.0 };
        assert!(
            rel < bound,
            "P={} {}: relative error {rel:.2} out of band (pred {:.3e}, meas {:.3e})",
            c.p,
            c.name,
            c.predicted,
            c.measured
        );
    }
    // At full scale the prediction must rank the linear barrier worst,
    // in both predicted and measured cost (the Fig. 5.6/5.7 agreement).
    let at64: Vec<&Case> = cases.iter().filter(|c| c.p == 64).collect();
    let get = |n: &str| at64.iter().find(|c| c.name == n).expect("case exists");
    assert!(get("L").predicted > get("D").predicted);
    assert!(get("L").predicted > get("T").predicted);
    assert!(get("L").measured > get("D").measured);
    assert!(get("L").measured > get("T").measured);
}

#[test]
fn relative_error_of_linear_improves_with_scale() {
    // Fig. 5.9's observation: the L-barrier's accumulated misprediction is
    // offset by its own growth, so the *relative* error shrinks with P.
    let cases = run_cases(&[8, 64]);
    let rel = |p: usize| {
        let c = cases
            .iter()
            .find(|c| c.p == p && c.name == "L")
            .expect("case exists");
        (c.predicted - c.measured).abs() / c.measured
    };
    assert!(
        rel(64) < rel(8),
        "relative error must improve: P=8 {:.2} vs P=64 {:.2}",
        rel(8),
        rel(64)
    );
}

#[test]
fn round_robin_parity_oscillation_is_predicted() {
    // §5.6.6: on two nodes, round-robin placement makes the dissemination
    // barrier oscillate between odd and even process counts, and the
    // prediction captures the effect. Check that prediction and
    // measurement agree on the *direction* of each odd/even step for
    // P in 9..16.
    let params = xeon_cluster_params();
    let mut agree = 0;
    let mut total = 0;
    let mut prev: Option<(f64, f64)> = None;
    for p in 9..=16 {
        let placement = Placement::new(cluster_8x2x4(), PlacementPolicy::RoundRobin, p);
        let profile = bench_platform(&params, &placement, &MicrobenchConfig::quick(), 42);
        let sim = BarrierSim::new(&params, &placement);
        let pat = dissemination(p);
        let pred = predict_barrier(&pat, &profile.costs, &PayloadSchedule::none()).total;
        let meas = sim.measure(&pat, &PayloadSchedule::none(), 16, 11).mean();
        println!("P={p}: pred {pred:.3e} meas {meas:.3e}");
        if let Some((pp, pm)) = prev {
            total += 1;
            if ((pred - pp) > 0.0) == ((meas - pm) > 0.0) {
                agree += 1;
            }
        }
        prev = Some((pred, meas));
    }
    assert!(
        agree * 3 >= total * 2,
        "prediction should track most oscillation steps: {agree}/{total}"
    );
}
