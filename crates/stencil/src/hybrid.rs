//! The hybrid (threads + message passing) stencil (§8.3.3).
//!
//! One process per node owns the node's share of the domain and fans the
//! sweep out over the node's cores (modeled as a compute-rate speedup with
//! a threading efficiency below 1 — fork/join and memory-bandwidth sharing
//! cost something). The network then carries only node-boundary exchanges:
//! fewer, larger messages over fewer NICs.

use crate::mpi::{run_mpi_stencil, MpiReport, MpiVariant};
use hpm_kernels::rate::ProcessorModel;
use hpm_simnet::params::PlatformParams;
use hpm_topology::{ClusterShape, Placement, PlacementPolicy};

/// Intra-node threading efficiency (fraction of linear speedup attained).
pub const THREAD_EFFICIENCY: f64 = 0.85;

/// Runs the hybrid stencil using `total_cores` worth of hardware: one
/// process per node, each accelerated by its node's core count.
///
/// Panics unless `total_cores` is a whole number of nodes.
pub fn run_hybrid_stencil(
    params: &PlatformParams,
    shape: ClusterShape,
    proc_model: &ProcessorModel,
    n: usize,
    iters: usize,
    total_cores: usize,
    seed: u64,
) -> MpiReport {
    let cpn = shape.cores_per_node();
    assert!(
        total_cores.is_multiple_of(cpn) && total_cores > 0,
        "hybrid runs use whole nodes ({cpn} cores each), got {total_cores} cores"
    );
    let nodes = total_cores / cpn;
    assert!(nodes <= shape.nodes(), "not enough nodes");
    // One rank per node.
    let placement = Placement::new(shape, PlacementPolicy::Spread, nodes);
    debug_assert_eq!(placement.nodes_used(), nodes);
    let speedup = cpn as f64 * THREAD_EFFICIENCY;
    run_mpi_stencil(
        params,
        &placement,
        proc_model,
        n,
        iters,
        MpiVariant::EarlyRequests,
        speedup,
        seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpm_kernels::rate::xeon_core;
    use hpm_simnet::params::xeon_cluster_params;
    use hpm_topology::cluster_8x2x4;

    #[test]
    fn hybrid_runs_one_rank_per_node() {
        let rep = run_hybrid_stencil(
            &xeon_cluster_params(),
            cluster_8x2x4(),
            &xeon_core(),
            2048,
            3,
            32, // 4 nodes
            5,
        );
        assert_eq!(rep.decomp.p(), 4);
        assert!(rep.mean_iter() > 0.0);
    }

    #[test]
    fn hybrid_flat_crossover_exists() {
        // The Roadrunner-style trade-off (§2.2.4, Ch. 8): when the network
        // dominates (small problems), one rank per node with fewer,
        // larger exchanges wins; when compute dominates (large problems),
        // flat MPI's perfect 64-way distribution beats the imperfect
        // thread speedup.
        let params = xeon_cluster_params();
        let model = xeon_core();
        let flat = |n: usize| {
            let placement = Placement::new(cluster_8x2x4(), PlacementPolicy::RoundRobin, 64);
            crate::mpi::run_mpi_stencil(
                &params,
                &placement,
                &model,
                n,
                3,
                MpiVariant::EarlyRequests,
                1.0,
                5,
            )
            .mean_iter()
        };
        let hybrid = |n: usize| {
            run_hybrid_stencil(&params, cluster_8x2x4(), &model, n, 3, 64, 5).mean_iter()
        };
        // Compute-bound regime: flat wins clearly (imperfect thread
        // speedup and larger node-boundary transfers).
        assert!(
            flat(2048) < hybrid(2048),
            "compute-bound: flat {} should beat hybrid {}",
            flat(2048),
            hybrid(2048)
        );
        // Network-bound regime: the gap closes to near parity — fewer,
        // larger messages compensate for the threading loss.
        let ratio_small = hybrid(256) / flat(256);
        let ratio_large = hybrid(2048) / flat(2048);
        assert!(
            ratio_small < ratio_large / 1.5,
            "hybrid must converge toward flat as the network dominates: \
             {ratio_small:.2}x at N=256 vs {ratio_large:.2}x at N=2048"
        );
        assert!(
            ratio_small < 1.3,
            "hybrid should be near parity on tiny problems: {ratio_small:.2}x"
        );
    }

    #[test]
    #[should_panic]
    fn partial_nodes_rejected() {
        run_hybrid_stencil(
            &xeon_cluster_params(),
            cluster_8x2x4(),
            &xeon_core(),
            1024,
            1,
            12,
            1,
        );
    }
}
