//! Domain decomposition (§8.2).
//!
//! The global `N×N` grid is block-decomposed over a near-square `px×py`
//! process grid. Every process owns a rectangular block plus a ghost ring
//! one cell deep (or `w` deep for the §8.6 shadow-region variant); border
//! cells must reach the face neighbours each iteration.

/// The process-grid decomposition of a square domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Decomposition {
    /// Global grid side (interior cells).
    pub n: usize,
    /// Process grid columns.
    pub px: usize,
    /// Process grid rows.
    pub py: usize,
}

/// One process' block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LocalBlock {
    /// Position in the process grid.
    pub gx: usize,
    pub gy: usize,
    /// Owned cells in each dimension.
    pub width: usize,
    pub height: usize,
}

impl LocalBlock {
    /// Owned cell count.
    pub fn cells(&self) -> usize {
        self.width * self.height
    }

    /// Border cells (the outer ring of owned cells).
    pub fn border_cells(&self) -> usize {
        if self.width <= 2 || self.height <= 2 {
            self.cells()
        } else {
            self.cells() - (self.width - 2) * (self.height - 2)
        }
    }

    /// Interior cells (owned cells not on the ring).
    pub fn interior_cells(&self) -> usize {
        self.cells() - self.border_cells()
    }
}

/// Face neighbours of a block (ranks), in N/S/W/E order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Neighbours {
    pub north: Option<usize>,
    pub south: Option<usize>,
    pub west: Option<usize>,
    pub east: Option<usize>,
}

impl Neighbours {
    /// All present neighbours.
    pub fn iter(&self) -> impl Iterator<Item = usize> {
        [self.north, self.south, self.west, self.east]
            .into_iter()
            .flatten()
    }
}

impl Decomposition {
    /// Near-square factorization of `p` processes over an `n×n` grid: the
    /// factor pair `(px, py)` with `px·py = p` minimizing `|px − py|`.
    pub fn new(n: usize, p: usize) -> Decomposition {
        assert!(n >= 4, "grid too small");
        assert!(p >= 1, "need at least one process");
        let mut best: (usize, usize) = (1, p);
        for px in 1..=p {
            if p.is_multiple_of(px) {
                let py = p / px;
                if px.abs_diff(py) < best.0.abs_diff(best.1) {
                    best = (px, py);
                }
            }
        }
        let (px, py) = best;
        assert!(
            n / px >= 2 && n / py >= 2,
            "blocks would be thinner than two cells: {n} over {px}x{py}"
        );
        Decomposition { n, px, py }
    }

    /// Total process count.
    pub fn p(&self) -> usize {
        self.px * self.py
    }

    /// The block of a rank (row-major rank → (gx, gy); remainder cells go
    /// to the lower-indexed blocks).
    pub fn block(&self, rank: usize) -> LocalBlock {
        assert!(rank < self.p(), "rank out of range");
        let gx = rank % self.px;
        let gy = rank / self.px;
        let split = |n: usize, parts: usize, idx: usize| -> usize {
            n / parts + usize::from(idx < n % parts)
        };
        LocalBlock {
            gx,
            gy,
            width: split(self.n, self.px, gx),
            height: split(self.n, self.py, gy),
        }
    }

    /// Face neighbours of a rank.
    pub fn neighbours(&self, rank: usize) -> Neighbours {
        let gx = rank % self.px;
        let gy = rank / self.px;
        Neighbours {
            north: (gy > 0).then(|| rank - self.px),
            south: (gy + 1 < self.py).then(|| rank + self.px),
            west: (gx > 0).then(|| rank - 1),
            east: (gx + 1 < self.px).then(|| rank + 1),
        }
    }

    /// Bytes exchanged with one horizontal (N/S) neighbour per iteration
    /// with ghost width `w`: `w` rows of the block width.
    pub fn ns_exchange_bytes(&self, rank: usize, w: usize) -> u64 {
        (self.block(rank).width * w * 8) as u64
    }

    /// Bytes exchanged with one vertical (W/E) neighbour per iteration.
    pub fn we_exchange_bytes(&self, rank: usize, w: usize) -> u64 {
        (self.block(rank).height * w * 8) as u64
    }

    /// The 17-region split of Fig. 8.2 for a block: cell counts for the
    /// outer ring's 4 corners and 4 edges, the inner ring's 8 segments,
    /// and the interior. Regions are computed outside-in so communication
    /// can start as early as possible.
    pub fn regions(&self, rank: usize) -> Regions {
        let b = self.block(rank);
        let ring = |width: usize, height: usize| -> (usize, usize, usize) {
            // (corner cells total, horizontal edge cells, vertical edge cells)
            if width < 2 || height < 2 {
                return (width * height, 0, 0);
            }
            (4, 2 * width.saturating_sub(2), 2 * height.saturating_sub(2))
        };
        let (c1, h1, v1) = ring(b.width, b.height);
        let inner_w = b.width.saturating_sub(2);
        let inner_h = b.height.saturating_sub(2);
        let (c2, h2, v2) = ring(inner_w, inner_h);
        let outer = c1 + h1 + v1;
        let inner = c2 + h2 + v2;
        let interior = b.cells().saturating_sub(outer + inner);
        Regions {
            outer_corners: c1,
            outer_edges: h1 + v1,
            inner_ring: inner,
            interior,
        }
    }
}

/// Cell counts of the Fig. 8.2 region groups.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Regions {
    /// The 4 outer corner cells.
    pub outer_corners: usize,
    /// The 4 outer edge strips (excluding corners).
    pub outer_edges: usize,
    /// The 8 inner-ring segments.
    pub inner_ring: usize,
    /// The single interior region.
    pub interior: usize,
}

impl Regions {
    /// All owned cells.
    pub fn total(&self) -> usize {
        self.outer_corners + self.outer_edges + self.inner_ring + self.interior
    }

    /// Cells that must be computed before communication can start (the
    /// outer ring holds the values the neighbours need).
    pub fn pre_comm(&self) -> usize {
        self.outer_corners + self.outer_edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn near_square_factorization() {
        assert_eq!(
            Decomposition::new(1024, 16),
            Decomposition {
                n: 1024,
                px: 4,
                py: 4
            }
        );
        let d = Decomposition::new(1024, 12);
        assert!((d.px, d.py) == (3, 4) || (d.px, d.py) == (4, 3));
        let d2 = Decomposition::new(1024, 7);
        assert_eq!(d2.px * d2.py, 7);
    }

    #[test]
    fn blocks_partition_the_grid() {
        let d = Decomposition::new(100, 6);
        let total: usize = (0..6).map(|r| d.block(r).cells()).sum();
        assert_eq!(total, 100 * 100);
    }

    #[test]
    fn remainder_goes_to_low_ranks() {
        let d = Decomposition::new(10, 4); // 2x2 grid, 10 = 5+5
        assert_eq!(d.block(0).width, 5);
        let d3 = Decomposition::new(11, 4);
        // 11 over 2: 6 and 5.
        assert_eq!(d3.block(0).width, 6);
        assert_eq!(d3.block(1).width, 5);
    }

    #[test]
    fn corner_block_has_two_neighbours() {
        let d = Decomposition::new(64, 9); // 3x3
        let n = d.neighbours(0);
        assert_eq!(n.north, None);
        assert_eq!(n.west, None);
        assert_eq!(n.south, Some(3));
        assert_eq!(n.east, Some(1));
        assert_eq!(n.iter().count(), 2);
    }

    #[test]
    fn centre_block_has_four_neighbours() {
        let d = Decomposition::new(64, 9);
        let n = d.neighbours(4);
        assert_eq!(n.iter().count(), 4);
        assert_eq!(n.north, Some(1));
        assert_eq!(n.south, Some(7));
        assert_eq!(n.west, Some(3));
        assert_eq!(n.east, Some(5));
    }

    #[test]
    fn neighbour_relation_is_symmetric() {
        let d = Decomposition::new(128, 12);
        for r in 0..12 {
            let n = d.neighbours(r);
            if let Some(e) = n.east {
                assert_eq!(d.neighbours(e).west, Some(r));
            }
            if let Some(s) = n.south {
                assert_eq!(d.neighbours(s).north, Some(r));
            }
        }
    }

    #[test]
    fn regions_sum_to_block() {
        let d = Decomposition::new(128, 4);
        for r in 0..4 {
            let regions = d.regions(r);
            assert_eq!(regions.total(), d.block(r).cells(), "rank {r}");
            assert_eq!(regions.outer_corners, 4);
            assert!(regions.interior > 0);
        }
    }

    #[test]
    fn border_plus_interior_is_total() {
        let d = Decomposition::new(64, 4);
        let b = d.block(0);
        assert_eq!(b.border_cells() + b.interior_cells(), b.cells());
    }

    #[test]
    fn exchange_bytes_scale_with_ghost_width() {
        let d = Decomposition::new(256, 16);
        assert_eq!(d.ns_exchange_bytes(0, 2), 2 * d.ns_exchange_bytes(0, 1));
        assert_eq!(d.we_exchange_bytes(0, 3), 3 * d.we_exchange_bytes(0, 1));
    }

    #[test]
    #[should_panic]
    fn too_thin_blocks_rejected() {
        Decomposition::new(8, 64);
    }
}
