//! MPI-style stencil implementations (§8.3.2, Fig. 8.3, Table 8.2).
//!
//! The reference implementation the thesis compares against: no BSPlib
//! runtime, no global synchronization — each iteration computes the whole
//! block and then runs the 2-stage blocking border exchange (rows first,
//! then columns), so skew propagates only through neighbours. The `MPI+R`
//! variant posts its transfers right after computing the borders and
//! overlaps the interior computation with them (the restructured program
//! of Table 8.2).
//!
//! These run directly on the message engine rather than through the BSP
//! runtime: the entire point of the comparison is the cost difference
//! between the runtimes' synchronization/one-sided machinery (headers,
//! count-map barrier) and bare neighbour exchanges.

use crate::decomp::Decomposition;
use hpm_kernels::rate::ProcessorModel;
use hpm_kernels::stencil::Stencil5;
use hpm_simnet::exchange::{
    exchange_jitter_draws, resolve_exchange_into, ExchangeMsg, ExchangeResult, ExchangeScratch,
};
use hpm_simnet::net::NetState;
use hpm_simnet::params::PlatformParams;
use hpm_stats::rng::{derive_rng, JitterBuf};
use hpm_topology::Placement;

/// Stream label of the border-exchange resolutions; `rep` enumerates
/// `(iteration, stage)` — two stages per blocking iteration, one pass
/// per MPI+R iteration.
const STENCIL_JITTER_LABEL: u64 = 0x4D50_4958; // b"MPIX"

/// Which MPI-style program to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MpiVariant {
    /// Compute everything, then the Fig. 8.3 two-stage blocking exchange.
    Blocking2Stage,
    /// Borders first, requests posted early, interior overlapped (MPI+R).
    EarlyRequests,
}

impl MpiVariant {
    /// Label used in reports and figures.
    pub fn label(&self) -> &'static str {
        match self {
            MpiVariant::Blocking2Stage => "MPI",
            MpiVariant::EarlyRequests => "MPI+R",
        }
    }
}

/// Timing report of a run.
#[derive(Debug, Clone)]
pub struct MpiReport {
    /// Wall time of each iteration (max completion step over processes).
    pub iter_times: Vec<f64>,
    /// Total wall time.
    pub total: f64,
    /// The decomposition used.
    pub decomp: Decomposition,
}

impl MpiReport {
    /// Mean per-iteration time.
    pub fn mean_iter(&self) -> f64 {
        self.iter_times.iter().sum::<f64>() / self.iter_times.len().max(1) as f64
    }
}

/// Runs the MPI-style stencil on `placement` with per-core `proc_model`.
///
/// `speedup` scales the compute rate (used by the hybrid variant to model
/// intra-node threading); 1.0 for plain runs.
#[allow(clippy::too_many_arguments)]
pub fn run_mpi_stencil(
    params: &PlatformParams,
    placement: &Placement,
    proc_model: &ProcessorModel,
    n: usize,
    iters: usize,
    variant: MpiVariant,
    speedup: f64,
    seed: u64,
) -> MpiReport {
    assert!(speedup > 0.0);
    let p = placement.nprocs();
    let decomp = Decomposition::new(n, p);
    // Compute-time jitter stays scalar (draws arrive per rank as the
    // iteration advances); the border exchanges below run on the batched
    // engine with per-(iteration, stage) streams.
    let mut rng = derive_rng(seed, 0x4D50);
    let mut jitter = params.jitter;
    let mut net = NetState::new(placement);
    let mut ex_scratch = ExchangeScratch::default();
    let mut ex_jitter = JitterBuf::new();
    let mut res = ExchangeResult::default();
    let mut t = vec![0.0f64; p];
    let mut iter_times = Vec::with_capacity(iters);
    let per_cell: Vec<f64> = (0..p)
        .map(|r| proc_model.secs_per_element(&Stencil5, decomp.block(r).cells()) / speedup)
        .collect();

    for it in 0..iters {
        let start_max = t.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        match variant {
            MpiVariant::Blocking2Stage => {
                // Whole-block compute.
                for (r, tr) in t.iter_mut().enumerate() {
                    let cells = decomp.block(r).cells() as f64;
                    *tr += cells * per_cell[r] * jitter.draw(&mut rng);
                }
                // Stage 1: north/south sendrecv.
                exchange_stage(
                    params,
                    placement,
                    &decomp,
                    &mut t,
                    &mut net,
                    (&mut ex_jitter, seed, 2 * it as u64),
                    (&mut ex_scratch, &mut res),
                    true,
                );
                // Stage 2: west/east sendrecv.
                exchange_stage(
                    params,
                    placement,
                    &decomp,
                    &mut t,
                    &mut net,
                    (&mut ex_jitter, seed, 2 * it as u64 + 1),
                    (&mut ex_scratch, &mut res),
                    false,
                );
            }
            MpiVariant::EarlyRequests => {
                // Borders first, post everything, interior overlapped.
                let mut msgs = Vec::new();
                let mut interior_done = vec![0.0f64; p];
                for r in 0..p {
                    let regions = decomp.regions(r);
                    let border = regions.pre_comm() as f64 * per_cell[r] * jitter.draw(&mut rng);
                    let t_border = t[r] + border;
                    let nb = decomp.neighbours(r);
                    for (peer, bytes) in [
                        (nb.north, decomp.ns_exchange_bytes(r, 1)),
                        (nb.south, decomp.ns_exchange_bytes(r, 1)),
                        (nb.west, decomp.we_exchange_bytes(r, 1)),
                        (nb.east, decomp.we_exchange_bytes(r, 1)),
                    ] {
                        if let Some(peer) = peer {
                            msgs.push(ExchangeMsg {
                                src: r,
                                dst: peer,
                                bytes,
                                issue: t_border,
                            });
                        }
                    }
                    let rest = (regions.inner_ring + regions.interior) as f64
                        * per_cell[r]
                        * jitter.draw(&mut rng);
                    interior_done[r] = t_border + rest;
                }
                ex_jitter.fill(
                    params.jitter.sigma,
                    seed,
                    STENCIL_JITTER_LABEL,
                    it as u64,
                    exchange_jitter_draws(&msgs),
                );
                resolve_exchange_into(
                    params,
                    placement,
                    &msgs,
                    &mut net,
                    &mut ex_jitter,
                    &mut ex_scratch,
                    &mut res,
                );
                // The closing waitall covers the send requests too — the
                // next iteration reuses the border buffers — so an
                // iteration ends no earlier than the process' own send
                // tails (`last_out`), its inbound borders, and its
                // interior compute.
                for (r, tr) in t.iter_mut().enumerate() {
                    *tr = interior_done[r].max(res.last_in[r]).max(res.last_out[r]);
                }
            }
        }
        let end_max = t.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        iter_times.push(end_max - start_max.max(0.0));
    }
    MpiReport {
        total: t.iter().copied().fold(f64::NEG_INFINITY, f64::max),
        iter_times,
        decomp,
    }
}

/// One blocking sendrecv stage: every process exchanges with its N/S (or
/// W/E) neighbours; it proceeds once its sends are issued and its inbound
/// borders have arrived.
#[allow(clippy::too_many_arguments)]
fn exchange_stage(
    params: &PlatformParams,
    placement: &Placement,
    decomp: &Decomposition,
    t: &mut [f64],
    net: &mut NetState,
    (ex_jitter, seed, rep): (&mut JitterBuf, u64, u64),
    (ex_scratch, res): (&mut ExchangeScratch, &mut ExchangeResult),
    north_south: bool,
) {
    let mut msgs = Vec::new();
    for (r, &tr) in t.iter().enumerate() {
        let nb = decomp.neighbours(r);
        let pairs = if north_south {
            [
                (nb.north, decomp.ns_exchange_bytes(r, 1)),
                (nb.south, decomp.ns_exchange_bytes(r, 1)),
            ]
        } else {
            [
                (nb.west, decomp.we_exchange_bytes(r, 1)),
                (nb.east, decomp.we_exchange_bytes(r, 1)),
            ]
        };
        for (peer, bytes) in pairs {
            if let Some(peer) = peer {
                msgs.push(ExchangeMsg {
                    src: r,
                    dst: peer,
                    bytes,
                    issue: tr,
                });
            }
        }
    }
    ex_jitter.fill(
        params.jitter.sigma,
        seed,
        STENCIL_JITTER_LABEL,
        rep,
        exchange_jitter_draws(&msgs),
    );
    resolve_exchange_into(params, placement, &msgs, net, ex_jitter, ex_scratch, res);
    // Blocking semantics: a process leaves the stage when its inbound
    // borders are in and its own sends have left the CPU.
    for (r, tr) in t.iter_mut().enumerate() {
        *tr = tr.max(res.last_in[r]).max(res.last_out[r]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpm_kernels::rate::xeon_core;
    use hpm_simnet::params::xeon_cluster_params;
    use hpm_topology::{cluster_8x2x4, PlacementPolicy};

    fn setup(p: usize) -> (PlatformParams, Placement, ProcessorModel) {
        (
            xeon_cluster_params(),
            Placement::new(cluster_8x2x4(), PlacementPolicy::RoundRobin, p),
            xeon_core(),
        )
    }

    fn run(p: usize, n: usize, variant: MpiVariant) -> MpiReport {
        let (params, placement, model) = setup(p);
        run_mpi_stencil(&params, &placement, &model, n, 4, variant, 1.0, 3)
    }

    #[test]
    fn iteration_times_positive() {
        let rep = run(16, 2048, MpiVariant::Blocking2Stage);
        assert_eq!(rep.iter_times.len(), 4);
        assert!(rep.iter_times.iter().all(|&t| t > 0.0));
    }

    #[test]
    fn early_requests_not_slower_than_blocking() {
        let blocking = run(16, 2048, MpiVariant::Blocking2Stage).mean_iter();
        let early = run(16, 2048, MpiVariant::EarlyRequests).mean_iter();
        assert!(
            early <= blocking * 1.02,
            "MPI+R {early} must not lose to MPI {blocking}"
        );
    }

    #[test]
    fn strong_scaling_reduces_iteration_time() {
        let t4 = run(4, 4096, MpiVariant::Blocking2Stage).mean_iter();
        let t64 = run(64, 4096, MpiVariant::Blocking2Stage).mean_iter();
        assert!(t64 < t4, "64 procs {t64} vs 4 procs {t4}");
    }

    #[test]
    fn compute_dominates_at_large_local_blocks() {
        // With one process the iteration is pure compute.
        let (params, placement, model) = setup(1);
        let rep = run_mpi_stencil(
            &params,
            &placement,
            &model,
            1024,
            2,
            MpiVariant::Blocking2Stage,
            1.0,
            3,
        );
        let expect = 1024.0 * 1024.0 * model.secs_per_element(&Stencil5, 1024 * 1024);
        let got = rep.mean_iter();
        assert!(
            (got - expect).abs() / expect < 0.2,
            "single-proc iteration {got} vs compute {expect}"
        );
    }

    #[test]
    fn speedup_scales_compute() {
        let (params, placement, model) = setup(1);
        let base = run_mpi_stencil(
            &params,
            &placement,
            &model,
            1024,
            2,
            MpiVariant::Blocking2Stage,
            1.0,
            3,
        )
        .mean_iter();
        let fast = run_mpi_stencil(
            &params,
            &placement,
            &model,
            1024,
            2,
            MpiVariant::Blocking2Stage,
            4.0,
            3,
        )
        .mean_iter();
        assert!(
            (base / fast - 4.0).abs() < 0.5,
            "speedup 4 expected: {base} vs {fast}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let a = run(8, 1024, MpiVariant::EarlyRequests);
        let b = run(8, 1024, MpiVariant::EarlyRequests);
        assert_eq!(a.iter_times, b.iter_times);
    }
}
