//! The application model of the BSP stencil (§8.5, Figs. 8.8–8.9).
//!
//! The predictor program combines the framework's independently captured
//! pieces exactly as Fig. 8.8 lays out:
//!
//! * a `P×1` requirement matrix of stencil cells against a `P×1` cost
//!   matrix of per-cell rates at the local footprint (the Ch. 4 term);
//! * `P×P` message-count and volume matrices against the benchmarked
//!   heterogeneous Hockney matrices (the Ch. 5 term), with the §6.2
//!   out-of-band header charged per operation;
//! * the payload-carrying dissemination-barrier prediction (the Ch. 6
//!   term);
//!
//! composed through the fundamental equation (Eq. 1.4) with the overlap
//! structure of the early-commit discipline: everything after the outer
//! ring is maskable computation, all border traffic is maskable
//! communication.

use crate::decomp::Decomposition;
use hpm_barriers::patterns::dissemination;
use hpm_bsplib::ops::HEADER_BYTES;
use hpm_core::compute::superstep_times;
use hpm_core::hockney::comm_times;
use hpm_core::matrix::DMat;
use hpm_core::predictor::{predict_barrier, PayloadSchedule};
use hpm_core::superstep::SuperstepModel;
use hpm_kernels::rate::ProcessorModel;
use hpm_kernels::stencil::Stencil5;
use hpm_simnet::microbench::PlatformProfile;
use hpm_topology::Placement;

/// A per-iteration prediction for the BSP stencil.
#[derive(Debug, Clone)]
pub struct StencilPrediction {
    /// The assembled superstep model (per-process vectors inside).
    pub model: SuperstepModel,
    /// Predicted synchronization cost.
    pub sync: f64,
    /// Predicted wall time of one iteration.
    pub total: f64,
}

/// Builds the Fig. 8.8 matrices and evaluates the Fig. 8.9 predictor for
/// one Jacobi iteration on an `n×n` problem.
pub fn predict_bsp_iteration(
    profile: &PlatformProfile,
    proc_model: &ProcessorModel,
    placement: &Placement,
    n: usize,
) -> StencilPrediction {
    let p = placement.nprocs();
    let decomp = Decomposition::new(n, p);

    // Computation: R (cells) ⊗ C (seconds per cell at local footprint).
    let r_comp = DMat::from_fn(p, 1, |i, _| decomp.block(i).cells() as f64);
    let c_comp = DMat::from_fn(p, 1, |i, _| {
        proc_model.secs_per_element(&Stencil5, decomp.block(i).cells())
    });
    let comp = superstep_times(&r_comp, &c_comp);
    // Maskable: the inner ring and interior, computed after the commit.
    let comp_maskable: Vec<f64> = (0..p)
        .map(|i| {
            let regions = decomp.regions(i);
            let frac =
                (regions.inner_ring + regions.interior) as f64 / regions.total().max(1) as f64;
            comp[i] * frac
        })
        .collect();

    // Communication: counts (header + payload per neighbour) and volumes.
    let mut counts = DMat::zeros(p, p);
    let mut volumes = DMat::zeros(p, p);
    for i in 0..p {
        let nb = decomp.neighbours(i);
        for (peer, bytes) in [
            (nb.north, decomp.ns_exchange_bytes(i, 1)),
            (nb.south, decomp.ns_exchange_bytes(i, 1)),
            (nb.west, decomp.we_exchange_bytes(i, 1)),
            (nb.east, decomp.we_exchange_bytes(i, 1)),
        ] {
            if let Some(peer) = peer {
                counts.set(i, peer, counts.get(i, peer) + 2.0);
                volumes.set(
                    i,
                    peer,
                    volumes.get(i, peer) + bytes as f64 + HEADER_BYTES as f64,
                );
            }
        }
    }
    let comm = comm_times(&counts, &volumes, &profile.hockney);
    // Early commit: everything is exposed to overlap.
    let comm_maskable = comm.clone();

    // Synchronization: the payload-carrying barrier.
    let sync = if p >= 2 {
        predict_barrier(
            &dissemination(p),
            &profile.costs,
            &PayloadSchedule::dissemination_count_map(p),
        )
        .total
    } else {
        0.0
    };

    let model = SuperstepModel::new(comp, comp_maskable, comm, comm_maskable, sync);
    let total = model.total();
    StencilPrediction { model, sync, total }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpm_kernels::rate::xeon_core;
    use hpm_simnet::microbench::{bench_platform, MicrobenchConfig};
    use hpm_simnet::params::xeon_cluster_params;
    use hpm_topology::{cluster_8x2x4, PlacementPolicy};

    fn predict(p: usize, n: usize) -> StencilPrediction {
        let params = xeon_cluster_params();
        let placement = Placement::new(cluster_8x2x4(), PlacementPolicy::RoundRobin, p);
        let profile = bench_platform(&params, &placement, &MicrobenchConfig::quick(), 21);
        predict_bsp_iteration(&profile, &xeon_core(), &placement, n)
    }

    #[test]
    fn prediction_is_positive_and_bounded() {
        let pr = predict(16, 2048);
        assert!(pr.total > 0.0 && pr.total < 1.0, "total {}", pr.total);
        assert!(pr.sync > 0.0);
    }

    #[test]
    fn compute_dominates_large_problems() {
        // On a big grid the compute term dwarfs sync + comm.
        let pr = predict(16, 8192);
        let comp_max = pr
            .model
            .comp
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(
            comp_max > 5.0 * pr.sync,
            "compute {comp_max} should dominate sync {}",
            pr.sync
        );
    }

    #[test]
    fn sync_matters_for_small_problems_at_scale() {
        let pr = predict(64, 512);
        let comp_max = pr
            .model
            .comp
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(
            pr.sync > comp_max / 10.0,
            "sync {} should be significant vs compute {comp_max}",
            pr.sync
        );
    }

    #[test]
    fn strong_scaling_prediction_decreases_then_flattens() {
        let n = 4096;
        let t4 = predict(4, n).total;
        let t16 = predict(16, n).total;
        let t64 = predict(64, n).total;
        assert!(t16 < t4);
        let gain_a = t4 - t16;
        let gain_b = t16 - t64;
        assert!(gain_b < gain_a, "diminishing returns: {t4} {t16} {t64}");
    }

    #[test]
    fn overlap_saving_is_positive_when_comm_matters() {
        let pr = predict(64, 2048);
        assert!(
            pr.model.overlap_saving() > 0.0,
            "early commitment must be predicted to save time"
        );
    }
}
