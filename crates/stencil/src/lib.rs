//! # hpm-stencil — the Laplacian 5-point stencil case study (Ch. 8)
//!
//! A Jacobi iteration on an `N×N` grid, block-decomposed over a 2-D
//! process grid with one-deep ghost areas (Fig. 8.1), in four
//! implementations whose strong-scaling behaviour the thesis compares
//! (Figs. 8.4–8.7):
//!
//! * [`bsp`] — the BSPlib implementation: the local domain is split into
//!   the 17 regions of Fig. 8.2 (outer boundary ring: 4 corners + 4
//!   edges; inner ring: 8 segments; interior), computed outside-in so
//!   border `hpput`s commit as early as possible and overlap the interior
//!   computation.
//! * [`mpi`] — an MPI-style implementation with the 2-stage blocking
//!   border exchange of Fig. 8.3 (rows, then columns): no overlap, but
//!   also no global synchronization — skew propagates only via
//!   neighbours.
//! * [`mpi`]'s `MPI+R` variant — borders first, requests posted early,
//!   interior computed while transfers fly (Table 8.2's second column).
//! * [`hybrid`] — one process per node with intra-node threading: the
//!   network sees fewer, larger subdomains.
//!
//! [`predictor`] assembles the framework's model of the BSP implementation
//! (Figs. 8.8–8.9): kernel-rate requirement/cost matrices, heterogeneous
//! Hockney communication terms, the payload-carrying barrier prediction
//! and the Eq. 1.4 overlap composition — producing the B-series
//! prediction-vs-measurement comparisons. [`overlap_opt`] is the §8.6
//! model-driven optimization: choosing the ghost-zone (shadow region)
//! width that balances redundant computation against amortized
//! synchronization (Figs. 8.16–8.18).

pub mod bsp;
pub mod configs;
pub mod decomp;
pub mod field;
pub mod hybrid;
pub mod mpi;
pub mod overlap_opt;
pub mod predictor;

pub use bsp::{run_bsp_stencil, BspStencilReport, CommitDiscipline};
pub use decomp::{Decomposition, LocalBlock};
pub use hybrid::run_hybrid_stencil;
pub use mpi::{run_mpi_stencil, MpiVariant};
pub use overlap_opt::{optimize_ghost_width, GhostSweep};
pub use predictor::{predict_bsp_iteration, StencilPrediction};
