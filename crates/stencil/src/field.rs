//! Local field storage with ghost cells, and a sequential reference.
//!
//! The numerical side of the case study: each process owns a
//! `(width+2)×(height+2)` array (owned cells plus a one-deep ghost ring,
//! Fig. 8.1). A sweep computes the Jacobi update over owned cells reading
//! ghosts where needed; border extraction/injection moves the cells that
//! neighbouring processes need. Tests verify that the distributed
//! computation reproduces the sequential reference exactly, which is what
//! lets the timing experiments claim they time a *correct* program.

use crate::decomp::{Decomposition, LocalBlock};

/// A process-local field with a one-deep ghost ring.
#[derive(Debug, Clone)]
pub struct LocalField {
    pub block: LocalBlock,
    /// Row-major `(height+2) × (width+2)` storage, generation A.
    cur: Vec<f64>,
    /// Generation B.
    next: Vec<f64>,
}

impl LocalField {
    /// Stride of the padded array.
    fn stride(&self) -> usize {
        self.block.width + 2
    }

    /// Creates the local portion of a global field defined by `f(x, y)`
    /// over the `n×n` grid (zero outside — fixed boundary).
    pub fn init(
        decomp: &Decomposition,
        rank: usize,
        f: impl Fn(usize, usize) -> f64,
    ) -> LocalField {
        let block = decomp.block(rank);
        // Global offset of this block.
        let off = |n: usize, parts: usize, idx: usize| -> usize {
            (0..idx)
                .map(|k| n / parts + usize::from(k < n % parts))
                .sum()
        };
        let x0 = off(decomp.n, decomp.px, block.gx);
        let y0 = off(decomp.n, decomp.py, block.gy);
        let stride = block.width + 2;
        let mut cur = vec![0.0; stride * (block.height + 2)];
        for ly in 0..block.height {
            for lx in 0..block.width {
                cur[(ly + 1) * stride + lx + 1] = f(x0 + lx, y0 + ly);
            }
        }
        let next = cur.clone();
        LocalField { block, cur, next }
    }

    /// Owned cell value (local coordinates).
    pub fn get(&self, lx: usize, ly: usize) -> f64 {
        self.cur[(ly + 1) * self.stride() + lx + 1]
    }

    /// One Jacobi sweep over all owned cells (ghosts already in place).
    pub fn sweep(&mut self) {
        let s = self.stride();
        for ly in 1..=self.block.height {
            for lx in 1..=self.block.width {
                let i = ly * s + lx;
                self.next[i] =
                    0.25 * (self.cur[i - s] + self.cur[i + s] + self.cur[i - 1] + self.cur[i + 1]);
            }
        }
        std::mem::swap(&mut self.cur, &mut self.next);
    }

    /// Extracts a border as bytes: `side` ∈ {N, S, W, E} of the owned area.
    pub fn extract_border(&self, side: Side) -> Vec<u8> {
        let s = self.stride();
        let vals: Vec<f64> = match side {
            Side::North => (1..=self.block.width).map(|lx| self.cur[s + lx]).collect(),
            Side::South => {
                let ly = self.block.height;
                (1..=self.block.width)
                    .map(|lx| self.cur[ly * s + lx])
                    .collect()
            }
            Side::West => (1..=self.block.height)
                .map(|ly| self.cur[ly * s + 1])
                .collect(),
            Side::East => {
                let lx = self.block.width;
                (1..=self.block.height)
                    .map(|ly| self.cur[ly * s + lx])
                    .collect()
            }
        };
        vals.iter().flat_map(|v| v.to_le_bytes()).collect()
    }

    /// Installs ghost bytes received from the `side` neighbour.
    pub fn install_ghost(&mut self, side: Side, bytes: &[u8]) {
        let vals: Vec<f64> = bytes
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().expect("8B")))
            .collect();
        let s = self.stride();
        match side {
            Side::North => {
                assert_eq!(vals.len(), self.block.width);
                for (k, v) in vals.iter().enumerate() {
                    self.cur[k + 1] = *v;
                }
            }
            Side::South => {
                assert_eq!(vals.len(), self.block.width);
                let ly = self.block.height + 1;
                for (k, v) in vals.iter().enumerate() {
                    self.cur[ly * s + k + 1] = *v;
                }
            }
            Side::West => {
                assert_eq!(vals.len(), self.block.height);
                for (k, v) in vals.iter().enumerate() {
                    self.cur[(k + 1) * s] = *v;
                }
            }
            Side::East => {
                assert_eq!(vals.len(), self.block.height);
                let lx = self.block.width + 1;
                for (k, v) in vals.iter().enumerate() {
                    self.cur[(k + 1) * s + lx] = *v;
                }
            }
        }
    }

    /// Sum of owned cells (for checksums).
    pub fn owned_sum(&self) -> f64 {
        let mut acc = 0.0;
        for ly in 0..self.block.height {
            for lx in 0..self.block.width {
                acc += self.get(lx, ly);
            }
        }
        acc
    }
}

/// A face of a block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    North,
    South,
    West,
    East,
}

impl Side {
    /// The matching face at the neighbour.
    pub fn opposite(&self) -> Side {
        match self {
            Side::North => Side::South,
            Side::South => Side::North,
            Side::West => Side::East,
            Side::East => Side::West,
        }
    }
}

/// Sequential reference: `iters` Jacobi sweeps of the full `n×n` grid with
/// zero (fixed) boundary, initialized by `f`.
pub fn sequential_reference(n: usize, iters: usize, f: impl Fn(usize, usize) -> f64) -> Vec<f64> {
    let s = n + 2;
    let mut cur = vec![0.0; s * s];
    for y in 0..n {
        for x in 0..n {
            cur[(y + 1) * s + x + 1] = f(x, y);
        }
    }
    let mut next = cur.clone();
    for _ in 0..iters {
        for y in 1..=n {
            for x in 1..=n {
                let i = y * s + x;
                next[i] = 0.25 * (cur[i - s] + cur[i + s] + cur[i - 1] + cur[i + 1]);
            }
        }
        std::mem::swap(&mut cur, &mut next);
    }
    // Strip padding.
    let mut out = Vec::with_capacity(n * n);
    for y in 0..n {
        for x in 0..n {
            out.push(cur[(y + 1) * s + x + 1]);
        }
    }
    out
}

/// Runs the distributed sweep in-process (exchange by direct copies) —
/// the data-correctness harness used by tests and by the BSP program.
pub fn distributed_reference(
    decomp: &Decomposition,
    iters: usize,
    f: impl Fn(usize, usize) -> f64 + Copy,
) -> Vec<LocalField> {
    let p = decomp.p();
    let mut fields: Vec<LocalField> = (0..p).map(|r| LocalField::init(decomp, r, f)).collect();
    for _ in 0..iters {
        // Exchange all borders, then sweep.
        let mut transfers: Vec<(usize, Side, Vec<u8>)> = Vec::new();
        #[allow(clippy::needless_range_loop)]
        for r in 0..p {
            let nb = decomp.neighbours(r);
            for (side, peer) in [
                (Side::North, nb.north),
                (Side::South, nb.south),
                (Side::West, nb.west),
                (Side::East, nb.east),
            ] {
                if let Some(peer) = peer {
                    transfers.push((peer, side.opposite(), fields[r].extract_border(side)));
                }
            }
        }
        for (dst, side, bytes) in transfers {
            fields[dst].install_ghost(side, &bytes);
        }
        for fld in fields.iter_mut() {
            fld.sweep();
        }
    }
    fields
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hill(x: usize, y: usize) -> f64 {
        ((x * 31 + y * 17) % 101) as f64 / 101.0
    }

    fn compare_with_reference(n: usize, p: usize, iters: usize) {
        let d = Decomposition::new(n, p);
        let reference = sequential_reference(n, iters, hill);
        let fields = distributed_reference(&d, iters, hill);
        let off = |nn: usize, parts: usize, idx: usize| -> usize {
            (0..idx)
                .map(|k| nn / parts + usize::from(k < nn % parts))
                .sum()
        };
        for (r, fld) in fields.iter().enumerate() {
            let b = fld.block;
            let x0 = off(n, d.px, b.gx);
            let y0 = off(n, d.py, b.gy);
            for ly in 0..b.height {
                for lx in 0..b.width {
                    let want = reference[(y0 + ly) * n + x0 + lx];
                    let got = fld.get(lx, ly);
                    assert!(
                        (want - got).abs() < 1e-12,
                        "rank {r} cell ({lx},{ly}): {got} vs {want}"
                    );
                }
            }
        }
    }

    #[test]
    fn distributed_matches_sequential_2x2() {
        compare_with_reference(16, 4, 5);
    }

    #[test]
    fn distributed_matches_sequential_3x2() {
        compare_with_reference(20, 6, 7);
    }

    #[test]
    fn distributed_matches_sequential_uneven_sizes() {
        compare_with_reference(17, 4, 4);
    }

    #[test]
    fn distributed_matches_sequential_single_proc() {
        compare_with_reference(12, 1, 3);
    }

    #[test]
    fn border_round_trip() {
        let d = Decomposition::new(16, 4);
        let fld = LocalField::init(&d, 0, hill);
        let east = fld.extract_border(Side::East);
        assert_eq!(east.len(), fld.block.height * 8);
        let mut other = LocalField::init(&d, 1, hill);
        other.install_ghost(Side::West, &east);
        // Rank 1's west ghost must now equal rank 0's east border.
        let vals: Vec<f64> = east
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().expect("8B")))
            .collect();
        let s = other.block.width + 2;
        for (k, v) in vals.iter().enumerate() {
            assert_eq!(other.cur[(k + 1) * s], *v);
        }
    }

    #[test]
    fn opposite_sides_pair_up() {
        assert_eq!(Side::North.opposite(), Side::South);
        assert_eq!(Side::East.opposite(), Side::West);
    }

    #[test]
    fn sweep_preserves_uniform_field() {
        // All-ones with zero boundary decays at the edges but the centre
        // of a large block stays 1 after one sweep.
        let d = Decomposition::new(32, 1);
        let mut fld = LocalField::init(&d, 0, |_, _| 1.0);
        fld.sweep();
        assert_eq!(fld.get(16, 16), 1.0);
        assert!(fld.get(0, 0) < 1.0);
    }
}
