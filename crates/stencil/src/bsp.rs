//! The BSP implementation of the stencil (§8.3.1).
//!
//! One superstep per Jacobi iteration. The local block is treated as the
//! 17 regions of Fig. 8.2 and computed outside-in: outer ring (corners +
//! edges) first, so the four border `put`s commit as early as the data
//! exists; the inner ring and interior are computed while the transfers
//! fly. Ghost values land in registered buffers during the sync and are
//! installed at the top of the next superstep.
//!
//! Three commit disciplines exist for the A2 comparison of BSP variants:
//! unbuffered early commit (`hpput` right after the outer ring — the
//! thesis' preferred discipline), buffered early commit (`bsp_put`'s extra
//! copy), and late commit (everything computed before any communication —
//! the discipline the classic BSP processing model would use).

use crate::decomp::Decomposition;
use crate::field::{LocalField, Side};
use hpm_bsplib::ctx::BspCtx;
use hpm_bsplib::mem::RegHandle;
use hpm_bsplib::ops::StepOutcome;
use hpm_bsplib::runtime::{run_spmd, BspConfig, BspProgram};
use hpm_kernels::stencil::Stencil5;

/// When and how border data is committed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommitDiscipline {
    /// `hpput` immediately after the outer ring is computed.
    EarlyUnbuffered,
    /// `bsp_put` immediately after the outer ring (extra sender copy).
    EarlyBuffered,
    /// All computation first, then `bsp_put` — no overlap exposed.
    Late,
}

impl CommitDiscipline {
    /// Label used in reports and figures.
    pub fn label(&self) -> &'static str {
        match self {
            CommitDiscipline::EarlyUnbuffered => "BSP-hp",
            CommitDiscipline::EarlyBuffered => "BSP-buf",
            CommitDiscipline::Late => "BSP-late",
        }
    }
}

/// The SPMD stencil program.
struct StencilProgram {
    decomp: Decomposition,
    iters: usize,
    discipline: CommitDiscipline,
    /// Real field data (None = timing-only run with dummy payloads).
    field: Option<LocalField>,
    step: usize,
    ghosts: [Option<RegHandle>; 4], // N, S, W, E receive buffers
    checksum: f64,
}

const SIDES: [Side; 4] = [Side::North, Side::South, Side::West, Side::East];

impl StencilProgram {
    fn side_len(&self, rank: usize, side: Side) -> usize {
        let b = self.decomp.block(rank);
        match side {
            Side::North | Side::South => b.width,
            Side::West | Side::East => b.height,
        }
    }

    fn neighbour(&self, rank: usize, side: Side) -> Option<usize> {
        let nb = self.decomp.neighbours(rank);
        match side {
            Side::North => nb.north,
            Side::South => nb.south,
            Side::West => nb.west,
            Side::East => nb.east,
        }
    }

    fn commit_borders(&mut self, ctx: &mut BspCtx, buffered: bool) {
        let rank = ctx.pid();
        for (k, side) in SIDES.iter().enumerate() {
            let Some(peer) = self.neighbour(rank, *side) else {
                continue;
            };
            // My border for `side` lands in the peer's opposite ghost
            // buffer. Registration handles agree across processes because
            // allocation order is identical (SPMD).
            let peer_buf = self.ghosts[opposite_index(k)].expect("registered");
            let bytes = match &self.field {
                Some(f) => f.extract_border(*side),
                None => vec![0u8; self.side_len(rank, *side) * 8],
            };
            if buffered {
                ctx.put(peer, peer_buf, 0, &bytes);
            } else {
                ctx.hpput(peer, peer_buf, 0, &bytes);
            }
        }
    }

    fn install_ghosts(&mut self, ctx: &mut BspCtx) {
        let rank = ctx.pid();
        if self.field.is_none() {
            return;
        }
        for (k, side) in SIDES.iter().enumerate() {
            if self.neighbour(rank, *side).is_none() {
                continue;
            }
            let buf = self.ghosts[k].expect("registered");
            let bytes = ctx.read_buf(buf).to_vec();
            self.field
                .as_mut()
                .expect("field present")
                .install_ghost(*side, &bytes);
        }
    }
}

/// Ghost buffer index receiving data from a side's neighbour: the
/// neighbour's `side.opposite()` border arrives in our `side` buffer, so
/// when *we* send our `side` border it must go to the peer's opposite
/// buffer index.
fn opposite_index(side_index: usize) -> usize {
    match side_index {
        0 => 1, // our north border → peer's south ghost buffer
        1 => 0,
        2 => 3,
        _ => 2,
    }
}

impl BspProgram for StencilProgram {
    fn superstep(&mut self, ctx: &mut BspCtx) -> StepOutcome {
        let rank = ctx.pid();
        if self.step == 0 {
            // Registration superstep: one ghost buffer per side.
            for (k, side) in SIDES.iter().enumerate() {
                let len = self.side_len(rank, *side) * 8;
                let h = ctx.alloc(len.max(8));
                ctx.push_reg(h);
                self.ghosts[k] = Some(h);
            }
            self.step = 1;
            return StepOutcome::Continue;
        }
        if self.step == 1 {
            // Priming superstep: exchange generation-0 borders so the
            // first sweep sees its neighbours' initial values.
            self.commit_borders(ctx, false);
            self.step = 2;
            return StepOutcome::Continue;
        }
        let iter = self.step - 2;
        if iter >= self.iters {
            if let Some(f) = &self.field {
                self.checksum = f.owned_sum();
            }
            return StepOutcome::Halt;
        }
        // Top of the iteration: install ghosts delivered by last sync.
        self.install_ghosts(ctx);
        // Numerical sweep (data side, instantaneous; time is charged
        // through the region schedule below).
        if let Some(f) = &mut self.field {
            f.sweep();
        }
        // Region schedule: charge outer ring, commit, charge the rest.
        let regions = self.decomp.regions(rank);
        let cells = self.decomp.block(rank).cells();
        match self.discipline {
            CommitDiscipline::EarlyUnbuffered => {
                ctx.compute_elements(&Stencil5, cells, regions.pre_comm());
                self.commit_borders(ctx, false);
                ctx.compute_elements(&Stencil5, cells, regions.inner_ring + regions.interior);
            }
            CommitDiscipline::EarlyBuffered => {
                ctx.compute_elements(&Stencil5, cells, regions.pre_comm());
                self.commit_borders(ctx, true);
                ctx.compute_elements(&Stencil5, cells, regions.inner_ring + regions.interior);
            }
            CommitDiscipline::Late => {
                ctx.compute_elements(&Stencil5, cells, regions.total());
                self.commit_borders(ctx, true);
            }
        }
        self.step += 1;
        StepOutcome::Continue
    }
}

/// Result of a BSP stencil run.
#[derive(Debug, Clone)]
pub struct BspStencilReport {
    /// Wall time of each Jacobi iteration (superstep).
    pub iter_times: Vec<f64>,
    /// Total virtual run time.
    pub total: f64,
    /// Sum of owned cells over all processes after the run (data mode).
    pub checksum: Option<f64>,
    /// The decomposition used.
    pub decomp: Decomposition,
}

impl BspStencilReport {
    /// Mean per-iteration time.
    pub fn mean_iter(&self) -> f64 {
        self.iter_times.iter().sum::<f64>() / self.iter_times.len().max(1) as f64
    }
}

/// Runs the BSP stencil.
///
/// `carry_data`: move real field values through the runtime (small grids;
/// enables the checksum) or dummy payloads of identical size (large
/// timing-only runs).
pub fn run_bsp_stencil(
    cfg: &BspConfig,
    n: usize,
    iters: usize,
    discipline: CommitDiscipline,
    carry_data: bool,
) -> BspStencilReport {
    let p = cfg.placement.nprocs();
    let decomp = Decomposition::new(n, p);
    let init = |x: usize, y: usize| ((x * 31 + y * 17) % 101) as f64 / 101.0;
    let res = run_spmd(cfg, |rank| StencilProgram {
        decomp,
        iters,
        discipline,
        field: carry_data.then(|| LocalField::init(&decomp, rank, init)),
        step: 0,
        ghosts: [None; 4],
        checksum: 0.0,
    })
    .expect("stencil runs");
    // Supersteps 0 (registration) and 1 (priming exchange) are setup; the
    // timed iterations are supersteps 2..=iters+1.
    let iter_times: Vec<f64> = (2..=iters + 1).map(|k| res.superstep_time(k)).collect();
    let checksum = carry_data.then(|| res.programs.iter().map(|p| p.checksum).sum());
    BspStencilReport {
        iter_times,
        total: res.total_time,
        checksum,
        decomp,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::sequential_reference;
    use hpm_kernels::rate::xeon_core;
    use hpm_simnet::params::xeon_cluster_params;
    use hpm_topology::{cluster_8x2x4, Placement, PlacementPolicy};

    fn cfg(p: usize) -> BspConfig {
        BspConfig::new(
            xeon_cluster_params(),
            Placement::new(cluster_8x2x4(), PlacementPolicy::RoundRobin, p),
            xeon_core(),
            31,
        )
    }

    #[test]
    fn bsp_stencil_matches_sequential_reference() {
        // Full end-to-end correctness: ghost data moved by bsp puts.
        let n = 20;
        let iters = 6;
        let init = |x: usize, y: usize| ((x * 31 + y * 17) % 101) as f64 / 101.0;
        let reference = sequential_reference(n, iters, init);
        let want: f64 = reference.iter().sum();
        let rep = run_bsp_stencil(&cfg(4), n, iters, CommitDiscipline::EarlyUnbuffered, true);
        let got = rep.checksum.expect("data mode");
        assert!(
            (got - want).abs() < 1e-9,
            "distributed {got} vs sequential {want}"
        );
    }

    #[test]
    fn all_disciplines_produce_identical_numerics() {
        let n = 16;
        let iters = 4;
        let a = run_bsp_stencil(&cfg(4), n, iters, CommitDiscipline::EarlyUnbuffered, true);
        let b = run_bsp_stencil(&cfg(4), n, iters, CommitDiscipline::EarlyBuffered, true);
        let c = run_bsp_stencil(&cfg(4), n, iters, CommitDiscipline::Late, true);
        assert_eq!(a.checksum, b.checksum);
        assert_eq!(a.checksum, c.checksum);
    }

    #[test]
    fn early_commit_is_not_slower_than_late() {
        // The A2 comparison at a size where transfers matter: early
        // disciplines overlap the border exchange with interior compute.
        let rep_early =
            run_bsp_stencil(&cfg(16), 2048, 4, CommitDiscipline::EarlyUnbuffered, false);
        let rep_late = run_bsp_stencil(&cfg(16), 2048, 4, CommitDiscipline::Late, false);
        assert!(
            rep_early.mean_iter() <= rep_late.mean_iter() * 1.05,
            "early {} vs late {}",
            rep_early.mean_iter(),
            rep_late.mean_iter()
        );
    }

    #[test]
    fn iteration_times_are_positive_and_plausible() {
        let rep = run_bsp_stencil(&cfg(8), 1024, 5, CommitDiscipline::EarlyUnbuffered, false);
        assert_eq!(rep.iter_times.len(), 5);
        for &t in &rep.iter_times {
            assert!(t > 0.0 && t < 1.0, "iteration time {t}");
        }
    }

    #[test]
    fn strong_scaling_reduces_iteration_time() {
        let t4 =
            run_bsp_stencil(&cfg(4), 2048, 3, CommitDiscipline::EarlyUnbuffered, false).mean_iter();
        let t32 = run_bsp_stencil(&cfg(32), 2048, 3, CommitDiscipline::EarlyUnbuffered, false)
            .mean_iter();
        assert!(t32 < t4, "32 procs {t32} should beat 4 procs {t4}");
    }
}
