//! Experimental configurations (Table 8.1).
//!
//! The A/B/C experiment families of Chapter 8, with the problem sizes and
//! implementation sets each compares. The absolute sizes are calibrated
//! to the simulated platform so that the "large" problem is
//! compute-dominated at full machine scale and the "small" problem is
//! communication/synchronization-dominated — the regimes the thesis'
//! large/small pairs probe.

/// One row of Table 8.1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExperimentConfig {
    /// Experiment id (A1–A4, B1–B6, C1).
    pub id: &'static str,
    /// What the experiment compares.
    pub description: &'static str,
    /// Global grid side.
    pub n: usize,
    /// Implementations included.
    pub implementations: &'static [&'static str],
    /// Jacobi iterations timed.
    pub iters: usize,
}

/// The "large" problem side (compute-dominated at 64 processes).
pub const LARGE_N: usize = 8192;
/// The "small" problem side (sync-dominated at 64 processes).
pub const SMALL_N: usize = 2048;

/// Table 8.1.
pub fn table_8_1() -> Vec<ExperimentConfig> {
    vec![
        ExperimentConfig {
            id: "A1",
            description: "strong scaling, all implementations, large problem",
            n: LARGE_N,
            implementations: &["BSP-hp", "BSP-buf", "BSP-late", "MPI", "MPI+R", "Hybrid"],
            iters: 4,
        },
        ExperimentConfig {
            id: "A2",
            description: "strong scaling, BSP implementations only, large problem",
            n: LARGE_N,
            implementations: &["BSP-hp", "BSP-buf", "BSP-late"],
            iters: 4,
        },
        ExperimentConfig {
            id: "A3",
            description: "strong scaling, selected implementations, small problem",
            n: SMALL_N,
            implementations: &["BSP-hp", "MPI", "MPI+R"],
            iters: 4,
        },
        ExperimentConfig {
            id: "A4",
            description: "strong scaling, selected implementations incl. hybrid, small problem",
            n: SMALL_N,
            implementations: &["BSP-hp", "MPI+R", "Hybrid"],
            iters: 4,
        },
        ExperimentConfig {
            id: "B1",
            description: "prediction vs measurement, BSP, large problem, xeon cluster",
            n: LARGE_N,
            implementations: &["BSP-hp"],
            iters: 4,
        },
        ExperimentConfig {
            id: "B2",
            description: "prediction vs measurement, BSP, small problem, xeon cluster",
            n: SMALL_N,
            implementations: &["BSP-hp"],
            iters: 4,
        },
        ExperimentConfig {
            id: "B3",
            description: "prediction vs measurement, BSP, large problem, opteron cluster",
            n: LARGE_N,
            implementations: &["BSP-hp"],
            iters: 4,
        },
        ExperimentConfig {
            id: "B4",
            description: "prediction vs measurement, BSP, small problem, opteron cluster",
            n: SMALL_N,
            implementations: &["BSP-hp"],
            iters: 4,
        },
        ExperimentConfig {
            id: "B5",
            description: "prediction vs measurement, BSP-late, large problem, xeon cluster",
            n: LARGE_N,
            implementations: &["BSP-late"],
            iters: 4,
        },
        ExperimentConfig {
            id: "B6",
            description: "prediction vs measurement, BSP-late, small problem, xeon cluster",
            n: SMALL_N,
            implementations: &["BSP-late"],
            iters: 4,
        },
        ExperimentConfig {
            id: "C1",
            description: "model-driven ghost-width adaptation, small problem, full machine",
            n: SMALL_N,
            implementations: &["BSP-adapted"],
            iters: 6,
        },
    ]
}

/// Renders Table 8.1.
pub fn render_table_8_1() -> String {
    use std::fmt::Write;
    let mut out = String::new();
    writeln!(
        out,
        "{:<4} {:<8} {:>6} {:<40}",
        "id", "N", "iters", "implementations"
    )
    .expect("writing to a String cannot fail");
    for c in table_8_1() {
        writeln!(
            out,
            "{:<4} {:<8} {:>6} {:<40}",
            c.id,
            c.n,
            c.iters,
            c.implementations.join(", ")
        )
        .expect("writing to a String cannot fail");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_all_experiment_ids() {
        let ids: Vec<&str> = table_8_1().iter().map(|c| c.id).collect();
        for want in [
            "A1", "A2", "A3", "A4", "B1", "B2", "B3", "B4", "B5", "B6", "C1",
        ] {
            assert!(ids.contains(&want), "missing {want}");
        }
    }

    #[test]
    fn large_exceeds_small() {
        const { assert!(LARGE_N > SMALL_N) };
    }

    #[test]
    fn render_includes_every_row() {
        let text = render_table_8_1();
        for c in table_8_1() {
            assert!(text.contains(c.id));
        }
    }
}
