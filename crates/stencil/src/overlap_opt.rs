//! Model-driven optimization of the shadow-region width (§8.6,
//! Figs. 8.16–8.18).
//!
//! The adapted superstep trades redundant computation for amortized
//! synchronization: with ghost zones `w` deep, border exchange and the
//! global sync run once every `w` Jacobi iterations, at the price of
//! computing a shrinking halo of shadow cells redundantly (iteration `j`
//! of a superstep can still update cells up to `w−1−j` deep into the
//! ghost region). Per-iteration cost is therefore
//!
//! ```text
//! T(w)/w = [ Σ_j compute(expanded block at depth w−1−j)
//!            ⊕ overlap(border exchange of w-deep bands)
//!            + sync ] / w
//! ```
//!
//! — a U-shaped curve whose minimum the framework predicts from the same
//! matrices as Ch. 8.5, and which the C1 experiment validates against
//! simulated execution.

use crate::decomp::Decomposition;
use hpm_barriers::patterns::dissemination;
use hpm_bsplib::ops::HEADER_BYTES;
use hpm_core::pattern::CommPattern;
use hpm_core::predictor::{predict_barrier, PayloadSchedule};
use hpm_kernels::rate::ProcessorModel;
use hpm_kernels::stencil::Stencil5;
use hpm_simnet::barrier::{BarrierSim, SimScratch};
use hpm_simnet::exchange::{
    exchange_jitter_draws, resolve_exchange_into, ExchangeMsg, ExchangeResult, ExchangeScratch,
};
use hpm_simnet::microbench::PlatformProfile;
use hpm_simnet::net::NetState;
use hpm_simnet::params::PlatformParams;
use hpm_stats::rng::{derive_rng, JitterBuf};
use hpm_topology::Placement;

/// Stream labels of the adapted superstep's band exchange and sync; the
/// ghost width keys the label (one sweep point per width), the
/// superstep index keys `rep`.
const GHOST_EXCHANGE_JITTER_LABEL: u64 = 0x4757_4558; // b"GWEX"
const GHOST_SYNC_JITTER_LABEL: u64 = 0x4757_5359; // b"GWSY"

/// Cells computed by one process in one `w`-deep superstep: the block is
/// logically expanded by `w−1−j` cells on each interior face at iteration
/// `j` (boundary faces do not expand). Returns the per-superstep total.
fn superstep_cells(decomp: &Decomposition, rank: usize, w: usize) -> usize {
    let b = decomp.block(rank);
    let nb = decomp.neighbours(rank);
    let faces_x = usize::from(nb.west.is_some()) + usize::from(nb.east.is_some());
    let faces_y = usize::from(nb.north.is_some()) + usize::from(nb.south.is_some());
    (0..w)
        .map(|j| {
            let d = w - 1 - j;
            (b.width + faces_x * d) * (b.height + faces_y * d)
        })
        .sum()
}

/// Border band bytes for one face with `w`-deep ghost zones (band depth
/// `w`, length extended by the diagonal halo contribution).
fn band_bytes(side_len: usize, w: usize) -> u64 {
    ((side_len + 2 * w) * w * 8) as u64
}

/// Sweep result: predicted and measured per-iteration times per width.
#[derive(Debug, Clone)]
pub struct GhostSweep {
    pub widths: Vec<usize>,
    pub predicted: Vec<f64>,
    pub measured: Vec<f64>,
}

impl GhostSweep {
    fn argmin(xs: &[f64]) -> usize {
        xs.iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("NaN time"))
            .expect("non-empty sweep")
            .0
    }

    /// Width the model recommends.
    pub fn best_predicted(&self) -> usize {
        self.widths[Self::argmin(&self.predicted)]
    }

    /// Width the (simulated) measurement prefers.
    pub fn best_measured(&self) -> usize {
        self.widths[Self::argmin(&self.measured)]
    }
}

/// Predicts the per-iteration cost of a `w`-deep superstep.
pub fn predict_ghost_width(
    profile: &PlatformProfile,
    proc_model: &ProcessorModel,
    placement: &Placement,
    n: usize,
    w: usize,
) -> f64 {
    assert!(w >= 1);
    let p = placement.nprocs();
    let decomp = Decomposition::new(n, p);
    let sync = if p >= 2 {
        predict_barrier(
            &dissemination(p),
            &profile.costs,
            &PayloadSchedule::dissemination_count_map(p),
        )
        .total
    } else {
        0.0
    };
    let mut worst = 0.0f64;
    for r in 0..p {
        let cells = superstep_cells(&decomp, r, w);
        let per_cell = proc_model.secs_per_element(&Stencil5, decomp.block(r).cells());
        let comp = cells as f64 * per_cell;
        // Border compute before commit: the outer ring of the expanded
        // block at depth w−1 (approximated by the plain outer ring).
        let pre = decomp.regions(r).pre_comm() as f64 * per_cell;
        let nb = decomp.neighbours(r);
        let b = decomp.block(r);
        let mut comm = 0.0;
        for (peer, len) in [
            (nb.north, b.width),
            (nb.south, b.width),
            (nb.west, b.height),
            (nb.east, b.height),
        ] {
            if let Some(peer) = peer {
                let bytes = band_bytes(len, w) + HEADER_BYTES;
                comm += profile.hockney.cost(r, peer, bytes as usize)
                    + profile.hockney.alpha.get(r, peer); // header message
            }
        }
        // Eq. 1.4 with all comm maskable against post-commit compute.
        let maskable_comp = comp - pre;
        let total = pre + maskable_comp.max(comm) + sync;
        worst = worst.max(total);
    }
    worst / w as f64
}

/// Simulates the adapted superstep for width `w`, returning the mean
/// per-iteration time over `supersteps` supersteps.
#[allow(clippy::too_many_arguments)]
pub fn measure_ghost_width(
    params: &PlatformParams,
    profile_placement: &Placement,
    proc_model: &ProcessorModel,
    n: usize,
    w: usize,
    supersteps: usize,
    seed: u64,
) -> f64 {
    let placement = profile_placement;
    let p = placement.nprocs();
    let decomp = Decomposition::new(n, p);
    let sim = BarrierSim::new(params, placement);
    // Fixed pattern for the whole sweep point: compile once, reuse the
    // executor and exchange scratch across supersteps.
    let plan = (p >= 2).then(|| dissemination(p).plan());
    let payload = PayloadSchedule::dissemination_count_map(p);
    let mut rng = derive_rng(seed, w as u64);
    let mut jitter = params.jitter;
    let mut net = NetState::new(placement);
    let mut scratch = SimScratch::new(placement);
    let mut ex_scratch = ExchangeScratch::default();
    let mut ex_jitter = JitterBuf::new();
    let mut res = ExchangeResult::default();
    let mut msgs: Vec<ExchangeMsg> = Vec::new();
    let mut compute_done = vec![0.0f64; p];
    let mut t = vec![0.0f64; p];
    for ss in 0..supersteps {
        msgs.clear();
        for r in 0..p {
            let cells = superstep_cells(&decomp, r, w);
            let per_cell = proc_model.secs_per_element(&Stencil5, decomp.block(r).cells());
            let pre = decomp.regions(r).pre_comm() as f64 * per_cell;
            let t_commit = t[r] + pre * jitter.draw(&mut rng);
            let nb = decomp.neighbours(r);
            let b = decomp.block(r);
            for (peer, len) in [
                (nb.north, b.width),
                (nb.south, b.width),
                (nb.west, b.height),
                (nb.east, b.height),
            ] {
                if let Some(peer) = peer {
                    msgs.push(ExchangeMsg {
                        src: r,
                        dst: peer,
                        bytes: HEADER_BYTES,
                        issue: t_commit,
                    });
                    msgs.push(ExchangeMsg {
                        src: r,
                        dst: peer,
                        bytes: band_bytes(len, w),
                        issue: t_commit,
                    });
                }
            }
            let rest = (cells as f64 * per_cell - pre).max(0.0);
            compute_done[r] = t_commit + rest * jitter.draw(&mut rng);
        }
        ex_jitter.fill(
            params.jitter.sigma,
            seed,
            GHOST_EXCHANGE_JITTER_LABEL.wrapping_add(w as u64),
            ss as u64,
            exchange_jitter_draws(&msgs),
        );
        resolve_exchange_into(
            params,
            placement,
            &msgs,
            &mut net,
            &mut ex_jitter,
            &mut ex_scratch,
            &mut res,
        );
        let exits: &[f64] = match &plan {
            Some(plan) => {
                sim.run_once_batched(
                    plan,
                    &payload,
                    &compute_done,
                    &mut net,
                    seed,
                    GHOST_SYNC_JITTER_LABEL.wrapping_add(w as u64),
                    ss as u64,
                    &mut scratch,
                );
                scratch.exits()
            }
            None => &compute_done,
        };
        // A process leaves the superstep once the barrier released it,
        // its inbound bands landed, and its own sends' o_send tails have
        // released the CPU (same accounting as the BSPlib sync).
        for (r, tr) in t.iter_mut().enumerate() {
            *tr = exits[r].max(res.last_in[r]).max(res.last_out[r]);
        }
    }
    let total = t.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    total / (supersteps * w) as f64
}

/// Runs the full C1 experiment: predict and measure per-iteration cost for
/// each candidate width.
pub fn optimize_ghost_width(
    params: &PlatformParams,
    profile: &PlatformProfile,
    proc_model: &ProcessorModel,
    placement: &Placement,
    n: usize,
    widths: &[usize],
    seed: u64,
) -> GhostSweep {
    let predicted = widths
        .iter()
        .map(|&w| predict_ghost_width(profile, proc_model, placement, n, w))
        .collect();
    let measured = widths
        .iter()
        .map(|&w| measure_ghost_width(params, placement, proc_model, n, w, 6, seed))
        .collect();
    GhostSweep {
        widths: widths.to_vec(),
        predicted,
        measured,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpm_kernels::rate::xeon_core;
    use hpm_simnet::microbench::{bench_platform, MicrobenchConfig};
    use hpm_simnet::params::xeon_cluster_params;
    use hpm_topology::{cluster_8x2x4, PlacementPolicy};

    fn sweep(p: usize, n: usize) -> GhostSweep {
        let params = xeon_cluster_params();
        let placement = Placement::new(cluster_8x2x4(), PlacementPolicy::RoundRobin, p);
        let profile = bench_platform(&params, &placement, &MicrobenchConfig::quick(), 33);
        optimize_ghost_width(
            &params,
            &profile,
            &xeon_core(),
            &placement,
            n,
            &[1, 2, 3, 4, 6, 8],
            33,
        )
    }

    #[test]
    fn superstep_cells_grow_with_width() {
        let d = Decomposition::new(1024, 16);
        let base = superstep_cells(&d, 5, 1);
        assert_eq!(base, d.block(5).cells());
        assert!(superstep_cells(&d, 5, 2) > 2 * base - 1);
        assert!(superstep_cells(&d, 5, 4) > 4 * base);
    }

    #[test]
    fn boundary_blocks_expand_less() {
        let d = Decomposition::new(1024, 16);
        // Rank 0 is a corner (2 faces), rank 5 is interior (4 faces).
        assert!(superstep_cells(&d, 0, 4) < superstep_cells(&d, 5, 4));
    }

    #[test]
    fn deep_ghosts_amortize_sync_for_small_problems() {
        // Sync-dominated regime: widening the ghost zone must help at
        // first (w=2 beats w=1).
        let s = sweep(64, 1024);
        let at = |w: usize| s.predicted[s.widths.iter().position(|&x| x == w).expect("width")];
        assert!(
            at(2) < at(1),
            "w=2 ({}) should beat w=1 ({}) when sync dominates",
            at(2),
            at(1)
        );
    }

    #[test]
    fn redundant_compute_eventually_wins() {
        // The curve must turn back up: the widest setting should lose to
        // the predicted optimum.
        let s = sweep(64, 1024);
        let best = s.best_predicted();
        let widest = *s.widths.last().expect("non-empty");
        if best != widest {
            let t_best = s.predicted[s.widths.iter().position(|&x| x == best).expect("w")];
            let t_widest = s.predicted[s.widths.len() - 1];
            assert!(t_widest > t_best, "U-shape expected: {:?}", s.predicted);
        }
    }

    #[test]
    fn model_identifies_the_measured_optimum_region() {
        // The C1 claim: the predicted optimum is the measured optimum or
        // an adjacent candidate.
        let s = sweep(64, 1024);
        let bp = s.best_predicted();
        let bm = s.best_measured();
        let pos = |w: usize| s.widths.iter().position(|&x| x == w).expect("width");
        assert!(
            pos(bp).abs_diff(pos(bm)) <= 1,
            "predicted w={bp}, measured w={bm}, sweep {:?} vs {:?}",
            s.predicted,
            s.measured
        );
    }

    #[test]
    fn compute_bound_problems_prefer_shallow_ghosts() {
        // Large local blocks: redundant compute is expensive relative to
        // sync; the optimum stays at small w.
        let s = sweep(16, 8192);
        assert!(
            s.best_predicted() <= 2,
            "compute-bound problems should not deepen ghosts: {:?}",
            s.predicted
        );
    }
}
