//! The message engine: NIC egress queues, receive serialization, signal
//! round trips and one-sided transfers.
//!
//! Two message disciplines exist, matching the two ways the thesis'
//! software stack moves data:
//!
//! * [`NetState::signal_round_trip`] — small control signals (barrier
//!   stages). The sender is occupied until the transport-level
//!   acknowledgement returns; this per-message round trip is the platform
//!   behaviour that the Eq. 5.4 factor 2 models.
//! * [`NetState::transfer`] — one-sided bulk transfers (BSPlib put/get
//!   payloads). Fire-and-forget from the sender's perspective; the
//!   receiving communication thread absorbs them in the background.
//!
//! Receive processing at each process is serialized (one communication
//! thread per process, §6.2); remote messages from cohabiting processes
//! serialize at their node's NIC egress. Within one resolution pass,
//! messages are handled in a deterministic global order (senders by rank,
//! sends by destination), a documented approximation of true event order
//! whose error is bounded by single `o_recv` magnitudes.
//!
//! Jitter multipliers arrive through a [`JitterSource`], never drawn
//! here: scalar callers pass a [`hpm_stats::rng::ScalarJitter`] over
//! their `StdRng`, hot paths pass a batch-filled
//! [`hpm_stats::rng::JitterBuf`]. A signal consumes
//! [`hpm_core::plan::SIGNAL_JITTER_DRAWS`] multipliers, a non-self
//! transfer [`crate::exchange::TRANSFER_JITTER_DRAWS`] — counts the
//! batched engine sizes its tables by.

use crate::params::PlatformParams;
use hpm_stats::fault::{attempts_from_uniform, DropStream, FaultModel, FaultPlan};
use hpm_stats::rng::JitterSource;
use hpm_topology::{LinkClass, Placement};

/// What became of one drop-aware signal (see
/// [`NetState::signal_round_trip_faulty`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SignalFate {
    /// Delivered after `retries` retransmissions; `retry_delay` is the
    /// backed-off timeout latency those retransmissions added.
    Delivered {
        /// Acknowledgement time at the sender.
        ack: f64,
        /// Processing completion at the receiver.
        processed: f64,
        /// Retransmissions before the attempt that landed.
        retries: u32,
        /// Latency added by those retransmissions.
        retry_delay: f64,
    },
    /// Undeliverable — every attempt dropped, or the receiver crashed.
    /// The sender burned its full retry budget and moved on at `gave_up`.
    Lost {
        /// When the sender abandoned the signal.
        gave_up: f64,
    },
    /// The sender had crashed before it could emit this signal.
    SenderDead,
}

/// The receiver-side outcome of one drop-aware bulk transfer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultyTransfer {
    /// Sender CPU release time (one-sided: independent of delivery).
    pub send_done: f64,
    /// Processing completion at the receiver; `None` when the transfer
    /// was lost beyond the retry budget or an endpoint crashed.
    pub processed: Option<f64>,
    /// Retransmissions before the attempt that landed.
    pub retries: u32,
    /// Latency added by those retransmissions.
    pub retry_delay: f64,
}

/// Mutable network state: per-node NIC egress availability and per-process
/// receive-processing availability.
#[derive(Debug, Clone)]
pub struct NetState {
    nic_free: Vec<f64>,
    recv_busy: Vec<f64>,
}

impl NetState {
    /// Fresh state for a placement: everything available at time zero.
    pub fn new(placement: &Placement) -> NetState {
        NetState {
            nic_free: vec![0.0; placement.shape().nodes()],
            recv_busy: vec![0.0; placement.nprocs()],
        }
    }

    /// Resets all queues to time zero.
    pub fn reset(&mut self) {
        self.nic_free.iter_mut().for_each(|t| *t = 0.0);
        self.recv_busy.iter_mut().for_each(|t| *t = 0.0);
    }

    /// Applies NIC egress serialization: a remote message ready at `ready`
    /// departs when the sender node's NIC frees up.
    fn depart(
        &mut self,
        params: &PlatformParams,
        placement: &Placement,
        src: usize,
        dst: usize,
        ready: f64,
    ) -> f64 {
        if placement.link(src, dst) == LinkClass::Remote {
            let node = placement.node_of(src);
            let dep = ready.max(self.nic_free[node]);
            self.nic_free[node] = dep + params.nic_gap;
            dep
        } else {
            ready
        }
    }

    /// One signal message with acknowledgement round trip.
    ///
    /// * `start` — sender CPU time when it begins this message;
    /// * `bytes` — payload size (barrier payloads, §6.5);
    /// * `dst_posted_at` — when the receiver posted its receives; arrivals
    ///   before that pay the unexpected-message penalty.
    ///
    /// Returns `(ack_at_sender, processed_at_receiver)`.
    #[allow(clippy::too_many_arguments)]
    pub fn signal_round_trip<J: JitterSource>(
        &mut self,
        params: &PlatformParams,
        placement: &Placement,
        jit: &mut J,
        src: usize,
        dst: usize,
        start: f64,
        bytes: u64,
        dst_posted_at: f64,
    ) -> (f64, f64) {
        let lc = params.link(placement.link(src, dst));
        let send_done = start + lc.o_send * jit.next_mult();
        let dep = self.depart(params, placement, src, dst, send_done);
        let wire = (lc.latency + bytes as f64 * lc.inv_bandwidth) * jit.next_mult();
        let arrival = dep + wire;
        let proc_start = if arrival < dst_posted_at {
            dst_posted_at + params.unexpected_penalty
        } else {
            arrival
        };
        let processed = proc_start.max(self.recv_busy[dst]) + lc.o_recv * jit.next_mult();
        self.recv_busy[dst] = processed;
        let ack = processed + lc.latency * params.ack_factor * jit.next_mult();
        (ack, processed)
    }

    /// One-sided bulk transfer: the sender pays only `o_send`; the message
    /// is absorbed by the receiver's communication thread when it arrives
    /// (serialized with that thread's other receptions).
    ///
    /// Returns `(send_cpu_done, processed_at_receiver)`.
    #[allow(clippy::too_many_arguments)]
    pub fn transfer<J: JitterSource>(
        &mut self,
        params: &PlatformParams,
        placement: &Placement,
        jit: &mut J,
        src: usize,
        dst: usize,
        bytes: u64,
        issue: f64,
    ) -> (f64, f64) {
        if src == dst {
            // Local memory move: charged as pure bandwidth on the
            // same-socket link, no transport — and no jitter draws, which
            // is why the exchange draw count excludes self messages.
            let lc = params.link(LinkClass::SameSocket);
            let done = issue + bytes as f64 * lc.inv_bandwidth;
            return (done, done);
        }
        let lc = params.link(placement.link(src, dst));
        let send_done = issue + lc.o_send * jit.next_mult();
        let dep = self.depart(params, placement, src, dst, send_done);
        let wire = (lc.latency + bytes as f64 * lc.inv_bandwidth) * jit.next_mult();
        let arrival = dep + wire;
        let processed = arrival.max(self.recv_busy[dst]) + lc.o_recv * jit.next_mult();
        self.recv_busy[dst] = processed;
        (send_done, processed)
    }

    /// [`NetState::signal_round_trip`] with fault semantics: the signal
    /// may be dropped (timeout → retransmit → exponential backoff, cost
    /// per [`FaultModel::retry_delay`]), slowed by its endpoints' slow
    /// periods, stretched by degraded links, or suppressed entirely by a
    /// crashed sender/receiver.
    ///
    /// Randomness contract: exactly **one** uniform from `drops` and
    /// [`hpm_core::plan::SIGNAL_JITTER_DRAWS`] multipliers from `jit`
    /// are consumed per call, whatever the fate — so the cursor
    /// contracts of the batched engine extend to faults unchanged, and
    /// a neutral [`FaultPlan`] reproduces the fault-free arithmetic
    /// bit-for-bit (`×1.0` and `+0.0` are IEEE-754 identities on the
    /// simulator's non-negative times).
    ///
    /// Approximation: a signal lost beyond the retry budget does not
    /// occupy the NIC for its failed attempts (only delivered signals
    /// touch the egress queue).
    #[allow(clippy::too_many_arguments)]
    pub fn signal_round_trip_faulty<J: JitterSource>(
        &mut self,
        params: &PlatformParams,
        placement: &Placement,
        jit: &mut J,
        fault: &FaultModel,
        fplan: &FaultPlan,
        drops: &mut DropStream,
        src: usize,
        dst: usize,
        start: f64,
        bytes: u64,
        dst_posted_at: f64,
    ) -> SignalFate {
        // Fixed consumption up front, in the fault-free draw order.
        let u = drops.next_uniform();
        let m_send = jit.next_mult();
        let m_wire = jit.next_mult();
        let m_recv = jit.next_mult();
        let m_ack = jit.next_mult();
        if fplan.crashed_at(src, start) {
            return SignalFate::SenderDead;
        }
        let class = placement.link(src, dst);
        let lc = params.link(class);
        let (src_node, dst_node) = (placement.node_of(src), placement.node_of(dst));
        let drop_p = if class == LinkClass::Remote {
            fault.drop.remote
        } else {
            fault.drop.local
        };
        let send_done = start + lc.o_send * m_send * fplan.node_slow[src_node];
        let attempts = attempts_from_uniform(u, drop_p);
        if attempts > fault.max_retries + 1 {
            return SignalFate::Lost {
                gave_up: send_done + fault.loss_delay(),
            };
        }
        let retry_delay = fault.retry_delay(attempts);
        let dep = self.depart(params, placement, src, dst, send_done + retry_delay);
        let wire_deg = fplan.wire_mult(src_node, dst_node);
        let wire = (lc.latency + bytes as f64 * lc.inv_bandwidth) * m_wire * wire_deg;
        let arrival = dep + wire;
        if fplan.crashed_at(dst, arrival) {
            return SignalFate::Lost {
                gave_up: send_done + fault.loss_delay(),
            };
        }
        let proc_start = if arrival < dst_posted_at {
            dst_posted_at + params.unexpected_penalty
        } else {
            arrival
        };
        let processed =
            proc_start.max(self.recv_busy[dst]) + lc.o_recv * m_recv * fplan.node_slow[dst_node];
        self.recv_busy[dst] = processed;
        let ack = processed + lc.latency * params.ack_factor * m_ack * wire_deg;
        SignalFate::Delivered {
            ack,
            processed,
            retries: attempts - 1,
            retry_delay,
        }
    }

    /// [`NetState::transfer`] with fault semantics: one-sided, so the
    /// sender's CPU is released at `send_done` regardless; drops are
    /// retransmitted by the communication thread (adding
    /// [`FaultModel::retry_delay`] to the wire time) and give up after
    /// the retry budget. Same fixed-consumption contract as
    /// [`NetState::signal_round_trip_faulty`]: one drop uniform and
    /// [`crate::exchange::TRANSFER_JITTER_DRAWS`] multipliers per
    /// non-self call (self transfers stay draw-free).
    #[allow(clippy::too_many_arguments)]
    pub fn transfer_faulty<J: JitterSource>(
        &mut self,
        params: &PlatformParams,
        placement: &Placement,
        jit: &mut J,
        fault: &FaultModel,
        fplan: &FaultPlan,
        drops: &mut DropStream,
        src: usize,
        dst: usize,
        bytes: u64,
        issue: f64,
    ) -> FaultyTransfer {
        if src == dst {
            let lc = params.link(LinkClass::SameSocket);
            let done = issue + bytes as f64 * lc.inv_bandwidth;
            return FaultyTransfer {
                send_done: done,
                processed: Some(done),
                retries: 0,
                retry_delay: 0.0,
            };
        }
        let u = drops.next_uniform();
        let m_send = jit.next_mult();
        let m_wire = jit.next_mult();
        let m_recv = jit.next_mult();
        if fplan.crashed_at(src, issue) {
            return FaultyTransfer {
                send_done: issue,
                processed: None,
                retries: 0,
                retry_delay: 0.0,
            };
        }
        let class = placement.link(src, dst);
        let lc = params.link(class);
        let (src_node, dst_node) = (placement.node_of(src), placement.node_of(dst));
        let drop_p = if class == LinkClass::Remote {
            fault.drop.remote
        } else {
            fault.drop.local
        };
        let send_done = issue + lc.o_send * m_send * fplan.node_slow[src_node];
        let attempts = attempts_from_uniform(u, drop_p);
        if attempts > fault.max_retries + 1 {
            return FaultyTransfer {
                send_done,
                processed: None,
                retries: fault.max_retries,
                retry_delay: fault.loss_delay(),
            };
        }
        let retry_delay = fault.retry_delay(attempts);
        let dep = self.depart(params, placement, src, dst, send_done + retry_delay);
        let wire_deg = fplan.wire_mult(src_node, dst_node);
        let wire = (lc.latency + bytes as f64 * lc.inv_bandwidth) * m_wire * wire_deg;
        let arrival = dep + wire;
        if fplan.crashed_at(dst, arrival) {
            return FaultyTransfer {
                send_done,
                processed: None,
                retries: attempts - 1,
                retry_delay,
            };
        }
        let processed =
            arrival.max(self.recv_busy[dst]) + lc.o_recv * m_recv * fplan.node_slow[dst_node];
        self.recv_busy[dst] = processed;
        FaultyTransfer {
            send_done,
            processed: Some(processed),
            retries: attempts - 1,
            retry_delay,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::xeon_cluster_params;
    use hpm_stats::rng::{derive_rng, ScalarJitter};
    use hpm_topology::{cluster_8x2x4, PlacementPolicy};

    fn setup(n: usize) -> (PlatformParams, Placement) {
        let params = xeon_cluster_params().noiseless();
        let placement = Placement::new(cluster_8x2x4(), PlacementPolicy::RoundRobin, n);
        (params, placement)
    }

    #[test]
    fn local_signal_is_cheap_remote_is_expensive() {
        let (params, placement) = setup(16);
        let mut rng = derive_rng(1, 0);
        let mut jit = ScalarJitter::new(params.jitter, &mut rng);
        // Ranks 0 and 2 share node 0; ranks 0 and 1 are on different nodes.
        let mut net = NetState::new(&placement);
        let (ack_local, _) =
            net.signal_round_trip(&params, &placement, &mut jit, 0, 2, 0.0, 0, 0.0);
        net.reset();
        let (ack_remote, _) =
            net.signal_round_trip(&params, &placement, &mut jit, 0, 1, 0.0, 0, 0.0);
        assert!(
            ack_remote > 5.0 * ack_local,
            "remote {ack_remote} vs local {ack_local}"
        );
    }

    #[test]
    fn nic_serializes_cohabiting_senders() {
        let (params, placement) = setup(16);
        let mut rng = derive_rng(2, 0);
        let mut jit = ScalarJitter::new(params.jitter, &mut rng);
        let mut net = NetState::new(&placement);
        // Ranks 0, 2, 4, 6 all live on node 0 (round-robin over 2 nodes);
        // they all signal remote peers at once.
        let mut arrivals = Vec::new();
        for &src in &[0usize, 2, 4, 6] {
            let (_, proc) =
                net.signal_round_trip(&params, &placement, &mut jit, src, src + 1, 0.0, 0, 0.0);
            arrivals.push(proc);
        }
        // Each successive departure is pushed back by nic_gap.
        for w in arrivals.windows(2) {
            assert!(
                w[1] >= w[0] + params.nic_gap * 0.99,
                "NIC must serialize: {arrivals:?}"
            );
        }
    }

    #[test]
    fn unexpected_message_pays_penalty() {
        let (params, placement) = setup(16);
        let mut rng = derive_rng(3, 0);
        let mut jit = ScalarJitter::new(params.jitter, &mut rng);
        let mut net = NetState::new(&placement);
        // Receiver posts late (at 1 ms): message waits and pays penalty.
        let (_, late) = net.signal_round_trip(&params, &placement, &mut jit, 0, 1, 0.0, 0, 1e-3);
        net.reset();
        let (_, posted) = net.signal_round_trip(&params, &placement, &mut jit, 0, 1, 0.0, 0, 0.0);
        assert!(late >= 1e-3 + params.unexpected_penalty);
        assert!(posted < 1e-3);
    }

    #[test]
    fn payload_bytes_cost_bandwidth() {
        let (params, placement) = setup(16);
        let mut rng = derive_rng(4, 0);
        let mut jit = ScalarJitter::new(params.jitter, &mut rng);
        let mut net = NetState::new(&placement);
        let (a0, _) = net.signal_round_trip(&params, &placement, &mut jit, 0, 1, 0.0, 0, 0.0);
        net.reset();
        let (a1, _) = net.signal_round_trip(&params, &placement, &mut jit, 0, 1, 0.0, 100_000, 0.0);
        let delta = a1 - a0;
        let expect = 100_000.0 * params.remote.inv_bandwidth;
        assert!(
            (delta - expect).abs() / expect < 1e-9,
            "bandwidth term {delta} vs {expect}"
        );
    }

    #[test]
    fn receiver_serializes_processing() {
        let (params, placement) = setup(16);
        let mut rng = derive_rng(5, 0);
        let mut jit = ScalarJitter::new(params.jitter, &mut rng);
        let mut net = NetState::new(&placement);
        // Two remote senders (ranks 0 and 2, both node 0) hit rank 5
        // (node 1) simultaneously.
        let (_, p1) = net.signal_round_trip(&params, &placement, &mut jit, 0, 5, 0.0, 0, 0.0);
        let (_, p2) = net.signal_round_trip(&params, &placement, &mut jit, 2, 5, 0.0, 0, 0.0);
        assert!(
            p2 >= p1 + params.remote.o_recv * 0.99,
            "second processing must queue behind the first"
        );
    }

    #[test]
    fn transfer_releases_sender_early() {
        let (params, placement) = setup(16);
        let mut rng = derive_rng(6, 0);
        let mut jit = ScalarJitter::new(params.jitter, &mut rng);
        let mut net = NetState::new(&placement);
        let (cpu_done, processed) = net.transfer(&params, &placement, &mut jit, 0, 1, 1 << 20, 0.0);
        // The sender is free long before the megabyte lands: overlap.
        assert!(cpu_done < processed / 100.0, "{cpu_done} vs {processed}");
    }

    /// A neutral fault plan routes `signal_round_trip_faulty` and
    /// `transfer_faulty` through arithmetic bit-identical to the
    /// fault-free methods.
    #[test]
    fn neutral_faulty_paths_match_fault_free_bitwise() {
        use hpm_stats::fault::{DropStream, FaultModel, FaultPlan};
        let (_, placement) = setup(16);
        let params = xeon_cluster_params(); // jittered: exercise the multipliers
        let fplan = FaultPlan::neutral(16, placement.shape().nodes());
        let mut drops = DropStream::new(1, 0);
        // Signals: same jitter stream on both sides.
        let mut rng_a = derive_rng(11, 0);
        let mut rng_b = derive_rng(11, 0);
        let mut jit_a = ScalarJitter::new(params.jitter, &mut rng_a);
        let mut jit_b = ScalarJitter::new(params.jitter, &mut rng_b);
        let mut net_a = NetState::new(&placement);
        let mut net_b = NetState::new(&placement);
        for (src, dst) in [(0usize, 1usize), (0, 2), (3, 12), (5, 5)] {
            if src != dst {
                let (ack, proc_at) = net_a
                    .signal_round_trip(&params, &placement, &mut jit_a, src, dst, 1e-6, 64, 0.0);
                match net_b.signal_round_trip_faulty(
                    &params,
                    &placement,
                    &mut jit_b,
                    &FaultModel::NONE,
                    &fplan,
                    &mut drops,
                    src,
                    dst,
                    1e-6,
                    64,
                    0.0,
                ) {
                    SignalFate::Delivered {
                        ack: f_ack,
                        processed,
                        retries,
                        retry_delay,
                    } => {
                        assert_eq!(ack.to_bits(), f_ack.to_bits());
                        assert_eq!(proc_at.to_bits(), processed.to_bits());
                        assert_eq!((retries, retry_delay.to_bits()), (0, 0.0f64.to_bits()));
                    }
                    other => panic!("neutral signal must deliver, got {other:?}"),
                }
            }
            let (done, proc_at) =
                net_a.transfer(&params, &placement, &mut jit_a, src, dst, 4096, 2e-6);
            let faulty = net_b.transfer_faulty(
                &params,
                &placement,
                &mut jit_b,
                &FaultModel::NONE,
                &fplan,
                &mut drops,
                src,
                dst,
                4096,
                2e-6,
            );
            assert_eq!(done.to_bits(), faulty.send_done.to_bits());
            assert_eq!(
                proc_at.to_bits(),
                faulty
                    .processed
                    .expect("neutral transfer delivers")
                    .to_bits()
            );
        }
    }

    /// Certain drop (attempts beyond any budget) loses the signal after
    /// the full backed-off budget; a crashed sender never emits.
    #[test]
    fn hopeless_drops_and_dead_senders_lose_signals() {
        use hpm_stats::fault::{DropProb, DropStream, FaultModel, FaultPlan};
        let (params, placement) = setup(16);
        let fault = FaultModel {
            drop: DropProb::uniform(0.999_999),
            max_retries: 2,
            timeout: 1e-3,
            backoff: 2.0,
            ..FaultModel::NONE
        };
        let fplan = FaultPlan::neutral(16, placement.shape().nodes());
        let mut drops = DropStream::new(2, 0);
        let mut rng = derive_rng(12, 0);
        let mut jit = ScalarJitter::new(params.jitter, &mut rng);
        let mut net = NetState::new(&placement);
        match net.signal_round_trip_faulty(
            &params, &placement, &mut jit, &fault, &fplan, &mut drops, 0, 1, 0.0, 0, 0.0,
        ) {
            SignalFate::Lost { gave_up } => {
                // Full budget: timeout·(1 + 2 + 4) past the send.
                assert!(gave_up >= 7e-3, "gave_up {gave_up}");
            }
            other => panic!("near-certain drop must lose, got {other:?}"),
        }
        // Dead sender: fate is SenderDead, draws still consumed.
        let mut crashed = FaultPlan::neutral(16, placement.shape().nodes());
        crashed.crash_time[3] = 0.0;
        let before = drops.drawn();
        let fate = net.signal_round_trip_faulty(
            &params, &placement, &mut jit, &fault, &crashed, &mut drops, 3, 1, 1.0, 0, 0.0,
        );
        assert_eq!(fate, SignalFate::SenderDead);
        assert_eq!(drops.drawn(), before + 1);
        let t = net.transfer_faulty(
            &params, &placement, &mut jit, &fault, &crashed, &mut drops, 3, 1, 4096, 1.0,
        );
        assert_eq!(t.processed, None);
    }

    #[test]
    fn self_transfer_is_memcpy_speed() {
        let (params, placement) = setup(8);
        let mut rng = derive_rng(7, 0);
        let mut jit = ScalarJitter::new(params.jitter, &mut rng);
        let mut net = NetState::new(&placement);
        let (_, done) = net.transfer(&params, &placement, &mut jit, 0, 0, 1 << 20, 0.0);
        let remote = params.remote.latency;
        assert!(done < remote * 100.0, "self transfer should be cheap");
    }
}
