//! The lane-parallel repetition executor: L independent barrier
//! repetitions advanced together over structure-of-arrays state.
//!
//! A measurement is hundreds of repetitions of the same compiled
//! pattern, differing only in their jitter multipliers. The scalar
//! executor walks them one at a time, paying the full pattern traversal
//! (stage bookkeeping, CSR walks, link-class lookups) per repetition.
//! This executor amortizes the traversal: every per-process time in
//! [`crate::barrier::SimScratch`] becomes a *lane vector* of L values
//! (`state[i·L + l]` = rank `i` in repetition `l`), the pattern is
//! walked once per batch, and each edge updates all L lanes in a short
//! contiguous loop of identical straight-line arithmetic — exactly the
//! shape compilers auto-vectorize.
//!
//! The jitter table is draw-major SoA too: row `d` holds draw `d` of
//! every lane, filled lane-by-lane from the per-repetition streams
//! `(seed, BARRIER_JITTER_LABEL, first_rep + l)` in one batch pass
//! (amortizing the transcendental work that dominated the scalar
//! stochastic path), then consumed row-by-row in executor order.
//!
//! Two equivalences pin the engine down (see the tests here and in
//! `tests/parallel_determinism.rs`):
//!
//! * per lane, the arithmetic is the scalar recurrence *verbatim* — so
//!   lane `l` of a batch is bit-identical to the one-at-a-time
//!   [`crate::barrier::BarrierSim::run_total_batched`] run of repetition
//!   `first_rep + l`, for every lane width;
//! * with jitter disabled every multiplier is exactly 1.0 and the
//!   recurrence collapses to the noiseless scalar path bit-for-bit —
//!   the flat core's noiseless goldens do not move.

use crate::barrier::{BarrierSim, BARRIER_JITTER_LABEL};
use crate::params::PlatformParams;
use hpm_core::plan::CompiledPattern;
use hpm_core::predictor::PayloadSchedule;
use hpm_stats::rng::JitterBuf;
use hpm_topology::LinkClass;

/// SoA scratch of the lane executor: per-(rank, lane) stage times,
/// per-(node, lane) NIC queues, per-(rank, lane) receive queues, the
/// batch jitter table and the per-lane totals. One scratch serves any
/// pattern/lane-width; buffers grow to the high-water mark and are then
/// reused allocation-free.
#[derive(Debug, Clone, Default)]
pub struct LaneScratch {
    /// Stage entry times; final exits after a run.
    cur: Vec<f64>,
    /// Stage exit times being accumulated.
    nxt: Vec<f64>,
    /// Library-posted times within one stage.
    posted: Vec<f64>,
    /// Latest inbound-signal processing times within one stage.
    last_arrival: Vec<f64>,
    /// Per-lane acknowledgement chain of the rank currently sending.
    acks: Vec<f64>,
    /// Per-(node, lane) NIC egress availability.
    nic_free: Vec<f64>,
    /// Per-(rank, lane) receive-processing availability.
    recv_busy: Vec<f64>,
    /// Draw-major jitter table.
    jitter: JitterBuf,
    /// Per-lane worst-case completion times of the last batch.
    totals: Vec<f64>,
}

impl LaneScratch {
    /// An empty scratch; the first run sizes it.
    pub fn new() -> LaneScratch {
        LaneScratch::default()
    }

    /// Per-lane totals of the most recent batch.
    pub fn totals(&self) -> &[f64] {
        &self.totals
    }

    /// The jitter table of the most recent batch — lets audit tests
    /// compare consumed rows against the plan's reported draw count.
    pub fn jitter(&self) -> &JitterBuf {
        &self.jitter
    }

    fn ensure(&mut self, p: usize, nodes: usize, lanes: usize) {
        let grow = |v: &mut Vec<f64>, n: usize| {
            if v.len() < n {
                v.resize(n, 0.0);
            }
        };
        grow(&mut self.cur, p * lanes);
        grow(&mut self.nxt, p * lanes);
        grow(&mut self.posted, p * lanes);
        grow(&mut self.last_arrival, p * lanes);
        grow(&mut self.acks, lanes);
        grow(&mut self.nic_free, nodes * lanes);
        grow(&mut self.recv_busy, p * lanes);
        grow(&mut self.totals, lanes);
    }
}

impl BarrierSim<'_> {
    /// Runs `lanes` cold-start repetitions of a compiled pattern
    /// simultaneously, repetition `first_rep + l` in lane `l`; returns
    /// the per-lane worst-case completion times (also available from
    /// [`LaneScratch::totals`]).
    ///
    /// Sample `l` is bit-identical to
    /// `run_total_batched(plan, payload, seed, first_rep + l, ..)` —
    /// lane width and batch grouping are invisible in the numbers.
    pub fn run_batch_compiled<'s>(
        &self,
        plan: &CompiledPattern,
        payload: &PayloadSchedule,
        seed: u64,
        first_rep: u64,
        lanes: usize,
        scratch: &'s mut LaneScratch,
    ) -> &'s [f64] {
        let p = plan.p();
        assert_eq!(self.placement.nprocs(), p, "placement process count");
        assert!(lanes >= 1, "at least one lane");
        let nodes = self.placement.shape().nodes();
        scratch.ensure(p, nodes, lanes);
        scratch.jitter.fill_lanes(
            self.params.jitter.sigma,
            seed,
            BARRIER_JITTER_LABEL,
            first_rep,
            lanes,
            plan.jitter_draws(),
        );
        let LaneScratch {
            cur,
            nxt,
            posted,
            last_arrival,
            acks,
            nic_free,
            recv_busy,
            jitter,
            totals,
        } = scratch;
        let el = p * lanes;
        cur[..el].fill(0.0);
        nic_free[..nodes * lanes].fill(0.0);
        recv_busy[..el].fill(0.0);

        for s in 0..plan.stages() {
            run_stage_lanes(
                self.params,
                self.placement,
                plan,
                payload,
                s,
                lanes,
                (cur, nxt, posted, last_arrival, acks),
                (nic_free, recv_busy),
                jitter,
            );
            std::mem::swap(cur, nxt);
        }

        for l in 0..lanes {
            let mut worst = f64::NEG_INFINITY;
            for i in 0..p {
                worst = worst.max(cur[i * lanes + l]);
            }
            totals[l] = worst;
        }
        &scratch.totals[..lanes]
    }
}

/// The stage-time lane vectors handed to [`run_stage_lanes`]:
/// `(cur, nxt, posted, last_arrival, acks)`.
type StageLanes<'a> = (
    &'a mut [f64],
    &'a mut [f64],
    &'a mut [f64],
    &'a mut [f64],
    &'a mut [f64],
);

/// One stage over all lanes: the scalar stage recurrence with every
/// per-process scalar widened to a lane vector. Multiplier rows are
/// consumed in the scalar executor's draw order (entry draws in rank
/// order, then per rank per edge the `o_send`/wire/`o_recv`/ack
/// quadruple), so the cursor position per lane matches the single-lane
/// fill exactly.
#[allow(clippy::too_many_arguments)]
fn run_stage_lanes(
    params: &PlatformParams,
    placement: &hpm_topology::Placement,
    plan: &CompiledPattern,
    payload: &PayloadSchedule,
    s: usize,
    lanes: usize,
    (cur, nxt, posted, last_arrival, acks): StageLanes<'_>,
    (nic_free, recv_busy): (&mut [f64], &mut [f64]),
    jitter: &mut JitterBuf,
) {
    let p = plan.p();
    let stage = plan.stage(s);
    let bytes = payload.bytes(s);
    let el = p * lanes;
    // Library call: posted = entry + call overhead, per rank per lane.
    for i in 0..p {
        let m = jitter.rows(1);
        let base = i * lanes;
        for l in 0..lanes {
            posted[base + l] = cur[base + l] + params.call_overhead * m[l];
        }
    }
    nxt[..el].copy_from_slice(&posted[..el]);
    last_arrival[..el].fill(f64::NEG_INFINITY);
    for i in 0..p {
        acks[..lanes].copy_from_slice(&posted[i * lanes..(i + 1) * lanes]);
        for &j in stage.dsts(i) {
            let link = placement.link(i, j);
            let lc = params.link(link);
            let wire_base = lc.latency + bytes as f64 * lc.inv_bandwidth;
            let ms = jitter.rows(4);
            let (m_send, rest) = ms.split_at(lanes);
            let (m_wire, rest) = rest.split_at(lanes);
            let (m_recv, m_ack) = rest.split_at(lanes);
            let (posted_j, rb, la) = (
                &posted[j * lanes..(j + 1) * lanes],
                &mut recv_busy[j * lanes..],
                &mut last_arrival[j * lanes..],
            );
            if link == LinkClass::Remote {
                let node = placement.node_of(i);
                let nf = &mut nic_free[node * lanes..];
                for l in 0..lanes {
                    let send_done = acks[l] + lc.o_send * m_send[l];
                    let dep = send_done.max(nf[l]);
                    nf[l] = dep + params.nic_gap;
                    let arrival = dep + wire_base * m_wire[l];
                    let proc_start = if arrival < posted_j[l] {
                        posted_j[l] + params.unexpected_penalty
                    } else {
                        arrival
                    };
                    let processed = proc_start.max(rb[l]) + lc.o_recv * m_recv[l];
                    rb[l] = processed;
                    if processed > la[l] {
                        la[l] = processed;
                    }
                    acks[l] = processed + lc.latency * params.ack_factor * m_ack[l];
                }
            } else {
                for l in 0..lanes {
                    let send_done = acks[l] + lc.o_send * m_send[l];
                    let arrival = send_done + wire_base * m_wire[l];
                    let proc_start = if arrival < posted_j[l] {
                        posted_j[l] + params.unexpected_penalty
                    } else {
                        arrival
                    };
                    let processed = proc_start.max(rb[l]) + lc.o_recv * m_recv[l];
                    rb[l] = processed;
                    if processed > la[l] {
                        la[l] = processed;
                    }
                    acks[l] = processed + lc.latency * params.ack_factor * m_ack[l];
                }
            }
        }
        let base = i * lanes;
        for l in 0..lanes {
            if acks[l] > nxt[base + l] {
                nxt[base + l] = acks[l];
            }
        }
    }
    for je in 0..el {
        if last_arrival[je] > nxt[je] {
            nxt[je] = last_arrival[je];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::barrier::SimScratch;
    use crate::net::NetState;
    use crate::params::xeon_cluster_params;
    use hpm_core::matrix::IMat;
    use hpm_core::pattern::{BarrierPattern, CommPattern};
    use hpm_stats::rng::{derive_rng, ScalarJitter};
    use hpm_topology::{cluster_8x2x4, Placement, PlacementPolicy};

    fn dissemination(p: usize) -> BarrierPattern {
        let stages = (p as f64).log2().ceil() as usize;
        let mats = (0..stages)
            .map(|s| {
                let edges: Vec<(usize, usize)> = (0..p).map(|i| (i, (i + (1 << s)) % p)).collect();
                IMat::from_edges(p, &edges)
            })
            .collect();
        BarrierPattern::new("dissemination", p, mats)
    }

    /// Every lane of a batch equals the one-at-a-time batched run of the
    /// same repetition — for several lane widths, including widths that
    /// do not divide the repetition count.
    #[test]
    fn lanes_match_single_repetition_runs_bitwise() {
        let params = xeon_cluster_params();
        let placement = Placement::new(cluster_8x2x4(), PlacementPolicy::RoundRobin, 24);
        let sim = BarrierSim::new(&params, &placement);
        let plan = dissemination(24).plan();
        let payload = hpm_core::predictor::PayloadSchedule::dissemination_count_map(24);
        let mut net = NetState::new(&placement);
        let mut scalar = SimScratch::new(&placement);
        let singles: Vec<f64> = (0..12)
            .map(|r| sim.run_total_batched(&plan, &payload, 77, r, &mut net, &mut scalar))
            .collect();
        let mut scratch = LaneScratch::new();
        for lanes in [1usize, 3, 8, 12] {
            let mut got = Vec::new();
            let mut first = 0usize;
            while first < 12 {
                let l = lanes.min(12 - first);
                got.extend_from_slice(sim.run_batch_compiled(
                    &plan,
                    &payload,
                    77,
                    first as u64,
                    l,
                    &mut scratch,
                ));
                first += l;
            }
            assert_eq!(got, singles, "lane width {lanes}");
        }
    }

    /// With jitter off, the lane executor reproduces the scalar compiled
    /// executor bit for bit — the noiseless path does not move.
    #[test]
    fn noiseless_lanes_match_scalar_executor_bitwise() {
        let params = xeon_cluster_params().noiseless();
        let placement = Placement::new(cluster_8x2x4(), PlacementPolicy::RoundRobin, 16);
        let sim = BarrierSim::new(&params, &placement);
        let plan = dissemination(16).plan();
        let payload = hpm_core::predictor::PayloadSchedule::none();
        let mut net = NetState::new(&placement);
        let mut scalar = SimScratch::new(&placement);
        let mut rng = derive_rng(5, 0);
        let mut jit = ScalarJitter::new(params.jitter, &mut rng);
        let want = sim.run_total_compiled(&plan, &payload, &mut jit, &mut net, &mut scalar);
        let mut scratch = LaneScratch::new();
        let got = sim.run_batch_compiled(&plan, &payload, 5, 0, 4, &mut scratch);
        assert!(got.iter().all(|&t| t.to_bits() == want.to_bits()));
    }

    /// Draw-count audit (both engines): the executor consumes exactly
    /// the draw count the compiled plan reports, per repetition. The
    /// static analyzer recomputes the same count from the CSR shape
    /// alone — asserting it agrees here ties the engines' dynamic
    /// accounting to the `jitter-draws` rule of `hpm-analyze`, so the
    /// two can never drift apart silently.
    #[test]
    fn executor_consumes_exactly_the_plan_reported_draws() {
        let params = xeon_cluster_params();
        let placement = Placement::new(cluster_8x2x4(), PlacementPolicy::RoundRobin, 24);
        let sim = BarrierSim::new(&params, &placement);
        let plan = dissemination(24).plan();
        // Static twin of this audit: a clean analysis certifies the
        // plan's reported draw count matches what the stages will make
        // the engines consume below.
        assert!(hpm_analyze::analyze(&plan).is_empty());
        let payload = hpm_core::predictor::PayloadSchedule::dissemination_count_map(24);
        // Lane engine: rows consumed == draws, for every lane width.
        let mut scratch = LaneScratch::new();
        for lanes in [1usize, 5, 8] {
            sim.run_batch_compiled(&plan, &payload, 3, 0, lanes, &mut scratch);
            assert_eq!(
                scratch.jitter().consumed(),
                plan.jitter_draws(),
                "lane width {lanes}"
            );
        }
        // Scalar batched engine: same count.
        let mut net = NetState::new(&placement);
        let mut scalar = SimScratch::new(&placement);
        sim.run_total_batched(&plan, &payload, 3, 0, &mut net, &mut scalar);
        assert_eq!(scalar.jitter().consumed(), plan.jitter_draws());
    }

    /// Statistical equivalence: the jittered median tracks the
    /// noise-free completion time (the log-normal multiplier has median
    /// 1; the max over processes skews the composite slightly upward).
    #[test]
    fn jittered_median_tracks_noise_free_value() {
        let params = xeon_cluster_params();
        let placement = Placement::new(cluster_8x2x4(), PlacementPolicy::RoundRobin, 16);
        let jittered = BarrierSim::new(&params, &placement);
        let noiseless_params = params.noiseless();
        let noiseless = BarrierSim::new(&noiseless_params, &placement);
        let pat = dissemination(16);
        let payload = hpm_core::predictor::PayloadSchedule::none();
        let med = jittered.measure(&pat, &payload, 512, 9).median();
        let base = noiseless.measure(&pat, &payload, 1, 9).samples[0];
        let rel = (med - base) / base;
        assert!(
            (-0.02..0.15).contains(&rel),
            "median {med} vs noise-free {base} (rel {rel})"
        );
    }

    /// The old (scalar Box-Muller) and new (batched inverse-CDF) jitter
    /// engines describe the same physics: mean completion times agree
    /// within sampling tolerance.
    #[test]
    fn batched_and_scalar_measurements_agree_statistically() {
        let params = xeon_cluster_params();
        let placement = Placement::new(cluster_8x2x4(), PlacementPolicy::RoundRobin, 16);
        let sim = BarrierSim::new(&params, &placement);
        let pat = dissemination(16);
        let payload = hpm_core::predictor::PayloadSchedule::none();
        let reps = 768;
        let batched = sim.measure(&pat, &payload, reps, 11).mean();
        // The scalar path, as PR 4's measure ran it: one derived StdRng
        // per repetition through the compiled executor.
        let plan = pat.plan();
        let mut net = NetState::new(&placement);
        let mut scratch = SimScratch::new(&placement);
        let scalar_samples: Vec<f64> = (0..reps)
            .map(|r| {
                let mut rng = derive_rng(11, r as u64);
                let mut jit = ScalarJitter::new(params.jitter, &mut rng);
                sim.run_total_compiled(&plan, &payload, &mut jit, &mut net, &mut scratch)
            })
            .collect();
        let scalar = hpm_stats::mean(&scalar_samples);
        let rel = (batched - scalar).abs() / scalar;
        assert!(
            rel < 0.02,
            "batched mean {batched} vs scalar mean {scalar} (rel {rel})"
        );
    }
}
