//! Background one-sided transfer resolution.
//!
//! The BSPlib runtime commits puts/gets as early as possible during a
//! superstep (the Fig. 1.2 processing model); transfers then progress in
//! the background while the process keeps computing. Given the set of
//! messages a superstep committed — each with the virtual time its sender
//! issued it — this resolver computes when every message lands and when
//! each process has absorbed its last inbound byte, which is what the
//! synchronization has to wait for.

use crate::net::NetState;
use crate::params::PlatformParams;
use hpm_stats::rng::JitterSource;
use hpm_topology::Placement;

/// Jitter multipliers one non-self [`NetState::transfer`] consumes: the
/// sender's `o_send`, the wire term and the receiver's `o_recv`. Self
/// messages draw nothing (pure bandwidth, no transport).
pub const TRANSFER_JITTER_DRAWS: usize = 3;

/// Exact jitter draws [`resolve_exchange`] consumes for `msgs`:
/// [`TRANSFER_JITTER_DRAWS`] per message with distinct endpoints. The
/// batched callers size their `JitterBuf` fills by this; the audit tests
/// pin the equality.
pub fn exchange_jitter_draws(msgs: &[ExchangeMsg]) -> usize {
    msgs.iter().filter(|m| m.src != m.dst).count() * TRANSFER_JITTER_DRAWS
}

/// One committed one-sided message.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExchangeMsg {
    /// Sending process.
    pub src: usize,
    /// Receiving process.
    pub dst: usize,
    /// Payload size in bytes (headers are accounted by the caller).
    pub bytes: u64,
    /// Virtual time the sender committed the message.
    pub issue: f64,
}

/// Reusable index scratch for [`resolve_exchange_into`]: the issue-order
/// permutation, only touched when the input is not already sorted.
#[derive(Debug, Clone, Default)]
pub struct ExchangeScratch {
    order: Vec<usize>,
}

/// Resolved timings of an exchange.
#[derive(Debug, Clone, Default)]
pub struct ExchangeResult {
    /// Per message (input order): when the receiver finished absorbing it.
    pub processed: Vec<f64>,
    /// Per message (input order): when the sender's CPU was released.
    pub send_done: Vec<f64>,
    /// Per process: time its last *inbound* message was absorbed; 0 when
    /// nothing was addressed to it. Sender-side completion is tracked
    /// separately in [`ExchangeResult::last_out`].
    pub last_in: Vec<f64>,
    /// Per process: when the last message it *sourced* released its CPU
    /// (the `send_done` of its latest-finishing outbound message); 0 when
    /// it sent nothing. A synchronization point must wait for this too —
    /// a process has not completed a superstep while its own issue tails
    /// are still running.
    pub last_out: Vec<f64>,
}

/// Resolves all messages of a superstep against the network state.
///
/// Messages are handled in issue order (ties broken by input order), which
/// keeps NIC and receiver queues causal.
///
/// One-shot convenience over [`resolve_exchange_into`], allocating the
/// result and scratch per call.
pub fn resolve_exchange<J: JitterSource>(
    params: &PlatformParams,
    placement: &Placement,
    msgs: &[ExchangeMsg],
    net: &mut NetState,
    jit: &mut J,
) -> ExchangeResult {
    let mut scratch = ExchangeScratch::default();
    let mut out = ExchangeResult::default();
    resolve_exchange_into(params, placement, msgs, net, jit, &mut scratch, &mut out);
    out
}

/// [`resolve_exchange`] over caller-owned scratch and output buffers:
/// after warmup the resolution allocates nothing.
///
/// Fast path: the BSPlib runtime commits operations in program order, so
/// its message lists usually arrive already sorted by issue time; a
/// single O(n) monotonicity scan then skips building and sorting the
/// permutation entirely. The unsorted path is identical to before — sort
/// by `(issue, input index)`, which the sorted fast path preserves
/// because equal issues keep input order either way.
#[allow(clippy::too_many_arguments)]
pub fn resolve_exchange_into<J: JitterSource>(
    params: &PlatformParams,
    placement: &Placement,
    msgs: &[ExchangeMsg],
    net: &mut NetState,
    jit: &mut J,
    scratch: &mut ExchangeScratch,
    out: &mut ExchangeResult,
) {
    let p = placement.nprocs();
    out.processed.clear();
    out.processed.resize(msgs.len(), 0.0);
    out.send_done.clear();
    out.send_done.resize(msgs.len(), 0.0);
    out.last_in.clear();
    out.last_in.resize(p, 0.0);
    out.last_out.clear();
    out.last_out.resize(p, 0.0);
    let mut step = |idx: usize, net: &mut NetState, jit: &mut J| {
        let m = &msgs[idx];
        assert!(m.src < p && m.dst < p, "message endpoints out of range");
        let (cpu, done) = net.transfer(params, placement, jit, m.src, m.dst, m.bytes, m.issue);
        out.processed[idx] = done;
        out.send_done[idx] = cpu;
        if done > out.last_in[m.dst] {
            out.last_in[m.dst] = done;
        }
        if cpu > out.last_out[m.src] {
            out.last_out[m.src] = cpu;
        }
    };
    if msgs.windows(2).all(|w| w[0].issue <= w[1].issue) {
        for idx in 0..msgs.len() {
            step(idx, net, jit);
        }
    } else {
        scratch.order.clear();
        scratch.order.extend(0..msgs.len());
        scratch.order.sort_by(|&a, &b| {
            msgs[a]
                .issue
                .partial_cmp(&msgs[b].issue)
                .expect("NaN issue time")
                .then(a.cmp(&b))
        });
        for &idx in &scratch.order {
            step(idx, net, jit);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::xeon_cluster_params;
    use hpm_stats::rng::{derive_rng, ScalarJitter};
    use hpm_topology::{cluster_8x2x4, Placement, PlacementPolicy};

    fn setup(n: usize) -> (PlatformParams, Placement) {
        (
            xeon_cluster_params().noiseless(),
            Placement::new(cluster_8x2x4(), PlacementPolicy::RoundRobin, n),
        )
    }

    #[test]
    fn empty_exchange_is_empty() {
        let (params, placement) = setup(8);
        let mut net = NetState::new(&placement);
        let mut rng = derive_rng(1, 0);
        let mut jit_rng = ScalarJitter::new(params.jitter, &mut rng);
        let r = resolve_exchange(&params, &placement, &[], &mut net, &mut jit_rng);
        assert!(r.processed.is_empty());
        assert!(r.last_in.iter().all(|&t| t == 0.0));
    }

    #[test]
    fn early_issue_overlaps_with_compute() {
        // A message issued at t=0 with the sync at t=1ms: the transfer
        // completes well before the superstep ends — full overlap.
        let (params, placement) = setup(16);
        let mut net = NetState::new(&placement);
        let mut rng = derive_rng(2, 0);
        let mut jit_rng = ScalarJitter::new(params.jitter, &mut rng);
        let msgs = [ExchangeMsg {
            src: 0,
            dst: 1,
            bytes: 10_000,
            issue: 0.0,
        }];
        let r = resolve_exchange(&params, &placement, &msgs, &mut net, &mut jit_rng);
        assert!(r.processed[0] < 1e-3, "10 kB must land within 1 ms");
        assert!(r.send_done[0] < r.processed[0]);
    }

    #[test]
    fn last_in_tracks_the_latest_arrival() {
        let (params, placement) = setup(16);
        let mut net = NetState::new(&placement);
        let mut rng = derive_rng(3, 0);
        let mut jit_rng = ScalarJitter::new(params.jitter, &mut rng);
        let msgs = [
            ExchangeMsg {
                src: 0,
                dst: 3,
                bytes: 100,
                issue: 0.0,
            },
            ExchangeMsg {
                src: 2,
                dst: 3,
                bytes: 1 << 20,
                issue: 0.0,
            },
        ];
        let r = resolve_exchange(&params, &placement, &msgs, &mut net, &mut jit_rng);
        assert_eq!(
            r.last_in[3],
            r.processed.iter().copied().fold(0.0, f64::max)
        );
        assert_eq!(r.last_in[0], 0.0);
    }

    #[test]
    fn last_out_tracks_sender_side_completion() {
        let (params, placement) = setup(16);
        let mut net = NetState::new(&placement);
        let mut rng = derive_rng(8, 0);
        let mut jit_rng = ScalarJitter::new(params.jitter, &mut rng);
        let msgs = [
            ExchangeMsg {
                src: 0,
                dst: 3,
                bytes: 100,
                issue: 0.0,
            },
            ExchangeMsg {
                src: 0,
                dst: 5,
                bytes: 100,
                issue: 1e-6,
            },
            ExchangeMsg {
                src: 2,
                dst: 3,
                bytes: 100,
                issue: 0.0,
            },
        ];
        let r = resolve_exchange(&params, &placement, &msgs, &mut net, &mut jit_rng);
        assert_eq!(r.last_out[0], r.send_done[0].max(r.send_done[1]));
        assert_eq!(r.last_out[2], r.send_done[2]);
        assert_eq!(r.last_out[3], 0.0, "pure receivers have no send tail");
        // A message is never absorbed before its sender's CPU released it.
        for k in 0..msgs.len() {
            assert!(r.processed[k] >= r.send_done[k]);
        }
    }

    #[test]
    fn issue_order_is_respected_at_the_nic() {
        // Two remote messages from the same node: the later issue departs
        // after the earlier one's NIC gap.
        let (params, placement) = setup(16);
        let mut net = NetState::new(&placement);
        let mut rng = derive_rng(4, 0);
        let mut jit_rng = ScalarJitter::new(params.jitter, &mut rng);
        let msgs = [
            ExchangeMsg {
                src: 0,
                dst: 1,
                bytes: 0,
                issue: 0.0,
            },
            ExchangeMsg {
                src: 2,
                dst: 1,
                bytes: 0,
                issue: 0.0,
            },
        ];
        let r = resolve_exchange(&params, &placement, &msgs, &mut net, &mut jit_rng);
        assert!(r.processed[1] > r.processed[0]);
    }

    /// The sorted fast path and the permutation path resolve an unsorted
    /// message list identically, and reused scratch/output buffers match
    /// the one-shot API bitwise.
    #[test]
    fn scratch_reuse_and_unsorted_input_match_one_shot() {
        let (params, placement) = setup(16);
        // Deliberately unsorted issues with ties, across several rounds
        // to exercise buffer reuse (shrinking and growing lists).
        let rounds: Vec<Vec<ExchangeMsg>> = vec![
            (0..12)
                .map(|k| ExchangeMsg {
                    src: k % 5,
                    dst: (k + 3) % 16,
                    bytes: 64 * k as u64,
                    issue: [3e-6, 0.0, 1e-6, 1e-6][k % 4],
                })
                .collect(),
            vec![ExchangeMsg {
                src: 1,
                dst: 2,
                bytes: 10,
                issue: 5e-6,
            }],
            (0..20)
                .map(|k| ExchangeMsg {
                    src: (k * 7) % 16,
                    dst: (k * 11 + 1) % 16,
                    bytes: 1000,
                    issue: k as f64 * 1e-7, // sorted: fast path
                })
                .collect(),
        ];
        let mut scratch = ExchangeScratch::default();
        let mut reused = ExchangeResult::default();
        let mut net_a = NetState::new(&placement);
        let mut net_b = NetState::new(&placement);
        for (k, msgs) in rounds.iter().enumerate() {
            let mut rng_a = derive_rng(42, k as u64);
            let mut rng_b = derive_rng(42, k as u64);
            let mut jit_a = ScalarJitter::new(params.jitter, &mut rng_a);
            let mut jit_b = ScalarJitter::new(params.jitter, &mut rng_b);
            net_a.reset();
            net_b.reset();
            let fresh = resolve_exchange(&params, &placement, msgs, &mut net_a, &mut jit_a);
            resolve_exchange_into(
                &params,
                &placement,
                msgs,
                &mut net_b,
                &mut jit_b,
                &mut scratch,
                &mut reused,
            );
            assert_eq!(fresh.processed, reused.processed, "round {k}");
            assert_eq!(fresh.send_done, reused.send_done, "round {k}");
            assert_eq!(fresh.last_in, reused.last_in, "round {k}");
            assert_eq!(fresh.last_out, reused.last_out, "round {k}");
        }
    }

    /// An unsorted list resolves exactly as the same list pre-sorted by
    /// `(issue, input order)` — the fast path and the permutation are the
    /// same schedule.
    #[test]
    fn unsorted_equals_presorted_schedule() {
        let (params, placement) = setup(16);
        let unsorted = [
            ExchangeMsg {
                src: 0,
                dst: 9,
                bytes: 500,
                issue: 2e-6,
            },
            ExchangeMsg {
                src: 2,
                dst: 9,
                bytes: 500,
                issue: 0.0,
            },
            ExchangeMsg {
                src: 4,
                dst: 9,
                bytes: 500,
                issue: 2e-6,
            },
        ];
        let sorted = [unsorted[1], unsorted[0], unsorted[2]];
        let mut net = NetState::new(&placement);
        let mut rng = derive_rng(9, 0);
        let mut jit_rng = ScalarJitter::new(params.jitter, &mut rng);
        let a = resolve_exchange(&params, &placement, &unsorted, &mut net, &mut jit_rng);
        net.reset();
        let mut rng = derive_rng(9, 0);
        let mut jit_rng = ScalarJitter::new(params.jitter, &mut rng);
        let b = resolve_exchange(&params, &placement, &sorted, &mut net, &mut jit_rng);
        // Input order differs, so compare per-process aggregates and the
        // permuted per-message times.
        assert_eq!(a.last_in, b.last_in);
        assert_eq!(a.last_out, b.last_out);
        assert_eq!(a.processed[1], b.processed[0]);
        assert_eq!(a.processed[0], b.processed[1]);
        assert_eq!(a.processed[2], b.processed[2]);
    }

    /// Draw-count audit: the resolver consumes exactly
    /// [`exchange_jitter_draws`] multipliers from a batch-filled buffer —
    /// self messages (which draw nothing) included in the message list.
    #[test]
    fn resolver_consumes_exactly_reported_draws() {
        use hpm_stats::rng::{JitterBuf, JitterModel};
        let (mut params, placement) = setup(16);
        params.jitter = JitterModel::new(0.05);
        let msgs: Vec<ExchangeMsg> = (0..14)
            .map(|k| ExchangeMsg {
                src: k % 7,
                dst: (k * 3) % 16, // k = 0 is a self message
                bytes: 64,
                issue: 0.0,
            })
            .collect();
        assert!(msgs.iter().any(|m| m.src == m.dst), "need a self message");
        let draws = exchange_jitter_draws(&msgs);
        assert_eq!(draws, 13 * TRANSFER_JITTER_DRAWS);
        let mut buf = JitterBuf::new();
        buf.fill(params.jitter.sigma, 1, 2, 3, draws);
        let mut net = NetState::new(&placement);
        let r = resolve_exchange(&params, &placement, &msgs, &mut net, &mut buf);
        assert_eq!(buf.consumed(), draws);
        assert!(r.processed.iter().all(|t| t.is_finite()));
    }

    #[test]
    fn big_transfer_time_is_bandwidth_dominated() {
        let (params, placement) = setup(16);
        let mut net = NetState::new(&placement);
        let mut rng = derive_rng(5, 0);
        let mut jit_rng = ScalarJitter::new(params.jitter, &mut rng);
        let bytes = 10u64 << 20; // 10 MiB
        let msgs = [ExchangeMsg {
            src: 0,
            dst: 1,
            bytes,
            issue: 0.0,
        }];
        let r = resolve_exchange(&params, &placement, &msgs, &mut net, &mut jit_rng);
        let expect = bytes as f64 * params.remote.inv_bandwidth;
        assert!(
            (r.processed[0] - expect).abs() / expect < 0.05,
            "{} vs {expect}",
            r.processed[0]
        );
    }
}
