//! Background one-sided transfer resolution.
//!
//! The BSPlib runtime commits puts/gets as early as possible during a
//! superstep (the Fig. 1.2 processing model); transfers then progress in
//! the background while the process keeps computing. Given the set of
//! messages a superstep committed — each with the virtual time its sender
//! issued it — this resolver computes when every message lands and when
//! each process has absorbed its last inbound byte, which is what the
//! synchronization has to wait for.

use crate::net::NetState;
use crate::params::PlatformParams;
use hpm_topology::Placement;
use rand::rngs::StdRng;

/// One committed one-sided message.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExchangeMsg {
    /// Sending process.
    pub src: usize,
    /// Receiving process.
    pub dst: usize,
    /// Payload size in bytes (headers are accounted by the caller).
    pub bytes: u64,
    /// Virtual time the sender committed the message.
    pub issue: f64,
}

/// Resolved timings of an exchange.
#[derive(Debug, Clone)]
pub struct ExchangeResult {
    /// Per message (input order): when the receiver finished absorbing it.
    pub processed: Vec<f64>,
    /// Per message (input order): when the sender's CPU was released.
    pub send_done: Vec<f64>,
    /// Per process: time its last *inbound* message was absorbed; 0 when
    /// nothing was addressed to it. Sender-side completion is tracked
    /// separately in [`ExchangeResult::last_out`].
    pub last_in: Vec<f64>,
    /// Per process: when the last message it *sourced* released its CPU
    /// (the `send_done` of its latest-finishing outbound message); 0 when
    /// it sent nothing. A synchronization point must wait for this too —
    /// a process has not completed a superstep while its own issue tails
    /// are still running.
    pub last_out: Vec<f64>,
}

/// Resolves all messages of a superstep against the network state.
///
/// Messages are handled in issue order (ties broken by input order), which
/// keeps NIC and receiver queues causal.
pub fn resolve_exchange(
    params: &PlatformParams,
    placement: &Placement,
    msgs: &[ExchangeMsg],
    net: &mut NetState,
    rng: &mut StdRng,
) -> ExchangeResult {
    let p = placement.nprocs();
    let mut order: Vec<usize> = (0..msgs.len()).collect();
    order.sort_by(|&a, &b| {
        msgs[a]
            .issue
            .partial_cmp(&msgs[b].issue)
            .expect("NaN issue time")
            .then(a.cmp(&b))
    });
    let mut processed = vec![0.0; msgs.len()];
    let mut send_done = vec![0.0; msgs.len()];
    let mut last_in = vec![0.0f64; p];
    let mut last_out = vec![0.0f64; p];
    for idx in order {
        let m = &msgs[idx];
        assert!(m.src < p && m.dst < p, "message endpoints out of range");
        let (cpu, done) = net.transfer(params, placement, rng, m.src, m.dst, m.bytes, m.issue);
        processed[idx] = done;
        send_done[idx] = cpu;
        if done > last_in[m.dst] {
            last_in[m.dst] = done;
        }
        if cpu > last_out[m.src] {
            last_out[m.src] = cpu;
        }
    }
    ExchangeResult {
        processed,
        send_done,
        last_in,
        last_out,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::xeon_cluster_params;
    use hpm_stats::rng::derive_rng;
    use hpm_topology::{cluster_8x2x4, Placement, PlacementPolicy};

    fn setup(n: usize) -> (PlatformParams, Placement) {
        (
            xeon_cluster_params().noiseless(),
            Placement::new(cluster_8x2x4(), PlacementPolicy::RoundRobin, n),
        )
    }

    #[test]
    fn empty_exchange_is_empty() {
        let (params, placement) = setup(8);
        let mut net = NetState::new(&placement);
        let mut rng = derive_rng(1, 0);
        let r = resolve_exchange(&params, &placement, &[], &mut net, &mut rng);
        assert!(r.processed.is_empty());
        assert!(r.last_in.iter().all(|&t| t == 0.0));
    }

    #[test]
    fn early_issue_overlaps_with_compute() {
        // A message issued at t=0 with the sync at t=1ms: the transfer
        // completes well before the superstep ends — full overlap.
        let (params, placement) = setup(16);
        let mut net = NetState::new(&placement);
        let mut rng = derive_rng(2, 0);
        let msgs = [ExchangeMsg {
            src: 0,
            dst: 1,
            bytes: 10_000,
            issue: 0.0,
        }];
        let r = resolve_exchange(&params, &placement, &msgs, &mut net, &mut rng);
        assert!(r.processed[0] < 1e-3, "10 kB must land within 1 ms");
        assert!(r.send_done[0] < r.processed[0]);
    }

    #[test]
    fn last_in_tracks_the_latest_arrival() {
        let (params, placement) = setup(16);
        let mut net = NetState::new(&placement);
        let mut rng = derive_rng(3, 0);
        let msgs = [
            ExchangeMsg {
                src: 0,
                dst: 3,
                bytes: 100,
                issue: 0.0,
            },
            ExchangeMsg {
                src: 2,
                dst: 3,
                bytes: 1 << 20,
                issue: 0.0,
            },
        ];
        let r = resolve_exchange(&params, &placement, &msgs, &mut net, &mut rng);
        assert_eq!(
            r.last_in[3],
            r.processed.iter().copied().fold(0.0, f64::max)
        );
        assert_eq!(r.last_in[0], 0.0);
    }

    #[test]
    fn last_out_tracks_sender_side_completion() {
        let (params, placement) = setup(16);
        let mut net = NetState::new(&placement);
        let mut rng = derive_rng(8, 0);
        let msgs = [
            ExchangeMsg {
                src: 0,
                dst: 3,
                bytes: 100,
                issue: 0.0,
            },
            ExchangeMsg {
                src: 0,
                dst: 5,
                bytes: 100,
                issue: 1e-6,
            },
            ExchangeMsg {
                src: 2,
                dst: 3,
                bytes: 100,
                issue: 0.0,
            },
        ];
        let r = resolve_exchange(&params, &placement, &msgs, &mut net, &mut rng);
        assert_eq!(r.last_out[0], r.send_done[0].max(r.send_done[1]));
        assert_eq!(r.last_out[2], r.send_done[2]);
        assert_eq!(r.last_out[3], 0.0, "pure receivers have no send tail");
        // A message is never absorbed before its sender's CPU released it.
        for k in 0..msgs.len() {
            assert!(r.processed[k] >= r.send_done[k]);
        }
    }

    #[test]
    fn issue_order_is_respected_at_the_nic() {
        // Two remote messages from the same node: the later issue departs
        // after the earlier one's NIC gap.
        let (params, placement) = setup(16);
        let mut net = NetState::new(&placement);
        let mut rng = derive_rng(4, 0);
        let msgs = [
            ExchangeMsg {
                src: 0,
                dst: 1,
                bytes: 0,
                issue: 0.0,
            },
            ExchangeMsg {
                src: 2,
                dst: 1,
                bytes: 0,
                issue: 0.0,
            },
        ];
        let r = resolve_exchange(&params, &placement, &msgs, &mut net, &mut rng);
        assert!(r.processed[1] > r.processed[0]);
    }

    #[test]
    fn big_transfer_time_is_bandwidth_dominated() {
        let (params, placement) = setup(16);
        let mut net = NetState::new(&placement);
        let mut rng = derive_rng(5, 0);
        let bytes = 10u64 << 20; // 10 MiB
        let msgs = [ExchangeMsg {
            src: 0,
            dst: 1,
            bytes,
            issue: 0.0,
        }];
        let r = resolve_exchange(&params, &placement, &msgs, &mut net, &mut rng);
        let expect = bytes as f64 * params.remote.inv_bandwidth;
        assert!(
            (r.processed[0] - expect).abs() / expect < 0.05,
            "{} vs {expect}",
            r.processed[0]
        );
    }
}
