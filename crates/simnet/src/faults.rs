//! The fault-aware barrier executor: crashes, drops, degraded links and
//! stragglers over the staged executor, with per-rank outcomes.
//!
//! [`crate::barrier::BarrierSim::run_once_faulty`] executes one compiled
//! pattern under a [`FaultModel`]: the repetition's faults are realized
//! into a [`FaultPlan`] from the stream `(seed, FAULT_LABEL, rep)`, the
//! jitter table fills exactly as on the healthy path, and every planned
//! signal runs through [`crate::net::NetState::signal_round_trip_faulty`]
//! — which consumes one drop uniform and the usual four jitter
//! multipliers whatever the signal's fate. Because every stream is keyed
//! by the repetition's own coordinates and consumption counts are pure
//! functions of the plan shape ([`fault_drop_draws`]), faulty runs are
//! bit-identical at any thread count, and a [`FaultModel::is_none`]
//! model reproduces the fault-free executor bit-for-bit (all fault
//! arithmetic collapses to `×1.0`/`+0.0`).
//!
//! Unlike the healthy executor, global completion is not assumed: each
//! rank finishes as [`RankOutcome::Completed`], gives up waiting for a
//! signal that never arrives ([`RankOutcome::TimedOut`], after the
//! sender-symmetric retry budget [`FaultModel::loss_delay`]), or is
//! [`RankOutcome::Crashed`] outright.

use crate::barrier::{BarrierSim, SimScratch};
use crate::net::{NetState, SignalFate};
use hpm_core::plan::CompiledPattern;
use hpm_core::predictor::PayloadSchedule;
use hpm_stats::fault::{DropStream, FaultModel, FaultPlan};

/// How one rank left a faulty run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RankOutcome {
    /// Exited the last stage at this time with all expected signals in.
    Completed(f64),
    /// Exited at this time, but gave up waiting on at least one signal
    /// along the way — its completion guarantee is void.
    TimedOut(f64),
    /// Crashed at this time and stopped participating.
    Crashed(f64),
}

/// One repetition's fault accounting: per-rank outcomes plus the retry
/// and loss totals the repro experiment aggregates.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultReport {
    /// Per-rank outcome.
    pub outcomes: Vec<RankOutcome>,
    /// Retransmissions across all delivered signals.
    pub retries: u64,
    /// Total latency those retransmissions added.
    pub retry_delay: f64,
    /// Signals abandoned after the full retry budget (dropped beyond
    /// budget, or aimed at a crashed receiver).
    pub lost_signals: u64,
    /// Signals never emitted because their sender had crashed.
    pub suppressed_signals: u64,
}

impl FaultReport {
    /// A fresh all-completed-at-zero report for `p` ranks, ready to be
    /// filled by [`BarrierSim::run_once_faulty_into`].
    #[must_use]
    pub fn new(p: usize) -> FaultReport {
        FaultReport {
            outcomes: vec![RankOutcome::Completed(0.0); p],
            retries: 0,
            retry_delay: 0.0,
            lost_signals: 0,
            suppressed_signals: 0,
        }
    }

    /// Resets to the all-completed-at-zero state for `p` ranks without
    /// shrinking capacity, so reports reused across repetitions stay
    /// allocation-free.
    pub fn reset(&mut self, p: usize) {
        self.outcomes.clear();
        self.outcomes.resize(p, RankOutcome::Completed(0.0));
        self.retries = 0;
        self.retry_delay = 0.0;
        self.lost_signals = 0;
        self.suppressed_signals = 0;
    }

    /// Ranks that completed cleanly.
    pub fn completed_count(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| matches!(o, RankOutcome::Completed(_)))
            .count()
    }

    /// True when every rank completed cleanly.
    pub fn all_completed(&self) -> bool {
        self.completed_count() == self.outcomes.len()
    }

    /// Worst-case exit time over ranks that finished the run (completed
    /// or timed out); `NEG_INFINITY` if everyone crashed.
    pub fn total(&self) -> f64 {
        self.outcomes
            .iter()
            .fold(f64::NEG_INFINITY, |acc, o| match o {
                RankOutcome::Completed(t) | RankOutcome::TimedOut(t) => acc.max(*t),
                RankOutcome::Crashed(_) => acc,
            })
    }

    /// Ranks that completed cleanly, in rank order, without allocating.
    pub fn survivors_iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.outcomes
            .iter()
            .enumerate()
            .filter(|(_, o)| matches!(o, RankOutcome::Completed(_)))
            .map(|(r, _)| r)
    }

    /// Ranks that crashed or timed out, in rank order, without
    /// allocating.
    pub fn failed_iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.outcomes
            .iter()
            .enumerate()
            .filter(|(_, o)| !matches!(o, RankOutcome::Completed(_)))
            .map(|(r, _)| r)
    }

    /// Fills `out` with the surviving ranks, reusing its capacity.
    pub fn survivors_into(&self, out: &mut Vec<usize>) {
        out.clear();
        out.extend(self.survivors_iter());
    }

    /// Fills `out` with the failed ranks, reusing its capacity.
    pub fn failed_into(&self, out: &mut Vec<usize>) {
        out.clear();
        out.extend(self.failed_iter());
    }

    /// Ranks that completed cleanly, in rank order.
    pub fn survivors(&self) -> Vec<usize> {
        self.survivors_iter().collect()
    }

    /// Ranks that crashed or timed out, in rank order.
    pub fn failed(&self) -> Vec<usize> {
        self.failed_iter().collect()
    }
}

/// Reusable per-worker state for the faulty executor: the realized
/// fault plan plus the timeout/arrival bookkeeping that
/// [`BarrierSim::run_once_faulty`] used to allocate per call. Buffers
/// grow to the largest plan seen and are then reused, so repetition
/// loops over a fixed shape are allocation-free.
#[derive(Debug)]
pub struct FaultScratch {
    pub(crate) fplan: FaultPlan,
    timed_out: Vec<bool>,
    arrived: Vec<usize>,
}

impl Default for FaultScratch {
    fn default() -> FaultScratch {
        FaultScratch::new()
    }
}

impl FaultScratch {
    /// An empty scratch; buffers size themselves on first use.
    #[must_use]
    pub fn new() -> FaultScratch {
        FaultScratch {
            fplan: FaultPlan::neutral(0, 0),
            timed_out: Vec::new(),
            arrived: Vec::new(),
        }
    }

    /// The fault plan realized by the most recent faulty run.
    #[must_use]
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.fplan
    }
}

/// Drop-stream draws one faulty run of `plan` consumes: exactly one per
/// planned signal, so the count is the plan's total edge count — the
/// fault twin of `CompiledPattern::jitter_draws`, and what makes the
/// draw audit static.
#[must_use]
pub fn fault_drop_draws(plan: &CompiledPattern) -> usize {
    (0..plan.stages()).map(|s| plan.stage(s).edge_count()).sum()
}

impl BarrierSim<'_> {
    /// One faulty cold-start run of a compiled pattern from per-rank
    /// entry times (realized straggler delays are added on top).
    ///
    /// Jitter fills from `(seed, label, rep)` exactly like
    /// [`BarrierSim::run_once_batched`]; fault structure and drop
    /// decisions come from the disjoint `FAULT_LABEL`/`FAULT_DROP_LABEL`
    /// streams at the same `(seed, rep)`. With [`FaultModel::is_none`]
    /// the exits are bit-identical to the fault-free batched run.
    #[allow(clippy::too_many_arguments)]
    pub fn run_once_faulty(
        &self,
        plan: &CompiledPattern,
        payload: &PayloadSchedule,
        fault: &FaultModel,
        entry: &[f64],
        net: &mut NetState,
        seed: u64,
        label: u64,
        rep: u64,
        scratch: &mut SimScratch,
    ) -> FaultReport {
        let mut fs = FaultScratch::new();
        let mut report = FaultReport::new(plan.p());
        self.run_once_faulty_into(
            plan,
            payload,
            fault,
            entry,
            net,
            seed,
            label,
            rep,
            scratch,
            &mut fs,
            &mut report,
        );
        report
    }

    /// Allocation-free twin of [`BarrierSim::run_once_faulty`]: the
    /// realized fault plan and the timeout/arrival bookkeeping live in
    /// `fs`, the outcomes in `report` — all reused across calls.
    #[allow(clippy::too_many_arguments)]
    pub fn run_once_faulty_into(
        &self,
        plan: &CompiledPattern,
        payload: &PayloadSchedule,
        fault: &FaultModel,
        entry: &[f64],
        net: &mut NetState,
        seed: u64,
        label: u64,
        rep: u64,
        scratch: &mut SimScratch,
        fs: &mut FaultScratch,
        report: &mut FaultReport,
    ) {
        let nodes = self.placement.shape().nodes();
        let FaultScratch {
            fplan,
            timed_out,
            arrived,
        } = fs;
        fplan.realize_into(fault, plan.p(), nodes, seed, rep);
        self.faulty_core(
            plan, payload, fault, fplan, entry, net, seed, label, rep, scratch, timed_out, arrived,
            report,
        );
    }

    /// Faulty run under a caller-supplied [`FaultPlan`] (e.g.
    /// [`FaultPlan::with_crashes`] for a deterministic crash-set sweep)
    /// instead of one realized from the fault stream. The drop and
    /// jitter streams are consumed exactly as in
    /// [`BarrierSim::run_once_faulty`].
    #[allow(clippy::too_many_arguments)]
    pub fn run_once_faulty_with(
        &self,
        plan: &CompiledPattern,
        payload: &PayloadSchedule,
        fault: &FaultModel,
        fplan: &FaultPlan,
        entry: &[f64],
        net: &mut NetState,
        seed: u64,
        label: u64,
        rep: u64,
        scratch: &mut SimScratch,
        fs: &mut FaultScratch,
        report: &mut FaultReport,
    ) {
        let FaultScratch {
            timed_out, arrived, ..
        } = fs;
        self.faulty_core(
            plan, payload, fault, fplan, entry, net, seed, label, rep, scratch, timed_out, arrived,
            report,
        );
    }

    #[allow(clippy::too_many_arguments)]
    fn faulty_core(
        &self,
        plan: &CompiledPattern,
        payload: &PayloadSchedule,
        fault: &FaultModel,
        fplan: &FaultPlan,
        entry: &[f64],
        net: &mut NetState,
        seed: u64,
        label: u64,
        rep: u64,
        scratch: &mut SimScratch,
        timed_out: &mut Vec<bool>,
        arrived: &mut Vec<usize>,
        report: &mut FaultReport,
    ) {
        let p = plan.p();
        assert_eq!(entry.len(), p, "entry vector length");
        assert_eq!(self.placement.nprocs(), p, "placement process count");
        assert_eq!(fplan.crash_time.len(), p, "fault plan rank count");
        let mut drops = DropStream::new(seed, rep);
        let mut jit = std::mem::take(&mut scratch.jitter);
        jit.fill(
            self.params.jitter.sigma,
            seed,
            label,
            rep,
            plan.jitter_draws(),
        );
        for (c, (&e, &d)) in scratch
            .cur
            .iter_mut()
            .zip(entry.iter().zip(&fplan.straggler_delay))
        {
            *c = e + d;
        }
        report.reset(p);
        timed_out.clear();
        timed_out.resize(p, false);
        arrived.clear();
        arrived.resize(p, 0);
        for s in 0..plan.stages() {
            self.run_stage_faulty(
                plan, payload, s, fault, fplan, &mut drops, net, &mut jit, scratch, report,
                timed_out, arrived,
            );
            std::mem::swap(&mut scratch.cur, &mut scratch.nxt);
        }
        for (i, out) in report.outcomes.iter_mut().enumerate() {
            *out = if fplan.crash_time[i] < f64::INFINITY {
                RankOutcome::Crashed(fplan.crash_time[i])
            } else if timed_out[i] {
                RankOutcome::TimedOut(scratch.cur[i])
            } else {
                RankOutcome::Completed(scratch.cur[i])
            };
        }
        debug_assert_eq!(
            drops.drawn(),
            fault_drop_draws(plan),
            "faulty executor consumed a different drop-draw count than the plan reports"
        );
        debug_assert!(
            self.params.jitter.sigma == 0.0 || jit.consumed() == plan.jitter_draws(),
            "faulty executor consumed a different jitter-draw count than the plan reports"
        );
        scratch.jitter = jit;
    }

    #[allow(clippy::too_many_arguments)]
    fn run_stage_faulty(
        &self,
        plan: &CompiledPattern,
        payload: &PayloadSchedule,
        s: usize,
        fault: &FaultModel,
        fplan: &FaultPlan,
        drops: &mut DropStream,
        net: &mut NetState,
        jit: &mut hpm_stats::rng::JitterBuf,
        scratch: &mut SimScratch,
        report: &mut FaultReport,
        timed_out: &mut [bool],
        arrived: &mut [usize],
    ) {
        use hpm_stats::rng::JitterSource;
        let p = plan.p();
        let stage = plan.stage(s);
        let bytes = payload.bytes(s);
        let SimScratch {
            cur,
            nxt,
            posted,
            last_arrival,
            ..
        } = scratch;
        for (i, (post, &e)) in posted.iter_mut().zip(cur.iter()).enumerate() {
            let slow = fplan.node_slow[self.placement.node_of(i)];
            *post = e + self.params.call_overhead * jit.next_mult() * slow;
        }
        nxt.copy_from_slice(posted);
        last_arrival.fill(f64::NEG_INFINITY);
        arrived[..p].fill(0);
        for i in 0..p {
            let mut t = posted[i];
            for &j in stage.dsts(i) {
                match net.signal_round_trip_faulty(
                    self.params,
                    self.placement,
                    jit,
                    fault,
                    fplan,
                    drops,
                    i,
                    j,
                    t,
                    bytes,
                    posted[j],
                ) {
                    SignalFate::Delivered {
                        ack,
                        processed,
                        retries,
                        retry_delay,
                    } => {
                        t = ack;
                        report.retries += retries as u64;
                        report.retry_delay += retry_delay;
                        arrived[j] += 1;
                        if processed > last_arrival[j] {
                            last_arrival[j] = processed;
                        }
                    }
                    SignalFate::Lost { gave_up } => {
                        report.lost_signals += 1;
                        timed_out[i] = true;
                        t = gave_up;
                    }
                    SignalFate::SenderDead => {
                        report.suppressed_signals += 1;
                    }
                }
            }
            if t > nxt[i] {
                nxt[i] = t;
            }
        }
        for j in 0..p {
            if last_arrival[j] > nxt[j] {
                nxt[j] = last_arrival[j];
            }
            // A surviving rank missing an expected arrival waits out the
            // sender-symmetric retry budget past its post, then gives up.
            if arrived[j] < stage.in_degree(j) && fplan.crash_time[j] == f64::INFINITY {
                timed_out[j] = true;
                let gave_up = posted[j] + fault.loss_delay();
                if gave_up > nxt[j] {
                    nxt[j] = gave_up;
                }
            }
        }
    }

    /// Repeated faulty cold-start runs with independent fault and jitter
    /// streams per repetition, fanned out on [`hpm_par`]. Repetition `r`
    /// is bit-identical to a lone [`BarrierSim::run_once_faulty`] at
    /// `rep = r` — grouping into workers is invisible, exactly like the
    /// lane batching of the healthy `measure`.
    /// # Panics
    ///
    /// Panics when `fault` fails [`FaultModel::checked`], naming the
    /// offending knob — a sweep over user-supplied models dies at entry
    /// with a clear message instead of misbehaving mid-run.
    pub fn measure_faulty(
        &self,
        plan: &CompiledPattern,
        payload: &PayloadSchedule,
        fault: &FaultModel,
        reps: usize,
        seed: u64,
    ) -> Vec<FaultReport> {
        if let Err(e) = fault.checked() {
            panic!("measure_faulty: invalid FaultModel: {e}");
        }
        let zeros = vec![0.0; plan.p()];
        hpm_par::par_map_indexed_with(
            reps,
            || {
                (
                    SimScratch::new(self.placement),
                    NetState::new(self.placement),
                    FaultScratch::new(),
                )
            },
            |(scratch, net, fs), r| {
                net.reset();
                let mut report = FaultReport::new(plan.p());
                self.run_once_faulty_into(
                    plan,
                    payload,
                    fault,
                    &zeros,
                    net,
                    seed,
                    crate::barrier::BARRIER_JITTER_LABEL,
                    r as u64,
                    scratch,
                    fs,
                    &mut report,
                );
                report
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::xeon_cluster_params;
    use hpm_core::pattern::CommPattern;
    use hpm_stats::fault::DropProb;
    use hpm_topology::{cluster_8x2x4, Placement, PlacementPolicy};

    fn dissemination(p: usize) -> CompiledPattern {
        use hpm_core::matrix::IMat;
        use hpm_core::pattern::BarrierPattern;
        let stages = (p as f64).log2().ceil() as usize;
        let mats = (0..stages)
            .map(|s| {
                let edges: Vec<(usize, usize)> = (0..p).map(|i| (i, (i + (1 << s)) % p)).collect();
                IMat::from_edges(p, &edges)
            })
            .collect();
        BarrierPattern::new("dissemination", p, mats).plan()
    }

    fn faulty_model() -> FaultModel {
        FaultModel {
            crash_count: 2,
            crash_window: 1e-4,
            drop: DropProb::uniform(0.05),
            degraded_prob: 0.1,
            degraded_mult: 3.0,
            slow_prob: 0.2,
            slow_mult: 2.0,
            straggler_prob: 0.1,
            straggler_scale: 5e-5,
            straggler_alpha: 1.5,
            ..FaultModel::NONE
        }
    }

    fn sim_fixture(p: usize) -> (crate::params::PlatformParams, Placement) {
        let params = xeon_cluster_params();
        let placement = Placement::new(cluster_8x2x4(), PlacementPolicy::RoundRobin, p);
        (params, placement)
    }

    /// The zero-fault property of the tentpole: a `FaultModel::NONE` run
    /// is bitwise identical to the fault-free batched engine, sample by
    /// sample.
    #[test]
    fn none_model_matches_fault_free_engine_bitwise() {
        let p = 32;
        let (params, placement) = sim_fixture(p);
        let sim = BarrierSim::new(&params, &placement);
        let plan = dissemination(p);
        let payload = PayloadSchedule::none();
        let mut net = NetState::new(&placement);
        let mut scratch = SimScratch::new(&placement);
        for rep in 0..8u64 {
            let healthy = sim.run_total_batched(&plan, &payload, 4242, rep, &mut net, &mut scratch);
            net.reset();
            let report = sim.run_once_faulty(
                &plan,
                &payload,
                &FaultModel::NONE,
                &vec![0.0; p],
                &mut net,
                4242,
                crate::barrier::BARRIER_JITTER_LABEL,
                rep,
                &mut scratch,
            );
            assert!(report.all_completed());
            assert_eq!(report.retries, 0);
            assert_eq!(report.lost_signals, 0);
            assert_eq!(
                report.total().to_bits(),
                healthy.to_bits(),
                "rep {rep}: faulty-but-neutral diverged from the healthy engine"
            );
        }
    }

    /// Faulty repetitions are bit-identical at any thread count, and
    /// `measure_faulty` rep `r` equals a lone `run_once_faulty` at `r`.
    #[test]
    fn faulty_measure_is_thread_invariant_and_rep_keyed() {
        let p = 24;
        let (params, placement) = sim_fixture(p);
        let sim = BarrierSim::new(&params, &placement);
        let plan = dissemination(p);
        let payload = PayloadSchedule::none();
        let fault = faulty_model();
        let serial = hpm_par::with_threads(Some(1), || {
            sim.measure_faulty(&plan, &payload, &fault, 12, 99)
        });
        for threads in [2usize, 8] {
            let par = hpm_par::with_threads(Some(threads), || {
                sim.measure_faulty(&plan, &payload, &fault, 12, 99)
            });
            assert_eq!(serial, par, "threads {threads}");
        }
        let mut net = NetState::new(&placement);
        let mut scratch = SimScratch::new(&placement);
        for (r, rep_report) in serial.iter().enumerate() {
            net.reset();
            let lone = sim.run_once_faulty(
                &plan,
                &payload,
                &fault,
                &vec![0.0; p],
                &mut net,
                99,
                crate::barrier::BARRIER_JITTER_LABEL,
                r as u64,
                &mut scratch,
            );
            assert_eq!(*rep_report, lone, "rep {r}");
        }
    }

    /// The consumed-vs-planned audit extends to fault draws: a faulty
    /// run consumes exactly `fault_drop_draws(plan)` drop uniforms and
    /// the plan's jitter draws — knob values notwithstanding.
    #[test]
    fn faulty_executor_consumes_exactly_the_plan_reported_draws() {
        let p = 16;
        let (params, placement) = sim_fixture(p);
        let sim = BarrierSim::new(&params, &placement);
        let plan = dissemination(p);
        let payload = PayloadSchedule::none();
        assert_eq!(
            fault_drop_draws(&plan),
            (0..plan.stages())
                .map(|s| plan.stage(s).edge_count())
                .sum::<usize>()
        );
        let mut net = NetState::new(&placement);
        let mut scratch = SimScratch::new(&placement);
        for fault in [FaultModel::NONE, faulty_model()] {
            net.reset();
            let _ = sim.run_once_faulty(
                &plan,
                &payload,
                &fault,
                &vec![0.0; p],
                &mut net,
                7,
                crate::barrier::BARRIER_JITTER_LABEL,
                0,
                &mut scratch,
            );
            // The debug asserts inside run_once_faulty enforce the
            // counts; in release builds this test still pins the jitter
            // cursor through the scratch.
            assert_eq!(scratch.jitter().consumed(), plan.jitter_draws());
        }
    }

    /// Crashed ranks report as crashed; their expected receivers time
    /// out rather than hang; survivors still finish.
    #[test]
    fn crashes_surface_as_outcomes_not_hangs() {
        let p = 16;
        let (params, placement) = sim_fixture(p);
        let sim = BarrierSim::new(&params, &placement);
        let plan = dissemination(p);
        let fault = FaultModel {
            crash_count: 2,
            crash_window: 1e-5,
            ..FaultModel::NONE
        };
        let reports = sim.measure_faulty(&plan, &PayloadSchedule::none(), &fault, 6, 5);
        for (r, report) in reports.iter().enumerate() {
            let crashed: Vec<usize> = (0..p)
                .filter(|&i| matches!(report.outcomes[i], RankOutcome::Crashed(_)))
                .collect();
            assert_eq!(crashed.len(), 2, "rep {r}");
            assert!(report.suppressed_signals > 0, "rep {r}");
            // In a dissemination barrier every rank expects signals from
            // the crashed ranks eventually, so timeouts must appear.
            assert!(
                report
                    .outcomes
                    .iter()
                    .any(|o| matches!(o, RankOutcome::TimedOut(_))),
                "rep {r}: no rank timed out despite crashes"
            );
            assert!(report.total().is_finite());
        }
    }

    /// Drops slow the barrier down (retry latency) without changing who
    /// completes, and retries are reported.
    #[test]
    fn drops_cost_retries_and_inflate_completion() {
        let p = 32;
        let (params, placement) = sim_fixture(p);
        let sim = BarrierSim::new(&params, &placement);
        let plan = dissemination(p);
        let payload = PayloadSchedule::none();
        let clean = sim.measure_faulty(&plan, &payload, &FaultModel::NONE, 16, 21);
        let dropped = sim.measure_faulty(
            &plan,
            &payload,
            &FaultModel {
                drop: DropProb::uniform(0.08),
                max_retries: 10,
                ..FaultModel::NONE
            },
            16,
            21,
        );
        let mean =
            |rs: &[FaultReport]| rs.iter().map(FaultReport::total).sum::<f64>() / rs.len() as f64;
        let retries: u64 = dropped.iter().map(|r| r.retries).sum();
        assert!(retries > 0, "8% drop over 16 reps must retry at least once");
        assert!(dropped.iter().all(FaultReport::all_completed));
        assert!(
            mean(&dropped) > mean(&clean),
            "retries must inflate completion: {} vs {}",
            mean(&dropped),
            mean(&clean)
        );
    }

    /// Stragglers delay entry, and the delay propagates into completion
    /// times roughly like the §5.5 entry-skew experiment.
    #[test]
    fn stragglers_delay_completion() {
        let p = 16;
        let (params, placement) = sim_fixture(p);
        let sim = BarrierSim::new(&params, &placement);
        let plan = dissemination(p);
        let payload = PayloadSchedule::none();
        let clean = sim.measure_faulty(&plan, &payload, &FaultModel::NONE, 16, 3);
        let straggly = sim.measure_faulty(
            &plan,
            &payload,
            &FaultModel {
                straggler_prob: 0.3,
                straggler_scale: 1e-3,
                straggler_alpha: 1.5,
                ..FaultModel::NONE
            },
            16,
            3,
        );
        let mean =
            |rs: &[FaultReport]| rs.iter().map(FaultReport::total).sum::<f64>() / rs.len() as f64;
        assert!(
            mean(&straggly) > 2.0 * mean(&clean),
            "millisecond-scale stragglers must dominate: {} vs {}",
            mean(&straggly),
            mean(&clean)
        );
    }

    /// Report bookkeeping: survivors and failed partition the ranks.
    #[test]
    fn survivors_and_failed_partition_ranks() {
        let p = 16;
        let (params, placement) = sim_fixture(p);
        let sim = BarrierSim::new(&params, &placement);
        let plan = dissemination(p);
        let fault = faulty_model();
        let reports = sim.measure_faulty(&plan, &PayloadSchedule::none(), &fault, 4, 13);
        for report in &reports {
            let mut all: Vec<usize> = report.survivors();
            all.extend(report.failed());
            all.sort_unstable();
            assert_eq!(all, (0..p).collect::<Vec<_>>());
            assert_eq!(report.completed_count(), report.survivors().len());
        }
    }
}
