//! The Fig. 5.5 staged barrier executor.
//!
//! The thesis' barrier simulator drives an arbitrary pattern through
//! `MPI_Startall`/`MPI_Waitall` per stage; the equivalent here executes
//! each stage against the message engine: every process pays the call
//! overhead, issues its signal vector as serial acknowledged round trips,
//! and leaves the stage when its own sends are acknowledged and its
//! expected receives are processed.
//!
//! The executor follows the compile-then-execute split of the flat
//! simulation core (see DESIGN.md): patterns are compiled once into
//! [`CompiledPattern`] CSR form, and every execution runs over a caller-
//! owned [`SimScratch`] — after warmup, [`BarrierSim::run_once_compiled`]
//! performs zero heap allocations per repetition. The generic
//! [`BarrierSim::run_once`]/[`BarrierSim::run_total`] wrappers keep the
//! old one-shot API for callers off the hot path.
//!
//! Stochastics come in through a [`JitterSource`]: the `*_compiled`
//! entry points accept any source, and the `*_batched` entry points
//! batch-fill the scratch's [`JitterBuf`] with exactly
//! [`CompiledPattern::jitter_draws`] multipliers from a counter-based
//! stream keyed by `(seed, label, rep)` before executing — the stage
//! loop then touches no RNG at all. [`BarrierSim::measure`] goes one
//! step further and runs repetitions in SoA lanes on the
//! [`crate::batch::LaneScratch`] executor; because every repetition's
//! multipliers come from its own `(seed, rep)` stream, the samples are
//! identical however repetitions are grouped into lanes or threads.

use crate::batch::LaneScratch;
use crate::net::NetState;
use crate::params::PlatformParams;
use hpm_core::pattern::CommPattern;
use hpm_core::plan::CompiledPattern;
use hpm_core::predictor::PayloadSchedule;
use hpm_stats::rng::{JitterBuf, JitterSource, ScalarJitter};
use hpm_topology::Placement;
use rand::rngs::StdRng;

/// Stream label of the staged barrier executor's jitter tables: every
/// repetition `r` of a measurement with seed `s` fills from the stream
/// `(s, BARRIER_JITTER_LABEL, r)`, whether it runs scalar-batched or as
/// one lane of the SoA executor.
pub const BARRIER_JITTER_LABEL: u64 = 0x4241_5252; // "BARR"

/// Lanes per batch of [`BarrierSim::measure`]. A tuning knob, not a
/// contract: samples are bit-identical for any lane width because each
/// repetition owns its `(seed, rep)` jitter stream.
pub const MEASURE_LANES: usize = 8;

/// Aggregated timings of repeated barrier executions.
#[derive(Debug, Clone)]
pub struct BarrierMeasurement {
    /// Completion time (max over processes) of every run.
    pub samples: Vec<f64>,
}

impl BarrierMeasurement {
    /// Arithmetic mean of the per-run worst-case times — the statistic of
    /// Figs. 5.6/5.10 ("worst-case times were collected from 256 runs …
    /// and the arithmetic mean of these is reported").
    ///
    /// Computed directly from the samples slice; `hpm_stats::mean` steps
    /// the same Welford recurrence as `Summary`, so the value is
    /// bit-identical to the old build-a-`Summary` path without its
    /// insertion-sorted copy.
    pub fn mean(&self) -> f64 {
        hpm_stats::mean(&self.samples)
    }

    /// Median per-run worst-case time, computed directly from the
    /// samples slice by quickselect.
    pub fn median(&self) -> f64 {
        hpm_stats::quantile::median(&self.samples)
    }
}

/// Reusable per-execution buffers of the staged executor: stage entry and
/// exit times, library-posted times and inbound-arrival accumulators.
///
/// One scratch serves any pattern over its placement's process count;
/// carry it across stages, repetitions and supersteps (the measurement
/// loop keeps one per worker) so the executor's inner loop never touches
/// the allocator.
#[derive(Debug, Clone)]
pub struct SimScratch {
    /// Entry times of the current stage; holds the final exits after a
    /// run ([`SimScratch::exits`]).
    pub(crate) cur: Vec<f64>,
    /// Exit times being accumulated for the current stage.
    pub(crate) nxt: Vec<f64>,
    /// Per-process library-posted times within one stage.
    pub(crate) posted: Vec<f64>,
    /// Per-process latest inbound-signal processing time within one stage.
    pub(crate) last_arrival: Vec<f64>,
    /// Jitter table of the `*_batched` entry points, refilled per run
    /// (the allocation is reused across fills).
    pub(crate) jitter: JitterBuf,
}

impl SimScratch {
    /// Scratch sized for a placement's process count.
    pub fn new(placement: &Placement) -> SimScratch {
        let p = placement.nprocs();
        SimScratch {
            cur: vec![0.0; p],
            nxt: vec![0.0; p],
            posted: vec![0.0; p],
            last_arrival: vec![0.0; p],
            jitter: JitterBuf::new(),
        }
    }

    /// Per-process exit times of the most recent run.
    pub fn exits(&self) -> &[f64] {
        &self.cur
    }

    /// The jitter table of the most recent `*_batched` run — lets audit
    /// tests compare [`JitterBuf::consumed`] against the plan's
    /// reported draw count.
    pub fn jitter(&self) -> &JitterBuf {
        &self.jitter
    }
}

/// Executes barrier patterns on a simulated platform.
#[derive(Debug, Clone, Copy)]
pub struct BarrierSim<'a> {
    pub params: &'a PlatformParams,
    pub placement: &'a Placement,
}

impl<'a> BarrierSim<'a> {
    /// Creates an executor; the placement must match the platform.
    pub fn new(params: &'a PlatformParams, placement: &'a Placement) -> BarrierSim<'a> {
        BarrierSim { params, placement }
    }

    /// Runs one execution from per-process entry times; returns exit times.
    ///
    /// `net` carries NIC/receiver queues across calls, so consecutive
    /// barriers in a superstep share contention state.
    ///
    /// One-shot convenience: compiles the pattern and allocates scratch
    /// per call. Hot paths compile once and use
    /// [`BarrierSim::run_once_compiled`].
    pub fn run_once<P: CommPattern + ?Sized>(
        &self,
        pattern: &P,
        payload: &PayloadSchedule,
        entry: &[f64],
        net: &mut NetState,
        rng: &mut StdRng,
    ) -> Vec<f64> {
        let plan = pattern.plan();
        let mut scratch = SimScratch::new(self.placement);
        let mut jit = ScalarJitter::new(self.params.jitter, rng);
        self.run_once_compiled(&plan, payload, entry, net, &mut jit, &mut scratch);
        // The scalar twin of the batched consumed-vs-planned audit
        // (`JitterBuf::consumed`): the adapter counts draw slots, so
        // plan/executor divergence cannot stay silent on this path
        // either.
        debug_assert_eq!(
            jit.drawn(),
            plan.jitter_draws(),
            "scalar executor consumed a different draw count than the plan reports"
        );
        scratch.exits().to_vec()
    }

    /// Runs one execution of a compiled pattern from per-process entry
    /// times, entirely within `scratch`; read the exit times from
    /// [`SimScratch::exits`]. Performs no heap allocation.
    pub fn run_once_compiled<J: JitterSource>(
        &self,
        plan: &CompiledPattern,
        payload: &PayloadSchedule,
        entry: &[f64],
        net: &mut NetState,
        jit: &mut J,
        scratch: &mut SimScratch,
    ) {
        let p = plan.p();
        assert_eq!(entry.len(), p, "entry vector length");
        scratch.cur.copy_from_slice(entry);
        self.run_stages(plan, payload, net, jit, scratch);
    }

    /// [`BarrierSim::run_once_compiled`] on the batched jitter engine:
    /// fills the scratch's [`JitterBuf`] with the plan's exact draw
    /// count from the stream `(seed, label, rep)` and executes over it —
    /// the stage loop consumes multipliers by cursor only. Callers own
    /// the stream naming: the BSPlib sync labels per run and uses the
    /// superstep index as `rep`, the measurement loop uses
    /// [`BARRIER_JITTER_LABEL`] and the repetition index.
    #[allow(clippy::too_many_arguments)]
    pub fn run_once_batched(
        &self,
        plan: &CompiledPattern,
        payload: &PayloadSchedule,
        entry: &[f64],
        net: &mut NetState,
        seed: u64,
        label: u64,
        rep: u64,
        scratch: &mut SimScratch,
    ) {
        let mut jit = std::mem::take(&mut scratch.jitter);
        jit.fill(
            self.params.jitter.sigma,
            seed,
            label,
            rep,
            plan.jitter_draws(),
        );
        self.run_once_compiled(plan, payload, entry, net, &mut jit, scratch);
        scratch.jitter = jit;
    }

    /// Stage loop shared by the compiled entry points; expects the entry
    /// times in `scratch.cur` and leaves the final exits there.
    fn run_stages<J: JitterSource>(
        &self,
        plan: &CompiledPattern,
        payload: &PayloadSchedule,
        net: &mut NetState,
        jit: &mut J,
        scratch: &mut SimScratch,
    ) {
        assert_eq!(self.placement.nprocs(), plan.p(), "placement process count");
        for s in 0..plan.stages() {
            self.run_stage(plan, payload, s, net, jit, scratch);
            std::mem::swap(&mut scratch.cur, &mut scratch.nxt);
        }
    }

    fn run_stage<J: JitterSource>(
        &self,
        plan: &CompiledPattern,
        payload: &PayloadSchedule,
        s: usize,
        net: &mut NetState,
        jit: &mut J,
        scratch: &mut SimScratch,
    ) {
        let p = plan.p();
        let stage = plan.stage(s);
        let bytes = payload.bytes(s);
        let SimScratch {
            cur,
            nxt,
            posted,
            last_arrival,
            ..
        } = scratch;
        // Every process calls into the library: posted time = entry + call
        // overhead; from then on its receives are posted.
        for (post, &e) in posted.iter_mut().zip(cur.iter()) {
            *post = e + self.params.call_overhead * jit.next_mult();
        }
        nxt.copy_from_slice(posted);
        // last_arrival[j] accumulates processing times of j's inbound
        // signals.
        last_arrival.fill(f64::NEG_INFINITY);
        for i in 0..p {
            let mut t = posted[i];
            for &j in stage.dsts(i) {
                let (ack, processed) = net.signal_round_trip(
                    self.params,
                    self.placement,
                    jit,
                    i,
                    j,
                    t,
                    bytes,
                    posted[j],
                );
                t = ack;
                if processed > last_arrival[j] {
                    last_arrival[j] = processed;
                }
            }
            if t > nxt[i] {
                nxt[i] = t;
            }
        }
        for j in 0..p {
            if last_arrival[j] > nxt[j] {
                nxt[j] = last_arrival[j];
            }
        }
    }

    /// One complete run from a cold start; returns the worst-case (max)
    /// completion time. One-shot convenience over
    /// [`BarrierSim::run_total_compiled`].
    pub fn run_total<P: CommPattern + ?Sized>(
        &self,
        pattern: &P,
        payload: &PayloadSchedule,
        rng: &mut StdRng,
    ) -> f64 {
        let mut net = NetState::new(self.placement);
        let mut scratch = SimScratch::new(self.placement);
        let mut jit = ScalarJitter::new(self.params.jitter, rng);
        let plan = pattern.plan();
        let total = self.run_total_compiled(&plan, payload, &mut jit, &mut net, &mut scratch);
        debug_assert_eq!(
            jit.drawn(),
            plan.jitter_draws(),
            "scalar executor consumed a different draw count than the plan reports"
        );
        total
    }

    /// One complete run of a compiled pattern from a cold start over
    /// caller-owned network state and scratch; returns the worst-case
    /// (max) completion time. Resets `net` itself (a reset queue is
    /// indistinguishable from a fresh one), so repetitions reusing one
    /// `(net, scratch)` pair are bit-identical to cold-state runs —
    /// and allocation-free.
    pub fn run_total_compiled<J: JitterSource>(
        &self,
        plan: &CompiledPattern,
        payload: &PayloadSchedule,
        jit: &mut J,
        net: &mut NetState,
        scratch: &mut SimScratch,
    ) -> f64 {
        net.reset();
        scratch.cur.fill(0.0);
        self.run_stages(plan, payload, net, jit, scratch);
        scratch
            .exits()
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// [`BarrierSim::run_total_compiled`] on the batched jitter engine:
    /// one cold-start repetition whose multipliers fill from the stream
    /// `(seed, BARRIER_JITTER_LABEL, rep)`. Repetition `rep` of this
    /// entry point is bit-identical to lane `rep - first_rep` of
    /// [`BarrierSim::run_batch_compiled`] — the lane executor performs
    /// the same arithmetic on the same multipliers, just strided.
    pub fn run_total_batched(
        &self,
        plan: &CompiledPattern,
        payload: &PayloadSchedule,
        seed: u64,
        rep: u64,
        net: &mut NetState,
        scratch: &mut SimScratch,
    ) -> f64 {
        let mut jit = std::mem::take(&mut scratch.jitter);
        jit.fill(
            self.params.jitter.sigma,
            seed,
            BARRIER_JITTER_LABEL,
            rep,
            plan.jitter_draws(),
        );
        let total = self.run_total_compiled(plan, payload, &mut jit, net, scratch);
        scratch.jitter = jit;
        total
    }

    /// Repeated runs with independent jitter streams, in SoA lanes.
    ///
    /// Repetitions execute [`MEASURE_LANES`] at a time on the
    /// lane-parallel executor: each batch fills one draw-major jitter
    /// table (lane `l` from the stream `(seed, BARRIER_JITTER_LABEL,
    /// rep)`) in a single tight pass and then runs every lane's
    /// repetition simultaneously over SoA state. Because a repetition's
    /// multipliers depend only on `(seed, rep)` and the per-lane
    /// arithmetic is the scalar recurrence verbatim, the samples are
    /// bit-identical to one-at-a-time [`BarrierSim::run_total_batched`]
    /// runs — at any lane width and any [`hpm_par`] thread count. The
    /// pattern is compiled once and each worker carries one
    /// [`LaneScratch`] across its batches.
    pub fn measure<P: CommPattern + ?Sized + Sync>(
        &self,
        pattern: &P,
        payload: &PayloadSchedule,
        reps: usize,
        seed: u64,
    ) -> BarrierMeasurement {
        self.measure_compiled(&pattern.plan(), payload, reps, seed)
    }

    /// [`BarrierSim::measure`] over an already-compiled pattern — the
    /// entry point of the scale path, where patterns are authored
    /// sparsely (see `StagePlan::from_edges`) and a dense intermediate
    /// would dwarf the simulation state. Identical samples to
    /// [`BarrierSim::measure`] on the pattern the plan was compiled from.
    pub fn measure_compiled(
        &self,
        plan: &CompiledPattern,
        payload: &PayloadSchedule,
        reps: usize,
        seed: u64,
    ) -> BarrierMeasurement {
        let batches = reps.div_ceil(MEASURE_LANES);
        let chunks = hpm_par::par_map_indexed_with(batches, LaneScratch::new, |scratch, b| {
            let first = b * MEASURE_LANES;
            let lanes = MEASURE_LANES.min(reps - first);
            self.run_batch_compiled(plan, payload, seed, first as u64, lanes, scratch)
                .to_vec()
        });
        BarrierMeasurement {
            samples: chunks.concat(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::xeon_cluster_params;
    use hpm_core::matrix::IMat;
    use hpm_core::pattern::BarrierPattern;
    use hpm_stats::rng::derive_rng;
    use hpm_topology::{cluster_8x2x4, PlacementPolicy};

    fn linear(p: usize) -> BarrierPattern {
        let gather: Vec<(usize, usize)> = (1..p).map(|i| (i, 0)).collect();
        let release: Vec<(usize, usize)> = (1..p).map(|i| (0, i)).collect();
        BarrierPattern::new(
            "linear",
            p,
            vec![IMat::from_edges(p, &gather), IMat::from_edges(p, &release)],
        )
    }

    fn dissemination(p: usize) -> BarrierPattern {
        let stages = (p as f64).log2().ceil() as usize;
        let mats = (0..stages)
            .map(|s| {
                let edges: Vec<(usize, usize)> = (0..p).map(|i| (i, (i + (1 << s)) % p)).collect();
                IMat::from_edges(p, &edges)
            })
            .collect();
        BarrierPattern::new("dissemination", p, mats)
    }

    #[test]
    fn deterministic_given_seed() {
        let params = xeon_cluster_params();
        let placement = Placement::new(cluster_8x2x4(), PlacementPolicy::RoundRobin, 32);
        let sim = BarrierSim::new(&params, &placement);
        let a = sim.measure(&dissemination(32), &PayloadSchedule::none(), 5, 77);
        let b = sim.measure(&dissemination(32), &PayloadSchedule::none(), 5, 77);
        assert_eq!(a.samples, b.samples);
    }

    /// Parallel repetitions return the same samples, in the same order,
    /// as a serial loop — per-rep derived RNG streams make the schedule
    /// irrelevant.
    #[test]
    fn parallel_measure_matches_serial_bitwise() {
        let params = xeon_cluster_params();
        let placement = Placement::new(cluster_8x2x4(), PlacementPolicy::RoundRobin, 24);
        let sim = BarrierSim::new(&params, &placement);
        for seed in [7u64, 77, 777] {
            let serial = hpm_par::with_threads(Some(1), || {
                sim.measure(&dissemination(24), &PayloadSchedule::none(), 16, seed)
            });
            for threads in [2usize, 5, 16] {
                let par = hpm_par::with_threads(Some(threads), || {
                    sim.measure(&dissemination(24), &PayloadSchedule::none(), 16, seed)
                });
                assert_eq!(serial.samples, par.samples, "seed {seed} threads {threads}");
            }
        }
    }

    #[test]
    fn dissemination_beats_linear_at_scale() {
        let params = xeon_cluster_params();
        let placement = Placement::new(cluster_8x2x4(), PlacementPolicy::RoundRobin, 64);
        let sim = BarrierSim::new(&params, &placement);
        let lin = sim
            .measure(&linear(64), &PayloadSchedule::none(), 8, 1)
            .mean();
        let dis = sim
            .measure(&dissemination(64), &PayloadSchedule::none(), 8, 1)
            .mean();
        assert!(lin > 2.0 * dis, "linear {lin} vs dissemination {dis}");
    }

    #[test]
    fn single_node_barrier_is_microseconds() {
        let params = xeon_cluster_params();
        let placement = Placement::new(cluster_8x2x4(), PlacementPolicy::RoundRobin, 8);
        let sim = BarrierSim::new(&params, &placement);
        let t = sim
            .measure(&dissemination(8), &PayloadSchedule::none(), 8, 2)
            .mean();
        assert!(t > 0.0 && t < 50e-6, "one-node dissemination {t}");
    }

    #[test]
    fn multi_node_barrier_is_submillisecond_but_larger() {
        let params = xeon_cluster_params();
        let placement = Placement::new(cluster_8x2x4(), PlacementPolicy::RoundRobin, 64);
        let sim = BarrierSim::new(&params, &placement);
        let t = sim
            .measure(&dissemination(64), &PayloadSchedule::none(), 8, 3)
            .mean();
        assert!(
            t > 50e-6 && t < 2e-3,
            "full-cluster dissemination {t} out of expected band"
        );
    }

    #[test]
    fn payload_slows_the_barrier() {
        let params = xeon_cluster_params();
        let placement = Placement::new(cluster_8x2x4(), PlacementPolicy::RoundRobin, 64);
        let sim = BarrierSim::new(&params, &placement);
        let plain = sim
            .measure(&dissemination(64), &PayloadSchedule::none(), 8, 4)
            .mean();
        let mapped = sim
            .measure(
                &dissemination(64),
                &PayloadSchedule::dissemination_count_map(64),
                8,
                4,
            )
            .mean();
        assert!(mapped > plain, "payload {mapped} vs plain {plain}");
    }

    #[test]
    fn linear_scales_linearly_dissemination_logarithmically() {
        let params = xeon_cluster_params().noiseless();
        let placement64 = Placement::new(cluster_8x2x4(), PlacementPolicy::RoundRobin, 64);
        let placement16 = Placement::new(cluster_8x2x4(), PlacementPolicy::RoundRobin, 16);
        let s64 = BarrierSim::new(&params, &placement64);
        let s16 = BarrierSim::new(&params, &placement16);
        let lin_ratio = s64
            .measure(&linear(64), &PayloadSchedule::none(), 3, 5)
            .mean()
            / s16
                .measure(&linear(16), &PayloadSchedule::none(), 3, 5)
                .mean();
        let dis_ratio = s64
            .measure(&dissemination(64), &PayloadSchedule::none(), 3, 5)
            .mean()
            / s16
                .measure(&dissemination(16), &PayloadSchedule::none(), 3, 5)
                .mean();
        // 4x process growth: linear should grow ~4x, dissemination ~6/4x.
        assert!(lin_ratio > 2.5, "linear ratio {lin_ratio}");
        assert!(dis_ratio < 2.5, "dissemination ratio {dis_ratio}");
    }

    #[test]
    fn entry_skew_delays_completion() {
        // Delaying one process delays the barrier by about the same amount
        // — the empirical verification §5.5 describes.
        let params = xeon_cluster_params().noiseless();
        let placement = Placement::new(cluster_8x2x4(), PlacementPolicy::RoundRobin, 16);
        let sim = BarrierSim::new(&params, &placement);
        let pat = dissemination(16);
        let mut rng = derive_rng(9, 0);
        let mut net = NetState::new(&placement);
        let base = sim
            .run_once(
                &pat,
                &PayloadSchedule::none(),
                &[0.0; 16],
                &mut net,
                &mut rng,
            )
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        let mut entry = vec![0.0; 16];
        entry[7] = 500e-6;
        net.reset();
        let mut rng2 = derive_rng(9, 0);
        let delayed = sim
            .run_once(&pat, &PayloadSchedule::none(), &entry, &mut net, &mut rng2)
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(
            delayed >= base + 400e-6,
            "delay must propagate: base {base}, delayed {delayed}"
        );
    }
}
