//! Platform parameter sets for the simulated clusters.
//!
//! Parameters are calibrated to the magnitudes of the thesis' test systems
//! (Table 3.1, Figs. 5.6/5.10): sub-microsecond shared-memory signalling,
//! ~10 µs one-way small-message cost across gigabit ethernet, and
//! ~100 MB/s-class remote bandwidth. Absolute values are not the point —
//! the *relationships* (orders of magnitude between link classes, NIC
//! serialization comparable to per-message overhead) are what give rise to
//! the barrier-shape results being reproduced.

use hpm_stats::rng::JitterModel;
use hpm_topology::LinkClass;

/// Cost parameters of one link class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkCost {
    /// Sender CPU time to put one message on this link (seconds).
    pub o_send: f64,
    /// Receiver CPU time to absorb one message (seconds).
    pub o_recv: f64,
    /// One-way wire latency of a zero-byte message (seconds).
    pub latency: f64,
    /// Inverse bandwidth (seconds per byte).
    pub inv_bandwidth: f64,
}

impl LinkCost {
    fn validate(&self, what: &str) {
        assert!(
            self.o_send >= 0.0
                && self.o_recv >= 0.0
                && self.latency >= 0.0
                && self.inv_bandwidth >= 0.0,
            "negative cost in {what} link"
        );
    }
}

/// The complete simulated platform description.
#[derive(Debug, Clone, PartialEq)]
pub struct PlatformParams {
    /// Descriptive name.
    pub name: String,
    /// Cost of invoking the request start/wait machinery with no work —
    /// the `O_ii` the microbenchmark extracts.
    pub call_overhead: f64,
    /// Link costs per class (self-loop messages are free and never sent).
    pub same_socket: LinkCost,
    pub same_node: LinkCost,
    pub remote: LinkCost,
    /// Per-message serialization gap at a node's NIC egress (seconds):
    /// remote messages from cohabiting processes queue for the wire.
    pub nic_gap: f64,
    /// Fraction of the forward wire latency an acknowledgement costs
    /// (acks ride the reverse path and piggyback, so < 1).
    pub ack_factor: f64,
    /// Extra receiver cost for a message arriving before its receiver
    /// posted (the unexpected-message buffer copy, §5.6.3's observation
    /// that L_ij drops when the destination is known to be waiting).
    pub unexpected_penalty: f64,
    /// Multiplicative OS jitter on every timed activity.
    pub jitter: JitterModel,
}

impl PlatformParams {
    /// Validates invariants: link classes must be ordered cheapest-first
    /// in both latency and overhead.
    pub fn validated(self) -> PlatformParams {
        self.same_socket.validate("same_socket");
        self.same_node.validate("same_node");
        self.remote.validate("remote");
        assert!(self.call_overhead >= 0.0);
        assert!(self.nic_gap >= 0.0);
        assert!(
            (0.0..=1.0).contains(&self.ack_factor),
            "ack_factor in [0,1]"
        );
        assert!(self.unexpected_penalty >= 0.0);
        assert!(
            self.same_socket.latency <= self.same_node.latency
                && self.same_node.latency <= self.remote.latency,
            "link latencies must grow with distance"
        );
        self
    }

    /// Link cost for a class; the self loop is free.
    pub fn link(&self, class: LinkClass) -> LinkCost {
        match class {
            LinkClass::SelfLoop => LinkCost {
                o_send: 0.0,
                o_recv: 0.0,
                latency: 0.0,
                inv_bandwidth: 0.0,
            },
            LinkClass::SameSocket => self.same_socket,
            LinkClass::SameNode => self.same_node,
            LinkClass::Remote => self.remote,
        }
    }

    /// A copy with jitter disabled, for exact-value tests.
    pub fn noiseless(&self) -> PlatformParams {
        let mut p = self.clone();
        p.jitter = JitterModel::NONE;
        p
    }
}

/// The 8×2×4 Xeon + gigabit-ethernet cluster of §5.6.6.
pub fn xeon_cluster_params() -> PlatformParams {
    PlatformParams {
        name: "xeon-8x2x4-gige".into(),
        call_overhead: 0.30e-6,
        same_socket: LinkCost {
            o_send: 0.12e-6,
            o_recv: 0.12e-6,
            latency: 0.35e-6,
            inv_bandwidth: 1.0e-10, // ~10 GB/s shared cache
        },
        same_node: LinkCost {
            o_send: 0.18e-6,
            o_recv: 0.18e-6,
            latency: 0.70e-6,
            inv_bandwidth: 1.6e-10, // ~6 GB/s cross-socket
        },
        remote: LinkCost {
            o_send: 1.0e-6,
            o_recv: 1.0e-6,
            latency: 8.0e-6,
            inv_bandwidth: 8.5e-9, // ~118 MB/s GigE payload rate
        },
        nic_gap: 1.0e-6,
        ack_factor: 0.6,
        unexpected_penalty: 0.5e-6,
        jitter: JitterModel::new(0.05),
    }
    .validated()
}

/// The 12×2×6 Opteron + gigabit-ethernet cluster of §5.6.6; also used for
/// the 10×2×6 configuration of Table 7.2.
pub fn opteron_cluster_params() -> PlatformParams {
    PlatformParams {
        name: "opteron-12x2x6-gige".into(),
        call_overhead: 0.34e-6,
        same_socket: LinkCost {
            o_send: 0.14e-6,
            o_recv: 0.14e-6,
            latency: 0.40e-6,
            inv_bandwidth: 1.2e-10,
        },
        same_node: LinkCost {
            o_send: 0.20e-6,
            o_recv: 0.20e-6,
            latency: 0.85e-6,
            inv_bandwidth: 1.8e-10,
        },
        remote: LinkCost {
            o_send: 1.1e-6,
            o_recv: 1.1e-6,
            latency: 9.0e-6,
            inv_bandwidth: 8.5e-9,
        },
        nic_gap: 1.1e-6,
        ack_factor: 0.6,
        unexpected_penalty: 0.55e-6,
        jitter: JitterModel::new(0.05),
    }
    .validated()
}

/// An InfiniBand-class interconnect on the Xeon nodes — the §9.2.4
/// future-work direction ("Range of Interconnects"): microsecond-scale
/// remote latency and ~3 GB/s links compress the latency hierarchy from
/// ~20× to ~4×, which shifts every topology-driven conclusion (barrier
/// choice, overlap benefit) toward the shared-memory regime.
pub fn infiniband_cluster_params() -> PlatformParams {
    let mut p = xeon_cluster_params();
    p.name = "xeon-8x2x4-ib".into();
    p.remote = LinkCost {
        o_send: 0.3e-6,
        o_recv: 0.3e-6,
        latency: 1.5e-6,
        inv_bandwidth: 3.3e-10, // ~3 GB/s
    };
    p.nic_gap = 0.2e-6;
    p.validated()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        xeon_cluster_params();
        opteron_cluster_params();
        infiniband_cluster_params();
    }

    #[test]
    fn infiniband_compresses_the_latency_hierarchy() {
        let gige = xeon_cluster_params();
        let ib = infiniband_cluster_params();
        let spread = |p: &PlatformParams| {
            p.link(LinkClass::Remote).latency / p.link(LinkClass::SameSocket).latency
        };
        assert!(spread(&ib) < spread(&gige) / 3.0);
        assert!(
            ib.remote.inv_bandwidth < gige.remote.inv_bandwidth / 10.0,
            "IB must be an order of magnitude faster per byte"
        );
    }

    #[test]
    fn self_loop_is_free() {
        let p = xeon_cluster_params();
        let l = p.link(LinkClass::SelfLoop);
        assert_eq!(l.latency, 0.0);
        assert_eq!(l.o_send, 0.0);
    }

    #[test]
    fn latency_grows_with_distance() {
        let p = xeon_cluster_params();
        assert!(p.link(LinkClass::SameSocket).latency < p.link(LinkClass::SameNode).latency);
        assert!(p.link(LinkClass::SameNode).latency < p.link(LinkClass::Remote).latency);
    }

    #[test]
    fn remote_is_orders_of_magnitude_slower() {
        // The heterogeneity that motivates the whole framework: the
        // latency spread must span >1 order of magnitude (§3.1).
        let p = xeon_cluster_params();
        let ratio = p.link(LinkClass::Remote).latency / p.link(LinkClass::SameSocket).latency;
        assert!(ratio > 10.0, "latency spread {ratio}");
    }

    #[test]
    fn noiseless_strips_jitter_only() {
        let p = xeon_cluster_params();
        let q = p.noiseless();
        assert_eq!(q.jitter, JitterModel::NONE);
        assert_eq!(q.remote, p.remote);
    }

    #[test]
    #[should_panic]
    fn inverted_latency_order_rejected() {
        let mut p = xeon_cluster_params();
        p.same_socket.latency = 1.0;
        p.validated();
    }
}
