//! Fault *recovery*: survivors detect the crash set, agree on it, and
//! finish the collective over a repaired plan.
//!
//! [`crate::barrier::BarrierSim::run_once_recovering`] extends the
//! faulty executor with the ULFM-style shrink-and-continue discipline.
//! The repetition first runs exactly as
//! [`crate::barrier::BarrierSim::run_once_faulty`] would — same fault,
//! drop and jitter streams, same draw counts — and when every rank
//! completes, the recovery layer never touches a stream, so the
//! zero-crash run is *bitwise* the faulty run (neutrality by
//! construction, pinned by tests). When ranks fail, the survivors pay:
//!
//! 1. **Detection** — a failed signal is only evidence after the full
//!    retry budget; the detector closes at the last survivor's exit
//!    from the attempt plus one [`FaultModel::timeout`] budget.
//! 2. **Consensus** — survivors run a modeled agreement round on the
//!    crash set: ⌈log₂ n⌉ dissemination rounds of one remote
//!    zero-payload message each ([`consensus_cost`]), deliberately
//!    draw-free so it perturbs no stream.
//! 3. **Re-execution** — [`hpm_core::recovery::repair_plan`] synthesizes
//!    a verified pattern over the survivors (compacted ranks translated
//!    back to original ranks for link classification), executed from the
//!    common post-consensus instant with jitter from the dedicated
//!    `RECOVERY_JITTER_LABEL` stream — the attempt's streams are already
//!    closed, so recovery cannot shift any healthy-path draw.
//!
//! Timed-out ranks are *alive* (they gave up waiting, they did not
//! fail-stop), so they rejoin the repaired plan; only crashed ranks are
//! excluded. An unrecoverable crash set (a rooted goal whose root
//! crashed) leaves the attempt's outcomes standing and reports
//! `recovered = false` — exactly the sets the analyzer's
//! `unrecoverable-crash-set` rule flags statically.

use crate::barrier::{BarrierSim, SimScratch};
use crate::faults::{FaultReport, FaultScratch, RankOutcome};
use crate::net::NetState;
use crate::params::PlatformParams;
use hpm_core::knowledge::KnowledgeGoal;
use hpm_core::plan::CompiledPattern;
use hpm_core::predictor::PayloadSchedule;
use hpm_core::recovery::repair_plan;
use hpm_stats::fault::{FaultModel, FaultPlan};

/// Stream label (b"RCVR") for jitter drawn by the repaired-plan
/// execution — disjoint from every attempt-phase stream, so recovery
/// draws can never perturb a healthy run.
pub const RECOVERY_JITTER_LABEL: u64 = 0x5243_5652;

/// One recovering repetition: the faulty attempt's accounting plus what
/// the recovery layer did about it.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryReport {
    /// The underlying faulty attempt, verbatim — bitwise what
    /// `run_once_faulty` would have returned.
    pub attempt: FaultReport,
    /// Final per-rank outcome after recovery: survivors of a successful
    /// re-plan are `Completed` at their repaired exit (timed-out ranks
    /// rejoin), crashed ranks stay `Crashed`.
    pub outcomes: Vec<RankOutcome>,
    /// True when a repaired plan was executed over the survivors.
    pub replanned: bool,
    /// True when every non-crashed rank ended `Completed` — either the
    /// attempt needed no recovery, or the re-plan finished the job.
    pub recovered: bool,
    /// When the survivors had detected the failure: last survivor exit
    /// from the attempt plus one timeout budget. Zero when the attempt
    /// completed cleanly.
    pub detection_time: f64,
    /// Modeled agreement-round cost added on top of detection.
    pub consensus_cost: f64,
    /// Stages of the repaired plan executed (0 when none was).
    pub replan_stages: usize,
}

impl RecoveryReport {
    /// A fresh report for `p` ranks, ready to be filled by
    /// [`BarrierSim::run_once_recovering_into`].
    #[must_use]
    pub fn new(p: usize) -> RecoveryReport {
        RecoveryReport {
            attempt: FaultReport::new(p),
            outcomes: vec![RankOutcome::Completed(0.0); p],
            replanned: false,
            recovered: false,
            detection_time: 0.0,
            consensus_cost: 0.0,
            replan_stages: 0,
        }
    }

    /// Resets to the fresh state for `p` ranks without shrinking
    /// capacity, so reports reused across repetitions stay
    /// allocation-free.
    pub fn reset(&mut self, p: usize) {
        self.attempt.reset(p);
        self.outcomes.clear();
        self.outcomes.resize(p, RankOutcome::Completed(0.0));
        self.replanned = false;
        self.recovered = false;
        self.detection_time = 0.0;
        self.consensus_cost = 0.0;
        self.replan_stages = 0;
    }

    /// Worst-case exit time over ranks that finished (completed or
    /// timed out); `NEG_INFINITY` if everyone crashed.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.outcomes
            .iter()
            .fold(f64::NEG_INFINITY, |acc, o| match o {
                RankOutcome::Completed(t) | RankOutcome::TimedOut(t) => acc.max(*t),
                RankOutcome::Crashed(_) => acc,
            })
    }
}

/// Reusable per-worker state for the recovering executor: the faulty
/// attempt's [`FaultScratch`] plus the crash/survivor partition the
/// recovery phase computes.
#[derive(Debug, Default)]
pub struct RecoveryScratch {
    /// Scratch for the underlying faulty attempt.
    pub fault: FaultScratch,
    crashed: Vec<usize>,
    survivors: Vec<usize>,
}

impl RecoveryScratch {
    /// An empty scratch; buffers size themselves on first use.
    #[must_use]
    pub fn new() -> RecoveryScratch {
        RecoveryScratch::default()
    }
}

/// The modeled cost of the survivors' agreement round on the crash set:
/// ⌈log₂ n⌉ dissemination rounds, each one remote zero-payload message
/// (`call_overhead + o_send + latency + o_recv`). Deliberately
/// draw-free — consensus must not perturb any stream — and zero for a
/// lone survivor.
#[must_use]
pub fn consensus_cost(params: &PlatformParams, survivors: usize) -> f64 {
    if survivors <= 1 {
        return 0.0;
    }
    let rounds = (usize::BITS - (survivors - 1).leading_zeros()) as f64;
    let lc = &params.remote;
    rounds * (params.call_overhead + lc.o_send + lc.latency + lc.o_recv)
}

impl BarrierSim<'_> {
    /// One recovering cold-start run: the faulty attempt, then — if
    /// ranks failed — detection, consensus and re-execution over the
    /// survivors. Allocating convenience for
    /// [`BarrierSim::run_once_recovering_into`].
    #[allow(clippy::too_many_arguments)]
    pub fn run_once_recovering(
        &self,
        plan: &CompiledPattern,
        payload: &PayloadSchedule,
        goal: KnowledgeGoal,
        fault: &FaultModel,
        entry: &[f64],
        net: &mut NetState,
        seed: u64,
        label: u64,
        rep: u64,
        scratch: &mut SimScratch,
        rs: &mut RecoveryScratch,
    ) -> RecoveryReport {
        let mut out = RecoveryReport::new(plan.p());
        self.run_once_recovering_into(
            plan, payload, goal, fault, entry, net, seed, label, rep, scratch, rs, &mut out,
        );
        out
    }

    /// Allocation-free recovering run (on the no-failure path; a re-plan
    /// synthesizes a fresh [`CompiledPattern`], which allocates). The
    /// attempt phase is stream-for-stream
    /// [`BarrierSim::run_once_faulty_into`]; see the module docs for the
    /// recovery phases.
    #[allow(clippy::too_many_arguments)]
    pub fn run_once_recovering_into(
        &self,
        plan: &CompiledPattern,
        payload: &PayloadSchedule,
        goal: KnowledgeGoal,
        fault: &FaultModel,
        entry: &[f64],
        net: &mut NetState,
        seed: u64,
        label: u64,
        rep: u64,
        scratch: &mut SimScratch,
        rs: &mut RecoveryScratch,
        out: &mut RecoveryReport,
    ) {
        out.reset(plan.p());
        self.run_once_faulty_into(
            plan,
            payload,
            fault,
            entry,
            net,
            seed,
            label,
            rep,
            scratch,
            &mut rs.fault,
            &mut out.attempt,
        );
        self.finish_recovery(plan, goal, fault, net, seed, rep, scratch, rs, out);
    }

    /// Recovering run under a caller-supplied [`FaultPlan`] (e.g.
    /// [`FaultPlan::with_crashes`] for the deterministic registry
    /// sweep) instead of one realized from the fault stream.
    #[allow(clippy::too_many_arguments)]
    pub fn run_once_recovering_with(
        &self,
        plan: &CompiledPattern,
        payload: &PayloadSchedule,
        goal: KnowledgeGoal,
        fault: &FaultModel,
        fplan: &FaultPlan,
        entry: &[f64],
        net: &mut NetState,
        seed: u64,
        label: u64,
        rep: u64,
        scratch: &mut SimScratch,
        rs: &mut RecoveryScratch,
        out: &mut RecoveryReport,
    ) {
        out.reset(plan.p());
        self.run_once_faulty_with(
            plan,
            payload,
            fault,
            fplan,
            entry,
            net,
            seed,
            label,
            rep,
            scratch,
            &mut rs.fault,
            &mut out.attempt,
        );
        self.finish_recovery(plan, goal, fault, net, seed, rep, scratch, rs, out);
    }

    /// Detection → consensus → re-execution, given a finished attempt in
    /// `out.attempt`. A clean attempt returns before touching anything —
    /// the zero-crash neutrality guarantee rests on this early exit.
    #[allow(clippy::too_many_arguments)]
    fn finish_recovery(
        &self,
        plan: &CompiledPattern,
        goal: KnowledgeGoal,
        fault: &FaultModel,
        net: &mut NetState,
        seed: u64,
        rep: u64,
        scratch: &mut SimScratch,
        rs: &mut RecoveryScratch,
        out: &mut RecoveryReport,
    ) {
        out.outcomes.clear();
        out.outcomes.extend_from_slice(&out.attempt.outcomes);
        if out.attempt.all_completed() {
            out.recovered = true;
            return;
        }
        rs.crashed.clear();
        rs.survivors.clear();
        for (r, o) in out.attempt.outcomes.iter().enumerate() {
            match o {
                RankOutcome::Crashed(_) => rs.crashed.push(r),
                RankOutcome::Completed(_) | RankOutcome::TimedOut(_) => rs.survivors.push(r),
            }
        }
        if rs.survivors.is_empty() {
            return;
        }
        out.detection_time = out.attempt.total() + fault.timeout;
        out.consensus_cost = consensus_cost(self.params, rs.survivors.len());
        let Some(repaired) = repair_plan(plan.p(), goal, &rs.crashed) else {
            return;
        };
        out.replanned = true;
        out.replan_stages = repaired.stages();
        let t0 = out.detection_time + out.consensus_cost;
        self.run_repaired(&repaired, &rs.survivors, t0, net, seed, rep, scratch);
        for (i, &r) in rs.survivors.iter().enumerate() {
            out.outcomes[r] = RankOutcome::Completed(scratch.cur[i]);
        }
        out.recovered = true;
    }

    /// Executes the repaired plan healthily over the survivors from the
    /// common post-consensus instant `t0`. Plan ranks are compacted
    /// survivor indices; `survivors[i]` translates back to the original
    /// rank so link classification and in-flight
    /// [`NetState`] contention see the real machine. Jitter comes from
    /// `(seed, RECOVERY_JITTER_LABEL, rep)` and consumes exactly
    /// `repaired.jitter_draws()`, keeping the static draw audit whole.
    #[allow(clippy::too_many_arguments)]
    fn run_repaired(
        &self,
        repaired: &CompiledPattern,
        survivors: &[usize],
        t0: f64,
        net: &mut NetState,
        seed: u64,
        rep: u64,
        scratch: &mut SimScratch,
    ) {
        use hpm_stats::rng::JitterSource;
        let np = repaired.p();
        debug_assert_eq!(np, survivors.len(), "repaired plan spans the survivors");
        let mut jit = std::mem::take(&mut scratch.jitter);
        jit.fill(
            self.params.jitter.sigma,
            seed,
            RECOVERY_JITTER_LABEL,
            rep,
            repaired.jitter_draws(),
        );
        scratch.cur[..np].fill(t0);
        for s in 0..repaired.stages() {
            let stage = repaired.stage(s);
            let SimScratch {
                cur,
                nxt,
                posted,
                last_arrival,
                ..
            } = scratch;
            for i in 0..np {
                posted[i] = cur[i] + self.params.call_overhead * jit.next_mult();
            }
            nxt[..np].copy_from_slice(&posted[..np]);
            last_arrival[..np].fill(f64::NEG_INFINITY);
            for i in 0..np {
                let mut t = posted[i];
                for &j in stage.dsts(i) {
                    let (ack, processed) = net.signal_round_trip(
                        self.params,
                        self.placement,
                        &mut jit,
                        survivors[i],
                        survivors[j],
                        t,
                        0,
                        posted[j],
                    );
                    t = ack;
                    if processed > last_arrival[j] {
                        last_arrival[j] = processed;
                    }
                }
                if t > nxt[i] {
                    nxt[i] = t;
                }
            }
            for j in 0..np {
                if last_arrival[j] > nxt[j] {
                    nxt[j] = last_arrival[j];
                }
            }
            std::mem::swap(&mut scratch.cur, &mut scratch.nxt);
        }
        debug_assert!(
            self.params.jitter.sigma == 0.0 || jit.consumed() == repaired.jitter_draws(),
            "repaired execution consumed a different jitter-draw count than the plan reports"
        );
        scratch.jitter = jit;
    }

    /// Repeated recovering cold-start runs with independent streams per
    /// repetition, fanned out on [`hpm_par`]. Repetition `r` is
    /// bit-identical to a lone [`BarrierSim::run_once_recovering`] at
    /// `rep = r` whatever the thread count.
    ///
    /// # Panics
    ///
    /// Panics when `fault` fails [`FaultModel::checked`], naming the
    /// offending knob.
    pub fn measure_recovering(
        &self,
        plan: &CompiledPattern,
        payload: &PayloadSchedule,
        goal: KnowledgeGoal,
        fault: &FaultModel,
        reps: usize,
        seed: u64,
    ) -> Vec<RecoveryReport> {
        if let Err(e) = fault.checked() {
            panic!("measure_recovering: invalid FaultModel: {e}");
        }
        let zeros = vec![0.0; plan.p()];
        hpm_par::par_map_indexed_with(
            reps,
            || {
                (
                    SimScratch::new(self.placement),
                    NetState::new(self.placement),
                    RecoveryScratch::new(),
                )
            },
            |(scratch, net, rs), r| {
                net.reset();
                let mut out = RecoveryReport::new(plan.p());
                self.run_once_recovering_into(
                    plan,
                    payload,
                    goal,
                    fault,
                    &zeros,
                    net,
                    seed,
                    crate::barrier::BARRIER_JITTER_LABEL,
                    r as u64,
                    scratch,
                    rs,
                    &mut out,
                );
                out
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::xeon_cluster_params;
    use hpm_core::pattern::CommPattern;
    use hpm_stats::fault::DropProb;
    use hpm_topology::{cluster_8x2x4, Placement, PlacementPolicy};

    fn dissemination(p: usize) -> CompiledPattern {
        use hpm_core::matrix::IMat;
        use hpm_core::pattern::BarrierPattern;
        let stages = (p as f64).log2().ceil() as usize;
        let mats = (0..stages)
            .map(|s| {
                let edges: Vec<(usize, usize)> = (0..p).map(|i| (i, (i + (1 << s)) % p)).collect();
                IMat::from_edges(p, &edges)
            })
            .collect();
        BarrierPattern::new("dissemination", p, mats).plan()
    }

    fn sim_fixture(p: usize) -> (crate::params::PlatformParams, Placement) {
        let params = xeon_cluster_params();
        let placement = Placement::new(cluster_8x2x4(), PlacementPolicy::RoundRobin, p);
        (params, placement)
    }

    /// Crash-free faults (drops, stragglers, slow nodes) that every rank
    /// survives: the recovering run must be bitwise the faulty run.
    #[test]
    fn clean_attempt_is_bitwise_the_faulty_run() {
        let p = 24;
        let (params, placement) = sim_fixture(p);
        let sim = BarrierSim::new(&params, &placement);
        let plan = dissemination(p);
        let payload = PayloadSchedule::none();
        let fault = FaultModel {
            drop: DropProb::uniform(0.02),
            max_retries: 12,
            slow_prob: 0.2,
            slow_mult: 2.0,
            straggler_prob: 0.1,
            straggler_scale: 5e-5,
            straggler_alpha: 1.5,
            ..FaultModel::NONE
        };
        let mut net = NetState::new(&placement);
        let mut scratch = SimScratch::new(&placement);
        let mut rs = RecoveryScratch::new();
        for rep in 0..8u64 {
            net.reset();
            let faulty = sim.run_once_faulty(
                &plan,
                &payload,
                &fault,
                &vec![0.0; p],
                &mut net,
                77,
                crate::barrier::BARRIER_JITTER_LABEL,
                rep,
                &mut scratch,
            );
            assert!(faulty.all_completed(), "rep {rep}: fixture must be clean");
            net.reset();
            let rec = sim.run_once_recovering(
                &plan,
                &payload,
                KnowledgeGoal::AllToAll,
                &fault,
                &vec![0.0; p],
                &mut net,
                77,
                crate::barrier::BARRIER_JITTER_LABEL,
                rep,
                &mut scratch,
                &mut rs,
            );
            assert_eq!(rec.attempt, faulty, "rep {rep}");
            assert_eq!(rec.outcomes, faulty.outcomes, "rep {rep}");
            assert!(!rec.replanned && rec.recovered);
            assert_eq!(rec.detection_time.to_bits(), 0.0f64.to_bits());
            assert_eq!(rec.total().to_bits(), faulty.total().to_bits());
        }
    }

    /// A forced crash set: survivors pay detection + consensus, execute
    /// the repaired plan, and everyone alive completes after the crash.
    #[test]
    fn forced_crashes_recover_with_cost() {
        let p = 16;
        let (params, placement) = sim_fixture(p);
        let sim = BarrierSim::new(&params, &placement);
        let plan = dissemination(p);
        let payload = PayloadSchedule::none();
        let fault = FaultModel::NONE;
        let fplan = FaultPlan::with_crashes(p, placement.shape().nodes(), &[3, 7]);
        let mut net = NetState::new(&placement);
        let mut scratch = SimScratch::new(&placement);
        let mut rs = RecoveryScratch::new();
        let mut out = RecoveryReport::new(p);
        sim.run_once_recovering_with(
            &plan,
            &payload,
            KnowledgeGoal::AllToAll,
            &fault,
            &fplan,
            &vec![0.0; p],
            &mut net,
            5,
            crate::barrier::BARRIER_JITTER_LABEL,
            0,
            &mut scratch,
            &mut rs,
            &mut out,
        );
        assert!(out.replanned && out.recovered);
        assert!(!out.attempt.all_completed());
        assert_eq!(out.replan_stages, 4, "ceil(log2(14)) survivor stages");
        assert!(out.detection_time > 0.0 && out.consensus_cost > 0.0);
        let t0 = out.detection_time + out.consensus_cost;
        for (r, o) in out.outcomes.iter().enumerate() {
            match o {
                RankOutcome::Crashed(_) => assert!(r == 3 || r == 7),
                RankOutcome::Completed(t) => assert!(*t >= t0, "rank {r} exits after re-plan"),
                RankOutcome::TimedOut(_) => panic!("rank {r} should have rejoined"),
            }
        }
        assert!(out.total() > out.attempt.total());
    }

    /// A crashed root makes rooted goals unrecoverable: the attempt's
    /// outcomes stand and the report says so.
    #[test]
    fn crashed_root_reports_unrecovered() {
        let p = 8;
        let (params, placement) = sim_fixture(p);
        let sim = BarrierSim::new(&params, &placement);
        let plan = dissemination(p);
        let fplan = FaultPlan::with_crashes(p, placement.shape().nodes(), &[0]);
        let mut net = NetState::new(&placement);
        let mut scratch = SimScratch::new(&placement);
        let mut rs = RecoveryScratch::new();
        let mut out = RecoveryReport::new(p);
        sim.run_once_recovering_with(
            &plan,
            &PayloadSchedule::none(),
            KnowledgeGoal::RootReaches(0),
            &FaultModel::NONE,
            &fplan,
            &vec![0.0; p],
            &mut net,
            5,
            crate::barrier::BARRIER_JITTER_LABEL,
            0,
            &mut scratch,
            &mut rs,
            &mut out,
        );
        assert!(!out.replanned && !out.recovered);
        assert_eq!(out.replan_stages, 0);
        assert!(out.detection_time > 0.0, "detection still happened");
        assert_eq!(out.outcomes, out.attempt.outcomes);
    }

    /// Recovering repetitions are bit-identical at any thread count, and
    /// `measure_recovering` rep `r` equals a lone run at `rep = r`.
    #[test]
    fn recovering_measure_is_thread_invariant_and_rep_keyed() {
        let p = 20;
        let (params, placement) = sim_fixture(p);
        let sim = BarrierSim::new(&params, &placement);
        let plan = dissemination(p);
        let payload = PayloadSchedule::none();
        let fault = FaultModel {
            crash_count: 2,
            crash_window: 1e-4,
            drop: DropProb::uniform(0.02),
            timeout: 2e-4,
            ..FaultModel::NONE
        };
        let goal = KnowledgeGoal::AllToAll;
        let serial = hpm_par::with_threads(Some(1), || {
            sim.measure_recovering(&plan, &payload, goal, &fault, 10, 99)
        });
        assert!(
            serial.iter().any(|r| r.replanned),
            "fixture must exercise the re-plan path"
        );
        assert!(serial.iter().all(|r| r.recovered));
        for threads in [2usize, 8] {
            let par = hpm_par::with_threads(Some(threads), || {
                sim.measure_recovering(&plan, &payload, goal, &fault, 10, 99)
            });
            assert_eq!(serial, par, "threads {threads}");
        }
        let mut net = NetState::new(&placement);
        let mut scratch = SimScratch::new(&placement);
        let mut rs = RecoveryScratch::new();
        for (r, rep_report) in serial.iter().enumerate() {
            net.reset();
            let lone = sim.run_once_recovering(
                &plan,
                &payload,
                goal,
                &fault,
                &vec![0.0; p],
                &mut net,
                99,
                crate::barrier::BARRIER_JITTER_LABEL,
                r as u64,
                &mut scratch,
                &mut rs,
            );
            assert_eq!(*rep_report, lone, "rep {r}");
        }
    }

    #[test]
    fn consensus_cost_scales_logarithmically() {
        let params = xeon_cluster_params();
        assert_eq!(consensus_cost(&params, 0), 0.0);
        assert_eq!(consensus_cost(&params, 1), 0.0);
        let one = consensus_cost(&params, 2);
        assert!(one > 0.0);
        assert_eq!(consensus_cost(&params, 64), 6.0 * one);
        assert_eq!(consensus_cost(&params, 65), 7.0 * one);
    }

    #[test]
    fn invalid_model_panics_at_entry() {
        let p = 8;
        let (params, placement) = sim_fixture(p);
        let sim = BarrierSim::new(&params, &placement);
        let plan = dissemination(p);
        let bad = FaultModel {
            backoff: 0.0,
            ..FaultModel::NONE
        };
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            sim.measure_recovering(
                &plan,
                &PayloadSchedule::none(),
                KnowledgeGoal::AllToAll,
                &bad,
                1,
                1,
            )
        }))
        .expect_err("bad model must panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("backoff"), "panic names the knob: {msg}");
    }
}
