//! # hpm-simnet — simulated SMP-cluster substrate
//!
//! The thesis validates its models on real gigabit-ethernet clusters of
//! multi-socket multi-core nodes. This crate is the substitution for that
//! hardware (see DESIGN.md): a deterministic, seeded simulator of message
//! cost on such clusters, exposing exactly the behaviours the thesis'
//! models must capture —
//!
//! * hierarchical link classes (same-socket / same-node / remote) with
//!   separate CPU overheads, wire latencies and bandwidths;
//! * per-node NIC egress serialization (messages from cohabiting processes
//!   queue for the wire);
//! * per-message acknowledgement round trips for small signal messages,
//!   the behaviour the Eq. 5.4 factor 2 models;
//! * the posted-receive fast path: a message reaching a process that is
//!   already waiting avoids the unexpected-message buffer penalty;
//! * multiplicative log-normal OS jitter on every timed activity,
//!   delivered either scalar (`StdRng` + Box-Muller) or through the
//!   batched jitter engine: tables pre-filled to the compiled pattern's
//!   exact draw count, consumed by cursor, executed over SoA lanes
//!   ([`batch`]) — see DESIGN.md, "The jitter engine".
//!
//! On top of the raw message engine sit the Fig. 5.5 staged barrier
//! executor ([`barrier`]), the §5.6.3 platform microbenchmarks
//! ([`microbench`]) which extract the `O`/`L`/`β` matrices *exactly the way
//! an application could* (medians and regression over simulated timings,
//! never by peeking at the true parameters), and a background-transfer
//! resolver ([`exchange`]) used by the BSPlib runtime to model overlapped
//! one-sided communication.

//! The recovery layer ([`recovery`]) closes the fault loop: when the
//! faulty executor reports crashed ranks, survivors detect, agree, and
//! finish the collective over a survivor re-plan — see DESIGN.md, "The
//! recovery layer".

pub mod barrier;
pub mod batch;
pub mod exchange;
pub mod faults;
pub mod microbench;
pub mod net;
pub mod params;
pub mod recovery;

pub use barrier::{BarrierMeasurement, BarrierSim, SimScratch};
pub use batch::LaneScratch;
pub use exchange::{
    exchange_jitter_draws, resolve_exchange, resolve_exchange_into, ExchangeMsg, ExchangeResult,
    ExchangeScratch,
};
pub use faults::{fault_drop_draws, FaultReport, FaultScratch, RankOutcome};
pub use microbench::{
    bench_platform, bench_platform_classes, ClassCosts, ClassProfile, MicrobenchConfig,
    PlatformProfile,
};
pub use net::{FaultyTransfer, NetState, SignalFate};
pub use params::{LinkCost, PlatformParams};
pub use recovery::{consensus_cost, RecoveryReport, RecoveryScratch, RECOVERY_JITTER_LABEL};
