//! Platform microbenchmarks (§5.6.3).
//!
//! The thesis extracts three kinds of performance parameters from the real
//! clusters, by statistics over application-level timings only:
//!
//! * `O_i` — the overhead of a pure request-start/wait invocation, as the
//!   median of repeated empty calls;
//! * `O_ij` — the added cost per started request, as the gradient of a
//!   regression over a growing number of simultaneous minimal messages;
//! * `L_ij` / `β_ij` — wire latency and inverse bandwidth, as intercept and
//!   gradient of a regression over growing message sizes (powers of two).
//!
//! This module reproduces the procedure against the *simulated* platform —
//! crucially, it measures only what an application could observe (jittered
//! end-to-end timings), never reading the true parameters, so predictor
//! accuracy is a genuine result rather than a tautology.

use crate::net::NetState;
use crate::params::PlatformParams;
use hpm_core::hockney::HeteroHockney;
use hpm_core::matrix::DMat;
use hpm_core::plan::SIGNAL_JITTER_DRAWS;
use hpm_core::predictor::{CommCosts, CostModel};
use hpm_stats::quantile::quantile_inplace;
use hpm_stats::regression::LinearFit;
use hpm_stats::rng::{JitterBuf, JitterSource};
use hpm_stats::stream::SplitMix64;
use hpm_topology::{LinkClass, Placement};

/// Stream label of the diagonal (`O_i`) units; `rep` is the rank.
const MICRO_DIAG_LABEL: u64 = 0x4D42_4449; // b"MBDI"

/// Stream label of the ordered-pair units; `rep` is `i*p + j`.
const MICRO_PAIR_LABEL: u64 = 0x4D42_5052; // b"MBPR"

/// Stream label of the stratified pair selector; `rep` is the link-class
/// index. Selection draws come from their own stream so they cannot
/// shift any measurement stream.
const MICRO_SAMPLE_LABEL: u64 = 0x4D42_534D; // b"MBSM"

/// Benchmark dimensions. Thesis values: sample sizes ≥ 25, message sizes
/// `2^0 … 2^20`.
#[derive(Debug, Clone, Copy)]
pub struct MicrobenchConfig {
    /// Samples per measured point.
    pub reps: usize,
    /// Request counts 1..=max_requests for the `O_ij` regression.
    pub max_requests: usize,
    /// Message sizes `2^lo ..= 2^hi` bytes for the latency regression.
    pub size_exponents: (u32, u32),
    /// `Some(k)`: measure a stratified sample of at most `k` ordered
    /// pairs per link class (chosen deterministically from the seed) and
    /// reconstruct per-class costs by pooled regression — the scale mode,
    /// turning the O(p²) pair sweep into O(classes · k). `None` (the
    /// default): measure every ordered pair, the exhaustive §5.6.3
    /// procedure.
    pub pair_sample: Option<usize>,
}

impl Default for MicrobenchConfig {
    fn default() -> Self {
        MicrobenchConfig {
            reps: 25,
            max_requests: 8,
            size_exponents: (0, 20),
            pair_sample: None,
        }
    }
}

impl MicrobenchConfig {
    /// Reduced dimensions for tests.
    pub fn quick() -> MicrobenchConfig {
        MicrobenchConfig {
            reps: 9,
            max_requests: 4,
            size_exponents: (0, 12),
            pair_sample: None,
        }
    }

    /// The same dimensions with stratified pair sampling enabled.
    pub fn with_pair_sample(mut self, per_class: usize) -> MicrobenchConfig {
        assert!(per_class > 0, "pair sample size must be positive");
        self.pair_sample = Some(per_class);
        self
    }
}

/// The benchmarked profile: predictor cost matrices and the heterogeneous
/// Hockney model, both derived from the same simulated measurements.
#[derive(Debug, Clone)]
pub struct PlatformProfile {
    /// `O`/`L`/`β` matrices for the barrier predictor.
    pub costs: CommCosts,
    /// Latency/inverse-bandwidth model for general communication.
    pub hockney: HeteroHockney,
}

/// Runs the full §5.6.3 benchmark over all ordered process pairs.
///
/// Every measured unit — a diagonal `O_i` entry or an ordered pair's
/// `(O_ij, L_ij, β_ij)` triple — batch-fills its own jitter table from
/// the seed and its matrix position (exact draw count known up front),
/// so the units are independent and run on the [`hpm_par`] fan-out with
/// bit-identical results at any thread count, and the sampling loops
/// consume multipliers by cursor instead of stepping an RNG per draw.
/// Each pair unit reuses one per-unit [`NetState`] scratch
/// ([`NetState::reset`] between pings) and one sample buffer instead of
/// allocating per ping.
pub fn bench_platform(
    params: &PlatformParams,
    placement: &Placement,
    cfg: &MicrobenchConfig,
    seed: u64,
) -> PlatformProfile {
    let p = placement.nprocs();
    let mut o = DMat::zeros(p, p);
    let mut l = DMat::zeros(p, p);
    let mut beta = DMat::zeros(p, p);
    let (lo, hi) = cfg.size_exponents;
    assert!(lo <= hi, "size exponent range is empty");

    // O_i: median cost of an empty invocation.
    let diag: Vec<f64> = hpm_par::par_map_indexed(p, |i| {
        let mut jit = JitterBuf::new();
        jit.fill(
            params.jitter.sigma,
            seed,
            MICRO_DIAG_LABEL,
            i as u64,
            cfg.reps,
        );
        let mut samples: Vec<f64> = (0..cfg.reps)
            .map(|_| params.call_overhead * jit.next_mult())
            .collect();
        quantile_inplace(&mut samples, 0.5)
    });
    for (i, &v) in diag.iter().enumerate() {
        o.set(i, i, v);
    }

    if let Some(per_class) = cfg.pair_sample {
        // Sampled mode: fit per class, then broadcast each class's
        // parameters to all its ordered pairs — the dense matrices are a
        // reconstruction, suitable at moderate p. Scale callers wanting
        // no p² storage at all go through [`bench_platform_classes`].
        let fits = class_fits(params, placement, cfg, seed, Some(per_class));
        for i in 0..p {
            for j in 0..p {
                if i != j {
                    let c = placement.link(i, j).index();
                    o.set(i, j, fits.o[c]);
                    l.set(i, j, fits.l[c]);
                    beta.set(i, j, fits.beta[c]);
                }
            }
        }
    } else {
        let pairs: Vec<(usize, usize)> = (0..p)
            .flat_map(|i| (0..p).filter(move |&j| j != i).map(move |j| (i, j)))
            .collect();
        let triples = hpm_par::par_map_slice(&pairs, |_, &(i, j)| {
            let unit = measure_pair(params, placement, cfg, seed, i, j);
            let o_ij = LinearFit::fit(&unit.req_pts).nonneg_slope();
            let fit = LinearFit::fit(&unit.size_pts);
            (o_ij, fit.nonneg_intercept(), fit.nonneg_slope())
        });
        for (&(i, j), &(o_ij, l_ij, b_ij)) in pairs.iter().zip(triples.iter()) {
            o.set(i, j, o_ij);
            l.set(i, j, l_ij);
            beta.set(i, j, b_ij);
        }
    }

    let costs = CommCosts::new(o, l.clone(), beta.clone());
    let hockney = HeteroHockney::new(l, beta);
    PlatformProfile { costs, hockney }
}

/// The raw regression points of one ordered-pair unit: request-count
/// medians for the `O_ij` gradient and size medians for `L_ij`/`β_ij`.
struct PairPoints {
    req_pts: Vec<(f64, f64)>,
    size_pts: Vec<(f64, f64)>,
}

/// One ordered-pair measurement unit — shared verbatim by the exhaustive
/// and sampled paths. The unit's jitter stream is keyed by its matrix
/// position `(seed, MICRO_PAIR_LABEL, i*p + j)`, so a sampled run
/// reproduces bit for bit the points the exhaustive sweep would have
/// measured for the same pair.
fn measure_pair(
    params: &PlatformParams,
    placement: &Placement,
    cfg: &MicrobenchConfig,
    seed: u64,
    i: usize,
    j: usize,
) -> PairPoints {
    let p = placement.nprocs();
    let (lo, hi) = cfg.size_exponents;
    // Per-pair scratch, reused across every ping of this unit: one
    // network state (reset to the quiet-network benchmark scenario
    // between pings), one sample buffer for the medians, and one
    // jitter table filled to the unit's exact draw count — the
    // request loops draw `reps*(1+k)` multipliers per request count
    // and every sized ping one signal round trip's worth.
    let draws: usize = (1..=cfg.max_requests)
        .map(|k| cfg.reps * (1 + k))
        .sum::<usize>()
        + (hi - lo + 1) as usize * cfg.reps * SIGNAL_JITTER_DRAWS;
    let mut jit = JitterBuf::new();
    jit.fill(
        params.jitter.sigma,
        seed,
        MICRO_PAIR_LABEL,
        (i * p + j) as u64,
        draws,
    );
    let mut net = NetState::new(placement);
    let mut samples = vec![0.0f64; cfg.reps];

    // O_ij: time to start k requests, regressed on k. Starting a
    // request costs the sender only its per-message CPU overhead
    // (the transfers complete later); the gradient isolates it.
    let lc = params.link(placement.link(i, j));
    let mut req_pts = Vec::with_capacity(cfg.max_requests);
    for k in 1..=cfg.max_requests {
        for s in samples.iter_mut() {
            let mut t = params.call_overhead * jit.next_mult();
            for _ in 0..k {
                t += lc.o_send * jit.next_mult();
            }
            *s = t;
        }
        req_pts.push((k as f64, quantile_inplace(&mut samples, 0.5)));
    }

    // L_ij and β_ij: one-way transfer time over growing sizes.
    // Each ping runs on a quiet network, receiver already posted —
    // the §5.6.3 benchmark scenario.
    let mut size_pts = Vec::with_capacity((hi - lo + 1) as usize);
    for e in lo..=hi {
        let bytes = 1u64 << e;
        for s in samples.iter_mut() {
            net.reset();
            let (_, processed) =
                net.signal_round_trip(params, placement, &mut jit, i, j, 0.0, bytes, 0.0);
            // One-way time: processed at receiver (the ack is
            // transport-internal and not application-visible).
            *s = processed;
        }
        size_pts.push((bytes as f64, quantile_inplace(&mut samples, 0.5)));
    }
    debug_assert!(params.jitter.sigma == 0.0 || jit.consumed() == draws);
    PairPoints { req_pts, size_pts }
}

/// Per-link-class cost parameters recovered by pooled regression — the
/// O(classes) form of the profile, with no `P×P` matrix anywhere.
///
/// Arrays are indexed by [`LinkClass::index`]; the self-loop slot (0) is
/// unused off-diagonal and kept zero, the diagonal is the separate
/// `o_self` scalar (median over the per-rank `O_i` medians). A class
/// with no pairs under the placement keeps zeros and a zero
/// `sampled_pairs` count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassProfile {
    /// Median empty-invocation overhead over all ranks (`O_i`).
    pub o_self: f64,
    /// Per-started-request overhead per class (`O_c`).
    pub o: [f64; 4],
    /// Wire latency per class (`L_c`).
    pub l: [f64; 4],
    /// Inverse bandwidth per class (`β_c`).
    pub beta: [f64; 4],
    /// Ordered pairs actually measured per class.
    pub sampled_pairs: [usize; 4],
}

/// The per-class fits shared by the sampled dense reconstruction and the
/// matrix-free class profile.
struct ClassFits {
    o: [f64; 4],
    l: [f64; 4],
    beta: [f64; 4],
    sampled: [usize; 4],
}

/// Picks the ordered pairs to measure for one link class and pools their
/// regression points into a single per-class fit.
///
/// Selection is a serial rejection loop on a dedicated
/// [`MICRO_SAMPLE_LABEL`] stream per class (`rep` = class index): draw a
/// rank `i`, count its partners in the class from the per-node /
/// per-socket residency counts (closed form, no pair enumeration), draw
/// the partner by order statistic over the node buckets, reject
/// duplicates. The loop terminates because the target is clamped to the
/// class's closed-form pair total. With `sample == None` every ordered
/// pair of the class is pooled instead (the moderate-`p` exhaustive
/// pooling).
fn class_fits(
    params: &PlatformParams,
    placement: &Placement,
    cfg: &MicrobenchConfig,
    seed: u64,
    sample: Option<usize>,
) -> ClassFits {
    let p = placement.nprocs();
    let shape = placement.shape();
    let spn = shape.sockets_per_node();
    let links = placement.link_map();

    // Residency counts per node and per global socket — O(ranks) work,
    // closed-form class totals instead of a P×P sweep.
    let node_cnt: Vec<usize> = (0..shape.nodes())
        .map(|n| placement.node_ranks(n).len())
        .collect();
    let mut socket_cnt = vec![0usize; shape.nodes() * spn];
    for r in 0..p {
        socket_cnt[links.socket_of(r)] += 1;
    }
    let same_socket_total: usize = socket_cnt.iter().map(|&c| c * c.saturating_sub(1)).sum();
    let same_node_total: usize = node_cnt
        .iter()
        .map(|&c| c * c.saturating_sub(1))
        .sum::<usize>()
        - same_socket_total;
    let totals = |class: LinkClass| match class {
        LinkClass::SelfLoop => 0,
        LinkClass::SameSocket => same_socket_total,
        LinkClass::SameNode => same_node_total,
        LinkClass::Remote => placement.remote_pair_count(),
    };

    // Partner count of rank `i` within a class, from the residency counts.
    let partners = |class: LinkClass, i: usize| match class {
        LinkClass::SelfLoop => 0,
        LinkClass::SameSocket => socket_cnt[links.socket_of(i)] - 1,
        LinkClass::SameNode => node_cnt[links.node_of(i)] - socket_cnt[links.socket_of(i)],
        LinkClass::Remote => p - node_cnt[links.node_of(i)],
    };
    // The `r`-th partner of rank `i` within a class, ascending by rank.
    let nth_partner = |class: LinkClass, i: usize, r: usize| -> usize {
        let node = links.node_of(i);
        let sock = links.socket_of(i);
        match class {
            LinkClass::SelfLoop => unreachable!("self loops are never sampled"),
            LinkClass::SameSocket => placement
                .node_ranks(node)
                .iter()
                .copied()
                .filter(|&q| q != i && links.socket_of(q) == sock)
                .nth(r)
                .expect("partner index within same-socket count"),
            LinkClass::SameNode => placement
                .node_ranks(node)
                .iter()
                .copied()
                .filter(|&q| links.socket_of(q) != sock)
                .nth(r)
                .expect("partner index within same-node count"),
            LinkClass::Remote => {
                // Order statistic over ranks NOT on `node`: walk the
                // node's ascending bucket, shifting the index past every
                // resident rank at or below it.
                let mut j = r;
                for &nr in placement.node_ranks(node) {
                    if nr <= j {
                        j += 1;
                    } else {
                        break;
                    }
                }
                j
            }
        }
    };

    // Select per class: serial and stream-keyed, so thread count cannot
    // influence which pairs are measured or in which order they pool.
    let classes = [
        LinkClass::SameSocket,
        LinkClass::SameNode,
        LinkClass::Remote,
    ];
    let mut units: Vec<(usize, usize, usize)> = Vec::new();
    let mut sampled = [0usize; 4];
    for class in classes {
        let total = totals(class);
        if total == 0 {
            continue;
        }
        let c = class.index();
        match sample {
            Some(k) => {
                let target = k.min(total);
                let mut stream = SplitMix64::from_parts(seed, MICRO_SAMPLE_LABEL, c as u64);
                let mut seen = std::collections::HashSet::new();
                while sampled[c] < target {
                    let i = (stream.next_u64() % p as u64) as usize;
                    let n = partners(class, i);
                    if n == 0 {
                        continue;
                    }
                    let r = (stream.next_u64() % n as u64) as usize;
                    let j = nth_partner(class, i, r);
                    if seen.insert((i, j)) {
                        units.push((c, i, j));
                        sampled[c] += 1;
                    }
                }
            }
            None => {
                for i in 0..p {
                    for j in 0..p {
                        if i != j && placement.link(i, j) == class {
                            units.push((c, i, j));
                            sampled[c] += 1;
                        }
                    }
                }
            }
        }
    }

    // Measure the selected units on the parallel fan-out — each unit's
    // jitter stream is keyed by its matrix position, so the points are
    // bit-identical to what the exhaustive sweep would measure for the
    // same pair — then pool per class in selection order and fit once.
    let points = hpm_par::par_map_slice(&units, |_, &(_, i, j)| {
        measure_pair(params, placement, cfg, seed, i, j)
    });
    let mut fits = ClassFits {
        o: [0.0; 4],
        l: [0.0; 4],
        beta: [0.0; 4],
        sampled,
    };
    for class in classes {
        let c = class.index();
        if sampled[c] == 0 {
            continue;
        }
        let mut req_pool = Vec::new();
        let mut size_pool = Vec::new();
        for (&(uc, _, _), pts) in units.iter().zip(points.iter()) {
            if uc == c {
                req_pool.extend_from_slice(&pts.req_pts);
                size_pool.extend_from_slice(&pts.size_pts);
            }
        }
        fits.o[c] = LinearFit::fit(&req_pool).nonneg_slope();
        let fit = LinearFit::fit(&size_pool);
        fits.l[c] = fit.nonneg_intercept();
        fits.beta[c] = fit.nonneg_slope();
    }
    fits
}

/// Runs the §5.6.3 benchmark in its matrix-free form: per-rank `O_i`
/// medians collapsed to one scalar, per-class pooled pair fits, and no
/// `P×P` storage anywhere — the profile for scale runs (p ≥ 10³), where
/// even holding the dense cost matrices would dwarf the placement.
///
/// With `cfg.pair_sample == Some(k)` at most `k` pairs per class are
/// measured (the O(classes·k) sweep); with `None` every pair is measured
/// and pooled, which is exhaustive in work but still O(classes) in
/// storage.
pub fn bench_platform_classes(
    params: &PlatformParams,
    placement: &Placement,
    cfg: &MicrobenchConfig,
    seed: u64,
) -> ClassProfile {
    let p = placement.nprocs();
    let (lo, hi) = cfg.size_exponents;
    assert!(lo <= hi, "size exponent range is empty");
    let mut diag: Vec<f64> = hpm_par::par_map_indexed(p, |i| {
        let mut jit = JitterBuf::new();
        jit.fill(
            params.jitter.sigma,
            seed,
            MICRO_DIAG_LABEL,
            i as u64,
            cfg.reps,
        );
        let mut samples: Vec<f64> = (0..cfg.reps)
            .map(|_| params.call_overhead * jit.next_mult())
            .collect();
        quantile_inplace(&mut samples, 0.5)
    });
    let o_self = quantile_inplace(&mut diag, 0.5);
    let fits = class_fits(params, placement, cfg, seed, cfg.pair_sample);
    ClassProfile {
        o_self,
        o: fits.o,
        l: fits.l,
        beta: fits.beta,
        sampled_pairs: fits.sampled,
    }
}

/// A [`CostModel`] over a [`ClassProfile`]: every predictor query is two
/// indexed loads (the hierarchical link class) and an array lookup, with
/// O(classes) parameter storage — the scale-clean counterpart of the
/// dense [`CommCosts`] matrices.
#[derive(Debug, Clone, Copy)]
pub struct ClassCosts<'a> {
    placement: &'a Placement,
    profile: ClassProfile,
}

impl<'a> ClassCosts<'a> {
    /// Binds a class profile to the placement whose hierarchy classifies
    /// the pairs.
    pub fn new(placement: &'a Placement, profile: ClassProfile) -> ClassCosts<'a> {
        ClassCosts { placement, profile }
    }

    /// The underlying per-class parameters.
    pub fn profile(&self) -> &ClassProfile {
        &self.profile
    }
}

impl CostModel for ClassCosts<'_> {
    fn p(&self) -> usize {
        self.placement.nprocs()
    }

    fn o(&self, i: usize, j: usize) -> f64 {
        if i == j {
            self.profile.o_self
        } else {
            self.profile.o[self.placement.link(i, j).index()]
        }
    }

    fn l(&self, i: usize, j: usize) -> f64 {
        if i == j {
            0.0
        } else {
            self.profile.l[self.placement.link(i, j).index()]
        }
    }

    fn beta(&self, i: usize, j: usize) -> f64 {
        if i == j {
            0.0
        } else {
            self.profile.beta[self.placement.link(i, j).index()]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::xeon_cluster_params;
    use hpm_topology::{cluster_8x2x4, PlacementPolicy};

    fn profile(n: usize, seed: u64) -> (PlatformParams, PlatformProfile) {
        let params = xeon_cluster_params();
        let placement = Placement::new(cluster_8x2x4(), PlacementPolicy::RoundRobin, n);
        let prof = bench_platform(&params, &placement, &MicrobenchConfig::quick(), seed);
        (params, prof)
    }

    #[test]
    fn latency_matrix_reflects_topology() {
        let (_, prof) = profile(16, 11);
        // Round-robin on 2 nodes: 0 and 1 are remote, 0 and 2 local.
        let remote = prof.costs.l.get(0, 1);
        let local = prof.costs.l.get(0, 2);
        assert!(
            remote > 5.0 * local,
            "remote {remote} must dwarf local {local}"
        );
    }

    #[test]
    fn extracted_latency_near_truth() {
        let (params, prof) = profile(16, 12);
        // The measured intercept is o_send + latency + o_recv (plus noise).
        let truth = params.remote.o_send + params.remote.latency + params.remote.o_recv;
        let got = prof.costs.l.get(0, 1);
        assert!(
            (got - truth).abs() / truth < 0.2,
            "latency {got} vs expected ~{truth}"
        );
    }

    #[test]
    fn extracted_bandwidth_near_truth() {
        let (params, prof) = profile(16, 13);
        let got = prof.hockney.beta.get(0, 1);
        let truth = params.remote.inv_bandwidth;
        assert!((got - truth).abs() / truth < 0.15, "beta {got} vs {truth}");
    }

    #[test]
    fn request_overhead_near_o_send() {
        let (params, prof) = profile(16, 14);
        let got = prof.costs.o.get(0, 1);
        assert!(
            (got - params.remote.o_send).abs() / params.remote.o_send < 0.3,
            "O_ij {got} vs o_send {}",
            params.remote.o_send
        );
    }

    #[test]
    fn invocation_overhead_on_diagonal() {
        let (params, prof) = profile(8, 15);
        for i in 0..8 {
            let got = prof.costs.o.get(i, i);
            assert!(
                (got - params.call_overhead).abs() / params.call_overhead < 0.3,
                "O_{i}{i} = {got}"
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let (_, a) = profile(8, 16);
        let (_, b) = profile(8, 16);
        assert_eq!(a.costs.l, b.costs.l);
        assert_eq!(a.costs.o, b.costs.o);
    }

    /// The parallel fan-out must be invisible in the numbers: every
    /// thread count produces bit-identical matrices for several seeds.
    #[test]
    fn parallel_matches_serial_bitwise() {
        for seed in [1u64, 99, 20121116] {
            let (_, serial) = hpm_par::with_threads(Some(1), || profile(12, seed));
            let mut par = Vec::new();
            for threads in [2usize, 3, 8] {
                par.push(hpm_par::with_threads(Some(threads), || profile(12, seed)).1);
            }
            for prof in par {
                assert_eq!(serial.costs.o, prof.costs.o, "seed {seed}");
                assert_eq!(serial.costs.l, prof.costs.l, "seed {seed}");
                assert_eq!(serial.costs.beta, prof.costs.beta, "seed {seed}");
                assert_eq!(serial.hockney.beta, prof.hockney.beta, "seed {seed}");
            }
        }
    }

    #[test]
    fn matrices_are_nonnegative_and_finite() {
        let (_, prof) = profile(16, 17);
        for i in 0..16 {
            for j in 0..16 {
                assert!(prof.costs.l.get(i, j) >= 0.0);
                assert!(prof.costs.o.get(i, j) >= 0.0);
                assert!(prof.costs.beta.get(i, j).is_finite());
            }
        }
    }

    fn sampled_profile(n: usize, seed: u64, k: usize) -> PlatformProfile {
        let params = xeon_cluster_params();
        let placement = Placement::new(cluster_8x2x4(), PlacementPolicy::RoundRobin, n);
        let cfg = MicrobenchConfig::quick().with_pair_sample(k);
        bench_platform(&params, &placement, &cfg, seed)
    }

    /// Sampled selection and pooling happen serially on their own stream,
    /// so the sampled profile is bit-identical at any thread count.
    #[test]
    fn sampled_mode_deterministic_across_threads() {
        for seed in [3u64, 20121116] {
            let serial = hpm_par::with_threads(Some(1), || sampled_profile(16, seed, 6));
            for threads in [2usize, 5, 8] {
                let par = hpm_par::with_threads(Some(threads), || sampled_profile(16, seed, 6));
                assert_eq!(serial.costs.o, par.costs.o, "seed {seed} threads {threads}");
                assert_eq!(serial.costs.l, par.costs.l, "seed {seed} threads {threads}");
                assert_eq!(
                    serial.costs.beta, par.costs.beta,
                    "seed {seed} threads {threads}"
                );
            }
        }
    }

    /// The sampled reconstruction lands close to the exhaustive per-pair
    /// sweep: within a class the true parameters are identical, so the
    /// pooled fit differs from any per-pair fit only by jitter noise.
    #[test]
    fn sampled_matches_exhaustive_within_tolerance() {
        let params = xeon_cluster_params();
        let placement = Placement::new(cluster_8x2x4(), PlacementPolicy::RoundRobin, 16);
        let exhaustive = bench_platform(&params, &placement, &MicrobenchConfig::quick(), 21);
        let sampled = sampled_profile(16, 21, 6);
        for i in 0..16 {
            for j in 0..16 {
                if i == j {
                    assert_eq!(sampled.costs.o.get(i, i), exhaustive.costs.o.get(i, i));
                    continue;
                }
                let (le, ls) = (exhaustive.costs.l.get(i, j), sampled.costs.l.get(i, j));
                assert!(
                    (ls - le).abs() / le < 0.25,
                    "L[{i}][{j}] sampled {ls} vs exhaustive {le}"
                );
                let (be, bs) = (
                    exhaustive.costs.beta.get(i, j),
                    sampled.costs.beta.get(i, j),
                );
                assert!(
                    (bs - be).abs() / be < 0.25,
                    "beta[{i}][{j}] sampled {bs} vs exhaustive {be}"
                );
            }
        }
    }

    /// The class profile and the sampled dense reconstruction are the
    /// same fits: off-diagonal entries agree exactly, and every predictor
    /// query of [`ClassCosts`] resolves to the class value.
    #[test]
    fn class_profile_agrees_with_dense_reconstruction() {
        let params = xeon_cluster_params();
        let placement = Placement::new(cluster_8x2x4(), PlacementPolicy::RoundRobin, 16);
        let cfg = MicrobenchConfig::quick().with_pair_sample(5);
        let dense = bench_platform(&params, &placement, &cfg, 31);
        let profile = bench_platform_classes(&params, &placement, &cfg, 31);
        let costs = ClassCosts::new(&placement, profile);
        for i in 0..16 {
            for j in 0..16 {
                if i == j {
                    assert_eq!(costs.o(i, i), profile.o_self);
                    assert_eq!(costs.l(i, i), 0.0);
                    continue;
                }
                assert_eq!(costs.o(i, j), dense.costs.o.get(i, j), "o ({i},{j})");
                assert_eq!(costs.l(i, j), dense.costs.l.get(i, j), "l ({i},{j})");
                assert_eq!(
                    costs.beta(i, j),
                    dense.costs.beta.get(i, j),
                    "beta ({i},{j})"
                );
            }
        }
        // Round-robin 16 on 2 nodes populates every class; the sampled
        // counts are clamped to the per-class pair totals.
        for class in [
            LinkClass::SameSocket,
            LinkClass::SameNode,
            LinkClass::Remote,
        ] {
            assert!(
                profile.sampled_pairs[class.index()] > 0,
                "{class:?} never sampled"
            );
            assert!(profile.sampled_pairs[class.index()] <= 5);
        }
    }

    /// Exhaustive pooling (`pair_sample: None` through the class route)
    /// also stays near the per-pair truth and counts every pair.
    #[test]
    fn class_profile_exhaustive_pooling_counts_all_pairs() {
        let params = xeon_cluster_params();
        let placement = Placement::new(cluster_8x2x4(), PlacementPolicy::RoundRobin, 8);
        let profile = bench_platform_classes(&params, &placement, &MicrobenchConfig::quick(), 41);
        // 8 ranks round-robin on one node: 2 sockets of 4 ranks each.
        assert_eq!(
            profile.sampled_pairs[LinkClass::SameSocket.index()],
            2 * 4 * 3
        );
        assert_eq!(
            profile.sampled_pairs[LinkClass::SameNode.index()],
            4 * 4 * 2
        );
        assert_eq!(profile.sampled_pairs[LinkClass::Remote.index()], 0);
        assert_eq!(profile.l[LinkClass::Remote.index()], 0.0);
        let truth = params.same_node.o_send + params.same_node.latency + params.same_node.o_recv;
        let got = profile.l[LinkClass::SameNode.index()];
        assert!(
            (got - truth).abs() / truth < 0.2,
            "pooled same-node latency {got} vs ~{truth}"
        );
    }
}
