//! Platform microbenchmarks (§5.6.3).
//!
//! The thesis extracts three kinds of performance parameters from the real
//! clusters, by statistics over application-level timings only:
//!
//! * `O_i` — the overhead of a pure request-start/wait invocation, as the
//!   median of repeated empty calls;
//! * `O_ij` — the added cost per started request, as the gradient of a
//!   regression over a growing number of simultaneous minimal messages;
//! * `L_ij` / `β_ij` — wire latency and inverse bandwidth, as intercept and
//!   gradient of a regression over growing message sizes (powers of two).
//!
//! This module reproduces the procedure against the *simulated* platform —
//! crucially, it measures only what an application could observe (jittered
//! end-to-end timings), never reading the true parameters, so predictor
//! accuracy is a genuine result rather than a tautology.

use crate::net::NetState;
use crate::params::PlatformParams;
use hpm_core::hockney::HeteroHockney;
use hpm_core::matrix::DMat;
use hpm_core::plan::SIGNAL_JITTER_DRAWS;
use hpm_core::predictor::CommCosts;
use hpm_stats::quantile::quantile_inplace;
use hpm_stats::regression::LinearFit;
use hpm_stats::rng::{JitterBuf, JitterSource};
use hpm_topology::Placement;

/// Stream label of the diagonal (`O_i`) units; `rep` is the rank.
const MICRO_DIAG_LABEL: u64 = 0x4D42_4449; // b"MBDI"

/// Stream label of the ordered-pair units; `rep` is `i*p + j`.
const MICRO_PAIR_LABEL: u64 = 0x4D42_5052; // b"MBPR"

/// Benchmark dimensions. Thesis values: sample sizes ≥ 25, message sizes
/// `2^0 … 2^20`.
#[derive(Debug, Clone, Copy)]
pub struct MicrobenchConfig {
    /// Samples per measured point.
    pub reps: usize,
    /// Request counts 1..=max_requests for the `O_ij` regression.
    pub max_requests: usize,
    /// Message sizes `2^lo ..= 2^hi` bytes for the latency regression.
    pub size_exponents: (u32, u32),
}

impl Default for MicrobenchConfig {
    fn default() -> Self {
        MicrobenchConfig {
            reps: 25,
            max_requests: 8,
            size_exponents: (0, 20),
        }
    }
}

impl MicrobenchConfig {
    /// Reduced dimensions for tests.
    pub fn quick() -> MicrobenchConfig {
        MicrobenchConfig {
            reps: 9,
            max_requests: 4,
            size_exponents: (0, 12),
        }
    }
}

/// The benchmarked profile: predictor cost matrices and the heterogeneous
/// Hockney model, both derived from the same simulated measurements.
#[derive(Debug, Clone)]
pub struct PlatformProfile {
    /// `O`/`L`/`β` matrices for the barrier predictor.
    pub costs: CommCosts,
    /// Latency/inverse-bandwidth model for general communication.
    pub hockney: HeteroHockney,
}

/// Runs the full §5.6.3 benchmark over all ordered process pairs.
///
/// Every measured unit — a diagonal `O_i` entry or an ordered pair's
/// `(O_ij, L_ij, β_ij)` triple — batch-fills its own jitter table from
/// the seed and its matrix position (exact draw count known up front),
/// so the units are independent and run on the [`hpm_par`] fan-out with
/// bit-identical results at any thread count, and the sampling loops
/// consume multipliers by cursor instead of stepping an RNG per draw.
/// Each pair unit reuses one per-unit [`NetState`] scratch
/// ([`NetState::reset`] between pings) and one sample buffer instead of
/// allocating per ping.
pub fn bench_platform(
    params: &PlatformParams,
    placement: &Placement,
    cfg: &MicrobenchConfig,
    seed: u64,
) -> PlatformProfile {
    let p = placement.nprocs();
    let mut o = DMat::zeros(p, p);
    let mut l = DMat::zeros(p, p);
    let mut beta = DMat::zeros(p, p);
    let (lo, hi) = cfg.size_exponents;
    assert!(lo <= hi, "size exponent range is empty");

    // O_i: median cost of an empty invocation.
    let diag: Vec<f64> = hpm_par::par_map_indexed(p, |i| {
        let mut jit = JitterBuf::new();
        jit.fill(
            params.jitter.sigma,
            seed,
            MICRO_DIAG_LABEL,
            i as u64,
            cfg.reps,
        );
        let mut samples: Vec<f64> = (0..cfg.reps)
            .map(|_| params.call_overhead * jit.next_mult())
            .collect();
        quantile_inplace(&mut samples, 0.5)
    });
    for (i, &v) in diag.iter().enumerate() {
        o.set(i, i, v);
    }

    let pairs: Vec<(usize, usize)> = (0..p)
        .flat_map(|i| (0..p).filter(move |&j| j != i).map(move |j| (i, j)))
        .collect();
    let triples = hpm_par::par_map_slice(&pairs, |_, &(i, j)| {
        // Per-pair scratch, reused across every ping of this unit: one
        // network state (reset to the quiet-network benchmark scenario
        // between pings), one sample buffer for the medians, and one
        // jitter table filled to the unit's exact draw count — the
        // request loops draw `reps*(1+k)` multipliers per request count
        // and every sized ping one signal round trip's worth.
        let draws: usize = (1..=cfg.max_requests)
            .map(|k| cfg.reps * (1 + k))
            .sum::<usize>()
            + (hi - lo + 1) as usize * cfg.reps * SIGNAL_JITTER_DRAWS;
        let mut jit = JitterBuf::new();
        jit.fill(
            params.jitter.sigma,
            seed,
            MICRO_PAIR_LABEL,
            (i * p + j) as u64,
            draws,
        );
        let mut net = NetState::new(placement);
        let mut samples = vec![0.0f64; cfg.reps];

        // O_ij: time to start k requests, regressed on k. Starting a
        // request costs the sender only its per-message CPU overhead
        // (the transfers complete later); the gradient isolates it.
        let lc = params.link(placement.link(i, j));
        let mut pts = Vec::with_capacity(cfg.max_requests);
        for k in 1..=cfg.max_requests {
            for s in samples.iter_mut() {
                let mut t = params.call_overhead * jit.next_mult();
                for _ in 0..k {
                    t += lc.o_send * jit.next_mult();
                }
                *s = t;
            }
            pts.push((k as f64, quantile_inplace(&mut samples, 0.5)));
        }
        let o_ij = LinearFit::fit(&pts).nonneg_slope();

        // L_ij and β_ij: one-way transfer time over growing sizes.
        // Each ping runs on a quiet network, receiver already posted —
        // the §5.6.3 benchmark scenario.
        let mut size_pts = Vec::with_capacity((hi - lo + 1) as usize);
        for e in lo..=hi {
            let bytes = 1u64 << e;
            for s in samples.iter_mut() {
                net.reset();
                let (_, processed) =
                    net.signal_round_trip(params, placement, &mut jit, i, j, 0.0, bytes, 0.0);
                // One-way time: processed at receiver (the ack is
                // transport-internal and not application-visible).
                *s = processed;
            }
            size_pts.push((bytes as f64, quantile_inplace(&mut samples, 0.5)));
        }
        debug_assert!(params.jitter.sigma == 0.0 || jit.consumed() == draws);
        let fit = LinearFit::fit(&size_pts);
        (o_ij, fit.nonneg_intercept(), fit.nonneg_slope())
    });
    for (&(i, j), &(o_ij, l_ij, b_ij)) in pairs.iter().zip(triples.iter()) {
        o.set(i, j, o_ij);
        l.set(i, j, l_ij);
        beta.set(i, j, b_ij);
    }

    let costs = CommCosts::new(o, l.clone(), beta.clone());
    let hockney = HeteroHockney::new(l, beta);
    PlatformProfile { costs, hockney }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::xeon_cluster_params;
    use hpm_topology::{cluster_8x2x4, PlacementPolicy};

    fn profile(n: usize, seed: u64) -> (PlatformParams, PlatformProfile) {
        let params = xeon_cluster_params();
        let placement = Placement::new(cluster_8x2x4(), PlacementPolicy::RoundRobin, n);
        let prof = bench_platform(&params, &placement, &MicrobenchConfig::quick(), seed);
        (params, prof)
    }

    #[test]
    fn latency_matrix_reflects_topology() {
        let (_, prof) = profile(16, 11);
        // Round-robin on 2 nodes: 0 and 1 are remote, 0 and 2 local.
        let remote = prof.costs.l.get(0, 1);
        let local = prof.costs.l.get(0, 2);
        assert!(
            remote > 5.0 * local,
            "remote {remote} must dwarf local {local}"
        );
    }

    #[test]
    fn extracted_latency_near_truth() {
        let (params, prof) = profile(16, 12);
        // The measured intercept is o_send + latency + o_recv (plus noise).
        let truth = params.remote.o_send + params.remote.latency + params.remote.o_recv;
        let got = prof.costs.l.get(0, 1);
        assert!(
            (got - truth).abs() / truth < 0.2,
            "latency {got} vs expected ~{truth}"
        );
    }

    #[test]
    fn extracted_bandwidth_near_truth() {
        let (params, prof) = profile(16, 13);
        let got = prof.hockney.beta.get(0, 1);
        let truth = params.remote.inv_bandwidth;
        assert!((got - truth).abs() / truth < 0.15, "beta {got} vs {truth}");
    }

    #[test]
    fn request_overhead_near_o_send() {
        let (params, prof) = profile(16, 14);
        let got = prof.costs.o.get(0, 1);
        assert!(
            (got - params.remote.o_send).abs() / params.remote.o_send < 0.3,
            "O_ij {got} vs o_send {}",
            params.remote.o_send
        );
    }

    #[test]
    fn invocation_overhead_on_diagonal() {
        let (params, prof) = profile(8, 15);
        for i in 0..8 {
            let got = prof.costs.o.get(i, i);
            assert!(
                (got - params.call_overhead).abs() / params.call_overhead < 0.3,
                "O_{i}{i} = {got}"
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let (_, a) = profile(8, 16);
        let (_, b) = profile(8, 16);
        assert_eq!(a.costs.l, b.costs.l);
        assert_eq!(a.costs.o, b.costs.o);
    }

    /// The parallel fan-out must be invisible in the numbers: every
    /// thread count produces bit-identical matrices for several seeds.
    #[test]
    fn parallel_matches_serial_bitwise() {
        for seed in [1u64, 99, 20121116] {
            let (_, serial) = hpm_par::with_threads(Some(1), || profile(12, seed));
            let mut par = Vec::new();
            for threads in [2usize, 3, 8] {
                par.push(hpm_par::with_threads(Some(threads), || profile(12, seed)).1);
            }
            for prof in par {
                assert_eq!(serial.costs.o, prof.costs.o, "seed {seed}");
                assert_eq!(serial.costs.l, prof.costs.l, "seed {seed}");
                assert_eq!(serial.costs.beta, prof.costs.beta, "seed {seed}");
                assert_eq!(serial.hockney.beta, prof.hockney.beta, "seed {seed}");
            }
        }
    }

    #[test]
    fn matrices_are_nonnegative_and_finite() {
        let (_, prof) = profile(16, 17);
        for i in 0..16 {
            for j in 0..16 {
                assert!(prof.costs.l.get(i, j) >= 0.0);
                assert!(prof.costs.o.get(i, j) >= 0.0);
                assert!(prof.costs.beta.get(i, j).is_finite());
            }
        }
    }
}
