//! Cluster topology descriptions.
//!
//! The thesis evaluates on commodity clusters of multi-socket, multi-core
//! nodes connected by gigabit ethernet: an 8-node 2×4-core Xeon cluster, a
//! 12-node 2×6-core Opteron cluster and a 10-node 2×6 configuration
//! (§5.6.6, Ch. 7–8). Process locality is the decisive performance factor
//! (§5.1–5.2), so this crate models exactly the structure the experiments
//! control: the shape of a cluster, the mapping from MPI-style ranks to
//! physical cores (the schedulers of the test systems place round-robin by
//! default, §5.6.6), and the *link class* separating any two placed ranks.

pub mod placement;
pub mod shape;

pub use placement::{LinkMap, Placement, PlacementPolicy};
pub use shape::{ClusterShape, CoreId, LinkClass};

/// The 8-node, dual-socket quad-core Xeon cluster of §5.6.6 (64 cores).
pub fn cluster_8x2x4() -> ClusterShape {
    ClusterShape::new(8, 2, 4)
}

/// The 12-node, dual-socket hex-core Opteron cluster of §5.6.6 (144 cores).
pub fn cluster_12x2x6() -> ClusterShape {
    ClusterShape::new(12, 2, 6)
}

/// The 10-node 2×6 configuration used for Table 7.2 (120 cores).
pub fn cluster_10x2x6() -> ClusterShape {
    ClusterShape::new(10, 2, 6)
}

/// A single 2×4 node, as used for the computational-rate studies (Ch. 4).
pub fn node_2x4() -> ClusterShape {
    ClusterShape::new(1, 2, 4)
}

/// The dual-core Athlon X2 workstation of §4.2 (one socket, two cores).
pub fn athlon_x2() -> ClusterShape {
    ClusterShape::new(1, 1, 2)
}

/// A 32-node scale-up of the Xeon cluster shape (256 cores) — the first
/// rung of the p ≥ 256 scale study.
pub fn cluster_32x2x4() -> ClusterShape {
    ClusterShape::new(32, 2, 4)
}

/// A 128-node scale-up of the Xeon cluster shape (1024 cores) — the
/// middle rung of the scale study and the CI regression-gate scale.
pub fn cluster_128x2x4() -> ClusterShape {
    ClusterShape::new(128, 2, 4)
}

/// A 512-node scale-up of the Xeon cluster shape (4096 cores) — the
/// ROADMAP's production-scale target.
pub fn cluster_512x2x4() -> ClusterShape {
    ClusterShape::new(512, 2, 4)
}
