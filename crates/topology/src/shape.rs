//! Cluster shapes, core coordinates and link classes.

/// Physical coordinates of one core: node, socket within node, core within
/// socket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CoreId {
    pub node: usize,
    pub socket: usize,
    pub core: usize,
}

/// The communication distance between two placed processes, ordered from
/// cheapest to most expensive.
///
/// §5.1 establishes that cost is tied to topological distance at intra-chip,
/// inter-chip and network scales; these are the three scales of the test
/// systems plus the degenerate self-loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LinkClass {
    /// Same process (no transport).
    SelfLoop,
    /// Two cores sharing a socket (shared cache levels).
    SameSocket,
    /// Two sockets of one node (shared memory across the interconnect die).
    SameNode,
    /// Different nodes (network, e.g. gigabit ethernet).
    Remote,
}

impl LinkClass {
    /// All classes, cheapest first.
    pub const ALL: [LinkClass; 4] = [
        LinkClass::SelfLoop,
        LinkClass::SameSocket,
        LinkClass::SameNode,
        LinkClass::Remote,
    ];

    /// Position of this class in [`LinkClass::ALL`] — a dense index for
    /// per-class tables (sampled microbenchmarks, class-level cost
    /// models).
    pub fn index(&self) -> usize {
        match self {
            LinkClass::SelfLoop => 0,
            LinkClass::SameSocket => 1,
            LinkClass::SameNode => 2,
            LinkClass::Remote => 3,
        }
    }

    /// Short label used in tables.
    pub fn label(&self) -> &'static str {
        match self {
            LinkClass::SelfLoop => "self",
            LinkClass::SameSocket => "socket",
            LinkClass::SameNode => "node",
            LinkClass::Remote => "remote",
        }
    }
}

/// A homogeneous cluster shape: `nodes` × `sockets_per_node` ×
/// `cores_per_socket`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ClusterShape {
    nodes: usize,
    sockets_per_node: usize,
    cores_per_socket: usize,
}

impl ClusterShape {
    /// Creates a shape; all extents must be positive.
    pub fn new(nodes: usize, sockets_per_node: usize, cores_per_socket: usize) -> ClusterShape {
        assert!(
            nodes > 0 && sockets_per_node > 0 && cores_per_socket > 0,
            "cluster extents must be positive: {nodes}x{sockets_per_node}x{cores_per_socket}"
        );
        ClusterShape {
            nodes,
            sockets_per_node,
            cores_per_socket,
        }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Sockets per node.
    pub fn sockets_per_node(&self) -> usize {
        self.sockets_per_node
    }

    /// Cores per socket.
    pub fn cores_per_socket(&self) -> usize {
        self.cores_per_socket
    }

    /// Cores per node.
    pub fn cores_per_node(&self) -> usize {
        self.sockets_per_node * self.cores_per_socket
    }

    /// Total cores in the cluster.
    pub fn total_cores(&self) -> usize {
        self.nodes * self.cores_per_node()
    }

    /// The core at a flat in-node index (0 ≤ idx < cores_per_node), filling
    /// socket 0 first.
    pub fn core_at(&self, node: usize, idx_in_node: usize) -> CoreId {
        assert!(node < self.nodes, "node {node} out of range");
        assert!(
            idx_in_node < self.cores_per_node(),
            "core index {idx_in_node} out of range for {}-core nodes",
            self.cores_per_node()
        );
        CoreId {
            node,
            socket: idx_in_node / self.cores_per_socket,
            core: idx_in_node % self.cores_per_socket,
        }
    }

    /// The link class separating two cores.
    pub fn link_class(&self, a: CoreId, b: CoreId) -> LinkClass {
        if a == b {
            LinkClass::SelfLoop
        } else if a.node != b.node {
            LinkClass::Remote
        } else if a.socket != b.socket {
            LinkClass::SameNode
        } else {
            LinkClass::SameSocket
        }
    }

    /// Human-readable form, e.g. `8x2x4`.
    pub fn label(&self) -> String {
        format!(
            "{}x{}x{}",
            self.nodes, self.sockets_per_node, self.cores_per_socket
        )
    }
}

impl std::fmt::Display for ClusterShape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_arithmetic() {
        let s = ClusterShape::new(8, 2, 4);
        assert_eq!(s.cores_per_node(), 8);
        assert_eq!(s.total_cores(), 64);
        assert_eq!(s.label(), "8x2x4");
    }

    #[test]
    fn core_at_fills_socket_zero_first() {
        let s = ClusterShape::new(2, 2, 4);
        assert_eq!(
            s.core_at(0, 0),
            CoreId {
                node: 0,
                socket: 0,
                core: 0
            }
        );
        assert_eq!(
            s.core_at(0, 3),
            CoreId {
                node: 0,
                socket: 0,
                core: 3
            }
        );
        assert_eq!(
            s.core_at(0, 4),
            CoreId {
                node: 0,
                socket: 1,
                core: 0
            }
        );
        assert_eq!(
            s.core_at(1, 7),
            CoreId {
                node: 1,
                socket: 1,
                core: 3
            }
        );
    }

    #[test]
    fn link_classes() {
        let s = ClusterShape::new(2, 2, 2);
        let a = s.core_at(0, 0);
        assert_eq!(s.link_class(a, a), LinkClass::SelfLoop);
        assert_eq!(s.link_class(a, s.core_at(0, 1)), LinkClass::SameSocket);
        assert_eq!(s.link_class(a, s.core_at(0, 2)), LinkClass::SameNode);
        assert_eq!(s.link_class(a, s.core_at(1, 0)), LinkClass::Remote);
    }

    #[test]
    fn link_class_is_symmetric() {
        let s = ClusterShape::new(3, 2, 3);
        for i in 0..s.total_cores() {
            for j in 0..s.total_cores() {
                let a = s.core_at(i / s.cores_per_node(), i % s.cores_per_node());
                let b = s.core_at(j / s.cores_per_node(), j % s.cores_per_node());
                assert_eq!(s.link_class(a, b), s.link_class(b, a));
            }
        }
    }

    #[test]
    fn class_ordering_cheapest_first() {
        assert!(LinkClass::SelfLoop < LinkClass::SameSocket);
        assert!(LinkClass::SameSocket < LinkClass::SameNode);
        assert!(LinkClass::SameNode < LinkClass::Remote);
    }

    #[test]
    #[should_panic]
    fn zero_extent_rejected() {
        ClusterShape::new(0, 2, 4);
    }

    #[test]
    #[should_panic]
    fn core_index_out_of_range() {
        ClusterShape::new(1, 2, 4).core_at(0, 8);
    }
}
