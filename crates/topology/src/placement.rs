//! Rank-to-core placements.
//!
//! §5.2 describes how all experiments pin processes: node allocation comes
//! from the system scheduler (round-robin by default on the test clusters,
//! §5.6.6), and within a node the sorted list of resident ranks maps each
//! rank to the core index of its list position. Several emergent results
//! (the odd/even oscillation of the dissemination barrier on two nodes, the
//! power-of-two dips of the tree barrier) are artifacts of this mapping, so
//! it must be modeled exactly.

use crate::shape::{ClusterShape, CoreId, LinkClass};

/// How ranks are distributed over nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlacementPolicy {
    /// Rank `r` on node `r mod U` where `U` is the number of nodes in use —
    /// the default of the thesis' schedulers.
    RoundRobin,
    /// Rank `r` on node `r / cores_per_node` — consecutive ranks packed on
    /// a node.
    Block,
    /// Rank `r` alone on node `r` — one process per node, the placement
    /// of hybrid (threads + message passing) runs (§8.3.3). Requires
    /// `nprocs ≤ nodes`.
    Spread,
}

/// Hierarchical link classification and node residency of a placement.
///
/// Per-message link classification sits on the innermost loop of every
/// simulator path (each signal round trip classifies its endpoints, and
/// NIC egress accounting asks for the sender's node). The class of an
/// ordered pair is a pure function of the machine hierarchy — same rank,
/// same socket, same node, or neither — so the map stores only the
/// rank → node and rank → global-socket arrays (O(ranks) bytes) and
/// recomputes the class from two indexed loads and a comparison chain.
/// Earlier revisions compiled the full `P×P` byte matrix instead; at
/// p = 4096 that is 16.7 MB per placement, and the dense derivation now
/// survives only as the test oracle (`shape.link_class` over `core_of`).
///
/// Because every rank occupies a distinct core, the comparison chain is
/// exactly [`ClusterShape::link_class`] on the ranks' cores: equal ranks
/// are the self loop, distinct ranks on one socket share that socket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkMap {
    nprocs: usize,
    node_of: Vec<usize>,
    /// Global socket index (`node * sockets_per_node + socket`) per rank.
    socket_of: Vec<usize>,
}

impl LinkMap {
    fn new(shape: &ClusterShape, cores: &[CoreId]) -> LinkMap {
        let spn = shape.sockets_per_node();
        LinkMap {
            nprocs: cores.len(),
            node_of: cores.iter().map(|c| c.node).collect(),
            socket_of: cores.iter().map(|c| c.node * spn + c.socket).collect(),
        }
    }

    /// Link class between two ranks — two indexed loads and a comparison
    /// chain. Debug builds keep an explicit pair bounds check with rank
    /// context.
    #[inline]
    #[must_use]
    pub fn class(&self, a: usize, b: usize) -> LinkClass {
        debug_assert!(
            a < self.nprocs && b < self.nprocs,
            "rank pair ({a},{b}) out of range for {} processes",
            self.nprocs
        );
        if a == b {
            LinkClass::SelfLoop
        } else if self.node_of[a] != self.node_of[b] {
            LinkClass::Remote
        } else if self.socket_of[a] != self.socket_of[b] {
            LinkClass::SameNode
        } else {
            LinkClass::SameSocket
        }
    }

    /// Node hosting a rank — the cached `core_of(rank).node`.
    #[inline]
    #[must_use]
    pub fn node_of(&self, rank: usize) -> usize {
        self.node_of[rank]
    }

    /// Global socket index (`node * sockets_per_node + socket`) hosting a
    /// rank — the second hierarchy level the classifier reads.
    #[inline]
    #[must_use]
    pub fn socket_of(&self, rank: usize) -> usize {
        self.socket_of[rank]
    }

    /// Heap bytes held by the map: two words per rank, no pairwise table.
    #[must_use]
    pub fn storage_bytes(&self) -> usize {
        std::mem::size_of::<usize>() * (self.node_of.capacity() + self.socket_of.capacity())
    }
}

/// A concrete assignment of `nprocs` ranks to cores of a cluster.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    shape: ClusterShape,
    policy: PlacementPolicy,
    nprocs: usize,
    cores: Vec<CoreId>,
    links: LinkMap,
    /// Ranks resident on each node, ascending — the §5.2 in-node lists.
    node_ranks: Vec<Vec<usize>>,
    remote_pairs: usize,
}

impl Placement {
    /// Places `nprocs` ranks on `shape` under `policy`.
    ///
    /// Panics if `nprocs` is zero or exceeds the machine.
    pub fn new(shape: ClusterShape, policy: PlacementPolicy, nprocs: usize) -> Placement {
        assert!(nprocs > 0, "placement needs at least one process");
        assert!(
            nprocs <= shape.total_cores(),
            "cannot place {nprocs} processes on {} cores",
            shape.total_cores()
        );
        let cpn = shape.cores_per_node();
        let nodes_used = nprocs.div_ceil(cpn).min(shape.nodes());
        if policy == PlacementPolicy::Spread {
            assert!(
                nprocs <= shape.nodes(),
                "spread placement needs one node per rank ({nprocs} ranks, {} nodes)",
                shape.nodes()
            );
        }
        let cores: Vec<CoreId> = (0..nprocs)
            .map(|r| match policy {
                PlacementPolicy::RoundRobin => {
                    let node = r % nodes_used;
                    let idx = r / nodes_used;
                    shape.core_at(node, idx)
                }
                PlacementPolicy::Block => shape.core_at(r / cpn, r % cpn),
                PlacementPolicy::Spread => shape.core_at(r, 0),
            })
            .collect();
        let links = LinkMap::new(&shape, &cores);
        let mut node_ranks = vec![Vec::new(); shape.nodes()];
        for (r, c) in cores.iter().enumerate() {
            node_ranks[c.node].push(r);
        }
        // Closed form instead of a P×P sweep: an ordered pair is remote
        // iff its ranks sit on different nodes, so the remote count is
        // all ordered pairs minus the same-node ones (which include the
        // never-remote diagonal): p² − Σ_n cnt_n².
        let remote_pairs =
            nprocs * nprocs - node_ranks.iter().map(|r| r.len() * r.len()).sum::<usize>();
        Placement {
            shape,
            policy,
            nprocs,
            cores,
            links,
            node_ranks,
            remote_pairs,
        }
    }

    /// The cluster shape this placement lives on.
    #[must_use]
    pub fn shape(&self) -> ClusterShape {
        self.shape
    }

    /// Placement policy in effect.
    #[must_use]
    pub fn policy(&self) -> PlacementPolicy {
        self.policy
    }

    /// Number of placed ranks.
    #[must_use]
    pub fn nprocs(&self) -> usize {
        self.nprocs
    }

    /// Physical core of a rank.
    #[must_use]
    pub fn core_of(&self, rank: usize) -> CoreId {
        self.cores[rank]
    }

    /// Node hosting a rank — served from the precomputed [`LinkMap`].
    #[inline]
    #[must_use]
    pub fn node_of(&self, rank: usize) -> usize {
        self.links.node_of(rank)
    }

    /// Link class between two ranks — one load from the precomputed
    /// [`LinkMap`].
    #[inline]
    #[must_use]
    pub fn link(&self, a: usize, b: usize) -> LinkClass {
        self.links.class(a, b)
    }

    /// The precomputed pairwise link classes and node residency.
    #[must_use]
    pub fn link_map(&self) -> &LinkMap {
        &self.links
    }

    /// Number of distinct nodes hosting at least one rank.
    #[must_use]
    pub fn nodes_used(&self) -> usize {
        self.node_ranks.iter().filter(|r| !r.is_empty()).count()
    }

    /// Ranks resident on a node, ascending — served from the node buckets
    /// built at construction (see [`Placement::node_ranks`] for the
    /// borrow-only form). An out-of-range node hosts no ranks, as in the
    /// original scan-based implementation.
    #[must_use]
    pub fn ranks_on_node(&self, node: usize) -> Vec<usize> {
        self.node_ranks.get(node).cloned().unwrap_or_default()
    }

    /// Borrow the ranks resident on a node, ascending; empty for a node
    /// outside the shape.
    #[must_use]
    pub fn node_ranks(&self, node: usize) -> &[usize] {
        self.node_ranks.get(node).map_or(&[], Vec::as_slice)
    }

    /// Count of remote (cross-node) pairs among all ordered rank pairs —
    /// computed in closed form at construction (`p² − Σ_n cnt_n²`).
    #[must_use]
    pub fn remote_pair_count(&self) -> usize {
        self.remote_pairs
    }

    /// Heap bytes held by the placement's link/residency structures: the
    /// core list, the hierarchical [`LinkMap`] and the per-node rank
    /// buckets — O(ranks + nodes) total, asserted at scale so a dense
    /// pairwise table cannot silently return.
    #[must_use]
    pub fn storage_bytes(&self) -> usize {
        let word = std::mem::size_of::<usize>();
        self.cores.capacity() * std::mem::size_of::<CoreId>()
            + self.links.storage_bytes()
            + self.node_ranks.capacity() * std::mem::size_of::<Vec<usize>>()
            + self
                .node_ranks
                .iter()
                .map(|r| r.capacity() * word)
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster_8x2x4;

    #[test]
    fn round_robin_two_nodes_parity() {
        // 16 ranks on an 8-node 2x4 cluster use 2 nodes; round-robin puts
        // even ranks on node 0 and odd ranks on node 1 (§5.6.6).
        let p = Placement::new(cluster_8x2x4(), PlacementPolicy::RoundRobin, 16);
        assert_eq!(p.nodes_used(), 2);
        for r in 0..16 {
            assert_eq!(p.core_of(r).node, r % 2);
        }
    }

    #[test]
    fn block_packs_nodes() {
        let p = Placement::new(cluster_8x2x4(), PlacementPolicy::Block, 16);
        assert_eq!(p.nodes_used(), 2);
        for r in 0..8 {
            assert_eq!(p.core_of(r).node, 0);
        }
        for r in 8..16 {
            assert_eq!(p.core_of(r).node, 1);
        }
    }

    #[test]
    fn round_robin_never_overfills_a_node() {
        let shape = cluster_8x2x4();
        for n in 1..=shape.total_cores() {
            let p = Placement::new(shape, PlacementPolicy::RoundRobin, n);
            for node in 0..shape.nodes() {
                assert!(
                    p.ranks_on_node(node).len() <= shape.cores_per_node(),
                    "{n} procs overfilled node {node}"
                );
            }
        }
    }

    #[test]
    fn all_ranks_have_distinct_cores() {
        let shape = cluster_8x2x4();
        for &policy in &[PlacementPolicy::RoundRobin, PlacementPolicy::Block] {
            let p = Placement::new(shape, policy, 64);
            let mut seen = std::collections::HashSet::new();
            for r in 0..64 {
                assert!(seen.insert(p.core_of(r)), "core reused under {policy:?}");
            }
        }
    }

    #[test]
    fn odd_process_count_breaks_parity() {
        // With 9 ranks round-robin on 2 nodes, the wrap of rank 8 puts two
        // consecutive ranks on node 0 — the effect behind the Fig. 5.6
        // oscillation.
        let p = Placement::new(cluster_8x2x4(), PlacementPolicy::RoundRobin, 9);
        assert_eq!(p.nodes_used(), 2);
        assert_eq!(p.core_of(7).node, 1);
        assert_eq!(p.core_of(8).node, 0);
    }

    #[test]
    fn link_is_self_on_diagonal() {
        let p = Placement::new(cluster_8x2x4(), PlacementPolicy::RoundRobin, 8);
        for r in 0..8 {
            assert_eq!(p.link(r, r), LinkClass::SelfLoop);
        }
    }

    #[test]
    fn single_node_has_no_remote_pairs() {
        let p = Placement::new(cluster_8x2x4(), PlacementPolicy::RoundRobin, 8);
        assert_eq!(p.nodes_used(), 1);
        assert_eq!(p.remote_pair_count(), 0);
    }

    #[test]
    fn spread_puts_one_rank_per_node() {
        let p = Placement::new(cluster_8x2x4(), PlacementPolicy::Spread, 8);
        assert_eq!(p.nodes_used(), 8);
        for r in 0..8 {
            assert_eq!(p.core_of(r).node, r);
            assert_eq!(p.core_of(r).socket, 0);
        }
        // All pairs are remote.
        assert_eq!(p.remote_pair_count(), 8 * 7);
    }

    #[test]
    #[should_panic]
    fn spread_rejects_more_ranks_than_nodes() {
        Placement::new(cluster_8x2x4(), PlacementPolicy::Spread, 9);
    }

    #[test]
    #[should_panic]
    fn oversubscription_rejected() {
        Placement::new(cluster_8x2x4(), PlacementPolicy::RoundRobin, 65);
    }

    /// The hierarchical LinkMap and node buckets agree with the dense
    /// per-pair oracle (`shape.link_class` over the ranks' cores), for
    /// every policy and a spread of process counts.
    #[test]
    fn link_map_matches_direct_derivation() {
        let shape = cluster_8x2x4();
        for &policy in &[
            PlacementPolicy::RoundRobin,
            PlacementPolicy::Block,
            PlacementPolicy::Spread,
        ] {
            for n in [1usize, 2, 7, 8] {
                let p = Placement::new(shape, policy, n);
                let mut remote = 0;
                for a in 0..n {
                    assert_eq!(p.node_of(a), p.core_of(a).node);
                    for b in 0..n {
                        let direct = shape.link_class(p.core_of(a), p.core_of(b));
                        assert_eq!(p.link(a, b), direct, "{policy:?} n={n} ({a},{b})");
                        if a != b && direct == LinkClass::Remote {
                            remote += 1;
                        }
                    }
                }
                assert_eq!(p.remote_pair_count(), remote, "{policy:?} n={n}");
                for node in 0..shape.nodes() {
                    let bucket: Vec<usize> =
                        (0..n).filter(|&r| p.core_of(r).node == node).collect();
                    assert_eq!(p.ranks_on_node(node), bucket);
                    assert_eq!(p.node_ranks(node), &bucket[..]);
                }
                // Out-of-range nodes host nothing (the pre-LinkMap
                // scan-based behavior).
                assert!(p.ranks_on_node(shape.nodes()).is_empty());
                assert!(p.node_ranks(shape.nodes() + 7).is_empty());
            }
        }
    }

    /// The scale criterion: at p = 4096 the placement's link/residency
    /// storage stays O(ranks + nodes) — far below what any pairwise table
    /// would need (a P×P byte matrix alone is 16.7 MB).
    #[test]
    fn placement_storage_stays_linear_at_scale() {
        let p = Placement::new(crate::cluster_512x2x4(), PlacementPolicy::RoundRobin, 4096);
        assert_eq!(p.nprocs(), 4096);
        let bytes = p.storage_bytes();
        // Generous linear bound: a few machine words per rank plus the
        // per-node bucket headers.
        let word = std::mem::size_of::<usize>();
        let bound = 4096 * (std::mem::size_of::<CoreId>() + 4 * word) + 512 * 4 * word;
        assert!(
            bytes <= bound,
            "placement storage {bytes} B > bound {bound} B"
        );
        assert!(
            bytes < 4096 * 4096,
            "dense pairwise table is back: {bytes} B"
        );
        // The closed-form remote count matches the hierarchy at scale:
        // round-robin spreads 8 ranks on each of 512 nodes.
        assert_eq!(p.remote_pair_count(), 4096 * 4096 - 512 * 64);
        // And the socket level is exposed for stratified sampling.
        for r in 0..4096 {
            let c = p.core_of(r);
            assert_eq!(p.link_map().socket_of(r), c.node * 2 + c.socket);
        }
    }
}
