//! Synthetic cache-aware processor rate models.
//!
//! §4.3 concludes that computational rate must be modeled per kernel and
//! piecewise-linearly in the memory footprint: performance breaks away when
//! the working set leaves a cache level (Fig. 4.6). This module provides a
//! deterministic processor model with exactly that structure — a peak flop
//! rate plus a ladder of bandwidth levels — used by the cluster simulator
//! wherever a modeled (rather than measured) compute time is needed.
//!
//! The model is intentionally simple: the cost of one kernel application is
//! the larger of its flop time and its memory time, with the bandwidth
//! chosen by the smallest level that holds the footprint. That reproduces
//! the two observations the thesis builds on: (1) different kernels run at
//! different sustained rates even in cache (compute- vs movement-bound),
//! and (2) every kernel shows a knee when the footprint crosses a level
//! boundary.

use crate::kernel::{Kernel, KernelTraits};

/// One level of the memory hierarchy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CacheLevel {
    /// Capacity in bytes.
    pub capacity_bytes: usize,
    /// Sustained bandwidth in bytes per second for working sets that fit.
    pub bytes_per_sec: f64,
}

/// A processor with a peak flop rate and a memory-bandwidth ladder.
#[derive(Debug, Clone, PartialEq)]
pub struct ProcessorModel {
    /// Descriptive name.
    pub name: String,
    /// Peak floating-point rate (flops/second).
    pub flops_per_sec: f64,
    /// Cache levels, smallest first. Must be non-empty with strictly
    /// increasing capacities and non-increasing bandwidths.
    pub levels: Vec<CacheLevel>,
    /// Main-memory bandwidth for working sets that fit no cache level.
    pub dram_bytes_per_sec: f64,
}

impl ProcessorModel {
    /// Validates and constructs a model.
    pub fn new(
        name: &str,
        flops_per_sec: f64,
        levels: Vec<CacheLevel>,
        dram_bytes_per_sec: f64,
    ) -> ProcessorModel {
        assert!(flops_per_sec > 0.0, "flop rate must be positive");
        assert!(!levels.is_empty(), "need at least one cache level");
        assert!(dram_bytes_per_sec > 0.0, "DRAM bandwidth must be positive");
        for w in levels.windows(2) {
            assert!(
                w[0].capacity_bytes < w[1].capacity_bytes,
                "cache capacities must increase"
            );
            assert!(
                w[0].bytes_per_sec >= w[1].bytes_per_sec,
                "cache bandwidths must not increase outward"
            );
        }
        assert!(
            levels
                .last()
                .expect("levels verified non-empty above")
                .bytes_per_sec
                >= dram_bytes_per_sec,
            "DRAM cannot be faster than the outermost cache"
        );
        ProcessorModel {
            name: name.to_string(),
            flops_per_sec,
            levels,
            dram_bytes_per_sec,
        }
    }

    /// Bandwidth seen by a working set of `footprint` bytes.
    pub fn bandwidth_for(&self, footprint: usize) -> f64 {
        for lvl in &self.levels {
            if footprint <= lvl.capacity_bytes {
                return lvl.bytes_per_sec;
            }
        }
        self.dram_bytes_per_sec
    }

    /// Seconds for one application of a kernel with the given traits over
    /// `n` elements and `footprint` bytes: `max(flop time, memory time)`.
    pub fn time_traits(&self, traits: KernelTraits, n: usize, footprint: usize) -> f64 {
        let flop_time = traits.flops_per_element * n as f64 / self.flops_per_sec;
        let mem_time = traits.bytes_per_element * n as f64 / self.bandwidth_for(footprint);
        flop_time.max(mem_time)
    }

    /// Seconds for one application of `kernel` at problem size `n`.
    pub fn time_per_apply(&self, kernel: &dyn Kernel, n: usize) -> f64 {
        self.time_traits(kernel.traits(), n, kernel.footprint_bytes(n))
    }

    /// Seconds per element of `kernel` at problem size `n` — the entries of
    /// the model's computational cost matrices (§3.3).
    pub fn secs_per_element(&self, kernel: &dyn Kernel, n: usize) -> f64 {
        self.time_per_apply(kernel, n) / n as f64
    }

    /// Sustained flop rate on `kernel` at size `n`, in flops/second.
    pub fn sustained_flops(&self, kernel: &dyn Kernel, n: usize) -> f64 {
        kernel.flops(n) / self.time_per_apply(kernel, n)
    }

    /// A uniformly scaled copy (e.g. a 20 % faster part: `scaled(1.2)`).
    /// Capacities are preserved; all rates are multiplied.
    pub fn scaled(&self, factor: f64) -> ProcessorModel {
        assert!(factor > 0.0);
        ProcessorModel {
            name: format!("{}@x{factor}", self.name),
            flops_per_sec: self.flops_per_sec * factor,
            levels: self
                .levels
                .iter()
                .map(|l| CacheLevel {
                    capacity_bytes: l.capacity_bytes,
                    bytes_per_sec: l.bytes_per_sec * factor,
                })
                .collect(),
            dram_bytes_per_sec: self.dram_bytes_per_sec * factor,
        }
    }
}

/// The Xeon core of the 8×2×4 cluster, calibrated so DAXPY sustains
/// ≈ 1 Gflop/s in cache — the `r` of Table 3.1.
pub fn xeon_core() -> ProcessorModel {
    ProcessorModel::new(
        "xeon-2x4",
        4.0e9,
        vec![
            CacheLevel {
                capacity_bytes: 64 * 1024,
                bytes_per_sec: 12.0e9,
            },
            CacheLevel {
                capacity_bytes: 4 * 1024 * 1024,
                bytes_per_sec: 8.0e9,
            },
        ],
        4.0e9,
    )
}

/// The Opteron core of the 12×2×6 cluster: slightly lower clock, larger L2.
pub fn opteron_core() -> ProcessorModel {
    ProcessorModel::new(
        "opteron-2x6",
        3.5e9,
        vec![
            CacheLevel {
                capacity_bytes: 64 * 1024,
                bytes_per_sec: 10.5e9,
            },
            CacheLevel {
                capacity_bytes: 6 * 1024 * 1024,
                bytes_per_sec: 7.0e9,
            },
        ],
        3.5e9,
    )
}

/// The Athlon X2 workstation of §4.2: one fast private 64 KiB L1 and a
/// steep falloff beyond it — the configuration whose small caches make the
/// Fig. 4.5/4.6 knee visible at small problem sizes.
pub fn athlon_x2_core() -> ProcessorModel {
    ProcessorModel::new(
        "athlon-x2",
        2.0e9,
        vec![CacheLevel {
            capacity_bytes: 64 * 1024,
            bytes_per_sec: 16.0e9,
        }],
        3.0e9,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas1::{Axpy, Dot, Scal};
    use crate::stencil::Stencil5;

    #[test]
    fn daxpy_sustains_about_a_gigaflop_on_xeon() {
        let p = xeon_core();
        // 1024 elements: 16 KiB footprint, in L1.
        let rate = p.sustained_flops(&Axpy, 1024);
        assert!(
            (rate - 1.0e9).abs() / 1.0e9 < 0.35,
            "expected ~1 Gflop/s, got {rate:.3e}"
        );
    }

    #[test]
    fn bandwidth_ladder_is_monotone() {
        let p = xeon_core();
        assert!(p.bandwidth_for(1024) >= p.bandwidth_for(1024 * 1024));
        assert!(p.bandwidth_for(1024 * 1024) >= p.bandwidth_for(64 * 1024 * 1024));
    }

    #[test]
    fn out_of_cache_knee_exists() {
        // Per-element time must strictly grow when the footprint leaves L1
        // (the Fig. 4.6 breakaway).
        let p = athlon_x2_core();
        let small = p.secs_per_element(&Axpy, 2 * 1024); // 32 KiB
        let large = p.secs_per_element(&Axpy, 256 * 1024); // 4 MiB
        assert!(
            large > small * 1.5,
            "expected a knee: in-cache {small:.3e}, out {large:.3e}"
        );
    }

    #[test]
    fn kernels_differ_in_cache() {
        // Fig. 4.5: axpy and dot differ even with uniform access cost.
        let p = xeon_core();
        let axpy = p.secs_per_element(&Axpy, 1024);
        let dot = p.secs_per_element(&Dot, 1024);
        assert!(axpy > dot, "axpy moves more bytes per element");
    }

    #[test]
    fn compute_bound_kernel_tracks_flop_rate() {
        // The stencil at tiny footprint is flop-bound on a slow-flop model.
        let slow_flops = ProcessorModel::new(
            "slow",
            0.5e9,
            vec![CacheLevel {
                capacity_bytes: 1 << 20,
                bytes_per_sec: 100.0e9,
            }],
            50.0e9,
        );
        let t = slow_flops.time_per_apply(&Stencil5, 1024);
        let expect = Stencil5.flops(1024) / 0.5e9;
        assert!((t - expect).abs() / expect < 1e-9);
    }

    #[test]
    fn scaled_model_is_proportionally_faster() {
        let p = xeon_core();
        let f = p.scaled(2.0);
        let t1 = p.time_per_apply(&Scal, 4096);
        let t2 = f.time_per_apply(&Scal, 4096);
        assert!((t1 / t2 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn secs_per_element_consistent_with_time_per_apply() {
        let p = opteron_core();
        let n = 2048;
        assert!(
            (p.secs_per_element(&Axpy, n) * n as f64 - p.time_per_apply(&Axpy, n)).abs() < 1e-15
        );
    }

    #[test]
    #[should_panic]
    fn decreasing_capacity_rejected() {
        ProcessorModel::new(
            "bad",
            1e9,
            vec![
                CacheLevel {
                    capacity_bytes: 1024,
                    bytes_per_sec: 1e9,
                },
                CacheLevel {
                    capacity_bytes: 512,
                    bytes_per_sec: 1e9,
                },
            ],
            1e9,
        );
    }

    #[test]
    #[should_panic]
    fn dram_faster_than_cache_rejected() {
        ProcessorModel::new(
            "bad",
            1e9,
            vec![CacheLevel {
                capacity_bytes: 1024,
                bytes_per_sec: 1e9,
            }],
            2e9,
        );
    }
}
