//! The kernel-isolation benchmark of §4.1.
//!
//! The thesis' procedure: for growing iteration counts (powers of two), time
//! batches of kernel applications, collect 30 samples per count, re-sample
//! outliers until every batch mean sits inside a 95 % Student-t interval,
//! then fit a least-squares line through the per-count means. The gradient
//! of that line is the steady-state cost of one kernel application; its
//! quality is assessed by the relative error of extrapolated predictions
//! (Figs. 4.3–4.4).
//!
//! Timing is pluggable: real experiments use the wall clock, while tests
//! and the simulator substitute deterministic timers — the extraction
//! logic is identical either way.

use crate::kernel::{Kernel, KernelState};
use hpm_stats::outlier::filter_outlier_means;
use hpm_stats::regression::LinearFit;

/// Configuration of one benchmark run.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Problem size in elements.
    pub n: usize,
    /// Samples per iteration count (thesis: 30).
    pub samples: usize,
    /// Confidence level for the outlier interval (thesis: 0.95).
    pub confidence: f64,
    /// Re-sampling pass budget before giving up (§4.1 discusses why runs
    /// needing ≥2 passes signal calibration problems).
    pub max_passes: usize,
    /// Iteration counts to measure: `2^lo ..= 2^hi`.
    pub iter_exponents: (u32, u32),
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            n: 1024,
            samples: 30,
            confidence: 0.95,
            max_passes: 8,
            iter_exponents: (1, 12),
        }
    }
}

impl BenchConfig {
    /// A reduced configuration for fast tests and smoke runs.
    pub fn quick(n: usize) -> BenchConfig {
        BenchConfig {
            n,
            samples: 8,
            confidence: 0.95,
            max_passes: 4,
            iter_exponents: (1, 6),
        }
    }
}

/// One measured point: iteration count and accepted mean batch time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BenchPoint {
    pub iterations: u64,
    /// Mean wall time of the whole batch (seconds).
    pub batch_seconds: f64,
    /// Batches that had to be re-collected for this point.
    pub resampled: usize,
}

/// The extracted steady-state profile of a kernel on this host.
#[derive(Debug, Clone)]
pub struct KernelProfile {
    /// Kernel name.
    pub kernel: String,
    /// Problem size in elements.
    pub n: usize,
    /// Memory footprint in bytes at `n`.
    pub footprint_bytes: usize,
    /// Regression of batch time on iteration count.
    pub fit: LinearFit,
    /// Measured points the fit ran through.
    pub points: Vec<BenchPoint>,
}

impl KernelProfile {
    /// Seconds per kernel application (the regression gradient, clamped
    /// non-negative).
    pub fn secs_per_apply(&self) -> f64 {
        self.fit.nonneg_slope()
    }

    /// Seconds per element at this problem size.
    pub fn secs_per_element(&self) -> f64 {
        self.secs_per_apply() / self.n as f64
    }

    /// Sustained Mflop/s given the kernel's flop count per application.
    pub fn mflops(&self, flops_per_apply: f64) -> f64 {
        let spa = self.secs_per_apply();
        if spa == 0.0 {
            f64::INFINITY
        } else {
            flops_per_apply / spa / 1e6
        }
    }

    /// Extrapolated total time for `iterations` applications.
    pub fn predict(&self, iterations: u64) -> f64 {
        self.fit.predict(iterations as f64)
    }

    /// Relative error of the prediction against a measured total.
    pub fn relative_error(&self, iterations: u64, measured_seconds: f64) -> f64 {
        if measured_seconds == 0.0 {
            return 0.0;
        }
        (self.predict(iterations) - measured_seconds).abs() / measured_seconds
    }
}

/// A pluggable batch timer: given a kernel, its state and an iteration
/// count, returns the batch duration in seconds.
pub trait BatchTimer {
    fn time_batch(&mut self, kernel: &dyn Kernel, state: &mut KernelState, iters: u64) -> f64;
}

/// Wall-clock timer: actually runs the kernel `iters` times.
#[derive(Debug, Default)]
pub struct WallClock {
    sink: f64,
}

impl WallClock {
    /// Consumes accumulated checksums so the optimizer cannot remove work.
    pub fn checksum(&self) -> f64 {
        self.sink
    }
}

impl BatchTimer for WallClock {
    fn time_batch(&mut self, kernel: &dyn Kernel, state: &mut KernelState, iters: u64) -> f64 {
        let start = std::time::Instant::now();
        let mut acc = 0.0;
        for _ in 0..iters {
            acc += kernel.apply(state);
        }
        let dt = start.elapsed().as_secs_f64();
        self.sink += acc;
        dt
    }
}

/// Runs the §4.1 benchmark with an arbitrary timer.
pub fn profile_kernel_with<T: BatchTimer>(
    kernel: &dyn Kernel,
    config: &BenchConfig,
    timer: &mut T,
) -> KernelProfile {
    let mut state = kernel.alloc(config.n);
    // Warm-up pass: touches every page, loads caches (the thesis pre-faults
    // and mlockall()s; in user space we approximate by a full application).
    timer.time_batch(kernel, &mut state, 2);

    let (lo, hi) = config.iter_exponents;
    assert!(lo <= hi, "iteration exponent range is empty");
    let mut points = Vec::new();
    for e in lo..=hi {
        let iters = 1u64 << e;
        let report =
            filter_outlier_means(config.samples, config.confidence, config.max_passes, || {
                timer.time_batch(kernel, &mut state, iters)
            });
        points.push(BenchPoint {
            iterations: iters,
            batch_seconds: report.mean(),
            resampled: report.resampled,
        });
    }
    let fit = LinearFit::fit(
        &points
            .iter()
            .map(|p| (p.iterations as f64, p.batch_seconds))
            .collect::<Vec<_>>(),
    );
    KernelProfile {
        kernel: kernel.name().to_string(),
        n: config.n,
        footprint_bytes: kernel.footprint_bytes(config.n),
        fit,
        points,
    }
}

/// Runs the benchmark against the wall clock (a real measurement).
pub fn profile_kernel(kernel: &dyn Kernel, config: &BenchConfig) -> KernelProfile {
    let mut timer = WallClock::default();
    profile_kernel_with(kernel, config, &mut timer)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas1::Axpy;
    use crate::stencil::Stencil5;

    /// Deterministic timer: linear in iterations with a fixed overhead and
    /// a small repeating perturbation.
    struct FakeTimer {
        per_iter: f64,
        overhead: f64,
        tick: usize,
    }

    impl BatchTimer for FakeTimer {
        fn time_batch(&mut self, _k: &dyn Kernel, _s: &mut KernelState, iters: u64) -> f64 {
            self.tick += 1;
            let noise = 1.0 + 0.001 * ((self.tick % 7) as f64 - 3.0);
            self.overhead + self.per_iter * iters as f64 * noise
        }
    }

    #[test]
    fn fake_timer_rate_recovered() {
        let mut t = FakeTimer {
            per_iter: 2e-6,
            overhead: 5e-7,
            tick: 0,
        };
        let cfg = BenchConfig {
            n: 1024,
            samples: 10,
            confidence: 0.95,
            max_passes: 4,
            iter_exponents: (1, 10),
        };
        let p = profile_kernel_with(&Axpy, &cfg, &mut t);
        assert!(
            (p.secs_per_apply() - 2e-6).abs() / 2e-6 < 0.01,
            "slope {} should be ~2e-6",
            p.secs_per_apply()
        );
        assert!(p.fit.r_squared > 0.999);
        assert_eq!(p.points.len(), 10);
    }

    #[test]
    fn prediction_and_relative_error() {
        let mut t = FakeTimer {
            per_iter: 1e-6,
            overhead: 0.0,
            tick: 0,
        };
        let cfg = BenchConfig::quick(256);
        let p = profile_kernel_with(&Axpy, &cfg, &mut t);
        let pred = p.predict(1 << 16);
        let truth = 1e-6 * (1 << 16) as f64;
        assert!((pred - truth).abs() / truth < 0.05);
        assert!(p.relative_error(1 << 16, truth) < 0.05);
    }

    #[test]
    fn wall_clock_profile_is_positive_and_linear() {
        // A real measurement; assertions are deliberately loose.
        let cfg = BenchConfig {
            n: 1024,
            samples: 5,
            confidence: 0.95,
            max_passes: 3,
            iter_exponents: (4, 9),
        };
        let p = profile_kernel(&Axpy, &cfg);
        assert!(p.secs_per_apply() > 0.0, "rate must be positive");
        assert!(
            p.fit.r_squared > 0.5,
            "time should grow roughly linearly with iterations (r2 = {})",
            p.fit.r_squared
        );
    }

    #[test]
    fn different_kernels_have_different_real_rates() {
        // The core claim of Ch. 4: per-kernel rates differ. DAXPY (2 vectors,
        // 2 flops/elem) and the 5-point stencil behave differently per
        // "application" because an application covers n elements vs a grid.
        let cfg = BenchConfig {
            n: 1024,
            samples: 5,
            confidence: 0.95,
            max_passes: 3,
            iter_exponents: (4, 8),
        };
        let pa = profile_kernel(&Axpy, &cfg);
        let ps = profile_kernel(&Stencil5, &cfg);
        assert!(pa.secs_per_apply() > 0.0 && ps.secs_per_apply() > 0.0);
        // They must not be identical to within a percent — if they were,
        // the single-rate model the thesis rejects would be adequate.
        let ratio = pa.secs_per_apply() / ps.secs_per_apply();
        assert!(
            (ratio - 1.0).abs() > 0.01,
            "kernels implausibly identical: ratio {ratio}"
        );
    }

    #[test]
    fn mflops_inverts_rate() {
        let p = KernelProfile {
            kernel: "axpy".into(),
            n: 1000,
            footprint_bytes: 16000,
            fit: LinearFit {
                slope: 2e-6,
                intercept: 0.0,
                r_squared: 1.0,
                n: 5,
            },
            points: vec![],
        };
        // 2000 flops per apply at 2 µs → 1000 Mflop/s.
        assert!((p.mflops(2000.0) - 1000.0).abs() < 1e-9);
        assert!((p.secs_per_element() - 2e-9).abs() < 1e-18);
    }
}
