//! The kernel abstraction.
//!
//! A kernel is "a small algorithm for processing a segment at the head of a
//! stream" (§2.3.2); for modeling purposes the thesis characterizes one by
//! its steady-state execution rate on a given processor (§3.3). A
//! [`Kernel`] here owns three things: how to allocate and initialize its
//! working set, how to apply itself once over that set, and its static
//! traits (flops and bytes per element) from which synthetic rate models
//! derive costs.

/// Working storage for a kernel application.
///
/// All the kernels in this crate operate on at most two vectors and a
/// scalar; the stencil interprets `x`/`y` as square grids. Keeping the
/// state generic lets the harness allocate, pre-fault and reuse buffers
/// uniformly (the thesis pre-faults and `mlockall`s its buffers, §4.1 — the
/// pre-faulting is reproduced by writing every element during `init`).
#[derive(Debug, Clone)]
pub struct KernelState {
    /// Problem size in elements (grid side squared for the stencil).
    pub n: usize,
    /// First operand vector.
    pub x: Vec<f64>,
    /// Second operand vector.
    pub y: Vec<f64>,
    /// Scalar operand (e.g. the `a` of `axpy`).
    pub a: f64,
}

impl KernelState {
    /// Allocates state with both vectors of length `len`, deterministically
    /// initialized (every page touched).
    pub fn with_len(n: usize, len: usize) -> KernelState {
        let x = (0..len).map(|i| 1.0 + (i % 17) as f64 * 0.25).collect();
        let y = (0..len).map(|i| 0.5 + (i % 13) as f64 * 0.125).collect();
        KernelState { n, x, y, a: 1.5 }
    }
}

/// Static cost traits of a kernel, consumed by rate models.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KernelTraits {
    /// Floating-point operations per element processed.
    pub flops_per_element: f64,
    /// Bytes moved to/from memory per element (reads + writes).
    pub bytes_per_element: f64,
}

/// A benchmarkable computational kernel.
pub trait Kernel: Send + Sync {
    /// Short name matching the thesis figures (e.g. `axpy`).
    fn name(&self) -> &'static str;

    /// Static flop/byte traits per element.
    fn traits(&self) -> KernelTraits;

    /// Total memory footprint in bytes for problem size `n` — the x-axis of
    /// Figs. 4.5–4.6 (element size times the number of distinct operand
    /// vectors actually touched).
    fn footprint_bytes(&self, n: usize) -> usize;

    /// Allocates and initializes working storage for problem size `n`.
    fn alloc(&self, n: usize) -> KernelState;

    /// Applies the kernel once over the whole working set, returning a
    /// checksum that the caller must consume (defeating dead-code
    /// elimination in real timing runs).
    fn apply(&self, state: &mut KernelState) -> f64;

    /// Flops in one application at size `n`.
    fn flops(&self, n: usize) -> f64 {
        self.traits().flops_per_element * n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Nop;
    impl Kernel for Nop {
        fn name(&self) -> &'static str {
            "nop"
        }
        fn traits(&self) -> KernelTraits {
            KernelTraits {
                flops_per_element: 2.0,
                bytes_per_element: 16.0,
            }
        }
        fn footprint_bytes(&self, n: usize) -> usize {
            16 * n
        }
        fn alloc(&self, n: usize) -> KernelState {
            KernelState::with_len(n, n)
        }
        fn apply(&self, _s: &mut KernelState) -> f64 {
            0.0
        }
    }

    #[test]
    fn default_flops_uses_traits() {
        assert_eq!(Nop.flops(100), 200.0);
    }

    #[test]
    fn state_is_initialized_and_deterministic() {
        let a = KernelState::with_len(8, 8);
        let b = KernelState::with_len(8, 8);
        assert_eq!(a.x, b.x);
        assert_eq!(a.y, b.y);
        assert!(a.x.iter().all(|&v| v != 0.0));
    }
}
