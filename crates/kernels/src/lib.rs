//! Numerical kernels, the Chapter-4 benchmark harness, and processor rate
//! models.
//!
//! Chapter 4 of the thesis establishes that computational rate is only
//! meaningful *per kernel*: extrapolating a DAXPY-derived flop rate to a
//! 5-point stencil mispredicts it badly (Figs. 4.3–4.4), and even with
//! uniform in-cache access the L1 BLAS routines differ by factors
//! (Fig. 4.5). This crate provides:
//!
//! * the kernels themselves — the single-precision-style level-1 BLAS set
//!   (`swap`, `scal`, `copy`, `axpy`, `dot`, `nrm2`, `asum`, `iamax`) and a
//!   5-point stencil — implemented as real Rust loops so host measurements
//!   are genuine;
//! * [`harness`]: the isolation benchmark of §4.1 (growing iteration
//!   counts, 30 samples each, Student-t outlier re-sampling, least-squares
//!   rate extraction);
//! * [`rate`]: a synthetic cache-aware processor model producing the
//!   deterministic per-kernel rates the cluster simulator uses, piecewise
//!   linear in the memory footprint as §4.3 prescribes.

pub mod blas1;
pub mod harness;
pub mod kernel;
pub mod rate;
pub mod stencil;

pub use harness::{BenchConfig, KernelProfile};
pub use kernel::{Kernel, KernelState, KernelTraits};
pub use rate::{CacheLevel, ProcessorModel};

/// All level-1 BLAS kernels in the order of Figs. 4.5–4.6.
pub fn blas1_suite() -> Vec<Box<dyn Kernel>> {
    vec![
        Box::new(blas1::Swap),
        Box::new(blas1::Scal),
        Box::new(blas1::Copy),
        Box::new(blas1::Axpy),
        Box::new(blas1::Dot),
        Box::new(blas1::Nrm2),
        Box::new(blas1::Asum),
        Box::new(blas1::Iamax),
    ]
}
