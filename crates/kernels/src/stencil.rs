//! The 5-point stencil kernel.
//!
//! The second kernel of Fig. 4.3 and the computational core of the Chapter-8
//! Laplacian case study: a Jacobi sweep where every interior point becomes
//! the average of its four neighbours. One application sweeps the interior
//! of a `side × side` grid (`x` holds the input generation, `y` the output,
//! then the roles swap).

use crate::kernel::{Kernel, KernelState, KernelTraits};

const ELEM: usize = std::mem::size_of::<f64>();

/// 5-point Jacobi stencil over the interior of a square grid.
///
/// Problem size `n` is the *total* element count; the grid side is
/// `floor(sqrt(n))`, mirroring the thesis' choice of a 32² = 1024-element
/// area to compare against 1024-element vectors (§4.1).
pub struct Stencil5;

impl Stencil5 {
    /// Grid side for a given element count.
    pub fn side(n: usize) -> usize {
        (n as f64).sqrt().floor() as usize
    }

    /// One Jacobi sweep: `dst` interior = average of `src` neighbours.
    /// Returns the interior sum as checksum. Boundary rows/columns are
    /// copied through unchanged.
    pub fn sweep(src: &[f64], dst: &mut [f64], side: usize) -> f64 {
        assert!(side >= 3, "stencil needs at least a 3x3 grid");
        assert_eq!(src.len(), side * side);
        assert_eq!(dst.len(), side * side);
        let mut acc = 0.0;
        dst[..side].copy_from_slice(&src[..side]);
        dst[(side - 1) * side..].copy_from_slice(&src[(side - 1) * side..]);
        for i in 1..side - 1 {
            let row = i * side;
            dst[row] = src[row];
            dst[row + side - 1] = src[row + side - 1];
            for j in 1..side - 1 {
                let v = 0.25
                    * (src[row + j - side]
                        + src[row + j + side]
                        + src[row + j - 1]
                        + src[row + j + 1]);
                dst[row + j] = v;
                acc += v;
            }
        }
        acc
    }
}

impl Kernel for Stencil5 {
    fn name(&self) -> &'static str {
        "stencil5"
    }
    fn traits(&self) -> KernelTraits {
        KernelTraits {
            // 3 adds + 1 multiply per interior point.
            flops_per_element: 4.0,
            // 4 neighbour reads + 1 write; reads mostly hit cache lines
            // already streamed, so the memory-facing count is ~2 elements.
            bytes_per_element: 2.0 * ELEM as f64,
        }
    }
    fn footprint_bytes(&self, n: usize) -> usize {
        let side = Self::side(n);
        2 * side * side * ELEM
    }
    fn alloc(&self, n: usize) -> KernelState {
        let side = Self::side(n);
        assert!(side >= 3, "stencil problem size {n} too small");
        let len = side * side;
        let mut st = KernelState::with_len(n, len);
        // A smooth hill keeps iterated sweeps numerically tame.
        for i in 0..side {
            for j in 0..side {
                let u = i as f64 / (side - 1) as f64;
                let v = j as f64 / (side - 1) as f64;
                st.x[i * side + j] =
                    (std::f64::consts::PI * u).sin() * (std::f64::consts::PI * v).sin();
            }
        }
        st.y.copy_from_slice(&st.x);
        st
    }
    fn apply(&self, s: &mut KernelState) -> f64 {
        let side = Stencil5::side(s.n);
        let acc = Stencil5::sweep(&s.x, &mut s.y, side);
        std::mem::swap(&mut s.x, &mut s.y);
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn side_of_1024_is_32() {
        assert_eq!(Stencil5::side(1024), 32);
    }

    #[test]
    fn uniform_field_is_fixed_point() {
        let side = 8;
        let src = vec![3.0; side * side];
        let mut dst = vec![0.0; side * side];
        Stencil5::sweep(&src, &mut dst, side);
        assert!(dst.iter().all(|&v| (v - 3.0).abs() < 1e-15));
    }

    #[test]
    fn single_interior_spike_spreads_to_neighbours() {
        let side = 5;
        let mut src = vec![0.0; side * side];
        src[2 * side + 2] = 4.0;
        let mut dst = vec![0.0; side * side];
        Stencil5::sweep(&src, &mut dst, side);
        // The spike's four neighbours each get 1.0; the centre becomes 0.
        assert_eq!(dst[2 * side + 2], 0.0);
        assert_eq!(dst[side + 2], 1.0);
        assert_eq!(dst[3 * side + 2], 1.0);
        assert_eq!(dst[2 * side + 1], 1.0);
        assert_eq!(dst[2 * side + 3], 1.0);
    }

    #[test]
    fn boundary_is_preserved() {
        let k = Stencil5;
        let mut s = k.alloc(100); // 10x10
        let side = 10;
        let before: Vec<f64> = s.x.clone();
        k.apply(&mut s);
        for j in 0..side {
            assert_eq!(s.x[j], before[j], "top row");
            assert_eq!(
                s.x[(side - 1) * side + j],
                before[(side - 1) * side + j],
                "bottom"
            );
        }
        for i in 0..side {
            assert_eq!(s.x[i * side], before[i * side], "left column");
            assert_eq!(
                s.x[i * side + side - 1],
                before[i * side + side - 1],
                "right"
            );
        }
    }

    #[test]
    fn jacobi_converges_toward_boundary_values() {
        // Zero boundary, smooth interior: repeated sweeps decay the field.
        let k = Stencil5;
        let mut s = k.alloc(1024);
        let initial: f64 = s.x.iter().map(|v| v.abs()).sum();
        for _ in 0..200 {
            k.apply(&mut s);
        }
        let remaining: f64 = s.x.iter().map(|v| v.abs()).sum();
        assert!(
            remaining < initial * 0.5,
            "field should decay: {remaining} vs {initial}"
        );
    }

    #[test]
    #[should_panic]
    fn too_small_grid_rejected() {
        Stencil5::sweep(&[0.0; 4], &mut [0.0; 4], 2);
    }
}
