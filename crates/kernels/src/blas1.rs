//! Level-1 BLAS kernels.
//!
//! The vector/vector routines of Figs. 4.5–4.6, written as plain Rust loops
//! over `f64` slices. Operation counts follow the BLAS reference: `axpy`
//! does a multiply and an add per element, `dot` a multiply and an add,
//! `nrm2` a multiply and an add (plus one square root per call), `asum` an
//! absolute value and an add, `iamax` a compare per element.
//!
//! Footprints count the *distinct vectors touched* times the element size,
//! matching the thesis' bytes metric that makes `scal` (one vector) and
//! `axpy` (two vectors) comparable on the memory axis (§4.2).

use crate::kernel::{Kernel, KernelState, KernelTraits};

const ELEM: usize = std::mem::size_of::<f64>();

/// `x ↔ y`: element-wise swap; pure data movement.
pub struct Swap;

impl Kernel for Swap {
    fn name(&self) -> &'static str {
        "swap"
    }
    fn traits(&self) -> KernelTraits {
        KernelTraits {
            flops_per_element: 0.0,
            bytes_per_element: 4.0 * ELEM as f64, // read+write both vectors
        }
    }
    fn footprint_bytes(&self, n: usize) -> usize {
        2 * n * ELEM
    }
    fn alloc(&self, n: usize) -> KernelState {
        KernelState::with_len(n, n)
    }
    fn apply(&self, s: &mut KernelState) -> f64 {
        for (xi, yi) in s.x.iter_mut().zip(s.y.iter_mut()) {
            std::mem::swap(xi, yi);
        }
        s.x[0] + s.y[s.n - 1]
    }
}

/// `x ← a·x`: scaling in place; one multiply per element, one vector.
pub struct Scal;

impl Kernel for Scal {
    fn name(&self) -> &'static str {
        "scal"
    }
    fn traits(&self) -> KernelTraits {
        KernelTraits {
            flops_per_element: 1.0,
            bytes_per_element: 2.0 * ELEM as f64,
        }
    }
    fn footprint_bytes(&self, n: usize) -> usize {
        n * ELEM
    }
    fn alloc(&self, n: usize) -> KernelState {
        let mut st = KernelState::with_len(n, n);
        st.a = 1.000_000_1; // stays finite over many applications
        st
    }
    fn apply(&self, s: &mut KernelState) -> f64 {
        let a = s.a;
        for xi in s.x.iter_mut() {
            *xi *= a;
        }
        s.x[s.n / 2]
    }
}

/// `y ← x`: copy; pure data movement over two vectors.
pub struct Copy;

impl Kernel for Copy {
    fn name(&self) -> &'static str {
        "copy"
    }
    fn traits(&self) -> KernelTraits {
        KernelTraits {
            flops_per_element: 0.0,
            bytes_per_element: 2.0 * ELEM as f64,
        }
    }
    fn footprint_bytes(&self, n: usize) -> usize {
        2 * n * ELEM
    }
    fn alloc(&self, n: usize) -> KernelState {
        KernelState::with_len(n, n)
    }
    fn apply(&self, s: &mut KernelState) -> f64 {
        s.y.copy_from_slice(&s.x);
        s.y[s.n - 1]
    }
}

/// `y ← y + a·x`: the DAXPY kernel of bspbench (§3.1); two flops/element.
pub struct Axpy;

impl Kernel for Axpy {
    fn name(&self) -> &'static str {
        "axpy"
    }
    fn traits(&self) -> KernelTraits {
        KernelTraits {
            flops_per_element: 2.0,
            bytes_per_element: 3.0 * ELEM as f64,
        }
    }
    fn footprint_bytes(&self, n: usize) -> usize {
        2 * n * ELEM
    }
    fn alloc(&self, n: usize) -> KernelState {
        let mut st = KernelState::with_len(n, n);
        st.a = 1e-9; // keep y bounded across 2^24 applications
        st
    }
    fn apply(&self, s: &mut KernelState) -> f64 {
        let a = s.a;
        for (yi, xi) in s.y.iter_mut().zip(s.x.iter()) {
            *yi += a * *xi;
        }
        s.y[s.n / 3]
    }
}

/// `dot ← Σ xᵢ·yᵢ`: reduction over two vectors; two flops/element.
pub struct Dot;

impl Kernel for Dot {
    fn name(&self) -> &'static str {
        "dot"
    }
    fn traits(&self) -> KernelTraits {
        KernelTraits {
            flops_per_element: 2.0,
            bytes_per_element: 2.0 * ELEM as f64,
        }
    }
    fn footprint_bytes(&self, n: usize) -> usize {
        2 * n * ELEM
    }
    fn alloc(&self, n: usize) -> KernelState {
        KernelState::with_len(n, n)
    }
    fn apply(&self, s: &mut KernelState) -> f64 {
        let mut acc = 0.0;
        for (xi, yi) in s.x.iter().zip(s.y.iter()) {
            acc += xi * yi;
        }
        acc
    }
}

/// `nrm2 ← sqrt(Σ xᵢ²)`: Euclidean norm; two flops/element plus a root.
pub struct Nrm2;

impl Kernel for Nrm2 {
    fn name(&self) -> &'static str {
        "nrm2"
    }
    fn traits(&self) -> KernelTraits {
        KernelTraits {
            flops_per_element: 2.0,
            bytes_per_element: ELEM as f64,
        }
    }
    fn footprint_bytes(&self, n: usize) -> usize {
        n * ELEM
    }
    fn alloc(&self, n: usize) -> KernelState {
        KernelState::with_len(n, n)
    }
    fn apply(&self, s: &mut KernelState) -> f64 {
        let mut acc = 0.0;
        for xi in s.x.iter() {
            acc += xi * xi;
        }
        acc.sqrt()
    }
}

/// `asum ← Σ |xᵢ|`: absolute sum; one add plus one abs per element.
pub struct Asum;

impl Kernel for Asum {
    fn name(&self) -> &'static str {
        "asum"
    }
    fn traits(&self) -> KernelTraits {
        KernelTraits {
            flops_per_element: 2.0,
            bytes_per_element: ELEM as f64,
        }
    }
    fn footprint_bytes(&self, n: usize) -> usize {
        n * ELEM
    }
    fn alloc(&self, n: usize) -> KernelState {
        KernelState::with_len(n, n)
    }
    fn apply(&self, s: &mut KernelState) -> f64 {
        let mut acc = 0.0;
        for xi in s.x.iter() {
            acc += xi.abs();
        }
        acc
    }
}

/// `iamax ← argmax |xᵢ|`: index of the largest magnitude; compares only.
pub struct Iamax;

impl Kernel for Iamax {
    fn name(&self) -> &'static str {
        "iamax"
    }
    fn traits(&self) -> KernelTraits {
        KernelTraits {
            flops_per_element: 1.0, // one compare counted as one op
            bytes_per_element: ELEM as f64,
        }
    }
    fn footprint_bytes(&self, n: usize) -> usize {
        n * ELEM
    }
    fn alloc(&self, n: usize) -> KernelState {
        KernelState::with_len(n, n)
    }
    fn apply(&self, s: &mut KernelState) -> f64 {
        let mut best = 0usize;
        let mut best_val = f64::NEG_INFINITY;
        for (i, xi) in s.x.iter().enumerate() {
            let v = xi.abs();
            if v > best_val {
                best_val = v;
                best = i;
            }
        }
        best as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axpy_computes_correctly() {
        let k = Axpy;
        let mut s = KernelState {
            n: 3,
            x: vec![1.0, 2.0, 3.0],
            y: vec![10.0, 20.0, 30.0],
            a: 2.0,
        };
        k.apply(&mut s);
        assert_eq!(s.y, vec![12.0, 24.0, 36.0]);
    }

    #[test]
    fn dot_known_value() {
        let k = Dot;
        let mut s = KernelState {
            n: 3,
            x: vec![1.0, 2.0, 3.0],
            y: vec![4.0, 5.0, 6.0],
            a: 0.0,
        };
        assert_eq!(k.apply(&mut s), 32.0);
    }

    #[test]
    fn nrm2_known_value() {
        let k = Nrm2;
        let mut s = KernelState {
            n: 2,
            x: vec![3.0, 4.0],
            y: vec![],
            a: 0.0,
        };
        assert!((k.apply(&mut s) - 5.0).abs() < 1e-15);
    }

    #[test]
    fn asum_handles_negatives() {
        let k = Asum;
        let mut s = KernelState {
            n: 3,
            x: vec![-1.0, 2.0, -3.0],
            y: vec![],
            a: 0.0,
        };
        assert_eq!(k.apply(&mut s), 6.0);
    }

    #[test]
    fn iamax_finds_largest_magnitude() {
        let k = Iamax;
        let mut s = KernelState {
            n: 4,
            x: vec![1.0, -9.0, 3.0, 8.0],
            y: vec![],
            a: 0.0,
        };
        assert_eq!(k.apply(&mut s), 1.0);
    }

    #[test]
    fn swap_round_trips() {
        let k = Swap;
        let mut s = k.alloc(16);
        let (x0, y0) = (s.x.clone(), s.y.clone());
        k.apply(&mut s);
        assert_eq!(s.x, y0);
        k.apply(&mut s);
        assert_eq!(s.x, x0);
    }

    #[test]
    fn copy_duplicates() {
        let k = Copy;
        let mut s = k.alloc(16);
        k.apply(&mut s);
        assert_eq!(s.x, s.y);
    }

    #[test]
    fn scal_scales() {
        let k = Scal;
        let mut s = KernelState {
            n: 2,
            x: vec![2.0, 4.0],
            y: vec![],
            a: 0.5,
        };
        k.apply(&mut s);
        assert_eq!(s.x, vec![1.0, 2.0]);
    }

    #[test]
    fn footprints_reflect_vector_counts() {
        assert_eq!(Scal.footprint_bytes(1000), 8000);
        assert_eq!(Axpy.footprint_bytes(1000), 16000);
        assert_eq!(Swap.footprint_bytes(1000), 16000);
        assert_eq!(Nrm2.footprint_bytes(1000), 8000);
    }

    #[test]
    fn repeated_axpy_stays_finite() {
        let k = Axpy;
        let mut s = k.alloc(64);
        for _ in 0..100_000 {
            k.apply(&mut s);
        }
        assert!(s.y.iter().all(|v| v.is_finite()));
    }
}
