//! The superstep context: BSPlib's primitives as seen by program code.
//!
//! A `BspCtx` is handed to [`crate::BspProgram::superstep`] once per
//! superstep. Communication calls *commit* operations immediately (the
//! Fig. 1.2 early-communication model): the sender pays only the local
//! queue-handoff cost (§6.3's `sched_yield` handshake with the
//! communication thread), and the transfer progresses in the background
//! while the program keeps computing. Computation itself advances the
//! virtual clock through a processor rate model or explicit elapse calls.

use crate::mem::{BsmpMsg, ProcMem, RegHandle};
use crate::ops::CommOp;
use hpm_kernels::kernel::Kernel;
use hpm_kernels::rate::ProcessorModel;
use hpm_stats::rng::JitterModel;
use rand::rngs::StdRng;

/// CPU cost of handing one operation to the communication thread
/// (enqueue + `sched_yield`, §6.3).
pub const ENQUEUE_OVERHEAD: f64 = 0.2e-6;

/// Send-side copy cost per byte for *buffered* puts/sends (the buffered
/// variants snapshot the data; `hpput` skips this, §6.1).
pub const BUFFER_COPY_PER_BYTE: f64 = 2.5e-10;

/// The per-superstep execution context (all of Table 6.1 except
/// init/begin/end/sync, which the runtime embodies).
pub struct BspCtx<'a> {
    pid: usize,
    nprocs: usize,
    now: f64,
    proc_model: &'a ProcessorModel,
    jitter: JitterModel,
    rng: &'a mut StdRng,
    mem: &'a mut ProcMem,
    ops: Vec<CommOp>,
    abort_msg: Option<String>,
}

impl<'a> BspCtx<'a> {
    /// Used by the runtime; not part of the BSPlib surface.
    pub(crate) fn new(
        pid: usize,
        nprocs: usize,
        now: f64,
        proc_model: &'a ProcessorModel,
        jitter: JitterModel,
        rng: &'a mut StdRng,
        mem: &'a mut ProcMem,
    ) -> BspCtx<'a> {
        BspCtx {
            pid,
            nprocs,
            now,
            proc_model,
            jitter,
            rng,
            mem,
            ops: Vec::new(),
            abort_msg: None,
        }
    }

    pub(crate) fn finish(self) -> (f64, Vec<CommOp>, Option<String>) {
        (self.now, self.ops, self.abort_msg)
    }

    /// `bsp_nprocs`.
    pub fn nprocs(&self) -> usize {
        self.nprocs
    }

    /// `bsp_pid`.
    pub fn pid(&self) -> usize {
        self.pid
    }

    /// `bsp_time`: this process' virtual clock in seconds.
    pub fn time(&self) -> f64 {
        self.now
    }

    /// `bsp_abort`: record an error state; the runtime stops at this sync.
    pub fn abort(&mut self, msg: &str) {
        self.abort_msg = Some(msg.to_string());
    }

    /// Advances the clock by a raw duration (jittered).
    pub fn elapse(&mut self, seconds: f64) {
        assert!(seconds >= 0.0, "cannot elapse negative time");
        self.now += seconds * self.jitter.draw(self.rng);
    }

    /// Runs `applications` of a kernel at problem size `n` on the modeled
    /// processor, advancing the clock.
    pub fn compute_kernel(&mut self, kernel: &dyn Kernel, n: usize, applications: u64) {
        let t = self.proc_model.time_per_apply(kernel, n) * applications as f64;
        self.elapse(t);
    }

    /// Charges `elements` worth of a kernel whose working set is
    /// `footprint_n` elements — used when a kernel application is split
    /// into regions (the 17-region stencil superstep) but the cache
    /// behaviour is governed by the whole working set.
    pub fn compute_elements(&mut self, kernel: &dyn Kernel, footprint_n: usize, elements: usize) {
        let t = self.proc_model.secs_per_element(kernel, footprint_n) * elements as f64;
        self.elapse(t);
    }

    /// Allocates a process-local buffer (zero-filled).
    pub fn alloc(&mut self, bytes: usize) -> RegHandle {
        self.mem.alloc(bytes)
    }

    /// `bsp_push_reg`: registration becomes usable after the next sync.
    pub fn push_reg(&mut self, h: RegHandle) {
        self.mem.queue_push_reg(h);
        self.elapse(ENQUEUE_OVERHEAD);
    }

    /// `bsp_pop_reg`.
    pub fn pop_reg(&mut self, h: RegHandle) {
        self.mem.queue_pop_reg(h);
        self.elapse(ENQUEUE_OVERHEAD);
    }

    /// Read a local buffer.
    pub fn read_buf(&self, h: RegHandle) -> &[u8] {
        self.mem.read(h)
    }

    /// Write a local buffer directly (local computation results).
    pub fn write_buf(&mut self, h: RegHandle) -> &mut [u8] {
        self.mem.write(h)
    }

    fn check_target(&self, pid: usize, reg: RegHandle, offset: usize, len: usize) {
        assert!(pid < self.nprocs, "target pid {pid} out of range");
        assert!(
            self.mem.is_registered(reg),
            "buffer {reg:?} not registered (push_reg takes effect after the next sync)"
        );
        assert!(
            offset + len <= self.mem.len(reg),
            "remote access [{offset}, {}) exceeds registration of {} bytes",
            offset + len,
            self.mem.len(reg)
        );
    }

    fn put_impl(&mut self, dst: usize, reg: RegHandle, offset: usize, data: &[u8], hp: bool) {
        self.check_target(dst, reg, offset, data.len());
        let mut cost = ENQUEUE_OVERHEAD;
        if !hp {
            cost += data.len() as f64 * BUFFER_COPY_PER_BYTE;
        }
        self.elapse(cost);
        self.ops.push(CommOp::Put {
            issue: self.now,
            dst,
            reg,
            offset,
            data: data.to_vec(),
            high_perf: hp,
        });
    }

    /// `bsp_put`: buffered one-sided write of `data` into
    /// `(dst, reg, offset)`, visible there after the next sync.
    pub fn put(&mut self, dst: usize, reg: RegHandle, offset: usize, data: &[u8]) {
        self.put_impl(dst, reg, offset, data, false);
    }

    /// `bsp_hpput`: unbuffered variant — cheaper at the sender, with the
    /// usual caveat that the source must stay unchanged until sync.
    pub fn hpput(&mut self, dst: usize, reg: RegHandle, offset: usize, data: &[u8]) {
        self.put_impl(dst, reg, offset, data, true);
    }

    fn get_impl(
        &mut self,
        src: usize,
        src_reg: RegHandle,
        src_offset: usize,
        dst_reg: RegHandle,
        dst_offset: usize,
        len: usize,
    ) {
        self.check_target(src, src_reg, src_offset, len);
        assert!(
            dst_offset + len <= self.mem.len(dst_reg),
            "get destination overruns local buffer"
        );
        self.elapse(ENQUEUE_OVERHEAD);
        self.ops.push(CommOp::Get {
            issue: self.now,
            src,
            src_reg,
            src_offset,
            dst_reg,
            dst_offset,
            len,
        });
    }

    /// `bsp_get`: one-sided read of remote memory, landing locally at the
    /// next sync (logically before any puts of the same superstep).
    pub fn get(
        &mut self,
        src: usize,
        src_reg: RegHandle,
        src_offset: usize,
        dst_reg: RegHandle,
        dst_offset: usize,
        len: usize,
    ) {
        self.get_impl(src, src_reg, src_offset, dst_reg, dst_offset, len);
    }

    /// `bsp_hpget`: identical timing here (the transport is one-sided
    /// either way); kept for interface completeness.
    pub fn hpget(
        &mut self,
        src: usize,
        src_reg: RegHandle,
        src_offset: usize,
        dst_reg: RegHandle,
        dst_offset: usize,
        len: usize,
    ) {
        self.get_impl(src, src_reg, src_offset, dst_reg, dst_offset, len);
    }

    /// `bsp_set_tagsize`: collective; takes effect next superstep. Returns
    /// the previous size, as the standard requires.
    pub fn set_tagsize(&mut self, bytes: usize) -> usize {
        let prev = self.mem.tagsize;
        self.mem.queue_tagsize(bytes);
        prev
    }

    /// `bsp_send`: BSMP message with a tag of exactly the current tag
    /// size, queued at `dst` for the next superstep.
    pub fn send(&mut self, dst: usize, tag: &[u8], payload: &[u8]) {
        assert!(dst < self.nprocs, "send target out of range");
        assert_eq!(
            tag.len(),
            self.mem.tagsize,
            "tag must match the current tag size ({} bytes)",
            self.mem.tagsize
        );
        self.elapse(ENQUEUE_OVERHEAD + (tag.len() + payload.len()) as f64 * BUFFER_COPY_PER_BYTE);
        self.ops.push(CommOp::Send {
            issue: self.now,
            dst,
            tag: tag.to_vec(),
            payload: payload.to_vec(),
        });
    }

    /// `bsp_qsize`: number of undrained messages in this superstep's queue.
    pub fn qsize(&self) -> usize {
        self.mem.inbox.len()
    }

    /// `bsp_get_tag`: tag of the head message (and its payload length), or
    /// `None` when the queue is empty.
    pub fn get_tag(&self) -> Option<(Vec<u8>, usize)> {
        self.mem
            .inbox
            .front()
            .map(|m| (m.tag.clone(), m.payload.len()))
    }

    /// `bsp_move`: dequeues the head message, copying it out.
    pub fn move_msg(&mut self) -> Option<BsmpMsg> {
        self.elapse(ENQUEUE_OVERHEAD);
        self.mem.inbox.pop_front()
    }

    /// `bsp_hpmove`: dequeues without the copy cost.
    pub fn hpmove(&mut self) -> Option<BsmpMsg> {
        self.mem.inbox.pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpm_kernels::blas1::Axpy;
    use hpm_kernels::rate::xeon_core;
    use hpm_stats::rng::derive_rng;

    fn with_ctx<R>(f: impl FnOnce(&mut BspCtx) -> R) -> (R, f64, Vec<CommOp>) {
        let model = xeon_core();
        let mut rng = derive_rng(1, 1);
        let mut mem = ProcMem::default();
        let mut ctx = BspCtx::new(0, 4, 0.0, &model, JitterModel::NONE, &mut rng, &mut mem);
        let r = f(&mut ctx);
        let (now, ops, _) = ctx.finish();
        (r, now, ops)
    }

    #[test]
    fn identity_and_clock() {
        let ((), now, _) = with_ctx(|ctx| {
            assert_eq!(ctx.pid(), 0);
            assert_eq!(ctx.nprocs(), 4);
            assert_eq!(ctx.time(), 0.0);
            ctx.elapse(1e-3);
            assert!((ctx.time() - 1e-3).abs() < 1e-15);
        });
        assert!((now - 1e-3).abs() < 1e-15);
    }

    #[test]
    fn compute_kernel_advances_clock_by_model_rate() {
        let model = xeon_core();
        let expect = model.time_per_apply(&Axpy, 1024) * 10.0;
        let ((), now, _) = with_ctx(|ctx| ctx.compute_kernel(&Axpy, 1024, 10));
        assert!((now - expect).abs() / expect < 1e-12);
    }

    #[test]
    fn put_requires_registration() {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            with_ctx(|ctx| {
                let h = ctx.alloc(16);
                ctx.put(1, h, 0, &[1, 2, 3, 4]);
            })
        }));
        assert!(result.is_err(), "unregistered put must panic");
    }

    #[test]
    fn registered_put_is_recorded_with_issue_time() {
        let ((), _, ops) = with_ctx(|ctx| {
            let h = ctx.alloc(16);
            ctx.push_reg(h);
            ctx.mem.commit_sync();
            ctx.elapse(5e-6);
            ctx.put(2, h, 4, &[9; 8]);
        });
        assert_eq!(ops.len(), 1);
        match &ops[0] {
            CommOp::Put {
                issue,
                dst,
                offset,
                data,
                high_perf,
                ..
            } => {
                assert!(*issue > 5e-6);
                assert_eq!(*dst, 2);
                assert_eq!(*offset, 4);
                assert_eq!(data.len(), 8);
                assert!(!high_perf);
            }
            other => panic!("expected put, got {other:?}"),
        }
    }

    #[test]
    fn hpput_is_cheaper_than_put() {
        let big = vec![0u8; 1 << 20];
        let ((), t_buffered, _) = with_ctx(|ctx| {
            let h = ctx.alloc(1 << 20);
            ctx.push_reg(h);
            ctx.mem.commit_sync();
            ctx.put(1, h, 0, &big);
        });
        let ((), t_hp, _) = with_ctx(|ctx| {
            let h = ctx.alloc(1 << 20);
            ctx.push_reg(h);
            ctx.mem.commit_sync();
            ctx.hpput(1, h, 0, &big);
        });
        assert!(t_hp < t_buffered, "hpput {t_hp} vs put {t_buffered}");
    }

    #[test]
    fn send_enforces_tagsize() {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            with_ctx(|ctx| {
                ctx.set_tagsize(4);
                // Still 0 this superstep: a 4-byte tag must be rejected.
                ctx.send(1, &[0, 0, 0, 0], &[1]);
            })
        }));
        assert!(result.is_err());
    }

    #[test]
    fn set_tagsize_returns_previous() {
        let (prev, _, _) = with_ctx(|ctx| ctx.set_tagsize(8));
        assert_eq!(prev, 0);
    }

    #[test]
    fn out_of_bounds_put_rejected() {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            with_ctx(|ctx| {
                let h = ctx.alloc(4);
                ctx.push_reg(h);
                ctx.mem.commit_sync();
                ctx.put(1, h, 2, &[0; 4]);
            })
        }));
        assert!(result.is_err());
    }

    #[test]
    fn abort_is_captured() {
        let ((), _, _) = {
            let model = xeon_core();
            let mut rng = derive_rng(2, 2);
            let mut mem = ProcMem::default();
            let mut ctx = BspCtx::new(0, 2, 0.0, &model, JitterModel::NONE, &mut rng, &mut mem);
            ctx.abort("boom");
            let (now, ops, abort) = ctx.finish();
            assert_eq!(abort.as_deref(), Some("boom"));
            ((), now, ops)
        };
    }
}
