//! # hpm-bsplib — the BSPlib programming interface over the simulated
//! cluster
//!
//! Chapter 6 of the thesis implements the 20-primitive BSPlib interface
//! (Table 6.1) with a twist on the classic processing model: one-sided
//! communication is committed *as early as possible* and progresses in the
//! background (Fig. 1.2), so that an algorithm's overlap potential is
//! exploited automatically. Synchronization is a dissemination barrier
//! carrying the per-pair message-count map as payload (§6.4–6.5), which
//! lets every process know how many inbound transfers to await.
//!
//! This crate reproduces that runtime over `hpm-simnet`. SPMD programs
//! implement [`BspProgram`]; each call to
//! [`BspProgram::superstep`] is the code between two `bsp_sync`
//! calls, and the full primitive set of Table 6.1 is available on the
//! [`BspCtx`] handed to it:
//!
//! | BSPlib | here |
//! |---|---|
//! | `bsp_init/begin` | [`runtime::run_spmd`] |
//! | `bsp_end` | returning [`StepOutcome::Halt`] |
//! | `bsp_abort` | [`BspCtx::abort`] |
//! | `bsp_nprocs` / `bsp_pid` / `bsp_time` | [`BspCtx::nprocs`] / [`BspCtx::pid`] / [`BspCtx::time`] |
//! | `bsp_sync` | returning [`StepOutcome::Continue`] |
//! | `bsp_push_reg` / `bsp_pop_reg` | [`BspCtx::push_reg`] / [`BspCtx::pop_reg`] |
//! | `bsp_put` / `bsp_hpput` | [`BspCtx::put`] / [`BspCtx::hpput`] |
//! | `bsp_get` / `bsp_hpget` | [`BspCtx::get`] / [`BspCtx::hpget`] |
//! | `bsp_set_tagsize` | [`BspCtx::set_tagsize`] |
//! | `bsp_send` | [`BspCtx::send`] |
//! | `bsp_qsize` / `bsp_get_tag` | [`BspCtx::qsize`] / [`BspCtx::get_tag`] |
//! | `bsp_move` / `bsp_hpmove` | [`BspCtx::move_msg`] / [`BspCtx::hpmove`] |
//!
//! Computation advances the virtual clock through
//! [`BspCtx::compute_kernel`] (rates from a processor model) or
//! [`BspCtx::elapse`]; payload data genuinely moves between process
//! memories, so programs compute real results while the simulator times
//! them.

pub mod bench;
pub mod ctx;
pub mod inprod;
pub mod mem;
pub mod ops;
pub mod runtime;

pub use ctx::BspCtx;
pub use mem::RegHandle;
pub use ops::StepOutcome;
pub use runtime::{
    run_spmd, BspConfig, BspError, BspProgram, BspRunResult, RecoveryEvent, RecoveryPolicy,
};
