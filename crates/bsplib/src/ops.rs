//! Communication operations recorded during a superstep.
//!
//! Every one-sided call becomes an out-of-band header (the 6-integer tuple
//! of §6.2: signal type, remote pid, registration reference, offset,
//! length, sequence code — 24 bytes) plus, for data-bearing operations, a
//! payload transfer. The runtime resolves them against the simulated
//! network at sync time.

use crate::mem::RegHandle;

/// Size of the §6.2 header message: six 32-bit integers.
pub const HEADER_BYTES: u64 = 24;

/// What a superstep function tells the runtime after its code ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// `bsp_sync`: synchronize and run another superstep.
    Continue,
    /// `bsp_end`: this process is done after the closing sync.
    Halt,
}

/// One recorded communication operation, with the virtual time the calling
/// process committed it.
#[derive(Debug, Clone, PartialEq)]
pub enum CommOp {
    /// `bsp_put`/`bsp_hpput`: write `data` into `(dst, reg, offset)`.
    Put {
        issue: f64,
        dst: usize,
        reg: RegHandle,
        offset: usize,
        data: Vec<u8>,
        /// High-performance (unbuffered) variant: skips the send-side
        /// buffer copy, so the sender pays less CPU.
        high_perf: bool,
    },
    /// `bsp_get`/`bsp_hpget`: read `len` bytes from `(src, src_reg,
    /// src_offset)` into the local `(dst_reg, dst_offset)`.
    Get {
        issue: f64,
        src: usize,
        src_reg: RegHandle,
        src_offset: usize,
        dst_reg: RegHandle,
        dst_offset: usize,
        len: usize,
    },
    /// `bsp_send`: BSMP message into `dst`'s queue, visible next
    /// superstep.
    Send {
        issue: f64,
        dst: usize,
        tag: Vec<u8>,
        payload: Vec<u8>,
    },
}

impl CommOp {
    /// The process whose memory or queue this operation targets.
    pub fn target(&self) -> usize {
        match self {
            CommOp::Put { dst, .. } | CommOp::Send { dst, .. } => *dst,
            CommOp::Get { src, .. } => *src,
        }
    }

    /// Payload bytes this operation will move (get counted at reply time).
    pub fn payload_bytes(&self) -> u64 {
        match self {
            CommOp::Put { data, .. } => data.len() as u64,
            CommOp::Get { len, .. } => *len as u64,
            CommOp::Send { tag, payload, .. } => (tag.len() + payload.len()) as u64,
        }
    }

    /// Virtual issue time.
    pub fn issue(&self) -> f64 {
        match self {
            CommOp::Put { issue, .. } | CommOp::Get { issue, .. } | CommOp::Send { issue, .. } => {
                *issue
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn target_and_bytes() {
        let put = CommOp::Put {
            issue: 1.0,
            dst: 3,
            reg: RegHandle(0),
            offset: 0,
            data: vec![0; 100],
            high_perf: false,
        };
        assert_eq!(put.target(), 3);
        assert_eq!(put.payload_bytes(), 100);
        assert_eq!(put.issue(), 1.0);

        let get = CommOp::Get {
            issue: 2.0,
            src: 5,
            src_reg: RegHandle(1),
            src_offset: 8,
            dst_reg: RegHandle(2),
            dst_offset: 0,
            len: 64,
        };
        assert_eq!(get.target(), 5);
        assert_eq!(get.payload_bytes(), 64);

        let send = CommOp::Send {
            issue: 3.0,
            dst: 1,
            tag: vec![0; 4],
            payload: vec![0; 10],
        };
        assert_eq!(send.payload_bytes(), 14);
    }
}
