//! The `bspbench` port (§3.1): extracting the classic `(p, r, g, l)`
//! parameters through the BSP library itself.
//!
//! `bspbench` measures the computation rate `r` by timing growing DAXPY
//! problems and taking a regression gradient, then measures `g` (flops per
//! communicated word) and `l` (synchronization cost in flops) as gradient
//! and intercept of a regression over growing h-relations (h = 0…255
//! words). The resulting Table 3.1 row feeds the classic model whose
//! misprediction motivates the heterogeneous framework.

use crate::ctx::BspCtx;
use crate::ops::StepOutcome;
use crate::runtime::{run_spmd, BspConfig, BspProgram};
use hpm_kernels::blas1::Axpy;
use hpm_kernels::kernel::Kernel;
use hpm_stats::regression::LinearFit;

/// One row of Table 3.1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BspBenchResult {
    /// Level of parallelism.
    pub p: usize,
    /// Computation rate in flop/s.
    pub r: f64,
    /// Communication throughput in flop-equivalents per 8-byte word.
    pub g: f64,
    /// Synchronization cost in flop-equivalents.
    pub l: f64,
}

/// Rate phase: time DAXPY at growing vector sizes, all inside superstep 0.
struct RateProgram {
    /// `(flops, seconds)` samples collected on pid 0.
    samples: Vec<(f64, f64)>,
}

impl BspProgram for RateProgram {
    fn superstep(&mut self, ctx: &mut BspCtx) -> StepOutcome {
        // bspbench grows vector sizes 1..=1024; we sample powers of two
        // with enough repetitions to integrate over jitter.
        for e in 0..=10u32 {
            let n = 1usize << e;
            let reps = 4096 / n.max(1) as u64 + 4;
            let t0 = ctx.time();
            ctx.compute_kernel(&Axpy, n, reps);
            let t1 = ctx.time();
            self.samples.push((Axpy.flops(n) * reps as f64, t1 - t0));
        }
        StepOutcome::Halt
    }
}

/// h-relation phase: every process puts `h` words cyclically over the
/// others, one superstep per measurement.
struct HRelProgram {
    h_values: Vec<usize>,
    step: usize,
    reg: Option<crate::mem::RegHandle>,
}

impl BspProgram for HRelProgram {
    fn superstep(&mut self, ctx: &mut BspCtx) -> StepOutcome {
        let p = ctx.nprocs();
        if self.step == 0 {
            // Registration superstep: a buffer big enough for any h.
            let max_h = *self.h_values.iter().max().expect("non-empty");
            let h = ctx.alloc(8 * max_h.max(1) * 2);
            ctx.push_reg(h);
            self.reg = Some(h);
            self.step = 1;
            return StepOutcome::Continue;
        }
        let idx = self.step - 1;
        if idx >= self.h_values.len() {
            return StepOutcome::Halt;
        }
        let h = self.h_values[idx];
        let reg = self.reg.expect("registered");
        let word = [0u8; 8];
        if p > 1 {
            for k in 0..h {
                let dst = (ctx.pid() + 1 + (k % (p - 1))) % p;
                let offset = 8 * (k / (p - 1).max(1));
                ctx.put(dst, reg, offset, &word);
            }
        }
        self.step += 1;
        StepOutcome::Continue
    }
}

/// Runs the full bspbench procedure on a configured platform.
pub fn bspbench(cfg: &BspConfig) -> BspBenchResult {
    let p = cfg.placement.nprocs();

    // Phase 1: computation rate r (flop/s) from the regression of time on
    // flops (bspbench takes the gradient of a least-squares line).
    let rate_run = run_spmd(cfg, |_| RateProgram {
        samples: Vec::new(),
    })
    .expect("rate phase runs");
    let pts: Vec<(f64, f64)> = rate_run.programs[0].samples.clone();
    let fit = LinearFit::fit(&pts);
    let r = if fit.slope > 0.0 {
        1.0 / fit.slope
    } else {
        0.0
    };

    // Phase 2: h-relations 0..=255 (sampled), regression in flop units.
    let h_values: Vec<usize> = (0..=255usize).step_by(17).collect();
    let hrel_run = run_spmd(cfg, |_| HRelProgram {
        h_values: h_values.clone(),
        step: 0,
        reg: None,
    })
    .expect("h-relation phase runs");
    // Superstep 0 is registration; measurements start at superstep 1.
    let mut comm_pts = Vec::new();
    for (k, &h) in h_values.iter().enumerate() {
        let t = hrel_run.superstep_time(k + 1);
        comm_pts.push((h as f64, t * r)); // seconds → flop equivalents
    }
    let cfit = LinearFit::fit(&comm_pts);
    BspBenchResult {
        p,
        r,
        g: cfit.nonneg_slope(),
        l: cfit.nonneg_intercept(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpm_kernels::rate::xeon_core;
    use hpm_simnet::params::xeon_cluster_params;
    use hpm_topology::{cluster_8x2x4, Placement, PlacementPolicy};

    fn cfg(p: usize) -> BspConfig {
        BspConfig::new(
            xeon_cluster_params(),
            Placement::new(cluster_8x2x4(), PlacementPolicy::RoundRobin, p),
            xeon_core(),
            77,
        )
    }

    #[test]
    fn rate_is_about_a_gigaflop() {
        let res = bspbench(&cfg(8));
        assert!(
            res.r > 0.5e9 && res.r < 3.0e9,
            "DAXPY rate {:.3e} out of calibrated band",
            res.r
        );
    }

    #[test]
    fn sync_cost_l_grows_with_scale() {
        // Table 3.1: l grows by orders of magnitude from 1 node to 8.
        let l8 = bspbench(&cfg(8)).l;
        let l64 = bspbench(&cfg(64)).l;
        assert!(
            l64 > 5.0 * l8,
            "l must grow strongly with scale: l(8)={l8:.1} l(64)={l64:.1}"
        );
    }

    #[test]
    fn multi_node_l_is_tens_of_thousands_of_flops() {
        // Table 3.1's magnitudes: l ranges from ~3e4 (1 node) into the
        // millions (8 nodes) at r ≈ 1 Gflop/s.
        let res = bspbench(&cfg(16));
        assert!(
            res.l > 1e4 && res.l < 1e7,
            "l = {:.3e} out of plausible band",
            res.l
        );
    }

    #[test]
    fn g_is_positive_on_multinode_runs() {
        let res = bspbench(&cfg(16));
        assert!(res.g > 0.0, "g = {}", res.g);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = bspbench(&cfg(8));
        let b = bspbench(&cfg(8));
        assert_eq!(a, b);
    }
}
