//! The BSPlib runtime: SPMD execution, background communication and the
//! payload-carrying synchronization barrier (§6.2–6.5).
//!
//! Each superstep runs in two phases. First every process executes its
//! program code against a [`BspCtx`], which advances its virtual clock and
//! commits communication operations with their issue times. Then the
//! runtime resolves the superstep against the simulated network:
//!
//! 1. every operation's out-of-band header (and any put/send payload)
//!    transfers in the background from its issue time;
//! 2. get replies are issued by the data owner's communication thread as
//!    soon as the request header is processed;
//! 3. all processes enter the dissemination barrier, which carries the
//!    message-count map as payload (§6.4–6.5) so each knows how many
//!    inbound transfers remain;
//! 4. a process completes the sync when the barrier is done *and* all its
//!    inbound data landed — communication committed early that finished
//!    during computation costs nothing extra, which is exactly the overlap
//!    the Fig. 1.2 processing model exposes.
//!
//! Memory effects then apply in BSPlib order: gets read the pre-put state,
//! puts land (deterministically ordered), sends appear in next-superstep
//! queues, registrations commit.

use crate::ctx::BspCtx;
use crate::mem::{BsmpMsg, ProcMem};
use crate::ops::{CommOp, StepOutcome, HEADER_BYTES};
use hpm_barriers::patterns::dissemination;
use hpm_core::predictor::PayloadSchedule;
use hpm_kernels::rate::ProcessorModel;
use hpm_simnet::barrier::BarrierSim;
use hpm_simnet::exchange::{resolve_exchange, ExchangeMsg};
use hpm_simnet::net::NetState;
use hpm_simnet::params::PlatformParams;
use hpm_stats::rng::derive_rng;
use hpm_topology::Placement;

/// An SPMD program: one instance per process; each `superstep` call is the
/// code between two `bsp_sync`s.
pub trait BspProgram {
    fn superstep(&mut self, ctx: &mut BspCtx) -> StepOutcome;
}

/// Runtime configuration.
#[derive(Debug, Clone)]
pub struct BspConfig {
    pub params: PlatformParams,
    pub placement: Placement,
    pub proc_model: ProcessorModel,
    pub seed: u64,
    /// Runaway guard: the run errors out beyond this many supersteps.
    pub max_supersteps: usize,
}

impl BspConfig {
    /// Standard configuration for a placement on a platform.
    pub fn new(
        params: PlatformParams,
        placement: Placement,
        proc_model: ProcessorModel,
        seed: u64,
    ) -> BspConfig {
        BspConfig {
            params,
            placement,
            proc_model,
            seed,
            max_supersteps: 100_000,
        }
    }
}

/// Why a run failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BspError {
    /// `bsp_abort` was called.
    Abort {
        pid: usize,
        superstep: usize,
        msg: String,
    },
    /// Some processes halted while others continued — `bsp_end` must be
    /// collective.
    MixedHalt { superstep: usize },
    /// The `max_supersteps` guard tripped.
    SuperstepLimit,
}

/// Timing trace of one superstep (absolute virtual times).
#[derive(Debug, Clone)]
pub struct SuperstepTrace {
    /// When each process finished its program code (sync entry).
    pub compute_end: Vec<f64>,
    /// When each process completed the sync (next superstep entry).
    pub completion: Vec<f64>,
    /// Total payload bytes committed during the superstep.
    pub payload_bytes: u64,
    /// Number of one-sided/BSMP operations committed.
    pub ops: usize,
}

impl SuperstepTrace {
    /// Wall time of this superstep: latest completion minus earliest entry
    /// into it (the previous step's latest completion is the caller's
    /// reference; within a trace we report the collective span).
    pub fn span(&self, prev_max_completion: f64) -> f64 {
        let end = self
            .completion
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max);
        end - prev_max_completion
    }
}

/// The outcome of a run: final program states and the timing record.
#[derive(Debug)]
pub struct BspRunResult<P> {
    /// Per-process program instances after the run.
    pub programs: Vec<P>,
    /// Total virtual time (latest completion of the final sync).
    pub total_time: f64,
    /// Per-superstep traces.
    pub supersteps: Vec<SuperstepTrace>,
}

impl<P> BspRunResult<P> {
    /// Number of supersteps executed.
    pub fn superstep_count(&self) -> usize {
        self.supersteps.len()
    }

    /// Wall time of superstep `k`.
    pub fn superstep_time(&self, k: usize) -> f64 {
        let prev = if k == 0 {
            0.0
        } else {
            self.supersteps[k - 1]
                .completion
                .iter()
                .copied()
                .fold(f64::NEG_INFINITY, f64::max)
        };
        self.supersteps[k].span(prev)
    }
}

/// Runs an SPMD program built by `make(pid)` on the configured platform.
pub fn run_spmd<P: BspProgram>(
    cfg: &BspConfig,
    mut make: impl FnMut(usize) -> P,
) -> Result<BspRunResult<P>, BspError> {
    let p = cfg.placement.nprocs();
    let mut programs: Vec<P> = (0..p).map(&mut make).collect();
    let mut mems: Vec<ProcMem> = (0..p).map(|_| ProcMem::default()).collect();
    let mut clocks = vec![0.0f64; p];
    let mut rng = derive_rng(cfg.seed, 0xB5F);
    let mut net = NetState::new(&cfg.placement);
    let barrier_pattern = (p >= 2).then(|| dissemination(p));
    let payload = PayloadSchedule::dissemination_count_map(p);
    let sim = BarrierSim::new(&cfg.params, &cfg.placement);
    let mut supersteps = Vec::new();

    for step in 0..cfg.max_supersteps {
        // Phase 1: run program code, collect ops.
        let mut all_ops: Vec<Vec<CommOp>> = Vec::with_capacity(p);
        let mut compute_end = vec![0.0f64; p];
        let mut halts = 0usize;
        for pid in 0..p {
            let mut ctx = BspCtx::new(
                pid,
                p,
                clocks[pid],
                &cfg.proc_model,
                cfg.params.jitter,
                &mut rng,
                &mut mems[pid],
            );
            let outcome = programs[pid].superstep(&mut ctx);
            let (now, ops, abort) = ctx.finish();
            if let Some(msg) = abort {
                return Err(BspError::Abort {
                    pid,
                    superstep: step,
                    msg,
                });
            }
            compute_end[pid] = now;
            all_ops.push(ops);
            if outcome == StepOutcome::Halt {
                halts += 1;
            }
        }
        if halts > 0 && halts < p {
            return Err(BspError::MixedHalt { superstep: step });
        }

        // Phase 2: resolve communication.
        let mut headers: Vec<ExchangeMsg> = Vec::new();
        let mut header_owner_of_get: Vec<(usize, usize)> = Vec::new(); // (msg idx, op idx)
        let mut flat_ops: Vec<(usize, &CommOp)> = Vec::new();
        let mut payload_bytes = 0u64;
        for (pid, ops) in all_ops.iter().enumerate() {
            for op in ops {
                flat_ops.push((pid, op));
            }
        }
        for (k, &(pid, op)) in flat_ops.iter().enumerate() {
            headers.push(ExchangeMsg {
                src: pid,
                dst: op.target(),
                bytes: HEADER_BYTES,
                issue: op.issue(),
            });
            match op {
                CommOp::Put { data, .. } => {
                    payload_bytes += data.len() as u64;
                    headers.push(ExchangeMsg {
                        src: pid,
                        dst: op.target(),
                        bytes: data.len() as u64,
                        issue: op.issue(),
                    });
                }
                CommOp::Send { tag, payload, .. } => {
                    let b = (tag.len() + payload.len()) as u64;
                    payload_bytes += b;
                    headers.push(ExchangeMsg {
                        src: pid,
                        dst: op.target(),
                        bytes: b,
                        issue: op.issue(),
                    });
                }
                CommOp::Get { len, .. } => {
                    payload_bytes += *len as u64;
                    header_owner_of_get.push((headers.len() - 1, k));
                }
            }
        }
        let r1 = resolve_exchange(&cfg.params, &cfg.placement, &headers, &mut net, &mut rng);
        // Get replies: issued by the owner once the request is processed.
        let replies: Vec<ExchangeMsg> = header_owner_of_get
            .iter()
            .map(|&(msg_idx, op_idx)| {
                let (requester, op) = flat_ops[op_idx];
                ExchangeMsg {
                    src: op.target(),
                    dst: requester,
                    bytes: op.payload_bytes(),
                    issue: r1.processed[msg_idx],
                }
            })
            .collect();
        let r2 = resolve_exchange(&cfg.params, &cfg.placement, &replies, &mut net, &mut rng);

        // Phase 3: synchronize.
        let barrier_exit = match &barrier_pattern {
            Some(pat) => sim.run_once(pat, &payload, &compute_end, &mut net, &mut rng),
            None => compute_end.clone(),
        };
        let completion: Vec<f64> = (0..p)
            .map(|i| barrier_exit[i].max(r1.last_in[i]).max(r2.last_in[i]))
            .collect();

        // Phase 4: memory effects in BSPlib order.
        // Gets read the state at the end of computation, before puts.
        let mut get_results: Vec<(usize, &CommOp, Vec<u8>)> = Vec::new();
        for &(pid, op) in &flat_ops {
            if let CommOp::Get {
                src,
                src_reg,
                src_offset,
                len,
                ..
            } = op
            {
                let data = mems[*src].read(*src_reg)[*src_offset..*src_offset + *len].to_vec();
                get_results.push((pid, op, data));
            }
        }
        for &(_, op) in &flat_ops {
            if let CommOp::Put {
                dst,
                reg,
                offset,
                data,
                ..
            } = op
            {
                mems[*dst].write(*reg)[*offset..*offset + data.len()].copy_from_slice(data);
            }
        }
        for (pid, op, data) in get_results {
            if let CommOp::Get {
                dst_reg,
                dst_offset,
                len,
                ..
            } = op
            {
                mems[pid].write(*dst_reg)[*dst_offset..*dst_offset + *len].copy_from_slice(&data);
            }
        }
        for &(_, op) in &flat_ops {
            if let CommOp::Send {
                dst, tag, payload, ..
            } = op
            {
                mems[*dst].arriving.push(BsmpMsg {
                    tag: tag.clone(),
                    payload: payload.clone(),
                });
            }
        }
        for mem in mems.iter_mut() {
            mem.commit_sync();
        }

        supersteps.push(SuperstepTrace {
            compute_end,
            completion: completion.clone(),
            payload_bytes,
            ops: flat_ops.len(),
        });
        clocks = completion;

        if halts == p {
            let total_time = clocks.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            return Ok(BspRunResult {
                programs,
                total_time,
                supersteps,
            });
        }
    }
    Err(BspError::SuperstepLimit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::RegHandle;
    use hpm_kernels::rate::xeon_core;
    use hpm_simnet::params::xeon_cluster_params;
    use hpm_topology::{cluster_8x2x4, PlacementPolicy};

    fn config(p: usize) -> BspConfig {
        BspConfig::new(
            xeon_cluster_params(),
            Placement::new(cluster_8x2x4(), PlacementPolicy::RoundRobin, p),
            xeon_core(),
            1234,
        )
    }

    /// Ring rotation by put: each process writes its pid into its right
    /// neighbour's buffer, twice, checking values between supersteps.
    struct RotatePut {
        step: usize,
        buf: Option<RegHandle>,
        seen: Vec<u8>,
    }

    impl BspProgram for RotatePut {
        fn superstep(&mut self, ctx: &mut BspCtx) -> StepOutcome {
            let p = ctx.nprocs();
            match self.step {
                0 => {
                    let h = ctx.alloc(1);
                    ctx.push_reg(h);
                    self.buf = Some(h);
                    self.step = 1;
                    StepOutcome::Continue
                }
                1 => {
                    let h = self.buf.expect("allocated");
                    let dst = (ctx.pid() + 1) % p;
                    ctx.put(dst, h, 0, &[ctx.pid() as u8]);
                    self.step = 2;
                    StepOutcome::Continue
                }
                _ => {
                    let h = self.buf.expect("allocated");
                    self.seen = ctx.read_buf(h).to_vec();
                    StepOutcome::Halt
                }
            }
        }
    }

    #[test]
    fn put_data_arrives_after_sync() {
        let cfg = config(8);
        let res = run_spmd(&cfg, |_| RotatePut {
            step: 0,
            buf: None,
            seen: Vec::new(),
        })
        .expect("run succeeds");
        for (pid, prog) in res.programs.iter().enumerate() {
            let left = ((pid + 8) - 1) % 8;
            assert_eq!(prog.seen, vec![left as u8], "pid {pid}");
        }
        assert_eq!(res.superstep_count(), 3);
        assert!(res.total_time > 0.0);
    }

    /// Get-based neighbour read.
    struct NeighbourGet {
        step: usize,
        src: Option<RegHandle>,
        dst: Option<RegHandle>,
        got: u8,
    }

    impl BspProgram for NeighbourGet {
        fn superstep(&mut self, ctx: &mut BspCtx) -> StepOutcome {
            match self.step {
                0 => {
                    let s = ctx.alloc(1);
                    let d = ctx.alloc(1);
                    ctx.write_buf(s)[0] = (ctx.pid() * 10) as u8;
                    ctx.push_reg(s);
                    ctx.push_reg(d);
                    self.src = Some(s);
                    self.dst = Some(d);
                    self.step = 1;
                    StepOutcome::Continue
                }
                1 => {
                    let p = ctx.nprocs();
                    let from = (ctx.pid() + 1) % p;
                    ctx.get(
                        from,
                        self.src.expect("reg"),
                        0,
                        self.dst.expect("reg"),
                        0,
                        1,
                    );
                    self.step = 2;
                    StepOutcome::Continue
                }
                _ => {
                    self.got = ctx.read_buf(self.dst.expect("reg"))[0];
                    StepOutcome::Halt
                }
            }
        }
    }

    #[test]
    fn get_reads_remote_values() {
        let cfg = config(4);
        let res = run_spmd(&cfg, |_| NeighbourGet {
            step: 0,
            src: None,
            dst: None,
            got: 0,
        })
        .expect("run succeeds");
        for (pid, prog) in res.programs.iter().enumerate() {
            assert_eq!(prog.got, (((pid + 1) % 4) * 10) as u8, "pid {pid}");
        }
    }

    /// BSMP: everyone sends its pid to rank 0 with a 4-byte tag.
    struct SendToZero {
        step: usize,
        received: Vec<u32>,
    }

    impl BspProgram for SendToZero {
        fn superstep(&mut self, ctx: &mut BspCtx) -> StepOutcome {
            match self.step {
                0 => {
                    ctx.set_tagsize(4);
                    self.step = 1;
                    StepOutcome::Continue
                }
                1 => {
                    let tag = (ctx.pid() as u32).to_le_bytes();
                    ctx.send(0, &tag, &(ctx.pid() as u32 * 7).to_le_bytes());
                    self.step = 2;
                    StepOutcome::Continue
                }
                _ => {
                    if ctx.pid() == 0 {
                        while let Some(m) = ctx.move_msg() {
                            self.received
                                .push(u32::from_le_bytes(m.payload.try_into().expect("4B")));
                        }
                    }
                    StepOutcome::Halt
                }
            }
        }
    }

    #[test]
    fn bsmp_queue_delivers_all_messages() {
        let cfg = config(6);
        let res = run_spmd(&cfg, |_| SendToZero {
            step: 0,
            received: Vec::new(),
        })
        .expect("run succeeds");
        let mut got = res.programs[0].received.clone();
        got.sort_unstable();
        assert_eq!(got, vec![0, 7, 14, 21, 28, 35]);
    }

    /// Overlap witness: a big put issued early, followed by long compute,
    /// should cost (almost) nothing at sync compared to the same put
    /// issued at the end of the compute.
    struct OverlapProbe {
        step: usize,
        early: bool,
        buf: Option<RegHandle>,
    }

    const BIG: usize = 4 << 20;

    impl BspProgram for OverlapProbe {
        fn superstep(&mut self, ctx: &mut BspCtx) -> StepOutcome {
            match self.step {
                0 => {
                    let h = ctx.alloc(BIG);
                    ctx.push_reg(h);
                    self.buf = Some(h);
                    self.step = 1;
                    StepOutcome::Continue
                }
                1 => {
                    let h = self.buf.expect("reg");
                    let data = vec![1u8; BIG];
                    let dst = (ctx.pid() + 1) % ctx.nprocs();
                    let compute = 0.1; // 100 ms of work
                    if self.early {
                        ctx.hpput(dst, h, 0, &data);
                        ctx.elapse(compute);
                    } else {
                        ctx.elapse(compute);
                        ctx.hpput(dst, h, 0, &data);
                    }
                    self.step = 2;
                    StepOutcome::Continue
                }
                _ => StepOutcome::Halt,
            }
        }
    }

    fn overlap_run(early: bool) -> f64 {
        // 16 processes span two nodes, so the ring put crosses the
        // gigabit link where a 4 MiB transfer costs ~35 ms.
        let cfg = config(16);
        let res = run_spmd(&cfg, |_| OverlapProbe {
            step: 0,
            early,
            buf: None,
        })
        .expect("run succeeds");
        res.superstep_time(1)
    }

    #[test]
    fn early_commitment_overlaps_communication() {
        let early = overlap_run(true);
        let late = overlap_run(false);
        // 4 MiB at ~118 MB/s is ~35 ms; early commitment hides it inside
        // the 100 ms of compute, late commitment pays it after.
        assert!(
            late > early + 0.02,
            "late {late} should exceed early {early} by the transfer time"
        );
    }

    /// Abort propagation.
    #[derive(Debug)]
    struct Aborter;
    impl BspProgram for Aborter {
        fn superstep(&mut self, ctx: &mut BspCtx) -> StepOutcome {
            if ctx.pid() == 2 {
                ctx.abort("deliberate");
            }
            StepOutcome::Halt
        }
    }

    #[test]
    fn abort_surfaces_as_error() {
        let cfg = config(4);
        let err = run_spmd(&cfg, |_| Aborter).expect_err("must abort");
        assert_eq!(
            err,
            BspError::Abort {
                pid: 2,
                superstep: 0,
                msg: "deliberate".into()
            }
        );
    }

    /// Mixed halt detection.
    #[derive(Debug)]
    struct HalfHalt;
    impl BspProgram for HalfHalt {
        fn superstep(&mut self, ctx: &mut BspCtx) -> StepOutcome {
            if ctx.pid() == 0 {
                StepOutcome::Halt
            } else {
                StepOutcome::Continue
            }
        }
    }

    #[test]
    fn mixed_halt_is_an_error() {
        let cfg = config(3);
        let err = run_spmd(&cfg, |_| HalfHalt).expect_err("must fail");
        assert_eq!(err, BspError::MixedHalt { superstep: 0 });
    }

    /// Infinite program trips the guard.
    #[derive(Debug)]
    struct Forever;
    impl BspProgram for Forever {
        fn superstep(&mut self, _ctx: &mut BspCtx) -> StepOutcome {
            StepOutcome::Continue
        }
    }

    #[test]
    fn superstep_limit_guards_runaways() {
        let mut cfg = config(2);
        cfg.max_supersteps = 10;
        let err = run_spmd(&cfg, |_| Forever).expect_err("must trip");
        assert_eq!(err, BspError::SuperstepLimit);
    }

    #[test]
    fn single_process_runs_without_barrier() {
        let cfg = BspConfig::new(
            xeon_cluster_params(),
            Placement::new(cluster_8x2x4(), PlacementPolicy::RoundRobin, 1),
            xeon_core(),
            9,
        );
        struct One {
            done: bool,
        }
        impl BspProgram for One {
            fn superstep(&mut self, ctx: &mut BspCtx) -> StepOutcome {
                ctx.elapse(1e-3);
                self.done = true;
                StepOutcome::Halt
            }
        }
        let res = run_spmd(&cfg, |_| One { done: false }).expect("runs");
        assert!(res.programs[0].done);
        assert!(res.total_time >= 1e-3 * 0.5);
    }

    #[test]
    fn deterministic_given_seed() {
        let t1 = overlap_run(true);
        let t2 = overlap_run(true);
        assert_eq!(t1, t2);
    }
}
